// fleet_load — the open-loop workload engine as a modeled benchmark.
//
// Runs the builtin "smoke" scenario (and its stalled twin) through
// load::RunScenario and lands the headline numbers — tail quantiles,
// goodput, hit ratio, energy per page, journal drops — in BENCH_sww.json
// as exact-gated modeled metrics.  The engine is deterministic by
// contract, so any drift here is a real behaviour change in the serving
// or energy model, not noise.  The one structural assertion is the
// coordinated-omission check: injecting a stall window into the same
// arrival stream must inflate the recorded p99.
#include <cstdio>

#include "load/engine.hpp"
#include "load/spec.hpp"
#include "obs/bench.hpp"
#include "obs/registry.hpp"

namespace {

void fleet_load(sww::obs::bench::State& state) {
  std::printf("fleet workload engine (open-loop, virtual clock)\n\n");

  auto smoke_spec = sww::load::FindBuiltinScenario("smoke");
  auto stall_spec = sww::load::FindBuiltinScenario("smoke-stall");
  state.Check(smoke_spec.ok() && stall_spec.ok(),
              "builtin smoke scenarios must exist");
  if (!smoke_spec.ok() || !stall_spec.ok()) return;

  auto smoke = sww::load::RunScenario(smoke_spec.value());
  auto stall = sww::load::RunScenario(stall_spec.value());
  state.Check(smoke.ok() && stall.ok(), "scenario runs must succeed");
  if (!smoke.ok() || !stall.ok()) return;
  const sww::load::ScenarioResult& s = smoke.value();
  const sww::load::ScenarioResult& t = stall.value();

  const double smoke_p99 = sww::obs::HistogramSnapshotQuantile(s.latency, 99.0);
  const double stall_p99 = sww::obs::HistogramSnapshotQuantile(t.latency, 99.0);

  state.Modeled("smoke_requests", static_cast<double>(s.requests));
  state.Modeled("smoke_errors", static_cast<double>(s.errors));
  state.Modeled("smoke_latency_p50_seconds",
                sww::obs::HistogramSnapshotQuantile(s.latency, 50.0));
  state.Modeled("smoke_latency_p99_seconds", smoke_p99);
  state.Modeled("smoke_latency_p999_seconds",
                sww::obs::HistogramSnapshotQuantile(s.latency, 99.9));
  state.Modeled("smoke_goodput_rps", s.goodput_rps);
  state.Modeled("smoke_edge_hit_ratio",
                s.edge_requests == 0
                    ? 0.0
                    : static_cast<double>(s.edge_hits) /
                          static_cast<double>(s.edge_requests));
  state.Modeled("smoke_energy_j_per_page", s.energy_joules_per_page);
  state.Modeled("smoke_gco2e_per_page", s.gco2e_per_page);
  state.Modeled("smoke_journal_dropped",
                static_cast<double>(s.journal_dropped));
  state.Modeled("stall_latency_p99_seconds", stall_p99);
  state.Modeled("stall_queue_wait_p99_seconds",
                sww::obs::HistogramSnapshotQuantile(t.queue_wait, 99.0));

  // Coordinated omission: same arrivals, one 6 s stall window — the
  // recorded tail must absorb the queueing, not the arrival stream.
  state.Check(stall_p99 > smoke_p99,
              "stall window must inflate the recorded p99");

  std::printf("smoke:       %llu requests, p99 %.4f s, goodput %.2f req/s\n",
              static_cast<unsigned long long>(s.requests), smoke_p99,
              s.goodput_rps);
  std::printf("smoke-stall: p99 %.4f s (coordinated-omission-free tail)\n",
              stall_p99);
}
SWW_BENCHMARK(fleet_load);

}  // namespace
