// bench_flight_recorder — what does the wire tap cost?
//
// The flight recorder's contract is "null-check only when uninstalled":
// a connection with no tap must pay nothing measurable per frame, and a
// tapped connection's recording cost must stay small next to framing
// itself.  Measured with google-benchmark over the sans-IO connection
// pair, like bench_hpack.
#include <benchmark/benchmark.h>

#include <memory>

#include "http2/connection.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "util/bytes.hpp"

namespace {

using sww::http2::Connection;

struct ConnectionPair {
  std::unique_ptr<Connection> client;
  std::unique_ptr<Connection> server;

  ConnectionPair() {
    client = std::make_unique<Connection>(Connection::Role::kClient,
                                          Connection::Options{});
    server = std::make_unique<Connection>(Connection::Role::kServer,
                                          Connection::Options{});
    client->StartHandshake();
    server->StartHandshake();
    Shuttle();
  }

  void Shuttle() {
    for (int i = 0; i < 4; ++i) {
      if (client->HasOutput()) (void)server->Receive(client->TakeOutput());
      if (server->HasOutput()) (void)client->Receive(server->TakeOutput());
    }
    (void)client->TakeEvents();
    (void)server->TakeEvents();
  }
};

void PingRoundTrip(ConnectionPair& pair, std::uint64_t opaque) {
  pair.client->SendPing(opaque);
  (void)pair.server->Receive(pair.client->TakeOutput());
  (void)pair.client->Receive(pair.server->TakeOutput());
  (void)pair.client->TakeEvents();
  (void)pair.server->TakeEvents();
}

/// Baseline: no tap installed — the hot path pays one null check.
void BM_PingRoundTripUntapped(benchmark::State& state) {
  sww::obs::Tracer::Default().SetEnabled(false);
  ConnectionPair pair;
  std::uint64_t opaque = 0;
  for (auto _ : state) {
    PingRoundTrip(pair, ++opaque);
  }
  state.SetItemsProcessed(state.iterations());
  sww::obs::Tracer::Default().SetEnabled(true);
}
BENCHMARK(BM_PingRoundTripUntapped);

/// Tapped: every frame (4 per iteration: PING + ACK, both sides) lands in
/// the ring buffer, including steady-state overwrite once it wraps.
void BM_PingRoundTripTapped(benchmark::State& state) {
  sww::obs::Tracer::Default().SetEnabled(false);
  ConnectionPair pair;
  sww::obs::ConnectionTap client_tap("bench.client");
  sww::obs::ConnectionTap server_tap("bench.server");
  pair.client->SetWireTap(&client_tap);
  pair.server->SetWireTap(&server_tap);
  std::uint64_t opaque = 0;
  for (auto _ : state) {
    PingRoundTrip(pair, ++opaque);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["frames_recorded"] = static_cast<double>(
      client_tap.total_recorded() + server_tap.total_recorded());
  state.counters["dropped"] =
      static_cast<double>(client_tap.dropped() + server_tap.dropped());
  sww::obs::Tracer::Default().SetEnabled(true);
}
BENCHMARK(BM_PingRoundTripTapped);

}  // namespace
