// flight_recorder_tap — what does the wire tap cost?
//
// The flight recorder's contract is "null-check only when uninstalled":
// a connection with no tap must pay nothing measurable per frame, and a
// tapped connection's recording cost must stay small next to framing
// itself.  Both variants run as tolerance-gated wall kernels over the
// sans-IO connection pair; frame counts are reported as ungated info
// (they scale with whatever iteration count the adaptive protocol picks).
#include <cstdio>
#include <memory>

#include "http2/connection.hpp"
#include "obs/bench.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "util/bytes.hpp"

namespace {

using sww::http2::Connection;

struct ConnectionPair {
  std::unique_ptr<Connection> client;
  std::unique_ptr<Connection> server;

  ConnectionPair() {
    client = std::make_unique<Connection>(Connection::Role::kClient,
                                          Connection::Options{});
    server = std::make_unique<Connection>(Connection::Role::kServer,
                                          Connection::Options{});
    client->StartHandshake();
    server->StartHandshake();
    Shuttle();
  }

  void Shuttle() {
    for (int i = 0; i < 4; ++i) {
      if (client->HasOutput()) (void)server->Receive(client->TakeOutput());
      if (server->HasOutput()) (void)client->Receive(server->TakeOutput());
    }
    (void)client->TakeEvents();
    (void)server->TakeEvents();
  }
};

void PingRoundTrip(ConnectionPair& pair, std::uint64_t opaque) {
  pair.client->SendPing(opaque);
  (void)pair.server->Receive(pair.client->TakeOutput());
  (void)pair.client->Receive(pair.server->TakeOutput());
  (void)pair.client->TakeEvents();
  (void)pair.server->TakeEvents();
}

void flight_recorder_tap(sww::obs::bench::State& state) {
  sww::obs::Tracer::Default().SetEnabled(false);
  std::printf("flight recorder wire-tap overhead (PING round trips)\n\n");

  // Baseline: no tap installed — the hot path pays one null check.
  {
    ConnectionPair pair;
    std::uint64_t opaque = 0;
    state.Time("ping_round_trip_untapped",
               [&] { PingRoundTrip(pair, ++opaque); });
    state.Check(opaque > 0, "untapped kernel never ran");
  }

  // Tapped: every frame (4 per iteration: PING + ACK, both sides) lands in
  // the ring buffer, including steady-state overwrite once it wraps.
  {
    ConnectionPair pair;
    sww::obs::ConnectionTap client_tap("bench.client");
    sww::obs::ConnectionTap server_tap("bench.server");
    pair.client->SetWireTap(&client_tap);
    pair.server->SetWireTap(&server_tap);
    std::uint64_t opaque = 0;
    state.Time("ping_round_trip_tapped",
               [&] { PingRoundTrip(pair, ++opaque); });
    const double recorded = static_cast<double>(client_tap.total_recorded() +
                                                server_tap.total_recorded());
    const double dropped =
        static_cast<double>(client_tap.dropped() + server_tap.dropped());
    state.Info("frames_recorded", recorded);
    state.Info("frames_dropped_from_ring", dropped);
    state.Check(recorded > 0, "tapped kernel recorded no frames");
    std::printf("tapped run: %.0f frames recorded, %.0f overwritten in the "
                "ring\n",
                recorded, dropped);
  }

  sww::obs::Tracer::Default().SetEnabled(true);
}
SWW_BENCHMARK(flight_recorder_tap);

}  // namespace
