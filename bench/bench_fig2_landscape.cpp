// fig2_landscape — regenerates the Figure 2 experiment (§6.2): the
// Wikimedia Commons "Landscape" search-results page, served as prompts and
// regenerated at the end host.
//
// Paper numbers: 49 images / 1.4 MB traditional; 8.92 kB of metadata
// (157× compression, 68× at the 428 B worst case); ≈310 s on the laptop
// (6.32 s/image) and ≈49 s (≈1 s/image) on the workstation.
#include <algorithm>
#include <cstdio>

#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "genai/prompt_inversion.hpp"
#include "html/parser.hpp"
#include "metrics/clip.hpp"
#include "obs/bench.hpp"

namespace {

void fig2_landscape(sww::obs::bench::State& state) {
  using namespace sww;
  // Bare prompts, as in the paper's experiment (the §7 digest extension
  // would add 29 B/item; see ablations for its cost).
  const core::LandscapePage page =
      core::MakeLandscapeSearchPage(49, 256, 192, 2025, /*with_digests=*/false);

  std::printf("Figure 2: Wikimedia 'Landscape' search results\n\n");
  std::printf("images: %zu, prompt lengths %zu-%zu chars\n",
              page.prompts.size(),
              [&] {
                std::size_t lo = 9999;
                for (const auto& p : page.prompts) lo = std::min(lo, p.size());
                return lo;
              }(),
              [&] {
                std::size_t hi = 0;
                for (const auto& p : page.prompts) hi = std::max(hi, p.size());
                return hi;
              }());

  // --- data reduction ------------------------------------------------------
  const double traditional_kb = page.traditional_image_bytes / 1000.0;
  const double metadata_kb = page.total_metadata_bytes / 1000.0;
  std::printf("\nData reduction:\n");
  std::printf("  traditional image bytes: %8.1f kB   (paper: 1400 kB)\n",
              traditional_kb);
  std::printf("  prompt/metadata bytes:   %8.2f kB   (paper: 8.92 kB)\n",
              metadata_kb);
  std::printf("  compression factor:      %8.0fx     (paper: 157x)\n",
              traditional_kb / metadata_kb);
  const double worst_case_meta = 49 * 428.0 / 1000.0;
  std::printf("  worst case (428 B/item): %8.0fx     (paper: 68x)\n",
              traditional_kb / worst_case_meta);
  state.Modeled("traditional_kb", traditional_kb);
  state.Modeled("metadata_kb", metadata_kb);
  state.Modeled("compression_factor", traditional_kb / metadata_kb);

  // --- end-to-end over the modified HTTP/2 ----------------------------------
  core::ContentStore store;
  if (auto status = store.AddPage("/landscape", page.html); !status.ok()) {
    state.Check(false, "AddPage: " + status.ToString());
    return;
  }
  auto session = core::LocalSession::Start(&store, {});
  state.Check(session.ok(), "session start");
  if (!session.ok()) return;
  auto fetch = session.value()->FetchPage("/landscape");
  state.Check(fetch.ok(), "landscape fetch");
  if (!fetch.ok()) return;
  std::printf("\nEnd-to-end over modified HTTP/2 (generative mode):\n");
  std::printf("  page bytes on the wire:  %8.2f kB\n",
              fetch.value().page_bytes / 1000.0);
  std::printf("  items generated:         %8zu\n", fetch.value().generated_items);
  std::printf("  laptop generation:       %8.1f s   (paper: ~310 s, 6.32 s/img)\n",
              fetch.value().generation_seconds);
  std::printf("  per image:               %8.2f s\n",
              fetch.value().generation_seconds / 49.0);
  std::printf("  laptop energy:           %8.2f Wh\n",
              fetch.value().generation_energy_wh);
  state.Modeled("page_wire_bytes", static_cast<double>(fetch.value().page_bytes));
  state.Modeled("items_generated",
                static_cast<double>(fetch.value().generated_items));
  state.Modeled("laptop_generation_seconds", fetch.value().generation_seconds);
  state.Modeled("laptop_generation_wh", fetch.value().generation_energy_wh);

  // Workstation as the end host ("an edge webserver or a high-end client").
  core::LocalSession::Options ws_options;
  ws_options.client.laptop = false;
  auto ws_session = core::LocalSession::Start(&store, ws_options);
  auto ws_fetch = ws_session.value()->FetchPage("/landscape");
  std::printf("  workstation generation:  %8.1f s   (paper: ~49 s, ~1 s/img)\n",
              ws_fetch.value().generation_seconds);
  std::printf("  per image:               %8.2f s\n",
              ws_fetch.value().generation_seconds / 49.0);
  state.Modeled("workstation_generation_seconds",
                ws_fetch.value().generation_seconds);

  // --- semantic preservation -------------------------------------------------
  // "the semantic meaning of each picture is conserved over this process,
  // though the images are not identical."
  double clip_sum = 0.0;
  int scored = 0;
  for (const auto& [path, bytes] : fetch.value().files) {
    auto image = genai::Image::FromPpm(
        std::string(bytes.begin(), bytes.end()));
    if (!image.ok() || scored >= 49) continue;
    clip_sum += metrics::ClipScore(page.prompts[static_cast<std::size_t>(scored)],
                                   image.value());
    ++scored;
  }
  const double mean_clip = clip_sum / std::max(1, scored);
  std::printf("\nSemantic preservation: mean CLIP(prompt, generated) = %.2f "
              "(random baseline 0.09)\n",
              mean_clip);
  state.Modeled("mean_clip", mean_clip);
  state.Check(mean_clip > 0.09, "CLIP beats the random baseline");
}
SWW_BENCHMARK(fig2_landscape);

}  // namespace
