// bench_hpack — google-benchmark microbenchmarks for the protocol
// substrate: HPACK encode/decode, Huffman coding, frame parsing, and a
// full in-process request/response round trip.  These quantify the
// "minor changes to HTTP" claim at the implementation level: the SWW
// extension adds no per-request work at all.
#include <benchmark/benchmark.h>

#include "core/page_builder.hpp"
#include "hpack/hpack.hpp"
#include "hpack/huffman.hpp"
#include "http2/connection.hpp"
#include "net/pump.hpp"

using namespace sww;

namespace {

hpack::HeaderList TypicalRequest() {
  return {{":method", "GET", false},
          {":scheme", "https", false},
          {":path", "/landscape", false},
          {":authority", "sww.local", false},
          {"accept", "text/html", false},
          {"user-agent", "sww-client/1.0", false}};
}

void BM_HpackEncodeRequest(benchmark::State& state) {
  hpack::Encoder encoder;
  const hpack::HeaderList headers = TypicalRequest();
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.EncodeBlock(headers));
  }
}
BENCHMARK(BM_HpackEncodeRequest);

void BM_HpackDecodeRequest(benchmark::State& state) {
  hpack::Encoder encoder;
  const util::Bytes block = encoder.EncodeBlock(TypicalRequest());
  hpack::Decoder decoder;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.DecodeBlock(block));
  }
}
BENCHMARK(BM_HpackDecodeRequest);

void BM_HuffmanEncode(benchmark::State& state) {
  const std::string prompt = core::MakeLandscapePrompt(1);
  for (auto _ : state) {
    util::Bytes out;
    hpack::HuffmanEncode(prompt, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(prompt.size()));
}
BENCHMARK(BM_HuffmanEncode);

void BM_HuffmanDecode(benchmark::State& state) {
  const std::string prompt = core::MakeLandscapePrompt(1);
  util::Bytes encoded;
  hpack::HuffmanEncode(prompt, encoded);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hpack::HuffmanDecode(encoded));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(encoded.size()));
}
BENCHMARK(BM_HuffmanDecode);

void BM_FrameParse(benchmark::State& state) {
  const std::size_t payload_size = static_cast<std::size_t>(state.range(0));
  util::Bytes payload(payload_size, 0x42);
  const util::Bytes wire =
      http2::SerializeFrame(http2::MakeDataFrame(1, payload, false));
  for (auto _ : state) {
    http2::FrameParser parser;
    parser.Feed(wire);
    benchmark::DoNotOptimize(parser.Next());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_FrameParse)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SettingsFrameWithGenAbility(benchmark::State& state) {
  // The entire per-connection cost of the SWW extension: one extra
  // 6-byte SETTINGS entry, serialized once.
  for (auto _ : state) {
    benchmark::DoNotOptimize(http2::SerializeFrame(http2::MakeSettingsFrame(
        {{http2::kSettingsGenAbility, http2::kGenAbilityFull}})));
  }
}
BENCHMARK(BM_SettingsFrameWithGenAbility);

void BM_ConnectionHandshake(benchmark::State& state) {
  for (auto _ : state) {
    http2::Connection::Options options;
    options.local_settings.set_gen_ability(http2::kGenAbilityFull);
    http2::Connection client(http2::Connection::Role::kClient, options);
    http2::Connection server(http2::Connection::Role::kServer, options);
    client.StartHandshake();
    server.StartHandshake();
    net::DirectLinkExchange(client, server);
    benchmark::DoNotOptimize(client.generative_mode());
  }
}
BENCHMARK(BM_ConnectionHandshake);

void BM_RequestResponseRoundTrip(benchmark::State& state) {
  http2::Connection::Options options;
  options.local_settings.set_enable_push(false);
  http2::Connection client(http2::Connection::Role::kClient, options);
  http2::Connection server(http2::Connection::Role::kServer, options);
  client.StartHandshake();
  server.StartHandshake();
  net::DirectLinkExchange(client, server);
  const hpack::HeaderList request = TypicalRequest();
  const util::Bytes body(1024, 0x51);
  for (auto _ : state) {
    auto stream_id = client.SubmitRequest(request, {});
    net::DirectLinkExchange(client, server);
    (void)server.SubmitHeaders(stream_id.value(), {{":status", "200", false}},
                               false);
    (void)server.SubmitData(stream_id.value(), body, true);
    net::DirectLinkExchange(client, server);
    client.ReleaseStream(stream_id.value());
    server.ReleaseStream(stream_id.value());
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_RequestResponseRoundTrip);

}  // namespace
