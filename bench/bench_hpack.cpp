// hpack_codec / http2_framing — wall-clock microbenchmarks for the
// protocol substrate: HPACK encode/decode, Huffman coding, frame parsing,
// and a full in-process request/response round trip.  These quantify the
// "minor changes to HTTP" claim at the implementation level: the SWW
// extension adds no per-request work at all.
//
// Timed kernels land in the tolerance-gated "wall" section; the byte
// counts (block sizes, wire sizes, the 6-byte SETTINGS entry) are modeled
// metrics and gate exactly.
#include <cstdio>
#include <string>

#include "core/page_builder.hpp"
#include "hpack/hpack.hpp"
#include "hpack/huffman.hpp"
#include "http2/connection.hpp"
#include "net/pump.hpp"
#include "obs/bench.hpp"
#include "util/rng.hpp"

namespace {

using namespace sww;

hpack::HeaderList TypicalRequest() {
  return {{":method", "GET", false},
          {":scheme", "https", false},
          {":path", "/landscape", false},
          {":authority", "sww.local", false},
          {"accept", "text/html", false},
          {"user-agent", "sww-client/1.0", false}};
}

/// Reads `sink` after the timed loops so the kernels cannot be elided.
void hpack_codec(sww::obs::bench::State& state) {
  std::printf("HPACK + Huffman codec kernels (typical SWW request)\n\n");
  std::size_t sink = 0;

  hpack::Encoder encoder;
  const hpack::HeaderList headers = TypicalRequest();
  // First encode outside the loop: the steady state (fully HPACK-indexed
  // block) is what every request after the first pays.
  const std::size_t first_block = encoder.EncodeBlock(headers).size();
  state.Time("encode_request", [&] { sink += encoder.EncodeBlock(headers).size(); });
  const util::Bytes block = encoder.EncodeBlock(headers);
  state.Modeled("request_block_first_bytes", static_cast<double>(first_block));
  state.Modeled("request_block_indexed_bytes", static_cast<double>(block.size()));

  hpack::Decoder decoder;
  state.Time("decode_request", [&] {
    auto decoded = decoder.DecodeBlock(block);
    sink += decoded.ok() ? decoded.value().size() : 0;
  });

  const std::string prompt = core::MakeLandscapePrompt(1);
  util::Bytes encoded;
  hpack::HuffmanEncode(prompt, encoded);
  state.Modeled("huffman_prompt_bytes", static_cast<double>(prompt.size()));
  state.Modeled("huffman_encoded_bytes", static_cast<double>(encoded.size()));
  state.Time("huffman_encode", [&] {
    util::Bytes out;
    hpack::HuffmanEncode(prompt, out);
    sink += out.size();
  });
  state.Time("huffman_decode", [&] {
    auto decoded = hpack::HuffmanDecode(encoded);
    sink += decoded.ok() ? decoded.value().size() : 0;
  });
  // The retired bit-at-a-time trie decoder, timed on the same input: the
  // before/after of the FSM fast lane, visible in every BENCH JSON.
  state.Time("huffman_decode_trie", [&] {
    auto decoded = hpack::HuffmanDecodeTrie(encoded);
    sink += decoded.ok() ? decoded.value().size() : 0;
  });
  // Differential identity, gated exactly: FSM and trie must agree on a
  // deterministic corpus of valid and corrupted inputs.
  {
    util::Rng rng(0x53575721u);
    std::size_t mismatches = 0;
    for (int i = 0; i < 512; ++i) {
      util::Bytes blob(rng.NextIndex(64), 0);
      for (auto& b : blob) b = static_cast<std::uint8_t>(rng.NextBounded(256));
      auto fsm = hpack::HuffmanDecode(blob);
      auto trie = hpack::HuffmanDecodeTrie(blob);
      if (fsm.ok() != trie.ok() ||
          (fsm.ok() && fsm.value() != trie.value())) {
        ++mismatches;
      }
    }
    state.Modeled("huffman_fsm_trie_mismatches", static_cast<double>(mismatches));
  }

  state.Check(sink > 0, "codec kernels produced no output");
  std::printf("request block: %zu B first, %zu B indexed; prompt %zu B -> "
              "%zu B Huffman\n",
              first_block, block.size(), prompt.size(), encoded.size());
}
SWW_BENCHMARK(hpack_codec);

void http2_framing(sww::obs::bench::State& state) {
  std::printf("HTTP/2 framing + connection kernels\n\n");
  std::size_t sink = 0;

  for (std::size_t payload_size : {std::size_t{64}, std::size_t{1024},
                                   std::size_t{16384}}) {
    util::Bytes payload(payload_size, 0x42);
    const util::Bytes wire =
        http2::SerializeFrame(http2::MakeDataFrame(1, payload, false));
    state.Modeled("data_frame_wire_bytes_" + std::to_string(payload_size),
                  static_cast<double>(wire.size()));
    state.Time("frame_parse_" + std::to_string(payload_size), [&] {
      http2::FrameParser parser;
      parser.Feed(wire);
      auto frame = parser.Next();
      sink += frame.ok() && frame.value().has_value()
                  ? frame.value()->payload.size()
                  : 0;
    });
  }

  // The entire per-connection cost of the SWW extension: one extra
  // 6-byte SETTINGS entry, serialized once.
  const util::Bytes settings_wire = http2::SerializeFrame(
      http2::MakeSettingsFrame(
          {{http2::kSettingsGenAbility, http2::kGenAbilityFull}}));
  state.Modeled("gen_ability_settings_frame_bytes",
                static_cast<double>(settings_wire.size()));
  state.Time("settings_frame_gen_ability", [&] {
    sink += http2::SerializeFrame(http2::MakeSettingsFrame(
                                      {{http2::kSettingsGenAbility,
                                        http2::kGenAbilityFull}}))
                .size();
  });

  state.Time("connection_handshake", [&] {
    http2::Connection::Options options;
    options.local_settings.set_gen_ability(http2::kGenAbilityFull);
    http2::Connection client(http2::Connection::Role::kClient, options);
    http2::Connection server(http2::Connection::Role::kServer, options);
    client.StartHandshake();
    server.StartHandshake();
    net::DirectLinkExchange(client, server);
    sink += client.generative_mode() ? 1 : 0;
  });

  {
    http2::Connection::Options options;
    options.local_settings.set_enable_push(false);
    http2::Connection client(http2::Connection::Role::kClient, options);
    http2::Connection server(http2::Connection::Role::kServer, options);
    client.StartHandshake();
    server.StartHandshake();
    net::DirectLinkExchange(client, server);
    const hpack::HeaderList request = TypicalRequest();
    const util::Bytes body(1024, 0x51);
    state.Time("request_response_round_trip", [&] {
      auto stream_id = client.SubmitRequest(request, {});
      net::DirectLinkExchange(client, server);
      (void)server.SubmitHeaders(stream_id.value(),
                                 {{":status", "200", false}}, false);
      (void)server.SubmitData(stream_id.value(), body, true);
      net::DirectLinkExchange(client, server);
      client.ReleaseStream(stream_id.value());
      server.ReleaseStream(stream_id.value());
      sink += 1;
    });
  }

  state.Check(sink > 0, "framing kernels produced no output");
  std::printf("SETTINGS frame with GEN_ABILITY: %zu B on the wire\n",
              settings_wire.size());
}
SWW_BENCHMARK(http2_framing);

}  // namespace
