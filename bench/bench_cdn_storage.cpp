// cdn_storage — quantifies §2.2's CDN claim: "By moving to storing
// prompts rather than storing content, CDNs can reduce storage
// requirements ... This approach maintains the storage benefits, but loses
// data transmission benefits", plus the embodied-carbon value of the saved
// storage and the energy cost of edge generation.
#include <cstdio>
#include <string>

#include "cdn/simulator.hpp"
#include "energy/carbon.hpp"
#include "obs/bench.hpp"

namespace {

void cdn_storage(sww::obs::bench::State& state) {
  using namespace sww;
  cdn::CatalogOptions catalog_options;
  catalog_options.item_count = 20000;
  const cdn::Catalog catalog = cdn::Catalog::MakeSynthetic(catalog_options);

  std::printf("CDN storage: prompt mode vs content mode (2.2)\n\n");
  std::printf("catalog: %zu items, %.1f MB as content, %.1f MB as prompts"
              " (+unique)\n",
              catalog.size(), catalog.TotalContentBytes() / 1e6,
              catalog.TotalPromptModeBytes() / 1e6);
  const double catalog_ratio = static_cast<double>(catalog.TotalContentBytes()) /
                               catalog.TotalPromptModeBytes();
  std::printf("catalog-level storage ratio: %.1fx\n\n", catalog_ratio);
  state.Modeled("catalog_storage_ratio", catalog_ratio);

  cdn::SimulationOptions options;
  options.edge_count = 4;
  options.request_count = 400000;

  std::printf("%-12s | %12s %12s %8s | %12s %12s | %10s %12s\n", "budget",
              "stored(cont)", "stored(prmt)", "ratio", "origin(cont)",
              "origin(prmt)", "hit(cont)", "hit(prompt)");
  for (std::uint64_t budget_mb : {16, 64, 256, 1024}) {
    options.storage_budget_bytes = budget_mb << 20;
    const cdn::ComparisonResult result = cdn::RunComparison(catalog, options);
    std::printf("%9llu MB | %10.1f MB %10.1f MB %7.1fx | %10.1f MB %10.1f MB |"
                " %9.1f%% %11.1f%%\n",
                static_cast<unsigned long long>(budget_mb),
                result.content_mode.total_stored_bytes / 1e6,
                result.prompt_mode.total_stored_bytes / 1e6,
                result.storage_ratio,
                result.content_mode.total_origin_bytes / 1e6,
                result.prompt_mode.total_origin_bytes / 1e6,
                100.0 * result.content_mode.hit_rate,
                100.0 * result.prompt_mode.hit_rate);
    const std::string prefix = "budget" + std::to_string(budget_mb) + "mb.";
    state.Modeled(prefix + "storage_ratio", result.storage_ratio);
    state.Modeled(prefix + "content_hit_rate", result.content_mode.hit_rate);
    state.Modeled(prefix + "prompt_hit_rate", result.prompt_mode.hit_rate);
  }

  options.storage_budget_bytes = 1024 << 20;
  const cdn::ComparisonResult full = cdn::RunComparison(catalog, options);
  std::printf("\nAt the 1 GB budget (whole working set cached):\n");
  std::printf("  user-facing traffic identical: %.1f MB both modes "
              "(prompt mode 'loses data transmission benefits')\n",
              full.prompt_mode.total_user_bytes / 1e6);
  std::printf("  edge generation (prompt mode): %.0f s, %.1f kWh across "
              "%llu requests\n",
              full.prompt_mode.generation_seconds,
              full.prompt_mode.generation_energy_wh / 1000.0,
              static_cast<unsigned long long>(options.request_count));
  std::printf("  embodied carbon saved by smaller footprint: %.2f kgCO2e "
              "(this catalog)\n",
              full.carbon_saved_kg);
  const double exabyte_saved = energy::CarbonSavedKg(1e6, full.storage_ratio);
  std::printf("  scaled to an exabyte CDN at the same ratio: %.0f kgCO2e\n",
              exabyte_saved);
  state.Modeled("full_budget.generation_seconds",
                full.prompt_mode.generation_seconds);
  state.Modeled("full_budget.generation_energy_wh",
                full.prompt_mode.generation_energy_wh);
  state.Modeled("full_budget.carbon_saved_kg", full.carbon_saved_kg);
  state.Modeled("exabyte_scaled_carbon_saved_kg", exabyte_saved);
  state.Check(full.storage_ratio > 1.0, "prompt mode stores less than content mode");
}
SWW_BENCHMARK(cdn_storage);

}  // namespace
