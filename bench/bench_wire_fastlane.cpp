// wire_fastlane — the PR-5 fast lanes measured side by side with the
// oracles they replaced: perfect-hash static-table lookup vs the linear
// scan, interned dynamic-table lookup vs brute force via At(), and
// arena-based frame serialization vs SerializeFrame's allocate-and-copy.
//
// Identity between fast lane and oracle is a modeled metric (gated
// exactly at 0 mismatches), as is the steady-state allocation count of
// the output arena (gated exactly at 0).  Wall medians carry the
// before/after story.
#include <cstdio>
#include <string>
#include <vector>

#include "hpack/dynamic_table.hpp"
#include "hpack/hpack.hpp"
#include "hpack/static_table.hpp"
#include "http2/connection.hpp"
#include "http2/frame.hpp"
#include "net/pump.hpp"
#include "obs/bench.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace {

using namespace sww;
using util::Bytes;
using util::BytesView;

void wire_fastlane(sww::obs::bench::State& state) {
  std::printf("wire-path fast lanes vs retired oracles\n\n");
  std::size_t sink = 0;

  // --- static table: perfect hash vs linear scan -------------------------
  // Probe set: every RFC entry (hits) plus mutated names/values (misses) —
  // the mix an encoder actually sees.
  std::vector<std::pair<std::string, std::string>> probes;
  for (std::size_t i = 1; i <= hpack::kStaticTableSize; ++i) {
    auto entry = hpack::StaticTableEntry(i);
    probes.emplace_back(std::string(entry.value().name),
                        std::string(entry.value().value));
    probes.emplace_back(std::string(entry.value().name) + "-miss", "v");
  }
  std::size_t lookup_mismatches = 0;
  for (const auto& [name, value] : probes) {
    if (hpack::StaticTableFind(name, value) !=
            hpack::StaticTableFindLinear(name, value) ||
        hpack::StaticTableFindName(name) !=
            hpack::StaticTableFindNameLinear(name)) {
      ++lookup_mismatches;
    }
  }
  state.Modeled("static_lookup_mismatches",
                static_cast<double>(lookup_mismatches));
  state.Time("static_lookup_hash", [&] {
    for (const auto& [name, value] : probes) {
      sink += hpack::StaticTableFind(name, value);
      sink += hpack::StaticTableFindName(name);
    }
  });
  state.Time("static_lookup_linear", [&] {
    for (const auto& [name, value] : probes) {
      sink += hpack::StaticTableFindLinear(name, value);
      sink += hpack::StaticTableFindNameLinear(name);
    }
  });

  // --- dynamic table: interned index on a warm table ----------------------
  hpack::DynamicTable table(16384);
  util::Rng rng(0x53575722u);
  std::vector<std::pair<std::string, std::string>> fields;
  for (int i = 0; i < 64; ++i) {
    fields.emplace_back("x-header-" + std::to_string(i % 24),
                        "value-" + std::to_string(i));
    table.Insert(fields.back().first, fields.back().second);
  }
  state.Modeled("dynamic_table_entries", static_cast<double>(table.entry_count()));
  state.Time("dynamic_lookup_interned", [&] {
    for (const auto& [name, value] : fields) {
      sink += table.Find(name, value);
      sink += table.FindName(name);
    }
  });

  // --- framing: arena scatter-gather vs allocate-and-copy -----------------
  const Bytes payload(1024, 0x42);
  http2::FrameRef ref;
  ref.header.type = http2::FrameType::kData;
  ref.header.stream_id = 1;
  ref.payload = BytesView(payload);
  util::BytesArena arena;
  // Byte identity with the copying serializer, gated exactly.
  {
    http2::Frame frame;
    frame.header = ref.header;
    frame.payload = payload;
    const Bytes expected = http2::SerializeFrame(frame);
    http2::AppendFrame(ref, arena);
    const BytesView got = arena.View();
    const bool identical =
        got.size() == expected.size() &&
        std::equal(got.begin(), got.end(), expected.begin());
    state.Modeled("arena_frame_byte_mismatches", identical ? 0.0 : 1.0);
    state.Modeled("data_frame_1024_wire_bytes", static_cast<double>(got.size()));
    arena.Clear();
  }
  state.Time("frame_serialize_arena", [&] {
    arena.Clear();
    for (int i = 0; i < 16; ++i) http2::AppendFrame(ref, arena);
    sink += arena.size();
  });
  state.Time("frame_serialize_copy", [&] {
    std::size_t bytes = 0;
    for (int i = 0; i < 16; ++i) {
      http2::Frame frame;
      frame.header = ref.header;
      frame.payload = payload;
      bytes += http2::SerializeFrame(frame).size();
    }
    sink += bytes;
  });
  // Steady state: the warmed arena must not allocate again — gated at 0.
  {
    const std::uint64_t warm = arena.allocations();
    for (int i = 0; i < 64; ++i) {
      arena.Clear();
      for (int j = 0; j < 16; ++j) http2::AppendFrame(ref, arena);
    }
    state.Modeled("arena_steady_state_allocations",
                  static_cast<double>(arena.allocations() - warm));
  }

  // --- end to end: a warmed connection pair stops allocating output ------
  {
    http2::Connection::Options options;
    options.local_settings.set_enable_push(false);
    http2::Connection client(http2::Connection::Role::kClient, options);
    http2::Connection server(http2::Connection::Role::kServer, options);
    client.StartHandshake();
    server.StartHandshake();
    net::DirectLinkExchange(client, server);
    const hpack::HeaderList request = {{":method", "GET", false},
                                       {":scheme", "https", false},
                                       {":path", "/fastlane", false},
                                       {":authority", "sww.local", false}};
    const Bytes body(512, 0x51);
    auto round = [&] {
      auto stream_id = client.SubmitRequest(request, {});
      net::DirectLinkExchange(client, server);
      (void)server.SubmitHeaders(stream_id.value(), {{":status", "200", false}},
                                 false);
      (void)server.SubmitData(stream_id.value(), body, true);
      net::DirectLinkExchange(client, server);
      client.ReleaseStream(stream_id.value());
      server.ReleaseStream(stream_id.value());
    };
    for (int i = 0; i < 8; ++i) round();
    const std::uint64_t client_warm = client.output_allocations();
    const std::uint64_t server_warm = server.output_allocations();
    for (int i = 0; i < 32; ++i) round();
    state.Modeled("connection_steady_state_output_allocations",
                  static_cast<double>((client.output_allocations() - client_warm) +
                                      (server.output_allocations() - server_warm)));
    state.Time("request_response_round_trip_arena", [&] {
      round();
      sink += 1;
    });
  }

  state.Check(sink > 0, "fast-lane kernels produced no output");
  state.Check(lookup_mismatches == 0, "perfect hash diverged from linear scan");
  std::printf("probes: %zu static-table lookups, %zu dynamic entries warm\n",
              probes.size(), table.entry_count());
}
SWW_BENCHMARK(wire_fastlane);

}  // namespace
