// wire_fastlane — the PR-5 fast lanes measured side by side with the
// oracles they replaced: perfect-hash static-table lookup vs the linear
// scan, interned dynamic-table lookup vs brute force via At(), and
// arena-based frame serialization vs SerializeFrame's allocate-and-copy.
//
// Identity between fast lane and oracle is a modeled metric (gated
// exactly at 0 mismatches), as is the steady-state allocation count of
// the output arena (gated exactly at 0).  Wall medians carry the
// before/after story.
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "hpack/dynamic_table.hpp"
#include "hpack/hpack.hpp"
#include "hpack/static_table.hpp"
#include "http2/connection.hpp"
#include "http2/frame.hpp"
#include "net/pump.hpp"
#include "net/tcp.hpp"
#include "obs/bench.hpp"
#include "obs/registry.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace {

using namespace sww;
using util::Bytes;
using util::BytesView;

void wire_fastlane(sww::obs::bench::State& state) {
  std::printf("wire-path fast lanes vs retired oracles\n\n");
  std::size_t sink = 0;

  // --- static table: perfect hash vs linear scan -------------------------
  // Probe set: every RFC entry (hits) plus mutated names/values (misses) —
  // the mix an encoder actually sees.
  std::vector<std::pair<std::string, std::string>> probes;
  for (std::size_t i = 1; i <= hpack::kStaticTableSize; ++i) {
    auto entry = hpack::StaticTableEntry(i);
    probes.emplace_back(std::string(entry.value().name),
                        std::string(entry.value().value));
    probes.emplace_back(std::string(entry.value().name) + "-miss", "v");
  }
  std::size_t lookup_mismatches = 0;
  for (const auto& [name, value] : probes) {
    if (hpack::StaticTableFind(name, value) !=
            hpack::StaticTableFindLinear(name, value) ||
        hpack::StaticTableFindName(name) !=
            hpack::StaticTableFindNameLinear(name)) {
      ++lookup_mismatches;
    }
  }
  state.Modeled("static_lookup_mismatches",
                static_cast<double>(lookup_mismatches));
  state.Time("static_lookup_hash", [&] {
    for (const auto& [name, value] : probes) {
      sink += hpack::StaticTableFind(name, value);
      sink += hpack::StaticTableFindName(name);
    }
  });
  state.Time("static_lookup_linear", [&] {
    for (const auto& [name, value] : probes) {
      sink += hpack::StaticTableFindLinear(name, value);
      sink += hpack::StaticTableFindNameLinear(name);
    }
  });

  // --- dynamic table: interned index on a warm table ----------------------
  hpack::DynamicTable table(16384);
  util::Rng rng(0x53575722u);
  std::vector<std::pair<std::string, std::string>> fields;
  for (int i = 0; i < 64; ++i) {
    fields.emplace_back("x-header-" + std::to_string(i % 24),
                        "value-" + std::to_string(i));
    table.Insert(fields.back().first, fields.back().second);
  }
  state.Modeled("dynamic_table_entries", static_cast<double>(table.entry_count()));
  state.Time("dynamic_lookup_interned", [&] {
    for (const auto& [name, value] : fields) {
      sink += table.Find(name, value);
      sink += table.FindName(name);
    }
  });

  // --- framing: arena scatter-gather vs allocate-and-copy -----------------
  const Bytes payload(1024, 0x42);
  http2::FrameRef ref;
  ref.header.type = http2::FrameType::kData;
  ref.header.stream_id = 1;
  ref.payload = BytesView(payload);
  util::BytesArena arena;
  // Byte identity with the copying serializer, gated exactly.
  {
    http2::Frame frame;
    frame.header = ref.header;
    frame.payload = payload;
    const Bytes expected = http2::SerializeFrame(frame);
    http2::AppendFrame(ref, arena);
    const BytesView got = arena.View();
    const bool identical =
        got.size() == expected.size() &&
        std::equal(got.begin(), got.end(), expected.begin());
    state.Modeled("arena_frame_byte_mismatches", identical ? 0.0 : 1.0);
    state.Modeled("data_frame_1024_wire_bytes", static_cast<double>(got.size()));
    arena.Clear();
  }
  state.Time("frame_serialize_arena", [&] {
    arena.Clear();
    for (int i = 0; i < 16; ++i) http2::AppendFrame(ref, arena);
    sink += arena.size();
  });
  state.Time("frame_serialize_copy", [&] {
    std::size_t bytes = 0;
    for (int i = 0; i < 16; ++i) {
      http2::Frame frame;
      frame.header = ref.header;
      frame.payload = payload;
      bytes += http2::SerializeFrame(frame).size();
    }
    sink += bytes;
  });
  // Steady state: the warmed arena must not allocate again — gated at 0.
  {
    const std::uint64_t warm = arena.allocations();
    for (int i = 0; i < 64; ++i) {
      arena.Clear();
      for (int j = 0; j < 16; ++j) http2::AppendFrame(ref, arena);
    }
    state.Modeled("arena_steady_state_allocations",
                  static_cast<double>(arena.allocations() - warm));
  }

  // --- end to end: a warmed connection pair stops allocating output ------
  {
    http2::Connection::Options options;
    options.local_settings.set_enable_push(false);
    http2::Connection client(http2::Connection::Role::kClient, options);
    http2::Connection server(http2::Connection::Role::kServer, options);
    client.StartHandshake();
    server.StartHandshake();
    net::DirectLinkExchange(client, server);
    const hpack::HeaderList request = {{":method", "GET", false},
                                       {":scheme", "https", false},
                                       {":path", "/fastlane", false},
                                       {":authority", "sww.local", false}};
    const Bytes body(512, 0x51);
    auto round = [&] {
      auto stream_id = client.SubmitRequest(request, {});
      net::DirectLinkExchange(client, server);
      (void)server.SubmitHeaders(stream_id.value(), {{":status", "200", false}},
                                 false);
      (void)server.SubmitData(stream_id.value(), body, true);
      net::DirectLinkExchange(client, server);
      client.ReleaseStream(stream_id.value());
      server.ReleaseStream(stream_id.value());
    };
    for (int i = 0; i < 8; ++i) round();
    const std::uint64_t client_warm = client.output_allocations();
    const std::uint64_t server_warm = server.output_allocations();
    for (int i = 0; i < 32; ++i) round();
    state.Modeled("connection_steady_state_output_allocations",
                  static_cast<double>((client.output_allocations() - client_warm) +
                                      (server.output_allocations() - server_warm)));
    state.Time("request_response_round_trip_arena", [&] {
      round();
      sink += 1;
    });

    // --- telemetry plane: always-on instrumentation stays under 5% --------
    // Per-event costs are measured directly; events per round come from
    // registry deltas over a steady-state window of the deterministic
    // arena round above (the densest instrumentation the wire path has).
    // The product bounds the nanoseconds a round spends in telemetry; the
    // gate holds that bound under 5% of a request that crosses a real
    // loopback TCP socket — the cheapest request the kernel's wire can
    // carry.  The arena link is a zero-syscall transport built to expose
    // allocator regressions, not a request anyone serves; its telemetry
    // share is reported as Info so the microbench-scale cost stays
    // visible, but the contract that lets the instruments stay on
    // unconditionally is the real-wire one.
    {
      obs::Registry& registry = obs::Registry::Default();
      obs::Histogram& probe_hist =
          registry.GetHistogram("bench.telemetry_probe");
      obs::Counter& probe_counter =
          registry.GetCounter("bench.telemetry_probe");
      constexpr int kOps = 1024;
      state.Time("telemetry_histogram_observe_x1024", [&] {
        for (int i = 0; i < kOps; ++i) {
          probe_hist.Observe(1e-3 + static_cast<double>(i) * 1e-6);
        }
        sink += 1;
      });
      state.Time("telemetry_counter_add_x1024", [&] {
        for (int i = 0; i < kOps; ++i) probe_counter.Add();
        sink += 1;
      });
      const double observe_ns =
          state.result().wall.at("telemetry_histogram_observe_x1024").median_ns /
          kOps;
      const double add_ns =
          state.result().wall.at("telemetry_counter_add_x1024").median_ns / kOps;

      // A fresh connection pair pins the measurement window to a
      // deterministic flow-control phase.  The shared pair above has run
      // an adaptive (run-to-run varying) number of timed rounds, and the
      // connection-level WINDOW_UPDATE cycle repeats every 64 rounds
      // (32768-byte threshold / 512-byte body) — a fixed window over it
      // would sometimes straddle one extra frame flush and the modeled
      // events-per-round would wobble between runs.
      http2::Connection ev_client(http2::Connection::Role::kClient, options);
      http2::Connection ev_server(http2::Connection::Role::kServer, options);
      ev_client.StartHandshake();
      ev_server.StartHandshake();
      net::DirectLinkExchange(ev_client, ev_server);
      auto ev_round = [&] {
        auto stream_id = ev_client.SubmitRequest(request, {});
        net::DirectLinkExchange(ev_client, ev_server);
        (void)ev_server.SubmitHeaders(stream_id.value(),
                                      {{":status", "200", false}}, false);
        (void)ev_server.SubmitData(stream_id.value(), body, true);
        net::DirectLinkExchange(ev_client, ev_server);
        ev_client.ReleaseStream(stream_id.value());
        ev_server.ReleaseStream(stream_id.value());
      };
      constexpr int kRounds = 8;
      for (int i = 0; i < kRounds; ++i) ev_round();  // settle into steady state
      const obs::RegistrySnapshot before = registry.Snapshot();
      for (int i = 0; i < kRounds; ++i) ev_round();
      const obs::RegistrySnapshot after = registry.Snapshot();
      const auto counter_delta = [&](const std::string& name) -> std::uint64_t {
        const auto now = after.counters.find(name);
        if (now == after.counters.end()) return 0;
        const auto was = before.counters.find(name);
        return now->second - (was == before.counters.end() ? 0 : was->second);
      };
      const auto histogram_count_delta =
          [&](const std::string& name) -> std::uint64_t {
        const auto now = after.histograms.find(name);
        if (now == after.histograms.end()) return 0;
        const auto was = before.histograms.find(name);
        return now->second.count -
               (was == before.histograms.end() ? 0 : was->second.count);
      };
      // Byte-valued counters cost one Add(n) per *call*, and each call on
      // this path rides another instrument 1:1: bytes_sent is added per
      // frame enqueued, while bytes_received and bytes_pumped are added
      // once per link flush (one Receive / one write_bytes observation).
      // Summing their value deltas would count every wire byte as an
      // event — 512 bytes of body would masquerade as 512 counter ops.
      const std::uint64_t flushes = histogram_count_delta("net.pump.write_bytes");
      const std::map<std::string, std::uint64_t> byte_counter_calls = {
          {"http2.bytes_sent", counter_delta("http2.frames_sent")},
          {"http2.bytes_received", flushes},
          {"net.pump.bytes_pumped", flushes},
      };
      std::uint64_t counter_events = 0;
      std::uint64_t histogram_events = 0;
      for (const auto& [name, value] : after.counters) {
        if (name == "bench.telemetry_probe") continue;  // adaptive, not per-round
        const auto paired = byte_counter_calls.find(name);
        counter_events += paired != byte_counter_calls.end()
                              ? paired->second
                              : counter_delta(name);
      }
      for (const auto& [name, hist] : after.histograms) {
        if (name == "bench.telemetry_probe") continue;
        histogram_events += histogram_count_delta(name);
      }
      const double counters_per_round =
          static_cast<double>(counter_events) / kRounds;
      const double histograms_per_round =
          static_cast<double>(histogram_events) / kRounds;
      state.Modeled("telemetry_counter_events_per_round", counters_per_round);
      state.Modeled("telemetry_histogram_events_per_round",
                    histograms_per_round);
      const double arena_round_ns =
          state.result().wall.at("request_response_round_trip_arena").median_ns;
      const double telemetry_ns =
          counters_per_round * add_ns + histograms_per_round * observe_ns;
      state.Info("telemetry_ns_per_round", telemetry_ns);
      state.Info("telemetry_share_of_arena_round",
                 arena_round_ns > 0.0 ? telemetry_ns / arena_round_ns : 0.0);

      // The denominator: the same request/response round across a real
      // kernel socket pair on loopback.
      bool tcp_ok = true;
      auto listener = net::TcpListener::Bind(0);
      state.Check(listener.ok(), "tcp loopback bind failed");
      if (listener.ok()) {
        auto client_transport = net::TcpConnect(listener.value()->port());
        auto server_transport = listener.value()->Accept(5000);
        state.Check(client_transport.ok() && server_transport.ok(),
                    "tcp loopback connect/accept failed");
        if (client_transport.ok() && server_transport.ok()) {
          http2::Connection tcp_client(http2::Connection::Role::kClient,
                                       options);
          http2::Connection tcp_server(http2::Connection::Role::kServer,
                                       options);
          tcp_client.StartHandshake();
          tcp_server.StartHandshake();
          auto pump_both = [&]() -> bool {  // true while progress was made
            auto c = net::PumpOnce(tcp_client, *client_transport.value());
            auto s = net::PumpOnce(tcp_server, *server_transport.value());
            if (!c.ok() || !s.ok()) {
              tcp_ok = false;
              return false;
            }
            return c.value().made_progress || s.value().made_progress;
          };
          for (int quiet = 0; quiet < 3 && tcp_ok;) {
            quiet = pump_both() ? 0 : quiet + 1;
          }
          (void)tcp_client.TakeEvents();
          (void)tcp_server.TakeEvents();
          auto tcp_round = [&] {
            auto stream_id = tcp_client.SubmitRequest(request, {});
            if (!stream_id.ok()) {
              tcp_ok = false;
              return;
            }
            // Busy-poll both endpoints: loopback delivery is fast and a
            // sleep would dwarf the quantity under measurement.
            for (int spin = 0; spin < 1000000 && tcp_ok; ++spin) {
              (void)pump_both();
              for (const auto& event : tcp_server.TakeEvents()) {
                if (event.type ==
                    http2::Connection::Event::Type::kMessageComplete) {
                  (void)tcp_server.SubmitHeaders(
                      event.stream_id, {{":status", "200", false}}, false);
                  (void)tcp_server.SubmitData(event.stream_id, body, true);
                  tcp_server.ReleaseStream(event.stream_id);
                }
              }
              for (const auto& event : tcp_client.TakeEvents()) {
                if (event.type ==
                    http2::Connection::Event::Type::kMessageComplete) {
                  tcp_client.ReleaseStream(event.stream_id);
                  return;
                }
              }
            }
            tcp_ok = false;  // response never completed
          };
          tcp_round();  // prove the path end to end before timing it
          state.Check(tcp_ok, "tcp loopback round trip did not complete");
          if (tcp_ok) {
            state.Time("request_response_round_trip_tcp", [&] {
              tcp_round();
              sink += 1;
            });
            const double tcp_round_ns =
                state.result()
                    .wall.at("request_response_round_trip_tcp")
                    .median_ns;
            const double fraction =
                tcp_round_ns > 0.0 ? telemetry_ns / tcp_round_ns : 1.0;
            state.Info("telemetry_overhead_fraction", fraction);
            state.Check(
                fraction < 0.05,
                "always-on telemetry exceeds 5% of a TCP request round trip");
          }
          client_transport.value()->Close();
          server_transport.value()->Close();
        }
      }
    }
  }

  state.Check(sink > 0, "fast-lane kernels produced no output");
  state.Check(lookup_mismatches == 0, "perfect hash diverged from linear scan");
  std::printf("probes: %zu static-table lookups, %zu dynamic entries warm\n",
              probes.size(), table.entry_count());
}
SWW_BENCHMARK(wire_fastlane);

}  // namespace
