// table1_models — regenerates Table 1 of the paper:
//   "ELO & CLIP scores, with time per step on a laptop and a workstation
//    using 15 inference steps."
// plus the preloaded-pipeline ablation called out in DESIGN.md §6.2.
#include <cstdio>
#include <string>

#include "core/page_builder.hpp"
#include "energy/device.hpp"
#include "genai/diffusion.hpp"
#include "genai/pipeline.hpp"
#include "metrics/clip.hpp"
#include "metrics/elo.hpp"
#include "obs/bench.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace {

void table1_models(sww::obs::bench::State& state) {
  using namespace sww;

  // Deterministic span durations under simulated time (generation advances
  // the manual clock, not wall time).
  static obs::ManualClock manual_clock;
  obs::Tracer::Default().SetClock(&manual_clock);
  obs::Tracer::Default().SetEnabled(true);

  // 1. ELO: a Bradley-Terry arena with the paper's published ratings as
  //    latent strengths, estimated online by the Elo algorithm.
  metrics::EloArena arena(/*seed=*/7, /*k_factor=*/8.0);
  for (const genai::ImageModelSpec& spec : genai::ImageModels()) {
    arena.AddPlayer(spec.name, spec.elo_quality);
  }
  arena.RunRoundRobin(2000);
  arena.AnchorToLatentMean();

  // 2. CLIP at the paper's operating point: 224×224, 15 inference steps.
  auto clip_for = [](const genai::ImageModelSpec& spec) {
    obs::ScopedSpan span("bench.clip_model", "bench");
    span.AddAttribute("model", spec.name);
    genai::DiffusionModel model(spec);
    double sum = 0.0;
    const int n = 12;
    for (int i = 0; i < n; ++i) {
      const std::string prompt = core::MakeLandscapePrompt(300 + i);
      sum += metrics::ClipScore(
          prompt, model.Generate(prompt, 224, 224, 15, 60 + i).value().image);
      // Simulated cost of one 224x224, 15-step generation on a workstation.
      obs::Tracer::Default().clock().AdvanceSimulated(
          energy::ImageGenerationSeconds(energy::Workstation(), spec, 15, 224,
                                         224));
    }
    span.AddAttribute("images", std::to_string(n));
    return sum / n;
  };

  std::printf("Table 1: ELO & CLIP scores, time per step (15 steps, 224x224)\n\n");
  std::printf("%-12s %8s %8s %8s %8s   %14s %14s\n", "Model", "ELO", "ELO",
              "CLIP", "CLIP", "Laptop", "Workstation");
  std::printf("%-12s %8s %8s %8s %8s   %14s %14s\n", "", "(paper)", "(est)",
              "(paper)", "(meas)", "time/step [s]", "time/step [s]");

  struct PaperRow {
    std::string_view model;
    double elo, clip;
  };
  const PaperRow paper_rows[] = {
      {genai::kSd21, 688, 0.19},
      {genai::kSd3Medium, 895, 0.27},
      {genai::kSd35Medium, 927, 0.27},
      {genai::kDalle3, 923, 0.32},
  };
  for (const PaperRow& row : paper_rows) {
    const auto spec = genai::FindImageModel(row.model).value();
    const metrics::ArenaPlayer* player = arena.Find(spec.name);
    const double clip = clip_for(spec);
    const std::string prefix = std::string(row.model) + ".";
    state.Modeled(prefix + "elo_estimated", player->rating);
    state.Modeled(prefix + "clip", clip);
    if (spec.server_only) {
      std::printf("%-12s %8.0f %8.0f %8.2f %8.2f   %14s %14s\n",
                  spec.display_name.c_str(), row.elo, player->rating, row.clip,
                  clip, "-", "-");
    } else {
      const double laptop_step = energy::TimePerStep224(energy::Laptop(), spec);
      const double ws_step =
          energy::TimePerStep224(energy::Workstation(), spec);
      std::printf("%-12s %8.0f %8.0f %8.2f %8.2f   %14.2f %14.2f\n",
                  spec.display_name.c_str(), row.elo, player->rating, row.clip,
                  clip, laptop_step, ws_step);
      state.Modeled(prefix + "laptop_step_seconds", laptop_step);
      state.Modeled(prefix + "workstation_step_seconds", ws_step);
    }
  }
  // Baselines the paper quotes around the table.
  double random_clip = 0.0;
  for (int i = 0; i < 12; ++i) {
    random_clip += metrics::ClipScore(
        core::MakeLandscapePrompt(300 + i),
        genai::DiffusionModel::RandomImage(224, 224, 70 + i));
  }
  std::printf("\nrandom image CLIP (paper 0.09): %.2f\n", random_clip / 12);
  std::printf("arena leader GPT-4o ELO (paper 1166): %.0f\n",
              arena.Find("gpt-4o")->rating);
  state.Modeled("random_clip", random_clip / 12);
  state.Modeled("gpt4o_elo_estimated", arena.Find("gpt-4o")->rating);

  // 3. Ablation: preloaded pipeline vs reload-per-invocation (§4.1's
  //    stated performance optimization).
  std::printf("\n--- Ablation: preloaded pipeline vs reload per image ---\n");
  const auto sd3 = genai::FindImageModel(genai::kSd3Medium).value();
  const double load_s = genai::PipelineLoadSeconds(sd3);
  const double gen_s =
      energy::ImageGenerationSeconds(energy::Workstation(), sd3, 15, 224, 224);
  const int items = 49;
  const double preloaded_s = load_s + items * gen_s;
  const double reload_s = items * (load_s + gen_s);
  std::printf("49 images, workstation: preloaded %.1f s total; "
              "reload-per-image %.1f s total (%.1fx slower)\n",
              preloaded_s, reload_s, reload_s / preloaded_s);
  state.Modeled("pipeline.preloaded_seconds", preloaded_s);
  state.Modeled("pipeline.reload_seconds", reload_s);
}
SWW_BENCHMARK(table1_models);

}  // namespace
