// c10k — the epoll reactor transport under thousands of live sockets.
//
// Boots a sharded ReactorHost on loopback, opens and *holds* 5,000 real
// TCP connections against it, then drives a request burst through a
// persistent HTTP/2 session while the full connection herd sits in the
// epoll interest set.  Connection counts and error counts are modeled
// (exact-gated); round-trip latency is wall-clock and lands as Info with
// a generous structural Check on the p99 so a reactor regression that
// turns O(1) readiness into O(n) scanning fails the run.  The
// scatter-gather output path is gated separately: after warm-up, a
// stall/drain cycle through the WriteQueue must not allocate.
#include <sys/resource.h>
#include <sys/uio.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/page_builder.hpp"
#include "core/reactor_host.hpp"
#include "core/session.hpp"
#include "http2/connection.hpp"
#include "net/tcp.hpp"
#include "net/write_queue.hpp"
#include "obs/bench.hpp"

namespace {

constexpr int kConnections = 5000;
constexpr int kBurstRequests = 100;

/// Raise the fd soft limit toward the hard limit; the herd plus the
/// server side needs a bit over 2 * kConnections descriptors.
bool RaiseFdLimit(rlim_t want) {
  struct rlimit limit;
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return false;
  if (limit.rlim_cur >= want) return true;
  limit.rlim_cur = std::min(want, limit.rlim_max);
  return ::setrlimit(RLIMIT_NOFILE, &limit) == 0 && limit.rlim_cur >= want;
}

void c10k(sww::obs::bench::State& state) {
  using namespace sww;
  using Clock = std::chrono::steady_clock;

  std::printf("epoll reactor transport, %d held connections\n\n", kConnections);

  if (!RaiseFdLimit(static_cast<rlim_t>(2 * kConnections + 512))) {
    // Not enough descriptors on this machine: report the constraint
    // instead of producing a partial herd that would trip exact gates.
    state.Check(false, "RLIMIT_NOFILE too low for the c10k herd");
    return;
  }

  core::ContentStore store;
  state.Check(store.AddPage("/", core::MakeGoldfishPage()).ok(),
              "goldfish page must install");

  core::ReactorHost::Options options;
  options.server.shards = 2;
  options.server.idle_timeout_ms = 0;          // the herd idles on purpose
  options.server.settings_ack_timeout_ms = 0;  // raw sockets never handshake
  auto host = core::ReactorHost::Start(&store, std::move(options));
  state.Check(host.ok(), "reactor host must start");
  if (!host.ok()) return;
  const std::uint16_t port = host.value()->port();

  // --- hold the herd ----------------------------------------------------
  std::vector<std::unique_ptr<net::Transport>> herd;
  herd.reserve(kConnections);
  int connect_errors = 0;
  for (int i = 0; i < kConnections; ++i) {
    auto transport = net::TcpConnect(port);
    if (!transport.ok()) {
      ++connect_errors;
      continue;
    }
    herd.push_back(std::move(transport).value());
  }
  // Wait until every held socket has been accepted into a shard's epoll
  // interest set, so the burst below runs against the full ready-set.
  const auto accept_deadline = Clock::now() + std::chrono::seconds(30);
  while (host.value()->server().total_accepted() <
             static_cast<std::uint64_t>(herd.size()) &&
         Clock::now() < accept_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::uint64_t accepted = host.value()->server().total_accepted();

  state.Modeled("connections_target", static_cast<double>(kConnections));
  state.Modeled("connections_held", static_cast<double>(herd.size()));
  state.Modeled("connect_errors", static_cast<double>(connect_errors));
  state.Check(accepted >= static_cast<std::uint64_t>(herd.size()),
              "every held connection must be accepted");

  // Shard balance: SO_REUSEPORT hashes the 4-tuple, so neither shard
  // should starve.  Structural bound only — the kernel's split varies.
  const auto shard_stats = host.value()->server().ShardStatsSnapshot();
  for (std::size_t i = 0; i < shard_stats.size(); ++i) {
    state.Info("shard" + std::to_string(i) + "_accepted",
               static_cast<double>(shard_stats[i].accepted));
  }

  // --- burst through a live session -------------------------------------
  auto session = core::LoopbackSession::Connect(port);
  state.Check(session.ok(), "burst session must connect");
  int burst_errors = 0;
  std::vector<double> latencies_s;
  latencies_s.reserve(kBurstRequests);
  if (session.ok()) {
    for (int i = 0; i < kBurstRequests; ++i) {
      const auto start = Clock::now();
      auto response = session.value()->FetchRaw("/");
      const std::chrono::duration<double> elapsed = Clock::now() - start;
      if (!response.ok()) {
        ++burst_errors;
        continue;
      }
      latencies_s.push_back(elapsed.count());
    }
    session.value()->Close();
  }
  state.Modeled("burst_requests", static_cast<double>(kBurstRequests));
  state.Modeled("burst_errors", static_cast<double>(burst_errors));

  double p50 = 0.0;
  double p99 = 0.0;
  if (!latencies_s.empty()) {
    std::sort(latencies_s.begin(), latencies_s.end());
    p50 = latencies_s[latencies_s.size() / 2];
    p99 = latencies_s[(latencies_s.size() * 99) / 100];
  }
  state.Info("round_trip_p50_seconds", p50);
  state.Info("round_trip_p99_seconds", p99);
  // Generous wall-clock bound: a loopback round-trip while 5,000 idle
  // sockets sit in the interest set stays in the low milliseconds on an
  // edge-triggered reactor; 250 ms catches O(n) per-event scans without
  // flaking on a loaded CI runner.
  state.Check(p99 > 0.0 && p99 < 0.25,
              "burst p99 must stay bounded with the herd held");

  // --- steady-state output path: zero allocations -----------------------
  http2::Connection writer_side(http2::Connection::Role::kClient,
                                http2::Connection::Options{});
  writer_side.StartHandshake();
  bool allow = false;
  net::WriteQueue::Options queue_options;
  queue_options.writev_fn = [&](int, const struct iovec* iov, int n) -> long {
    if (!allow) {
      errno = EAGAIN;
      return -1;
    }
    long taken = 0;
    for (int i = 0; i < n; ++i) taken += static_cast<long>(iov[i].iov_len);
    return taken;
  };
  net::WriteQueue queue(std::move(queue_options));
  auto stall_then_drain = [&] {
    writer_side.SendPing(42);
    allow = false;
    (void)queue.Flush(-1, writer_side);
    allow = true;
    (void)queue.Flush(-1, writer_side);
  };
  for (int i = 0; i < 8; ++i) stall_then_drain();  // warm the stage
  const std::uint64_t warm_allocations = queue.allocations();
  for (int i = 0; i < 256; ++i) stall_then_drain();
  state.Modeled("steady_state_output_allocations",
                static_cast<double>(queue.allocations() - warm_allocations));

  const std::size_t held = herd.size();
  herd.clear();
  host.value()->Shutdown();

  std::printf("held %zu/%d connections across %zu shards; "
              "burst p50 %.4f ms, p99 %.4f ms\n",
              held, kConnections, shard_stats.size(), p50 * 1e3, p99 * 1e3);
}
SWW_BENCHMARK(c10k);

}  // namespace
