// bench_fig1_html — regenerates Figure 1 of the paper: the HTML div before
// processing (carrying the prompt for a cartoon goldfish image) and after
// processing (carrying the pointer to the generated file).
#include <cstdio>

#include "core/media_generator.hpp"
#include "core/page_builder.hpp"
#include "energy/device.hpp"
#include "html/generated_content.hpp"
#include "html/parser.hpp"

int main() {
  using namespace sww;
  std::printf("=== Figure 1: HTML div before/after content generation ===\n\n");

  auto doc = html::ParseDocument(core::MakeGoldfishPage()).value();
  auto extraction = html::ExtractGeneratedContent(*doc);
  if (extraction.specs.size() != 1) {
    std::fprintf(stderr, "unexpected page shape\n");
    return 1;
  }
  std::printf("Before (top of Figure 1):\n  %s\n\n",
              extraction.specs[0].node->Serialize().c_str());
  std::printf("  metadata bytes: %zu\n\n", extraction.specs[0].MetadataBytes());

  auto generator = core::MediaGenerator::Create(energy::Laptop(), {});
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.error().ToString().c_str());
    return 1;
  }
  auto media = generator.value().GenerateAndReplace(extraction.specs[0]);
  if (!media.ok()) {
    std::fprintf(stderr, "%s\n", media.error().ToString().c_str());
    return 1;
  }
  std::printf("After (bottom of Figure 1):\n  %s\n\n",
              extraction.specs[0].node->Serialize().c_str());
  std::printf("  generated file: %s (%zu bytes PPM, %dx%d)\n",
              media.value().file_path.c_str(), media.value().file_bytes.size(),
              media.value().width, media.value().height);
  std::printf("  simulated laptop generation: %.1f s, %.3f Wh\n",
              media.value().seconds, media.value().energy_wh);
  return 0;
}
