// fig1_html — regenerates Figure 1 of the paper: the HTML div before
// processing (carrying the prompt for a cartoon goldfish image) and after
// processing (carrying the pointer to the generated file).
#include <cstdio>

#include "core/media_generator.hpp"
#include "core/page_builder.hpp"
#include "energy/device.hpp"
#include "html/generated_content.hpp"
#include "html/parser.hpp"
#include "obs/bench.hpp"

namespace {

void fig1_html(sww::obs::bench::State& state) {
  using namespace sww;
  std::printf("Figure 1: HTML div before/after content generation\n\n");

  auto doc = html::ParseDocument(core::MakeGoldfishPage()).value();
  auto extraction = html::ExtractGeneratedContent(*doc);
  state.Check(extraction.specs.size() == 1, "goldfish page has one asset");
  if (extraction.specs.size() != 1) return;
  std::printf("Before (top of Figure 1):\n  %s\n\n",
              extraction.specs[0].node->Serialize().c_str());
  const std::size_t metadata_bytes = extraction.specs[0].MetadataBytes();
  std::printf("  metadata bytes: %zu\n\n", metadata_bytes);

  auto generator = core::MediaGenerator::Create(energy::Laptop(), {});
  state.Check(generator.ok(), "media generator creation");
  if (!generator.ok()) return;
  auto media = generator.value().GenerateAndReplace(extraction.specs[0]);
  state.Check(media.ok(), "goldfish generation");
  if (!media.ok()) return;
  std::printf("After (bottom of Figure 1):\n  %s\n\n",
              extraction.specs[0].node->Serialize().c_str());
  std::printf("  generated file: %s (%zu bytes PPM, %dx%d)\n",
              media.value().file_path.c_str(), media.value().file_bytes.size(),
              media.value().width, media.value().height);
  std::printf("  simulated laptop generation: %.1f s, %.3f Wh\n",
              media.value().seconds, media.value().energy_wh);

  state.Modeled("metadata_bytes", static_cast<double>(metadata_bytes));
  state.Modeled("generated_ppm_bytes",
                static_cast<double>(media.value().file_bytes.size()));
  state.Modeled("laptop_generation_seconds", media.value().seconds);
  state.Modeled("laptop_generation_wh", media.value().energy_wh);
}
SWW_BENCHMARK(fig1_html);

}  // namespace
