// ablations — quantifies the design choices DESIGN.md §6 calls out
// beyond the paper's own tables: delivery-mode wire costs, the swz content
// coding stacked on prompt delivery, the client prompt cache across
// revisits, and reliability overhead on a lossy (HTTP/3-style) substrate.
#include <cstdio>
#include <string>

#include "compress/swz.hpp"
#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "net/reliable_link.hpp"
#include "obs/bench.hpp"

namespace {

using namespace sww;

core::ContentStore MakeStore() {
  core::ContentStore store;
  (void)store.AddPage("/landscape", core::MakeLandscapeSearchPage(49).html);
  (void)store.AddPage("/", core::MakeGoldfishPage());
  return store;
}

void ablations(sww::obs::bench::State& state) {
  core::ContentStore store = MakeStore();

  // --- delivery modes, one goldfish page -----------------------------------
  std::printf("Ablation 1: delivery mode wire cost (512x512 image page)\n");
  std::printf("%-18s %10s %12s %14s %14s\n", "mode", "page[B]", "assets[B]",
              "client cost[s]", "server cost[s]");
  struct ModeCase {
    const char* label;
    const char* key;
    std::uint32_t client_ability;
  };
  for (const ModeCase& mode :
       {ModeCase{"generative", "generative", http2::kGenAbilityFull},
        ModeCase{"upscale-assist", "upscale", http2::kGenAbilityUpscaleOnly},
        ModeCase{"traditional", "traditional", http2::kGenAbilityNone}}) {
    core::LocalSession::Options options;
    options.client.advertised_ability = mode.client_ability;
    options.server.advertised_ability =
        http2::kGenAbilityFull | http2::kGenAbilityUpscaleOnly;
    auto session = core::LocalSession::Start(&store, options);
    auto fetch = session.value()->FetchPage("/");
    state.Check(fetch.ok(), std::string("delivery-mode fetch: ") + mode.label);
    if (!fetch.ok()) return;
    std::printf("%-18s %10llu %12llu %14.1f %14.1f\n", mode.label,
                static_cast<unsigned long long>(fetch.value().page_bytes),
                static_cast<unsigned long long>(fetch.value().asset_bytes),
                fetch.value().generation_seconds + fetch.value().upscale_seconds,
                session.value()->server().stats().generation_seconds);
    const std::string prefix = std::string("mode.") + mode.key + ".";
    state.Modeled(prefix + "page_bytes",
                  static_cast<double>(fetch.value().page_bytes));
    state.Modeled(prefix + "asset_bytes",
                  static_cast<double>(fetch.value().asset_bytes));
    state.Modeled(prefix + "client_seconds",
                  fetch.value().generation_seconds +
                      fetch.value().upscale_seconds);
  }

  // --- content coding stacked on prompts ------------------------------------
  std::printf("\nAblation 2: swz content coding on the Figure 2 page\n");
  const std::string page = core::MakeLandscapeSearchPage(49).html;
  const util::Bytes raw = util::ToBytes(page);
  const util::Bytes coded = compress::SwzCompress(raw);
  std::printf("prompt page: %zu B raw, %zu B swz-coded (%.1fx) — coding "
              "stacks on the prompt substitution itself\n",
              raw.size(), coded.size(),
              static_cast<double>(raw.size()) / coded.size());
  state.Modeled("swz.raw_bytes", static_cast<double>(raw.size()));
  state.Modeled("swz.coded_bytes", static_cast<double>(coded.size()));
  for (const char* label : {"no coding", "swz coding"}) {
    core::LocalSession::Options options;
    options.client.generator.inference_steps = 3;
    options.client.accept_compression = (std::string(label) == "swz coding");
    auto session = core::LocalSession::Start(&store, options);
    auto fetch = session.value()->FetchPage("/landscape");
    std::printf("  %-10s page bytes on the wire: %llu\n", label,
                static_cast<unsigned long long>(fetch.value().page_bytes));
    state.Modeled(options.client.accept_compression ? "swz.wire_bytes_coded"
                                                    : "swz.wire_bytes_raw",
                  static_cast<double>(fetch.value().page_bytes));
  }

  // --- prompt cache across revisits ------------------------------------------
  std::printf("\nAblation 3: client prompt cache over 5 visits\n");
  for (bool cached : {false, true}) {
    core::LocalSession::Options options;
    options.client.generator.inference_steps = 3;
    options.client.enable_prompt_cache = cached;
    auto session = core::LocalSession::Start(&store, options);
    std::uint64_t wire = 0;
    double generation = 0;
    for (int visit = 0; visit < 5; ++visit) {
      auto fetch = session.value()->FetchPage("/landscape");
      wire += fetch.value().page_bytes;
      generation += fetch.value().generation_seconds;
    }
    std::printf("  cache %-3s: %6llu wire bytes, %llu server requests, "
                "%.0f s simulated generation (compute is paid per visit)\n",
                cached ? "on" : "off", static_cast<unsigned long long>(wire),
                static_cast<unsigned long long>(
                    session.value()->server().stats().requests),
                generation);
    const std::string prefix =
        cached ? "prompt_cache.on." : "prompt_cache.off.";
    state.Modeled(prefix + "wire_bytes", static_cast<double>(wire));
    state.Modeled(prefix + "generation_seconds", generation);
  }

  // --- reliability overhead on a lossy substrate ------------------------------
  std::printf("\nAblation 4: reliable link overhead vs datagram loss\n");
  std::printf("%-10s %12s %16s %12s\n", "loss", "segments", "retransmissions",
              "overhead");
  for (double loss : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    net::LossyChannel::Profile profile;
    profile.loss_rate = loss;
    profile.reorder_rate = 0.1;
    profile.seed = 77;
    net::ReliablePair pair = net::MakeReliablePair(profile);
    util::Bytes payload(100000, 0x5a);
    (void)pair.first->Write(payload);
    util::Bytes received;
    for (int tick = 0; tick < 20000 && received.size() < payload.size();
         ++tick) {
      pair.first->Tick();
      pair.second->Tick();
      auto chunk = pair.second->Read();
      if (chunk.ok()) {
        received.insert(received.end(), chunk.value().begin(),
                        chunk.value().end());
      }
    }
    const auto& stats = pair.first->stats();
    std::printf("%9.0f%% %12llu %16llu %11.1f%%\n", loss * 100,
                static_cast<unsigned long long>(stats.segments_sent),
                static_cast<unsigned long long>(stats.retransmissions),
                100.0 * stats.retransmissions /
                    std::max<std::uint64_t>(1, stats.segments_sent));
    const std::string prefix =
        "loss" + std::to_string(static_cast<int>(loss * 100)) + "pct.";
    state.Modeled(prefix + "segments",
                  static_cast<double>(stats.segments_sent));
    state.Modeled(prefix + "retransmissions",
                  static_cast<double>(stats.retransmissions));
  }
  std::printf("\n(4: the SETTINGS-based negotiation is payload to the "
              "reliability layer —\nexactly why the paper expects it to "
              "carry over to HTTP/3 unchanged.)\n");
}
SWW_BENCHMARK(ablations);

}  // namespace
