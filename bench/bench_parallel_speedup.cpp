// parallel_speedup — the machine-readable perf baseline for the parallel
// generation engine.  Sweeps pool sizes 1→8 over one six-asset generative
// page and checks byte-identity of the rendered output at every thread
// count.  Results land in the shared BENCH_sww.json trajectory (schema
// sww-bench/1) instead of the old ad-hoc BENCH_parallel.json.
//
// Two time axes, deliberately separated:
//   * modeled wall seconds — the makespan of the batch schedule over the
//     generator's device lanes (GeneratedBatch::wall_seconds): each asset's
//     simulated device-seconds placed greedily on the least-loaded lane.
//     Deterministic on any machine, so it lands in the gated "modeled"
//     section: six equal assets over four lanes pack 2+2+1+1, a 3.0x
//     speedup over one lane.
//   * real wall seconds — steady_clock around the fetch, reported as
//     ungated info (tile-parallel kernels + per-asset fan-out).  CI
//     machines vary, single-core runners cannot speed up at all.
//
// The Check() calls are the acceptance criteria: the benchmark fails when
// output bytes diverge across thread counts or the modeled speedup at
// 4 threads drops below 2x.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "json/json.hpp"
#include "obs/bench.hpp"
#include "obs/registry.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace {

// Six equal-sized image assets: equal device cost per asset makes the
// modeled schedule easy to reason about (4 lanes → 2+2+1+1 → 3.0x).
std::string MakeSixAssetPage() {
  static const char* kPrompts[6] = {
      "a goldfish in a sunlit bowl",      "a red lighthouse on a cliff",
      "a pine forest after fresh snow",   "a terracotta rooftop at dusk",
      "a sailboat crossing a calm bay",   "a stone bridge over a stream",
  };
  std::string html = "<html><head><title>parallel bench</title></head><body>";
  for (int i = 0; i < 6; ++i) {
    sww::json::Value meta{sww::json::Object{}};
    meta.Set("prompt", kPrompts[i]);
    meta.Set("name", "asset-" + std::to_string(i));
    meta.Set("width", 256);
    meta.Set("height", 192);
    html += "<div class=\"generated content\" content-type=\"img\" metadata='" +
            meta.Dump() + "'></div>";
  }
  html += "</body></html>";
  return html;
}

struct RunResult {
  int threads = 1;
  int lanes = 1;
  double device_seconds = 0.0;
  double modeled_wall_seconds = 0.0;
  double real_wall_seconds = 0.0;
  double generated_bytes = 0.0;
  std::uint64_t output_digest = 0;
};

bool RunOnce(const sww::core::ContentStore& store, sww::util::ThreadPool* pool,
             int threads, sww::obs::bench::State& state, RunResult& out) {
  using namespace sww;
  obs::Registry::Default().Reset();
  core::LocalSession::Options options;
  options.client.generator.pool = pool;
  auto session = core::LocalSession::Start(&store, options);
  state.Check(session.ok(), "session at t=" + std::to_string(threads));
  if (!session.ok()) return false;
  const auto start = std::chrono::steady_clock::now();
  auto fetch = session.value()->FetchPage("/page");
  const auto stop = std::chrono::steady_clock::now();
  state.Check(fetch.ok(), "fetch at t=" + std::to_string(threads));
  if (!fetch.ok()) return false;
  out.threads = threads;
  out.lanes = pool == nullptr ? 1 : pool->worker_count();
  out.device_seconds = fetch.value().generation_seconds;
  out.modeled_wall_seconds = fetch.value().generation_wall_seconds;
  out.real_wall_seconds =
      std::chrono::duration<double>(stop - start).count();
  // Digest every output byte the user would see: files (sorted by path in
  // the std::map) then the final DOM.
  std::uint64_t digest = util::Fnv1a64("");  // offset basis
  double bytes = 0.0;
  for (const auto& [path, content] : fetch.value().files) {
    digest = util::Fnv1a64(path, digest);
    if (!content.empty()) {
      digest = util::Fnv1a64(
          std::string_view(reinterpret_cast<const char*>(content.data()),
                           content.size()),
          digest);
    }
    bytes += static_cast<double>(content.size());
  }
  digest = util::Fnv1a64(fetch.value().final_html, digest);
  out.output_digest = digest;
  out.generated_bytes = bytes;
  return true;
}

void parallel_speedup(sww::obs::bench::State& state) {
  using namespace sww;
  core::ContentStore store;
  if (auto status = store.AddPage("/page", MakeSixAssetPage()); !status.ok()) {
    state.Check(false, status.ToString());
    return;
  }

  std::printf("parallel generation engine: speedup sweep\n\n");
  std::printf("page: 6 image assets, 256x192 each, laptop device profile\n\n");

  std::vector<RunResult> runs;
  {
    RunResult serial;
    if (!RunOnce(store, nullptr, 0, state, serial)) return;
    runs.push_back(serial);  // threads=0 row: the no-pool serial path
  }
  for (int threads : {1, 2, 4, 8}) {
    util::ThreadPool pool(threads);
    RunResult run;
    if (!RunOnce(store, &pool, threads, state, run)) return;
    runs.push_back(run);
  }

  const RunResult& baseline = runs.front();
  std::printf("%8s %6s %12s %12s %10s %12s  %s\n", "threads", "lanes",
              "device s", "modeled s", "speedup", "real ms", "digest");
  bool identical = true;
  double speedup_at_4 = 0.0;
  for (const RunResult& run : runs) {
    const double speedup = run.modeled_wall_seconds > 0.0
                               ? baseline.modeled_wall_seconds /
                                     run.modeled_wall_seconds
                               : 0.0;
    if (run.threads == 4) speedup_at_4 = speedup;
    identical = identical && run.output_digest == baseline.output_digest;
    std::printf("%8d %6d %12.2f %12.2f %9.2fx %12.2f  %016llx\n", run.threads,
                run.lanes, run.device_seconds, run.modeled_wall_seconds,
                speedup, run.real_wall_seconds * 1e3,
                static_cast<unsigned long long>(run.output_digest));
    const std::string prefix = "t" + std::to_string(run.threads) + ".";
    state.Modeled(prefix + "modeled_wall_seconds", run.modeled_wall_seconds);
    state.Modeled(prefix + "speedup", speedup);
    char digest_hex[17];
    std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                  static_cast<unsigned long long>(run.output_digest));
    state.ModeledText(prefix + "output_digest", digest_hex);
    // Real wall time is machine noise — context only, never gated.
    state.Info(prefix + "real_wall_seconds", run.real_wall_seconds);
  }
  state.Modeled("device_seconds", baseline.device_seconds);
  state.Modeled("generated_bytes", baseline.generated_bytes);

  std::printf("\nbyte-identical output across all runs: %s\n",
              identical ? "yes" : "NO");
  std::printf("modeled speedup at 4 threads: %.2fx (gate: >= 2x)\n",
              speedup_at_4);

  state.Check(identical, "output bytes diverged across thread counts");
  if (speedup_at_4 < 2.0) {
    char msg[80];
    std::snprintf(msg, sizeof msg,
                  "modeled speedup at 4 threads %.2fx < 2x", speedup_at_4);
    state.Check(false, msg);
  }
}
SWW_BENCHMARK(parallel_speedup);

}  // namespace
