// video_negotiation — regenerates §3.2's video streaming analysis:
// "moving from 60fps to 30fps will half the data, and from 4K to high
//  definition can save 2.3x data, turning 7GB/hour into 3GB/hour."
// The GEN_ABILITY bits negotiate client-side frame-rate boosting and
// upscaling; the table shows one hour of 4K60 playback per client type.
#include <cstdio>
#include <string>

#include "http2/settings.hpp"
#include "obs/bench.hpp"
#include "video/streaming.hpp"

namespace {

void video_negotiation(sww::obs::bench::State& state) {
  using namespace sww;
  std::printf("Video streaming negotiation (3.2)\n\n");

  std::printf("Encoding ladder (GB/hour):\n");
  for (const video::Variant& variant : video::StandardLadder()) {
    std::printf("  %-8s %6.2f\n", variant.name.c_str(), variant.gb_per_hour);
  }
  std::printf("  (paper anchors: 4K ~7 GB/h, HD ~3 GB/h, 60->30 fps halves)\n\n");

  struct ClientType {
    const char* label;
    const char* key;
    std::uint32_t ability;
  };
  const ClientType clients[] = {
      {"naive client (no SWW)", "naive", 0},
      {"frame-rate boost only", "boost", http2::kGenAbilityFrameRateBoost},
      {"upscale only", "upscale", http2::kGenAbilityUpscaleOnly},
      {"boost + upscale", "boost_upscale",
       http2::kGenAbilityFrameRateBoost | http2::kGenAbilityUpscaleOnly},
  };

  std::printf("One hour of 4K60 playback:\n");
  std::printf("%-24s %-10s %9s %9s %8s %12s %12s\n", "client", "shipped",
              "GB sent", "GB saved", "factor", "interp.frm", "upscale.frm");
  for (const ClientType& client : clients) {
    const video::DeliveryPlan plan =
        video::Negotiate({video::Resolution::k4K, 60}, client.ability);
    const video::StreamingReport report = video::SimulateStreaming(plan, 1.0);
    std::printf("%-24s %-10s %9.2f %9.2f %7.2fx %12llu %12llu\n", client.label,
                plan.transmitted.name.c_str(), report.transmitted_gb,
                report.saved_gb, plan.DataSavingsFactor(),
                static_cast<unsigned long long>(report.frames_interpolated),
                static_cast<unsigned long long>(report.frames_upscaled));
    const std::string prefix = std::string(client.key) + ".";
    state.Modeled(prefix + "transmitted_gb", report.transmitted_gb);
    state.Modeled(prefix + "saved_gb", report.saved_gb);
    state.Modeled(prefix + "savings_factor", plan.DataSavingsFactor());
    state.ModeledText(prefix + "shipped", plan.transmitted.name);
  }

  const double saved_wh =
      video::SimulateStreaming(
          video::Negotiate({video::Resolution::k4K, 60},
                           http2::kGenAbilityFrameRateBoost |
                               http2::kGenAbilityUpscaleOnly),
          1.0)
          .transmission_energy_saved_wh;
  std::printf("\nTransmission energy saved per hour (boost + upscale): "
              "%.0f Wh\n",
              saved_wh);
  state.Modeled("boost_upscale.energy_saved_wh", saved_wh);
}
SWW_BENCHMARK(video_negotiation);

}  // namespace
