// bench_video_negotiation — regenerates §3.2's video streaming analysis:
// "moving from 60fps to 30fps will half the data, and from 4K to high
//  definition can save 2.3x data, turning 7GB/hour into 3GB/hour."
// The GEN_ABILITY bits negotiate client-side frame-rate boosting and
// upscaling; the table shows one hour of 4K60 playback per client type.
#include <cstdio>

#include "http2/settings.hpp"
#include "video/streaming.hpp"

int main() {
  using namespace sww;
  std::printf("=== Video streaming negotiation (3.2) ===\n\n");

  std::printf("Encoding ladder (GB/hour):\n");
  for (const video::Variant& variant : video::StandardLadder()) {
    std::printf("  %-8s %6.2f\n", variant.name.c_str(), variant.gb_per_hour);
  }
  std::printf("  (paper anchors: 4K ~7 GB/h, HD ~3 GB/h, 60->30 fps halves)\n\n");

  struct ClientType {
    const char* label;
    std::uint32_t ability;
  };
  const ClientType clients[] = {
      {"naive client (no SWW)", 0},
      {"frame-rate boost only", http2::kGenAbilityFrameRateBoost},
      {"upscale only", http2::kGenAbilityUpscaleOnly},
      {"boost + upscale",
       http2::kGenAbilityFrameRateBoost | http2::kGenAbilityUpscaleOnly},
  };

  std::printf("One hour of 4K60 playback:\n");
  std::printf("%-24s %-10s %9s %9s %8s %12s %12s\n", "client", "shipped",
              "GB sent", "GB saved", "factor", "interp.frm", "upscale.frm");
  for (const ClientType& client : clients) {
    const video::DeliveryPlan plan =
        video::Negotiate({video::Resolution::k4K, 60}, client.ability);
    const video::StreamingReport report = video::SimulateStreaming(plan, 1.0);
    std::printf("%-24s %-10s %9.2f %9.2f %7.2fx %12llu %12llu\n", client.label,
                plan.transmitted.name.c_str(), report.transmitted_gb,
                report.saved_gb, plan.DataSavingsFactor(),
                static_cast<unsigned long long>(report.frames_interpolated),
                static_cast<unsigned long long>(report.frames_upscaled));
  }

  std::printf("\nTransmission energy saved per hour (boost + upscale): "
              "%.0f Wh\n",
              video::SimulateStreaming(
                  video::Negotiate({video::Resolution::k4K, 60},
                                   http2::kGenAbilityFrameRateBoost |
                                       http2::kGenAbilityUpscaleOnly),
                  1.0)
                  .transmission_energy_saved_wh);
  return 0;
}
