// text_article — regenerates §6.2's text-generation experiment:
// "An experiment of a similar nature explored text generation, by sending
//  a newspaper article ... has taken 41.9 seconds on the laptop, more than
//  ten seconds on the workstation, and provided 3.1x compression, from
//  2400B to 778B."
#include <cstdio>

#include "core/converter.hpp"
#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "energy/device.hpp"
#include "genai/llm.hpp"
#include "genai/prompt_inversion.hpp"
#include "html/parser.hpp"
#include "metrics/sbert.hpp"
#include "obs/bench.hpp"
#include "util/strings.hpp"

namespace {

void text_article(sww::obs::bench::State& state) {
  using namespace sww;
  const std::string article_html = core::MakeNewsArticleHtml(2400);

  std::printf("Text experiment (6.2): newspaper article as bullets\n\n");
  std::printf("original article HTML: %zu B (paper: 2400 B)\n",
              article_html.size());

  // Convert the article to SWW form (prose → bullets).
  auto doc = html::ParseDocument(article_html).value();
  core::PageConverter converter(
      genai::PromptInverter(genai::PromptInverter::DefaultVocabulary()),
      genai::TextModel(genai::FindTextModel(genai::kDeepseek8b).value()), {});
  auto report = converter.Convert(*doc, {});
  state.Check(report.ok(), "article conversion");
  if (!report.ok()) return;
  const std::string converted = doc->Serialize();
  std::printf("converted (bullet) form: %zu B (paper: 778 B)\n",
              converted.size());
  std::printf("compression: %.1fx (paper: 3.1x)\n",
              report.value().CompressionRatio());
  state.Modeled("original_bytes", static_cast<double>(article_html.size()));
  state.Modeled("converted_bytes", static_cast<double>(converted.size()));
  state.Modeled("compression_ratio", report.value().CompressionRatio());

  // Serve it and regenerate on both devices.  The original article runs
  // ~420 words, so regeneration asks for that length.
  core::ContentStore store;
  (void)store.AddPage("/article", converted);
  auto session = core::LocalSession::Start(&store, {});
  auto fetch = session.value()->FetchPage("/article");
  state.Check(fetch.ok(), "article fetch");
  if (!fetch.ok()) return;
  std::printf("\nlaptop regeneration:      %6.1f s (paper: 41.9 s)\n",
              fetch.value().generation_seconds);
  state.Modeled("laptop_regeneration_seconds",
                fetch.value().generation_seconds);

  core::LocalSession::Options ws;
  ws.client.laptop = false;
  auto ws_session = core::LocalSession::Start(&store, ws);
  auto ws_fetch = ws_session.value()->FetchPage("/article");
  std::printf("workstation regeneration: %6.1f s (paper: >10 s)\n",
              ws_fetch.value().generation_seconds);
  state.Modeled("workstation_regeneration_seconds",
                ws_fetch.value().generation_seconds);

  // Fidelity: regenerated prose vs the original article.
  const std::string original_text = core::MakeNewsArticleText(2400);
  auto final_doc = html::ParseDocument(fetch.value().final_html).value();
  std::string regenerated;
  for (html::Node* p : final_doc->FindByTag("p")) {
    regenerated += p->InnerText() + " ";
  }
  const double sbert = metrics::SbertScore(original_text, regenerated);
  std::printf("\nSBERT(original, regenerated) = %.2f "
              "(paper band for text models: 0.82-0.91)\n",
              sbert);
  std::printf("regenerated length: %zu words\n",
              util::CountWords(regenerated));
  state.Modeled("sbert", sbert);
  state.Modeled("regenerated_words",
                static_cast<double>(util::CountWords(regenerated)));
}
SWW_BENCHMARK(text_article);

}  // namespace
