// steps_scaling — regenerates §6.3.1's inference-step sweep:
// "These trends remain as we scale inference steps from 10 to 60, with
//  only minor changes to CLIP score and with generation time increasing
//  linearly with the number of steps."
#include <cstdio>
#include <string>

#include "core/page_builder.hpp"
#include "energy/device.hpp"
#include "genai/diffusion.hpp"
#include "metrics/clip.hpp"
#include "obs/bench.hpp"

namespace {

void steps_scaling(sww::obs::bench::State& state) {
  using namespace sww;
  std::printf("Inference-step scaling (6.3.1), 224x224\n\n");
  std::printf("%-14s %6s %8s %12s %12s\n", "Model", "steps", "CLIP",
              "laptop[s]", "workst.[s]");

  for (std::string_view name :
       {genai::kSd21, genai::kSd3Medium, genai::kSd35Medium}) {
    const auto spec = genai::FindImageModel(name).value();
    genai::DiffusionModel model(spec);
    for (int steps : {10, 15, 20, 30, 40, 60}) {
      double clip = 0.0;
      const int n = 6;
      for (int i = 0; i < n; ++i) {
        const std::string prompt = core::MakeLandscapePrompt(700 + i);
        clip += metrics::ClipScore(
            prompt,
            model.Generate(prompt, 224, 224, steps, 20 + i).value().image);
      }
      const double laptop_s = energy::ImageGenerationSeconds(
          energy::Laptop(), spec, steps, 224, 224);
      const double ws_s = energy::ImageGenerationSeconds(
          energy::Workstation(), spec, steps, 224, 224);
      std::printf("%-14s %6d %8.2f %12.1f %12.2f\n", spec.display_name.c_str(),
                  steps, clip / n, laptop_s, ws_s);
      const std::string prefix =
          std::string(name) + ".steps" + std::to_string(steps) + ".";
      state.Modeled(prefix + "clip", clip / n);
      state.Modeled(prefix + "laptop_seconds", laptop_s);
      state.Modeled(prefix + "workstation_seconds", ws_s);
    }
    std::printf("\n");
  }
  std::printf("Expected shape: CLIP nearly flat in steps; time linear in steps.\n");
}
SWW_BENCHMARK(steps_scaling);

}  // namespace
