// energy_carbon — regenerates §6.4's energy comparison and the
// sustainability arithmetic of §6.4/§7:
//   * transmission vs generation (time and energy) for a large image,
//   * embodied carbon of storage and the savings from compression,
//   * the mobile-web fleet model (exabytes/month → tens of PB/month).
#include <cstdio>
#include <string>

#include "energy/carbon.hpp"
#include "energy/device.hpp"
#include "energy/network.hpp"
#include "genai/model_specs.hpp"
#include "obs/bench.hpp"

namespace {

void energy_carbon(sww::obs::bench::State& state) {
  using namespace sww;
  const auto sd3 = genai::FindImageModel(genai::kSd3Medium).value();
  constexpr std::uint64_t kLargeImageBytes = 131072;  // Table 2 large image

  std::printf("Energy & carbon (6.4, 7)\n\n");

  // --- time: transmission vs generation -------------------------------------
  const double transmit_s = energy::TransmissionSeconds(kLargeImageBytes);
  const double generate_s =
      energy::ImageGenerationSeconds(energy::Workstation(), sd3, 15, 1024, 1024);
  std::printf("Large image (131,072 B) on a 100 Mbps link:\n");
  std::printf("  transmission time:        %7.1f ms  (paper: ~10 ms)\n",
              transmit_s * 1000);
  std::printf("  workstation generation:   %7.1f s\n", generate_s);
  std::printf("  generation/transmission:  %7.0fx    (paper: 620x)\n\n",
              generate_s / transmit_s);
  state.Modeled("transmission_seconds", transmit_s);
  state.Modeled("workstation_generation_seconds", generate_s);
  state.Modeled("generation_over_transmission", generate_s / transmit_s);

  // --- energy: transmission vs generation ------------------------------------
  const double transmit_wh = energy::TransmissionEnergyWh(kLargeImageBytes);
  const double generate_wh = energy::ImageGenerationEnergyWh(
      energy::Workstation(), sd3, 15, 1024, 1024);
  std::printf("Energy per large image (Telefonica 2024: %.3f Wh/MB):\n",
              energy::kWhPerMegabyte);
  std::printf("  transmission:             %7.4f Wh  (paper: ~0.005 Wh)\n",
              transmit_wh);
  std::printf("  workstation generation:   %7.3f Wh\n", generate_wh);
  std::printf("  transmission/generation:  %7.1f%%    (paper: 2.5%%)\n\n",
              100.0 * transmit_wh / generate_wh);
  state.Modeled("transmission_wh", transmit_wh);
  state.Modeled("workstation_generation_wh", generate_wh);

  // Laptop-side comparison for completeness.
  const double laptop_wh =
      energy::ImageGenerationEnergyWh(energy::Laptop(), sd3, 15, 1024, 1024);
  std::printf("  laptop generation:        %7.3f Wh "
              "(transmission is %.1f%% of it)\n\n",
              laptop_wh, 100.0 * transmit_wh / laptop_wh);
  state.Modeled("laptop_generation_wh", laptop_wh);

  // --- embodied carbon ---------------------------------------------------------
  std::printf("Embodied carbon (%.1f kgCO2e/TB SSD):\n", energy::kSsdKgCo2PerTB);
  for (double factor : {2.0, 10.0, 68.0, 157.0}) {
    const double saved_kg = energy::CarbonSavedKg(1e6, factor);
    std::printf("  1 EB corpus compressed %6.0fx saves %12.0f kgCO2e\n", factor,
                saved_kg);
    state.Modeled("carbon_saved_kg_at_" + std::to_string(static_cast<int>(factor)) + "x",
                  saved_kg);
  }
  std::printf("  (paper: \"even modest compression can save millions of "
              "kgCO2e\")\n\n");

  // --- fleet model (§7) ----------------------------------------------------------
  std::printf("Mobile-web fleet model (7):\n");
  for (double exabytes : {2.0, 2.5, 3.0}) {
    energy::FleetTraffic fleet;
    fleet.monthly_exabytes = exabytes;
    fleet.compression_factor = 100.0;
    std::printf("  %.1f EB/month at 100x -> %5.1f PB/month, saving %8.0f "
                "MWh/month of traffic energy\n",
                exabytes, fleet.CompressedPetabytesPerMonth(),
                fleet.MonthlyEnergySavingsMWh());
  }
  energy::FleetTraffic fleet;
  state.Modeled("fleet_savings_mwh_at_2_5eb", fleet.MonthlyEnergySavingsMWh());
  std::printf("  (paper: 2-3 EB/month -> tens of PB/month)\n");
}
SWW_BENCHMARK(energy_carbon);

}  // namespace
