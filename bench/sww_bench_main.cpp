// sww_bench — the single benchmark runner.  Every bench_*.cpp in this
// directory registers its cases with SWW_BENCHMARK; this binary lists,
// filters, runs them, and emits the versioned BENCH_sww.json trajectory
// (see docs/performance.md).
#include "obs/bench.hpp"

int main(int argc, char** argv) {
  return sww::obs::bench::RunBenchMain(argc, argv);
}
