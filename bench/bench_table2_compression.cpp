// table2_compression — regenerates Table 2 of the paper:
//   "Generation time and energy consumption for typical small, medium and
//    large images and 250 words text."  (SD 3 Medium + DeepSeek-R1 8B.)
#include <cstdio>
#include <string>

#include "core/content_store.hpp"
#include "energy/device.hpp"
#include "genai/model_specs.hpp"
#include "json/json.hpp"
#include "obs/bench.hpp"

namespace {

void table2_compression(sww::obs::bench::State& state) {
  using namespace sww;
  const auto sd3 = genai::FindImageModel(genai::kSd3Medium).value();
  const auto r1 = genai::FindTextModel(genai::kDeepseek8b).value();

  std::printf("Table 2: storage compression, generation time & energy\n");
  std::printf("(SD 3 Medium, DeepSeek-R1 8B, 15 inference steps)\n\n");
  std::printf("%-24s %9s %9s %9s %11s %12s %12s %12s\n", "Media", "Size[B]",
              "Meta[B]", "Compress.", "Laptop[s]", "Laptop[Wh]", "Workst.[s]",
              "Workst.[Wh]");

  struct ImageRow {
    const char* label;
    const char* key;
    int size;
  };
  const ImageRow image_rows[] = {{"Small Image (256x256)", "small", 256},
                                 {"Medium Image (512x512)", "medium", 512},
                                 {"Large Image (1024x1024)", "large", 1024}};
  // The paper's worst-case metadata: 400 B prompt + 20 B name + 2×4 B dims.
  for (const ImageRow& row : image_rows) {
    json::Value metadata{json::Object{}};
    metadata.Set("prompt", std::string(372, 'p'));  // → 428 B total metadata
    metadata.Set("name", std::string(8, 'n'));
    metadata.Set("width", row.size);
    metadata.Set("height", row.size);
    const std::size_t meta_bytes = metadata.Dump().size();
    const std::size_t media_bytes =
        core::TraditionalItemBytes(html::GeneratedContentType::kImage, metadata);
    const double laptop_s = energy::ImageGenerationSeconds(
        energy::Laptop(), sd3, 15, row.size, row.size);
    const double laptop_wh = energy::ImageGenerationEnergyWh(
        energy::Laptop(), sd3, 15, row.size, row.size);
    const double ws_s = energy::ImageGenerationSeconds(
        energy::Workstation(), sd3, 15, row.size, row.size);
    const double ws_wh = energy::ImageGenerationEnergyWh(
        energy::Workstation(), sd3, 15, row.size, row.size);
    std::printf("%-24s %9zu %9zu %9.2f %11.0f %12.2f %12.1f %12.2f\n",
                row.label, media_bytes, meta_bytes,
                static_cast<double>(media_bytes) / meta_bytes, laptop_s,
                laptop_wh, ws_s, ws_wh);
    const std::string prefix = std::string(row.key) + ".";
    state.Modeled(prefix + "compression",
                  static_cast<double>(media_bytes) / meta_bytes);
    state.Modeled(prefix + "laptop_seconds", laptop_s);
    state.Modeled(prefix + "laptop_wh", laptop_wh);
    state.Modeled(prefix + "workstation_seconds", ws_s);
    state.Modeled(prefix + "workstation_wh", ws_wh);
  }

  {
    // Text block: 250 words ≈ 1,250 B prose vs 649 B of bullets metadata.
    json::Value metadata{json::Object{}};
    metadata.Set("prompt", "expand the bullet points into flowing prose");
    json::Array bullets;
    for (int i = 0; i < 6; ++i) {
      bullets.emplace_back(std::string(88, 'b'));  // → ≈649 B total metadata
    }
    metadata.Set("bullets", json::Value(std::move(bullets)));
    metadata.Set("words", 250);
    const std::size_t meta_bytes = metadata.Dump().size();
    const std::size_t media_bytes =
        core::TraditionalItemBytes(html::GeneratedContentType::kText, metadata);
    const double laptop_s = energy::TextGenerationSeconds(energy::Laptop(), r1, 250);
    const double ws_s =
        energy::TextGenerationSeconds(energy::Workstation(), r1, 250);
    std::printf("%-24s %9zu %9zu %9.2f %11.0f %12.2f %12.1f %12.2f\n",
                "Text Block (250 words)", media_bytes, meta_bytes,
                static_cast<double>(media_bytes) / meta_bytes, laptop_s,
                energy::TextGenerationEnergyWh(energy::Laptop(), r1, 250), ws_s,
                energy::TextGenerationEnergyWh(energy::Workstation(), r1, 250));
    state.Modeled("text.compression",
                  static_cast<double>(media_bytes) / meta_bytes);
    state.Modeled("text.laptop_seconds", laptop_s);
    state.Modeled("text.workstation_seconds", ws_s);
  }

  std::printf("\nPaper's rows for comparison:\n");
  std::printf("  Small  8,192/428 -> 19.14x;  7 s/0.02 Wh;  1.0 s/0.04 Wh\n");
  std::printf("  Medium 32,768/428 -> 76.56x; 19 s/0.05 Wh; 1.7 s/0.06 Wh\n");
  std::printf("  Large  131,072/428 -> 306.24x; 310 s/0.90 Wh; 6.2 s/0.21 Wh\n");
  std::printf("  Text   1,250/649 -> 1.93x;  32 s/0.01 Wh; 13.0 s/0.51 Wh\n");
}
SWW_BENCHMARK(table2_compression);

}  // namespace
