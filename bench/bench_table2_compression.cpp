// bench_table2_compression — regenerates Table 2 of the paper:
//   "Generation time and energy consumption for typical small, medium and
//    large images and 250 words text."  (SD 3 Medium + DeepSeek-R1 8B.)
#include <cstdio>

#include "core/content_store.hpp"
#include "energy/device.hpp"
#include "genai/model_specs.hpp"
#include "json/json.hpp"

int main() {
  using namespace sww;
  const auto sd3 = genai::FindImageModel(genai::kSd3Medium).value();
  const auto r1 = genai::FindTextModel(genai::kDeepseek8b).value();

  std::printf("=== Table 2: storage compression, generation time & energy ===\n");
  std::printf("(SD 3 Medium, DeepSeek-R1 8B, 15 inference steps)\n\n");
  std::printf("%-24s %9s %9s %9s %11s %12s %12s %12s\n", "Media", "Size[B]",
              "Meta[B]", "Compress.", "Laptop[s]", "Laptop[Wh]", "Workst.[s]",
              "Workst.[Wh]");

  struct ImageRow {
    const char* label;
    int size;
  };
  const ImageRow image_rows[] = {{"Small Image (256x256)", 256},
                                 {"Medium Image (512x512)", 512},
                                 {"Large Image (1024x1024)", 1024}};
  // The paper's worst-case metadata: 400 B prompt + 20 B name + 2×4 B dims.
  for (const ImageRow& row : image_rows) {
    json::Value metadata{json::Object{}};
    metadata.Set("prompt", std::string(372, 'p'));  // → 428 B total metadata
    metadata.Set("name", std::string(8, 'n'));
    metadata.Set("width", row.size);
    metadata.Set("height", row.size);
    const std::size_t meta_bytes = metadata.Dump().size();
    const std::size_t media_bytes =
        core::TraditionalItemBytes(html::GeneratedContentType::kImage, metadata);
    std::printf("%-24s %9zu %9zu %9.2f %11.0f %12.2f %12.1f %12.2f\n",
                row.label, media_bytes, meta_bytes,
                static_cast<double>(media_bytes) / meta_bytes,
                energy::ImageGenerationSeconds(energy::Laptop(), sd3, 15,
                                               row.size, row.size),
                energy::ImageGenerationEnergyWh(energy::Laptop(), sd3, 15,
                                                row.size, row.size),
                energy::ImageGenerationSeconds(energy::Workstation(), sd3, 15,
                                               row.size, row.size),
                energy::ImageGenerationEnergyWh(energy::Workstation(), sd3, 15,
                                                row.size, row.size));
  }

  {
    // Text block: 250 words ≈ 1,250 B prose vs 649 B of bullets metadata.
    json::Value metadata{json::Object{}};
    metadata.Set("prompt", "expand the bullet points into flowing prose");
    json::Array bullets;
    for (int i = 0; i < 6; ++i) {
      bullets.emplace_back(std::string(88, 'b'));  // → ≈649 B total metadata
    }
    metadata.Set("bullets", json::Value(std::move(bullets)));
    metadata.Set("words", 250);
    const std::size_t meta_bytes = metadata.Dump().size();
    const std::size_t media_bytes =
        core::TraditionalItemBytes(html::GeneratedContentType::kText, metadata);
    std::printf("%-24s %9zu %9zu %9.2f %11.0f %12.2f %12.1f %12.2f\n",
                "Text Block (250 words)", media_bytes, meta_bytes,
                static_cast<double>(media_bytes) / meta_bytes,
                energy::TextGenerationSeconds(energy::Laptop(), r1, 250),
                energy::TextGenerationEnergyWh(energy::Laptop(), r1, 250),
                energy::TextGenerationSeconds(energy::Workstation(), r1, 250),
                energy::TextGenerationEnergyWh(energy::Workstation(), r1, 250));
  }

  std::printf("\nPaper's rows for comparison:\n");
  std::printf("  Small  8,192/428 -> 19.14x;  7 s/0.02 Wh;  1.0 s/0.04 Wh\n");
  std::printf("  Medium 32,768/428 -> 76.56x; 19 s/0.05 Wh; 1.7 s/0.06 Wh\n");
  std::printf("  Large  131,072/428 -> 306.24x; 310 s/0.90 Wh; 6.2 s/0.21 Wh\n");
  std::printf("  Text   1,250/649 -> 1.93x;  32 s/0.01 Wh; 13.0 s/0.51 Wh\n");
  return 0;
}
