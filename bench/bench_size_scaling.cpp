// size_scaling — regenerates §6.3.1's image-size sweep:
// "As image size is increased, generation time is increased on the
//  workstation relative to the number of pixels, but on the laptop it
//  grows significantly beyond that for images of 1024x1024, reaching 310
//  seconds."  (The laptop's attention-splitting penalty.)
#include <cstdio>
#include <string>

#include "energy/device.hpp"
#include "genai/model_specs.hpp"
#include "obs/bench.hpp"

namespace {

void size_scaling(sww::obs::bench::State& state) {
  using namespace sww;
  const auto sd3 = genai::FindImageModel(genai::kSd3Medium).value();

  std::printf("Image-size scaling (6.3.1), SD 3 Medium, 15 steps\n\n");
  std::printf("%-12s %10s | %10s %12s | %10s %12s\n", "size", "pixels",
              "laptop[s]", "vs pixels", "workst.[s]", "vs pixels");

  const double lap_base =
      energy::ImageGenerationSeconds(energy::Laptop(), sd3, 15, 256, 256);
  const double ws_base =
      energy::ImageGenerationSeconds(energy::Workstation(), sd3, 15, 256, 256);
  const double px_base = 256.0 * 256.0;

  for (int size : {224, 256, 384, 512, 768, 1024}) {
    const double pixels = static_cast<double>(size) * size;
    const double lap =
        energy::ImageGenerationSeconds(energy::Laptop(), sd3, 15, size, size);
    const double ws = energy::ImageGenerationSeconds(energy::Workstation(), sd3,
                                                     15, size, size);
    // "vs pixels": the time ratio divided by the pixel ratio — 1.0 means
    // perfectly pixel-proportional growth.
    std::printf("%4dx%-7d %10.0f | %10.1f %12.2f | %10.2f %12.2f\n", size, size,
                pixels, lap, (lap / lap_base) / (pixels / px_base), ws,
                (ws / ws_base) / (pixels / px_base));
    const std::string prefix = "s" + std::to_string(size) + ".";
    state.Modeled(prefix + "laptop_seconds", lap);
    state.Modeled(prefix + "workstation_seconds", ws);
  }
  // The paper's headline anchor: the laptop blow-up at 1024².
  const double lap_1024 =
      energy::ImageGenerationSeconds(energy::Laptop(), sd3, 15, 1024, 1024);
  state.Check(lap_1024 > 100.0,
              "laptop 1024x1024 shows the attention-splitting blow-up");
  std::printf("\nPaper anchors: laptop 7 s / 19 s / 310 s and workstation "
              "1.0 s / 1.7 s / 6.2 s\nat 256/512/1024; the laptop's 1024x1024 "
              "blow-up is the attention-splitting penalty.\n");
}
SWW_BENCHMARK(size_scaling);

}  // namespace
