// text_expansion — regenerates §6.3.2's text-to-text evaluation:
// SBERT scores, word-length overshoot distribution, and generation time
// for Llama 3.2 and DeepSeek-R1 1.5B/8B/14B at 50/100/150/250 words.
#include <cstdio>
#include <string>
#include <vector>

#include "energy/device.hpp"
#include "genai/llm.hpp"
#include "metrics/sbert.hpp"
#include "metrics/stats.hpp"
#include "obs/bench.hpp"

namespace {

void text_expansion(sww::obs::bench::State& state) {
  using namespace sww;
  const std::vector<std::string> bullets = {
      "regional council approved coastal transit line",
      "construction scheduled autumn, budget two hundred million",
      "independent review flagged drainage risks near harbor",
      "completed line carries forty thousand passengers daily"};

  std::printf("Text-to-text evaluation (6.3.2)\n");
  std::printf("paper: SBERT means 0.82-0.91; overshoot up to 20%%, some means"
              " ~1.3%%, IQR often >10%%;\n");
  std::printf("       time 6.98-14.33 s (workstation), 16.06-34.04 s (laptop),"
              " ~2.5x apart,\n");
  std::printf("       with 50-word outputs slower than 100/150 for three "
              "models\n\n");

  std::printf("%-18s %6s | %7s %9s %9s %9s | %8s %8s\n", "Model", "words",
              "SBERT", "over.mean", "over.p25", "over.p75", "ws[s]", "lap[s]");

  for (const genai::TextModelSpec& spec : genai::TextModels()) {
    genai::TextModel model(spec);
    for (int words : {50, 100, 150, 250}) {
      std::vector<double> sberts, overshoots;
      for (std::uint64_t seed = 0; seed < 30; ++seed) {
        auto result = model.ExpandBullets(bullets, words, seed * 97 + 5);
        if (!result.ok()) continue;
        sberts.push_back(metrics::SbertScore(bullets, result.value().text));
        overshoots.push_back(metrics::WordOvershootPercent(
            words, result.value().actual_words));
      }
      const metrics::Summary sbert = metrics::Summarize(sberts);
      const metrics::Summary over = metrics::Summarize(overshoots);
      const double ws_s =
          energy::TextGenerationSeconds(energy::Workstation(), spec, words);
      const double lap_s =
          energy::TextGenerationSeconds(energy::Laptop(), spec, words);
      std::printf("%-18s %6d | %7.2f %8.1f%% %8.1f%% %8.1f%% | %8.2f %8.2f\n",
                  spec.display_name.c_str(), words, sbert.mean, over.mean,
                  over.p25, over.p75, ws_s, lap_s);
      const std::string prefix =
          spec.name + ".w" + std::to_string(words) + ".";
      state.Modeled(prefix + "sbert_mean", sbert.mean);
      state.Modeled(prefix + "overshoot_mean", over.mean);
      state.Modeled(prefix + "workstation_seconds", ws_s);
      state.Modeled(prefix + "laptop_seconds", lap_s);
    }
  }

  std::printf("\nNote the non-monotonic length dependence for the DeepSeek-R1"
              " family\n(50-word outputs pay relatively more reasoning-token"
              " overhead).\n");
}
SWW_BENCHMARK(text_expansion);

}  // namespace
