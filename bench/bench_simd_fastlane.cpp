// simd_fastlane — the PR-7 compute fast lanes measured side by side with
// the scalar oracle lane: the diffusion denoise blend, the fixed-tree
// embedding dot, the counter-hash texture row, and the LZ77 match-driven
// tokenizer.
//
// Identity between lanes is a modeled metric (gated exactly at 0
// mismatches): every kernel is bit-identical in every dispatch lane, so
// the modeled rows of this bench are the same whether CI forces
// SWW_SIMD=scalar or the host runs AVX2.  Wall medians carry the
// before/after story, and when a vector lane is active the bench fails
// unless at least two of {denoise blend, embedding dot, LZ77 tokenize}
// clear a 2x median speedup over the scalar oracle.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "compress/swz.hpp"
#include "genai/embedding.hpp"
#include "obs/bench.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using namespace sww;
namespace simd = sww::util::simd;

/// Count positions where two double buffers differ in raw bits.
std::size_t BitMismatches(const std::vector<double>& a,
                          const std::vector<double>& b) {
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) ++mismatches;
  }
  return mismatches;
}

void simd_fastlane(sww::obs::bench::State& state) {
  const simd::Lane active = simd::ActiveLane();
  std::printf("simd compute fast lanes vs the scalar oracle\n");
  std::printf("active lane: %s (best supported: %s)\n\n",
              std::string(simd::LaneName(active)).c_str(),
              std::string(simd::LaneName(simd::BestSupportedLane())).c_str());
  state.Info("active_lane_index", static_cast<double>(static_cast<int>(active)));
  std::size_t sink = 0;
  double fsink = 0.0;
  util::Rng rng(0x53494D44u);  // "SIMD"

  // --- denoise blend: dst = t*src + (1-t)*dst over the latent grid -------
  const std::size_t kCells = 4096;  // kSemanticGrid^2 — the real latent size
  std::vector<double> latent0(kCells), target(kCells);
  for (double& v : latent0) v = rng.NextGaussian(0.0, 40.0);
  for (double& v : target) v = rng.NextGaussian(0.0, 40.0);
  const double plant = 0.8375;
  {
    std::vector<double> oracle = latent0, fast = latent0;
    simd::Blend(oracle.data(), target.data(), plant, kCells,
                simd::Lane::kScalar);
    simd::Blend(fast.data(), target.data(), plant, kCells, active);
    state.Modeled("denoise_blend_bit_mismatches",
                  static_cast<double>(BitMismatches(oracle, fast)));
  }
  std::vector<double> scratch = latent0;
  auto time_blend = [&] {
    state.Time("denoise_blend_simd", [&] {
      simd::Blend(scratch.data(), target.data(), plant, kCells, active);
      fsink += scratch[0];
    });
    state.Time("denoise_blend_scalar", [&] {
      simd::Blend(scratch.data(), target.data(), plant, kCells,
                  simd::Lane::kScalar);
      fsink += scratch[0];
    });
  };
  time_blend();

  // --- embedding dot: canonical fixed-tree order, per-lane ----------------
  constexpr std::size_t kPairs = 512;
  std::vector<genai::Vec> lhs(kPairs), rhs(kPairs);
  for (std::size_t i = 0; i < kPairs; ++i) {
    for (std::size_t d = 0; d < genai::kEmbeddingDim; ++d) {
      lhs[i][d] = rng.NextRange(-1.0, 1.0);
      rhs[i][d] = rng.NextRange(-1.0, 1.0);
    }
  }
  {
    std::vector<double> oracle(kPairs), fast(kPairs);
    for (std::size_t i = 0; i < kPairs; ++i) {
      oracle[i] = simd::DotPairwise(lhs[i].data(), rhs[i].data(),
                                    genai::kEmbeddingDim, simd::Lane::kScalar);
      fast[i] = simd::DotPairwise(lhs[i].data(), rhs[i].data(),
                                  genai::kEmbeddingDim, active);
    }
    state.Modeled("embedding_dot_bit_mismatches",
                  static_cast<double>(BitMismatches(oracle, fast)));
    double checksum = 0.0;
    for (double v : oracle) checksum += v;
    state.Modeled("embedding_dot_checksum", checksum);
  }
  auto time_dot = [&] {
    state.Time("embedding_dot_simd", [&] {
      double acc = 0.0;
      for (std::size_t i = 0; i < kPairs; ++i) {
        acc += simd::DotPairwise(lhs[i].data(), rhs[i].data(),
                                 genai::kEmbeddingDim, active);
      }
      fsink += acc;
    });
    state.Time("embedding_dot_scalar", [&] {
      double acc = 0.0;
      for (std::size_t i = 0; i < kPairs; ++i) {
        acc += simd::DotPairwise(lhs[i].data(), rhs[i].data(),
                                 genai::kEmbeddingDim, simd::Lane::kScalar);
      }
      fsink += acc;
    });
  };
  time_dot();

  // --- counter-hash texture row: one 4096-pixel row per call --------------
  const std::size_t kRow = 4096;
  {
    std::vector<double> oracle(kRow), fast(kRow);
    simd::CounterRangeRow(0x7e37a2u, 0, 17, -9.0, 9.0, oracle.data(), kRow,
                          simd::Lane::kScalar);
    simd::CounterRangeRow(0x7e37a2u, 0, 17, -9.0, 9.0, fast.data(), kRow,
                          active);
    state.Modeled("texture_row_bit_mismatches",
                  static_cast<double>(BitMismatches(oracle, fast)));
  }
  std::vector<double> row(kRow);
  state.Time("texture_row_simd", [&] {
    simd::CounterRangeRow(0x7e37a2u, 0, 17, -9.0, 9.0, row.data(), kRow,
                          active);
    fsink += row[0];
  });
  state.Time("texture_row_scalar", [&] {
    simd::CounterRangeRow(0x7e37a2u, 0, 17, -9.0, 9.0, row.data(), kRow,
                          simd::Lane::kScalar);
    fsink += row[0];
  });

  // --- LZ77 tokenize: whole-path, lane pinned via SetActiveLane -----------
  // Corpus: repeating HTML-ish phrases with point mutations — long matches
  // so the match extender dominates, like the pages SwzCompress sees.
  util::Bytes corpus;
  {
    const std::string phrase =
        "<section class=\"generated\"><p>The small world web serves another "
        "synthesized page from the same prompt family.</p></section>";
    while (corpus.size() < (1u << 17)) {
      corpus.insert(corpus.end(), phrase.begin(), phrase.end());
      corpus.push_back(static_cast<std::uint8_t>(rng.NextU64() & 0xff));
    }
  }
  const simd::Lane entry_lane = simd::ActiveLane();
  simd::SetActiveLane(simd::Lane::kScalar);
  const util::Bytes ops_oracle = compress::Lz77Tokenize(corpus);
  simd::SetActiveLane(entry_lane);
  const util::Bytes ops_fast = compress::Lz77Tokenize(corpus);
  state.Modeled("lz77_op_stream_mismatch",
                ops_oracle == ops_fast ? 0.0 : 1.0);
  state.Modeled("lz77_op_stream_bytes", static_cast<double>(ops_oracle.size()));
  auto time_lz77 = [&] {
    state.Time("lz77_tokenize_simd", [&] {
      sink += compress::Lz77Tokenize(corpus).size();
    });
    simd::SetActiveLane(simd::Lane::kScalar);
    state.Time("lz77_tokenize_scalar", [&] {
      sink += compress::Lz77Tokenize(corpus).size();
    });
    simd::SetActiveLane(entry_lane);
  };
  time_lz77();

  // --- speedups -----------------------------------------------------------
  auto speedup = [&](const char* scalar_label, const char* simd_label) {
    const double scalar_ns = state.result().wall.at(scalar_label).median_ns;
    const double simd_ns = state.result().wall.at(simd_label).median_ns;
    return simd_ns > 0.0 ? scalar_ns / simd_ns : 0.0;
  };
  auto gate_cleared = [&] {
    return (speedup("denoise_blend_scalar", "denoise_blend_simd") >= 2.0 ? 1
                                                                         : 0) +
           (speedup("embedding_dot_scalar", "embedding_dot_simd") >= 2.0 ? 1
                                                                         : 0) +
           (speedup("lz77_tokenize_scalar", "lz77_tokenize_simd") >= 2.0 ? 1
                                                                         : 0);
  };
  if (active == simd::Lane::kAvx2) {
    // Wall medians on a busy single-core host can dip on one attempt; the
    // gate below is about the kernels, not the scheduler, so re-time the
    // key pairs (Time overwrites its label) up to twice before judging.
    for (int attempt = 0; attempt < 2 && gate_cleared() < 2; ++attempt) {
      time_blend();
      time_dot();
      time_lz77();
    }
  }
  const double blend_speedup =
      speedup("denoise_blend_scalar", "denoise_blend_simd");
  const double dot_speedup = speedup("embedding_dot_scalar", "embedding_dot_simd");
  const double texture_speedup = speedup("texture_row_scalar", "texture_row_simd");
  const double lz77_speedup = speedup("lz77_tokenize_scalar", "lz77_tokenize_simd");
  state.Info("denoise_blend_speedup", blend_speedup);
  state.Info("embedding_dot_speedup", dot_speedup);
  state.Info("texture_row_speedup", texture_speedup);
  state.Info("lz77_tokenize_speedup", lz77_speedup);
  std::printf("%-24s %8s\n", "kernel", "speedup");
  std::printf("%-24s %7.2fx\n", "denoise blend", blend_speedup);
  std::printf("%-24s %7.2fx\n", "embedding dot", dot_speedup);
  std::printf("%-24s %7.2fx\n", "texture row", texture_speedup);
  std::printf("%-24s %7.2fx\n", "lz77 tokenize", lz77_speedup);

  state.Check(sink > 0 && fsink == fsink, "fast-lane kernels produced no output");
  if (active == simd::Lane::kAvx2) {
    // The acceptance gate: with the AVX2 lane active, at least two of
    // the three key kernels must clear 2x over the scalar oracle.  The
    // gate is AVX2-only: the "scalar" oracle is auto-vectorized at -O3,
    // so the 2-wide SSE2 lane cannot be expected to double it, and with
    // SWW_SIMD=scalar forced both sides time the same code.  Identity
    // metrics above apply to every lane regardless.
    const int fast_kernels = (blend_speedup >= 2.0 ? 1 : 0) +
                             (dot_speedup >= 2.0 ? 1 : 0) +
                             (lz77_speedup >= 2.0 ? 1 : 0);
    if (fast_kernels < 2) {
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "only %d of {blend %.2fx, dot %.2fx, lz77 %.2fx} cleared "
                    "2x on lane %s",
                    fast_kernels, blend_speedup, dot_speedup, lz77_speedup,
                    std::string(simd::LaneName(active)).c_str());
      state.Check(false, msg);
    }
  }
}
SWW_BENCHMARK(simd_fastlane);

}  // namespace
