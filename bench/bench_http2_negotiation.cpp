// http2_negotiation — measures the protocol cost of the paper's §3
// modification and reproduces §6.2's functionality matrix:
//   * wire overhead of advertising SETTINGS_GEN_ABILITY (6 bytes/endpoint),
//   * the ablation from DESIGN.md §6.1: SETTINGS-based negotiation vs a
//     hypothetical per-request header ("x-sww-gen-ability: 1"),
//   * the four client/server support combinations and the serving mode
//     each one lands in.
// Emits telemetry artifacts under bench_out/ (see docs/observability.md):
//   bench_out/bench_http2_negotiation.trace.json   — chrome://tracing
//   bench_out/bench_http2_negotiation.metrics.jsonl — registry snapshot
#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>

#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "hpack/hpack.hpp"
#include "http2/connection.hpp"
#include "net/pump.hpp"
#include "obs/bench.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace {

using namespace sww;

/// Bytes of the initial SETTINGS exchange for an endpoint pair, with and
/// without the GEN_ABILITY entry.
std::uint64_t HandshakeBytes(bool advertise) {
  http2::Connection::Options options;
  options.local_settings.set_enable_push(false);
  if (advertise) {
    options.local_settings.set_gen_ability(http2::kGenAbilityFull);
  }
  http2::Connection client(http2::Connection::Role::kClient, options);
  http2::Connection server(http2::Connection::Role::kServer, options);
  client.StartHandshake();
  server.StartHandshake();
  net::DirectLinkExchange(client, server);
  return client.wire_stats().bytes_sent + server.wire_stats().bytes_sent;
}

void http2_negotiation(sww::obs::bench::State& state) {
  // Deterministic telemetry: a manual clock makes span durations reflect
  // simulated generation cost, so trace artifacts are identical across runs.
  static obs::ManualClock manual_clock;
  obs::Tracer::Default().SetClock(&manual_clock);
  obs::Tracer::Default().SetEnabled(true);

  std::printf("HTTP/2 negotiation cost and fallback matrix (3, 6.2)\n\n");

  // --- wire overhead of the extension ---------------------------------------
  const std::uint64_t base = HandshakeBytes(false);
  const std::uint64_t with_extension = HandshakeBytes(true);
  std::printf("Connection setup bytes (preface + SETTINGS + ACKs):\n");
  std::printf("  without GEN_ABILITY: %4llu B\n",
              static_cast<unsigned long long>(base));
  std::printf("  with    GEN_ABILITY: %4llu B  (+%llu B total, 6 B per "
              "advertising endpoint)\n\n",
              static_cast<unsigned long long>(with_extension),
              static_cast<unsigned long long>(with_extension - base));
  state.Modeled("handshake_bytes_base", static_cast<double>(base));
  state.Modeled("handshake_bytes_with_gen_ability",
                static_cast<double>(with_extension));

  // --- ablation: SETTINGS vs per-request header --------------------------------
  // A header-based design would re-send the capability on every request.
  hpack::Encoder encoder;
  hpack::HeaderList with_header = {{":method", "GET", false},
                                   {":scheme", "https", false},
                                   {":path", "/page", false},
                                   {":authority", "sww.local", false},
                                   {"x-sww-gen-ability", "1", false}};
  hpack::HeaderList without_header(with_header.begin(), with_header.end() - 1);
  const std::size_t first_with = encoder.EncodeBlock(with_header).size();
  const std::size_t later_with = encoder.EncodeBlock(with_header).size();
  hpack::Encoder encoder2;
  const std::size_t first_without = encoder2.EncodeBlock(without_header).size();
  const std::size_t later_without = encoder2.EncodeBlock(without_header).size();
  std::printf("Ablation - per-request header instead of SETTINGS:\n");
  std::printf("  request headers: first %zu B vs %zu B; subsequent %zu B vs "
              "%zu B (HPACK-indexed)\n",
              first_with, first_without, later_with, later_without);
  std::printf("  SETTINGS: 6 B once per connection; header: +%zu B on the "
              "first request and +%zu B on every later request\n\n",
              first_with - first_without, later_with - later_without);
  state.Modeled("header_ablation_first_extra_bytes",
                static_cast<double>(first_with - first_without));
  state.Modeled("header_ablation_later_extra_bytes",
                static_cast<double>(later_with - later_without));

  // --- §6.2 functionality matrix -----------------------------------------------
  core::ContentStore store;
  (void)store.AddPage("/", core::MakeGoldfishPage());

  struct Scenario {
    const char* label;
    const char* key;
    std::uint32_t client_ability;
    std::uint32_t server_ability;
  };
  const Scenario scenarios[] = {
      {"client+server support", "both", http2::kGenAbilityFull,
       http2::kGenAbilityFull},
      {"client only", "client_only", http2::kGenAbilityFull,
       http2::kGenAbilityNone},
      {"server only", "server_only", http2::kGenAbilityNone,
       http2::kGenAbilityFull},
      {"neither", "neither", http2::kGenAbilityNone, http2::kGenAbilityNone},
      // §2.2/§3: "the 32-bit field can be used to negotiate more complex
      // support options, such as upscale-only."
      {"upscale-only client", "upscale_only", http2::kGenAbilityUpscaleOnly,
       http2::kGenAbilityFull | http2::kGenAbilityUpscaleOnly},
  };
  std::printf("Functionality matrix (one goldfish page fetch):\n");
  std::printf("%-24s %-12s %12s %12s %14s\n", "scenario", "mode", "page[B]",
              "assets[B]", "client gen[s]");
  for (const Scenario& scenario : scenarios) {
    core::LocalSession::Options options;
    options.client.advertised_ability = scenario.client_ability;
    options.server.advertised_ability = scenario.server_ability;
    auto session = core::LocalSession::Start(&store, options);
    state.Check(session.ok(), std::string("session: ") + scenario.label);
    if (!session.ok()) return;
    auto fetch = session.value()->FetchPage("/");
    state.Check(fetch.ok(), std::string("fetch: ") + scenario.label);
    if (!fetch.ok()) return;
    std::printf("%-24s %-12s %12llu %12llu %14.1f\n", scenario.label,
                fetch.value().mode.empty() ? "-" : fetch.value().mode.c_str(),
                static_cast<unsigned long long>(fetch.value().page_bytes),
                static_cast<unsigned long long>(fetch.value().asset_bytes),
                fetch.value().generation_seconds);
    const std::string prefix = std::string(scenario.key) + ".";
    state.ModeledText(prefix + "mode",
                      fetch.value().mode.empty() ? "-" : fetch.value().mode);
    state.Modeled(prefix + "page_bytes",
                  static_cast<double>(fetch.value().page_bytes));
    state.Modeled(prefix + "asset_bytes",
                  static_cast<double>(fetch.value().asset_bytes));
    state.Modeled(prefix + "client_generation_seconds",
                  fetch.value().generation_seconds);
  }
  std::printf("\nPaper: \"Except for the first scenario, in all other cases "
              "the communication\ndefaulted to standard HTTP/2.\"\n");

  // --- telemetry artifacts -----------------------------------------------------
  // Side-products land under bench_out/ (gitignored), never in the tree.
  std::error_code fs_error;
  std::filesystem::create_directories("bench_out", fs_error);
  if (fs_error) {
    state.Check(false, "create bench_out/: " + fs_error.message());
    return;
  }
  const std::string trace_path = "bench_out/bench_http2_negotiation.trace.json";
  const std::string metrics_path =
      "bench_out/bench_http2_negotiation.metrics.jsonl";
  if (auto status = obs::WriteTraceFile(
          trace_path, obs::Tracer::Default().FinishedSpans(),
          "bench_http2_negotiation");
      !status.ok()) {
    state.Check(false, "write trace: " + status.ToString());
    return;
  }
  if (auto status = obs::WriteMetricsFile(
          metrics_path, obs::Registry::Default().Snapshot());
      !status.ok()) {
    state.Check(false, "write metrics: " + status.ToString());
    return;
  }
  std::printf("\nTelemetry: %s (%zu spans; open in chrome://tracing), %s\n",
              trace_path.c_str(), obs::Tracer::Default().finished_count(),
              metrics_path.c_str());
}
SWW_BENCHMARK(http2_negotiation);

}  // namespace
