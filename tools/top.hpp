// top.hpp — the sww_top aggregator: scrape /metrics endpoints (or read
// JSONL / Prometheus snapshot files), merge the samples on the shared
// log-linear histogram grid, and render one refreshing quantile/ratio
// table.
//
// Parsing and merging are pure functions over strings, so the whole
// aggregation path is unit-testable without sockets; ScrapeOnce is the
// only networked piece (a raw HTTP/2 GET over loopback TCP using the
// repo's own client stack).  `sww_top --once` renders a single table and
// exits — deterministic input files produce a byte-stable table, which is
// what lets CI golden-check the tool.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.hpp"
#include "util/error.hpp"

namespace sww::tools {

/// One source's parsed metric state.  Keys are Prometheus series names
/// (obs::PrometheusSeriesName output) regardless of the source format, so
/// samples from /metrics scrapes and run.metrics.jsonl files merge under
/// the same keys.
struct MetricsSample {
  std::string source;  ///< endpoint or file label, for the table header
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, obs::HistogramSnapshot> histograms;
};

/// Parse a Prometheus text exposition (the RenderPrometheusText output).
/// Histograms are rebuilt from their cumulative `_bucket{le="..."}` lines;
/// min/max are not carried by the format, so they are reconstructed from
/// the occupied bucket extents (quantiles stay within the grid's bucket
/// error).  Unknown or malformed lines are an error — a scrape that does
/// not round-trip should fail loudly.
util::Result<MetricsSample> ParsePrometheusText(std::string_view text);

/// Parse a JSON-lines registry snapshot (the ExportJsonLines output, one
/// instrument object per line).  Instrument names are normalized through
/// obs::PrometheusSeriesName.
util::Result<MetricsSample> ParseMetricsJsonl(std::string_view text);

/// Merge samples from many sources: counters and gauges add, histograms
/// merge exactly on the shared grid (obs::MergeHistogramSnapshots).
MetricsSample MergeSamples(const std::vector<MetricsSample>& samples);

/// Render the aggregated table: a histogram section (count/mean/p50/p95/
/// p99/max), a ratio/gauge section, and a counter section, each sorted by
/// series name.  Deterministic for deterministic input.
std::string RenderTopTable(const MetricsSample& merged,
                           std::size_t source_count);

/// GET `path` from a live server on 127.0.0.1:`port` over the repo's own
/// HTTP/2 stack and parse the body as a Prometheus exposition.
util::Result<MetricsSample> ScrapeOnce(std::uint16_t port,
                                       const std::string& path = "/metrics");

/// The sww_top entry point:
///   sww_top [--once] [--interval-ms N] [--endpoint PORT]...
///           [--prom FILE]... [--jsonl FILE]...
/// Returns the process exit code.
int RunTopMain(int argc, char** argv);

}  // namespace sww::tools
