// top.hpp — the sww_top aggregator: scrape /metrics endpoints (or read
// JSONL / Prometheus snapshot files), merge the samples on the shared
// log-linear histogram grid, and render one refreshing quantile/ratio
// table.
//
// Parsing and merging are pure functions over strings, so the whole
// aggregation path is unit-testable without sockets; ScrapeOnce is the
// only networked piece (a raw HTTP/2 GET over loopback TCP using the
// repo's own client stack).  `sww_top --once` renders a single table and
// exits — deterministic input files produce a byte-stable table, which is
// what lets CI golden-check the tool.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.hpp"
#include "obs/slo.hpp"
#include "util/error.hpp"

namespace sww::tools {

/// One source's parsed metric state.  Keys are Prometheus series names
/// (obs::PrometheusSeriesName output) regardless of the source format, so
/// samples from /metrics scrapes and run.metrics.jsonl files merge under
/// the same keys.
struct MetricsSample {
  std::string source;  ///< endpoint or file label, for the table header
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, obs::HistogramSnapshot> histograms;
};

/// Parse a Prometheus text exposition (the RenderPrometheusText output).
/// Histograms are rebuilt from their cumulative `_bucket{le="..."}` lines;
/// min/max are not carried by the format, so they are reconstructed from
/// the occupied bucket extents (quantiles stay within the grid's bucket
/// error).  OpenMetrics exemplar suffixes (` # {trace_id="..."} v ts`) on
/// bucket lines are parsed into the snapshot's exemplars.  Unknown or
/// malformed lines are an error — a scrape that does not round-trip
/// should fail loudly.
util::Result<MetricsSample> ParsePrometheusText(std::string_view text);

/// One quantile column of the top table: the value (0..100) plus its
/// header label ("P99", "P999").
struct QuantileSpec {
  double q = 0.0;
  std::string label;
};

/// Parse one `--quantiles` token ("p50", "p99", "p999" = 99.9, "p9999" =
/// 99.99): the first two digits are the integer part, the rest fraction.
util::Result<QuantileSpec> ParseQuantileToken(std::string_view token);

/// The default table columns: p50, p95, p99.
std::vector<QuantileSpec> DefaultQuantiles();

/// Parse a JSON-lines registry snapshot (the ExportJsonLines output, one
/// instrument object per line).  Instrument names are normalized through
/// obs::PrometheusSeriesName.
util::Result<MetricsSample> ParseMetricsJsonl(std::string_view text);

/// Merge samples from many sources: counters and gauges add, histograms
/// merge exactly on the shared grid (obs::MergeHistogramSnapshots).
MetricsSample MergeSamples(const std::vector<MetricsSample>& samples);

/// Render the aggregated table: a histogram section (count, one column
/// per requested quantile, max, and the newest tail exemplar trace id
/// when one is present), a ratio/gauge section, a counter section, and —
/// when any stock SLO objective's series is present — the SLO burn-rate
/// report.  Each section is sorted by series name; deterministic for
/// deterministic input.
std::string RenderTopTable(const MetricsSample& merged,
                           std::size_t source_count,
                           const std::vector<QuantileSpec>& quantiles);
/// Default-quantile convenience overload.
std::string RenderTopTable(const MetricsSample& merged,
                           std::size_t source_count);

/// Multi-source render.  With zero or one sample this is byte-identical
/// to the merged single-sample table above (so goldens over one source
/// are unaffected).  With more, the header grows a source legend
/// (S1 = <source>, ...) and every section gains one value column per
/// source next to the merged total: per-source counts for histograms,
/// per-source values for gauges and counters ("-" where a source does
/// not carry the series).  At most eight sources get columns; the rest
/// still fold into the merged totals.
std::string RenderTopTable(const std::vector<MetricsSample>& samples,
                           const std::vector<QuantileSpec>& quantiles);

/// GET `path` from a live server on 127.0.0.1:`port` over the repo's own
/// HTTP/2 stack and parse the body as a Prometheus exposition.
util::Result<MetricsSample> ScrapeOnce(std::uint16_t port,
                                       const std::string& path = "/metrics");

/// GET `path` from a live server on 127.0.0.1:`port` and return the raw
/// body (the `--fetch` mode CI uses to pull /debug/journal).
util::Result<std::string> FetchBodyOnce(std::uint16_t port,
                                        const std::string& path);

/// The sww_top entry point:
///   sww_top [--once] [--interval-ms N] [--quantiles p50,p95,p99,p999]
///           [--endpoint PORT]... [--prom FILE]... [--jsonl FILE]...
///           [--fetch PORT PATH]
/// Returns the process exit code.
int RunTopMain(int argc, char** argv);

}  // namespace sww::tools
