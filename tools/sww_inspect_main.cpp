// sww_inspect — run one instrumented SWW session and emit run artifacts:
//   run.report.txt     the analyzed run report (golden-diffable)
//   run.report.jsonl   the same report, machine-readable
//   run.frames.jsonl   the flight recorder's frame log
//   run.trace.json     Chrome trace_event JSON (open in Perfetto)
//   run.metrics.jsonl  registry snapshot
//
// Usage: sww_inspect [--out-dir DIR] [--wall-clock] [--print-frames]
//
// Deterministic by default (ManualClock from zero): running twice yields
// byte-identical artifacts.  --wall-clock switches to real time.
#include <cstdio>
#include <string>

#include "tools/inspect_run.hpp"

int main(int argc, char** argv) {
  std::string out_dir = ".";
  sww::tools::InspectOptions options;
  bool print_frames = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out-dir" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--wall-clock") {
      options.wall_clock = true;
    } else if (arg == "--print-frames") {
      print_frames = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: sww_inspect [--out-dir DIR] [--wall-clock] "
          "[--print-frames]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  auto result = sww::tools::RunInspect(options);
  if (!result.ok()) {
    std::fprintf(stderr, "inspect run failed: %s\n",
                 result.error().ToString().c_str());
    return 1;
  }
  if (auto status = sww::tools::WriteInspectArtifacts(result.value(), out_dir);
      !status.ok()) {
    std::fprintf(stderr, "writing artifacts failed: %s\n",
                 status.error().ToString().c_str());
    return 1;
  }
  std::fputs(result.value().report_text.c_str(), stdout);
  if (print_frames) std::fputs(result.value().frames_text.c_str(), stdout);
  std::printf("artifacts written to %s\n", out_dir.c_str());
  return 0;
}
