// sww_inspect — run one instrumented SWW session and emit run artifacts:
//   run.report.txt     the analyzed run report (golden-diffable)
//   run.report.jsonl   the same report, machine-readable
//   run.frames.jsonl   the flight recorder's frame log
//   run.trace.json     Chrome trace_event JSON (open in Perfetto)
//   run.metrics.jsonl  registry snapshot
//
// Usage: sww_inspect [--out-dir DIR] [--wall-clock] [--print-frames]
//                    [--allow-drops]
//
// Deterministic by default (ManualClock from zero): running twice yields
// byte-identical artifacts.  --wall-clock switches to real time.
//
// Exits non-zero when the flight-recorder or journal rings overwrote
// records mid-run — dropped telemetry means the artifacts are partial, and
// CI should notice rather than golden-diff a truncated view.  Pass
// --allow-drops to downgrade that to a warning.
#include <cstdio>
#include <string>

#include "tools/inspect_run.hpp"

int main(int argc, char** argv) {
  std::string out_dir = ".";
  sww::tools::InspectOptions options;
  bool print_frames = false;
  bool allow_drops = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out-dir" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--wall-clock") {
      options.wall_clock = true;
    } else if (arg == "--print-frames") {
      print_frames = true;
    } else if (arg == "--allow-drops") {
      allow_drops = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: sww_inspect [--out-dir DIR] [--wall-clock] "
          "[--print-frames] [--allow-drops]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  auto result = sww::tools::RunInspect(options);
  if (!result.ok()) {
    std::fprintf(stderr, "inspect run failed: %s\n",
                 result.error().ToString().c_str());
    return 1;
  }
  if (auto status = sww::tools::WriteInspectArtifacts(result.value(), out_dir);
      !status.ok()) {
    std::fprintf(stderr, "writing artifacts failed: %s\n",
                 status.error().ToString().c_str());
    return 1;
  }
  std::fputs(result.value().report_text.c_str(), stdout);
  if (print_frames) std::fputs(result.value().frames_text.c_str(), stdout);
  std::printf("artifacts written to %s\n", out_dir.c_str());
  const std::uint64_t frame_drops = result.value().report.frames_dropped;
  const std::uint64_t journal_drops = result.value().journal_dropped;
  if (frame_drops > 0 || journal_drops > 0) {
    std::fprintf(stderr,
                 "telemetry rings overwrote records: %llu frames, %llu "
                 "journal events%s\n",
                 static_cast<unsigned long long>(frame_drops),
                 static_cast<unsigned long long>(journal_drops),
                 allow_drops ? " (--allow-drops: continuing)" : "");
    if (!allow_drops) return 3;
  }
  return 0;
}
