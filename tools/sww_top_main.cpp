// sww_top — live aggregator over the telemetry plane: scrapes /metrics
// endpoints (and/or reads snapshot files) and renders a refreshing
// quantile/ratio table.  See tools/top.hpp.
#include "tools/top.hpp"

int main(int argc, char** argv) {
  return sww::tools::RunTopMain(argc, argv);
}
