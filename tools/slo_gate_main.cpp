// slo_gate — the CI burn-rate check: load a metrics artifact (Prometheus
// text or registry JSONL), evaluate the SLO objectives against it, print
// the report, and exit non-zero when any objective is burning.
//
// Usage: slo_gate [--prom FILE]... [--jsonl FILE]...
//                 [--objective name,series,quantile,threshold[,target]]...
//                 [--report FILE]
//
// With no --objective flags the stock objectives (DefaultSloObjectives)
// apply.  The artifact carries one cumulative snapshot per series, so
// both burn windows clamp to whole-run burn — the gate answers "did this
// run burn error budget", which is the right question for a CI artifact.
// CI injects a failing case by passing an --objective with a threshold
// below every observed latency (burn 100x >> 14.4x alert).
#include <cstdio>
#include <string>
#include <vector>

#include "obs/expose.hpp"
#include "obs/export.hpp"
#include "obs/slo.hpp"
#include "tools/top.hpp"

int main(int argc, char** argv) {
  using sww::obs::SloObjective;
  std::vector<std::string> prom_files;
  std::vector<std::string> jsonl_files;
  std::vector<SloObjective> objectives;
  std::string report_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--prom") {
      const char* value = next("--prom");
      if (value == nullptr) return 2;
      prom_files.emplace_back(value);
    } else if (arg == "--jsonl") {
      const char* value = next("--jsonl");
      if (value == nullptr) return 2;
      jsonl_files.emplace_back(value);
    } else if (arg == "--objective") {
      const char* value = next("--objective");
      if (value == nullptr) return 2;
      auto parsed = sww::obs::ParseSloObjectiveSpec(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.error().ToString().c_str());
        return 2;
      }
      objectives.push_back(std::move(parsed.value()));
    } else if (arg == "--report") {
      const char* value = next("--report");
      if (value == nullptr) return 2;
      report_file = value;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: slo_gate [--prom FILE]... [--jsonl FILE]...\n"
          "                [--objective name,series,q,threshold[,target]]...\n"
          "                [--report FILE]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (prom_files.empty() && jsonl_files.empty()) {
    std::fprintf(stderr, "no metrics input: give --prom or --jsonl\n");
    return 2;
  }
  if (objectives.empty()) objectives = sww::obs::DefaultSloObjectives();

  std::vector<sww::tools::MetricsSample> samples;
  for (const std::string& file : prom_files) {
    auto contents = sww::obs::ReadTextFile(file);
    if (!contents.ok()) {
      std::fprintf(stderr, "%s\n", contents.error().ToString().c_str());
      return 2;
    }
    auto sample = sww::tools::ParsePrometheusText(contents.value());
    if (!sample.ok()) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(),
                   sample.error().ToString().c_str());
      return 2;
    }
    samples.push_back(std::move(sample.value()));
  }
  for (const std::string& file : jsonl_files) {
    auto contents = sww::obs::ReadTextFile(file);
    if (!contents.ok()) {
      std::fprintf(stderr, "%s\n", contents.error().ToString().c_str());
      return 2;
    }
    auto sample = sww::tools::ParseMetricsJsonl(contents.value());
    if (!sample.ok()) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(),
                   sample.error().ToString().c_str());
      return 2;
    }
    samples.push_back(std::move(sample.value()));
  }
  const sww::tools::MetricsSample merged = sww::tools::MergeSamples(samples);

  // The artifact stores series under their Prometheus names; objectives
  // name registry series.  Normalize through the same mapping.
  sww::obs::SloEngine engine{std::move(objectives)};
  for (const SloObjective& objective : engine.objectives()) {
    auto it =
        merged.histograms.find(sww::obs::PrometheusSeriesName(objective.series));
    if (it == merged.histograms.end()) continue;
    engine.Ingest(objective.series, it->second, /*now_nanos=*/0);
  }
  const std::vector<sww::obs::SloEvaluation> evaluations =
      engine.Evaluate(/*now_nanos=*/0);
  const std::string report = sww::obs::RenderSloReport(evaluations);
  std::fputs(report.c_str(), stdout);
  if (!report_file.empty()) {
    if (auto status = sww::obs::WriteTextFile(report_file, report);
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.error().ToString().c_str());
      return 2;
    }
  }

  bool burning = false;
  bool missing = false;
  for (const sww::obs::SloEvaluation& evaluation : evaluations) {
    if (evaluation.burning) burning = true;
    if (!evaluation.have_series) missing = true;
  }
  if (missing) {
    std::fprintf(stderr, "slo_gate: an objective's series is absent from the "
                         "metrics input\n");
    return 2;
  }
  if (burning) {
    std::fprintf(stderr, "slo_gate: FAIL — error budget burning\n");
    return 1;
  }
  std::fprintf(stderr, "slo_gate: ok\n");
  return 0;
}
