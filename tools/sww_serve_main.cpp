// sww_serve — a self-hosted GenerativeServer over loopback TCP, mainly
// so CI (and humans) can point sww_top, sww_load --live, or curl-alikes
// at a live /metrics endpoint.  Serves the goldfish page at "/" plus the
// telemetry routes.
//
// Runs on the epoll reactor: --shards SO_REUSEPORT accept shards, each
// an event loop holding thousands of concurrent connections.  Exits
// after --max-connections connections have *closed* (0 = run until
// killed), preserving the old one-at-a-time semantics for CI scrapes.
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string_view>

#include "core/page_builder.hpp"
#include "core/reactor_host.hpp"

int main(int argc, char** argv) {
  using namespace sww;

  std::uint16_t port = 0;
  int max_connections = 0;
  int shards = 1;
  std::uint64_t idle_timeout_ms = 60'000;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--port") {
      const char* value = next("--port");
      if (value == nullptr) return 2;
      port = static_cast<std::uint16_t>(std::atoi(value));
    } else if (arg == "--max-connections") {
      const char* value = next("--max-connections");
      if (value == nullptr) return 2;
      max_connections = std::atoi(value);
    } else if (arg == "--shards") {
      const char* value = next("--shards");
      if (value == nullptr) return 2;
      shards = std::atoi(value);
    } else if (arg == "--idle-timeout-ms") {
      const char* value = next("--idle-timeout-ms");
      if (value == nullptr) return 2;
      idle_timeout_ms = static_cast<std::uint64_t>(std::atoll(value));
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--port N] [--max-connections N] [--shards N]\n"
          "          [--idle-timeout-ms N]\n"
          "  --port 0 picks a free port (printed on stdout)\n"
          "  --shards N runs N SO_REUSEPORT accept shards (default 1)\n",
          argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  core::ContentStore store;
  if (auto status = store.AddPage("/", core::MakeGoldfishPage());
      !status.ok()) {
    std::fprintf(stderr, "AddPage: %s\n", status.ToString().c_str());
    return 1;
  }

  std::mutex mutex;
  std::condition_variable all_closed;
  int closed = 0;

  core::ReactorHost::Options options;
  options.server.port = port;
  options.server.shards = shards;
  options.server.idle_timeout_ms = idle_timeout_ms;
  options.on_connection_close = [&](const core::GenerativeServer& server) {
    int index;
    {
      std::lock_guard<std::mutex> lock(mutex);
      index = ++closed;
    }
    std::printf("connection %d closed (%llu requests served)\n", index,
                static_cast<unsigned long long>(server.stats().requests));
    std::fflush(stdout);
    all_closed.notify_all();
  };

  auto host = core::ReactorHost::Start(&store, std::move(options));
  if (!host.ok()) {
    std::fprintf(stderr, "start: %s\n", host.error().ToString().c_str());
    return 1;
  }
  std::printf("listening 127.0.0.1:%u\n", host.value()->port());
  std::fflush(stdout);

  if (max_connections == 0) {
    // Run until killed.
    std::unique_lock<std::mutex> lock(mutex);
    all_closed.wait(lock, [] { return false; });
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    all_closed.wait(lock, [&] { return closed >= max_connections; });
  }
  host.value()->Shutdown();
  return 0;
}
