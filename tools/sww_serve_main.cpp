// sww_serve — a minimal self-hosted GenerativeServer over loopback TCP,
// mainly so CI (and humans) can point sww_top or curl-alikes at a live
// /metrics endpoint.  Serves the goldfish page at "/" plus the telemetry
// routes; accepts one connection at a time and exits after
// --max-connections connections (0 = run until killed).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <thread>

#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "net/pump.hpp"
#include "net/tcp.hpp"

int main(int argc, char** argv) {
  using namespace sww;

  std::uint16_t port = 0;
  int max_connections = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--port") {
      const char* value = next("--port");
      if (value == nullptr) return 2;
      port = static_cast<std::uint16_t>(std::atoi(value));
    } else if (arg == "--max-connections") {
      const char* value = next("--max-connections");
      if (value == nullptr) return 2;
      max_connections = std::atoi(value);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--max-connections N]\n"
                   "  --port 0 picks a free port (printed on stdout)\n",
                   argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  core::ContentStore store;
  if (auto status = store.AddPage("/", core::MakeGoldfishPage());
      !status.ok()) {
    std::fprintf(stderr, "AddPage: %s\n", status.ToString().c_str());
    return 1;
  }

  auto listener = net::TcpListener::Bind(port);
  if (!listener.ok()) {
    std::fprintf(stderr, "bind: %s\n", listener.error().ToString().c_str());
    return 1;
  }
  std::printf("listening 127.0.0.1:%u\n", listener.value()->port());
  std::fflush(stdout);

  int served = 0;
  while (max_connections == 0 || served < max_connections) {
    auto transport = listener.value()->Accept(30000);
    if (!transport.ok()) {
      std::fprintf(stderr, "accept: %s\n",
                   transport.error().ToString().c_str());
      return 1;
    }
    auto server = core::GenerativeServer::Create(&store, {});
    if (!server.ok()) {
      std::fprintf(stderr, "server: %s\n", server.error().ToString().c_str());
      return 1;
    }
    server.value()->StartHandshake();
    for (int round = 0; round < 1000000; ++round) {
      auto pumped =
          net::PumpOnce(server.value()->connection(), *transport.value());
      if (!pumped.ok() || pumped.value().peer_closed) break;
      if (auto status = server.value()->ProcessEvents(); !status.ok()) break;
      if (!pumped.value().made_progress) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    transport.value()->Close();
    ++served;
    std::printf("connection %d closed (%llu requests served)\n", served,
                static_cast<unsigned long long>(
                    server.value()->stats().requests));
    std::fflush(stdout);
  }
  return 0;
}
