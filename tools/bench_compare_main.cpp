// bench_compare — the CI regression gate over two BENCH_sww.json files.
//
//   bench_compare baseline.json current.json [--wall-tolerance X]
//                 [--modeled-only]
//
// Exit codes: 0 no regressions; 1 regression / missing benchmark or
// metric; 2 usage or file/parse/schema error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "json/json.hpp"
#include "obs/bench_diff.hpp"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <current.json>"
               " [--wall-tolerance X] [--modeled-only]\n"
               "  --wall-tolerance X  wall medians may regress by fraction X"
               " (default 0.25; negative disables)\n"
               "  --modeled-only      gate only modeled metrics (CI default)\n",
               argv0);
  return 2;
}

sww::util::Result<sww::json::Value> LoadJson(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return sww::util::Error(sww::util::ErrorCode::kIo, "cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return sww::json::Parse(buffer.str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sww;
  std::string baseline_path, current_path;
  obs::bench::CompareOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--wall-tolerance") {
      if (++i >= argc) return Usage(argv[0]);
      options.wall_tolerance = std::strtod(argv[i], nullptr);
    } else if (arg == "--modeled-only") {
      options.modeled_only = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (baseline_path.empty() || current_path.empty()) return Usage(argv[0]);

  auto baseline = LoadJson(baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline: %s\n", baseline.error().ToString().c_str());
    return 2;
  }
  auto current = LoadJson(current_path);
  if (!current.ok()) {
    std::fprintf(stderr, "current: %s\n", current.error().ToString().c_str());
    return 2;
  }

  auto result = obs::bench::CompareBenchJson(baseline.value(), current.value(),
                                             options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.error().ToString().c_str());
    return 2;
  }
  std::fputs(obs::bench::RenderCompareText(result.value()).c_str(), stdout);
  return result.value().ok() ? 0 : 1;
}
