#include "tools/load_run.hpp"

int main(int argc, char** argv) {
  return sww::tools::RunLoadMain(argc, argv);
}
