#include "tools/load_run.hpp"

#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <memory>
#include <string_view>

#include "core/session.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"

#include "load/report.hpp"
#include "load/spec.hpp"
#include "obs/export.hpp"
#include "obs/expose.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace sww::tools {

using util::Result;
using util::Status;

namespace {

/// mkdir -p, mirroring inspect_run's artifact writer.
Status EnsureDirectory(const std::string& path) {
  std::string prefix;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t end = path.find('/', start);
    if (end == std::string::npos) end = path.size();
    prefix = path.substr(0, end);
    start = end + 1;
    if (prefix.empty() || prefix == ".") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return util::Error(util::ErrorCode::kIo,
                         "cannot create directory: " + prefix);
    }
  }
  return Status::Ok();
}

/// Raise the fd soft limit so a large --hold herd fits client-side.
void RaiseFdLimit(rlim_t want) {
  struct rlimit limit;
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  if (limit.rlim_cur >= want) return;
  limit.rlim_cur = std::min(want, limit.rlim_max);
  ::setrlimit(RLIMIT_NOFILE, &limit);
}

}  // namespace

Result<LiveLoadResult> RunLiveLoad(const LoadOptions& options) {
  if (options.live_port <= 0 || options.live_port > 65535) {
    return util::Error(util::ErrorCode::kInvalidArgument,
                       "--live-port must be a TCP port");
  }
  const auto port = static_cast<std::uint16_t>(options.live_port);
  RaiseFdLimit(static_cast<rlim_t>(options.hold) + 512);

  LiveLoadResult result;

  // Idle herd: raw TCP connections that never speak HTTP/2 — they only
  // occupy the server's epoll interest set while the burst runs.
  std::vector<std::unique_ptr<net::Transport>> herd;
  herd.reserve(static_cast<std::size_t>(std::max(options.hold, 0)));
  for (int i = 0; i < options.hold; ++i) {
    auto transport = net::TcpConnect(port);
    if (!transport.ok()) return transport.error();
    herd.push_back(std::move(transport).value());
    ++result.held;
  }

  // Burst: one persistent session, sequential fetches through the live
  // scatter-gather write path.
  if (options.burst > 0) {
    auto session = core::LoopbackSession::Connect(port);
    if (!session.ok()) return session.error();
    for (int i = 0; i < options.burst; ++i) {
      auto fetch = session.value()->FetchPage("/");
      if (!fetch.ok()) continue;
      ++result.burst_ok;
      if (result.serve_mode.empty()) result.serve_mode = fetch.value().mode;
    }
    session.value()->Close();
  }
  herd.clear();

  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "live reactor load\n"
                "=================\n"
                "held connections : %d / %d\n"
                "burst requests   : %d / %d ok\n"
                "serve mode       : %s\n",
                result.held, options.hold, result.burst_ok, options.burst,
                result.serve_mode.empty() ? "(none)"
                                          : result.serve_mode.c_str());
  result.report = buffer;

  if (!options.out_dir.empty()) {
    if (Status status = EnsureDirectory(options.out_dir); !status.ok()) {
      return status.error();
    }
    if (Status status = obs::WriteTextFile(options.out_dir + "/live.report.txt",
                                           result.report);
        !status.ok()) {
      return status.error();
    }
  }
  return result;
}

Result<LoadResult> RunLoad(const LoadOptions& options) {
  std::vector<load::ScenarioSpec> specs;
  std::vector<std::string> names = options.scenario_names;
  if (names.empty() && options.spec_file.empty()) names.push_back("smoke");
  for (const std::string& name : names) {
    auto spec = load::FindBuiltinScenario(name);
    if (!spec.ok()) return spec.error();
    specs.push_back(std::move(spec.value()));
  }
  if (!options.spec_file.empty()) {
    auto text = obs::ReadTextFile(options.spec_file);
    if (!text.ok()) return text.error();
    auto parsed = load::ParseScenarioSpecText(text.value());
    if (!parsed.ok()) return parsed.error();
    for (load::ScenarioSpec& spec : parsed.value()) {
      specs.push_back(std::move(spec));
    }
  }

  // Start from a clean observability plane so artifacts depend only on
  // the specs (Registry::Reset zeroes but keeps instruments; a fresh
  // process has a stable series set).
  obs::Tracer::Default().Clear();
  obs::Registry::Default().Reset();
  obs::Journal::Default().Clear();

  std::unique_ptr<util::ThreadPool> pool;
  load::EngineOptions engine_options;
  if (options.threads > 0) {
    pool = std::make_unique<util::ThreadPool>(options.threads);
    engine_options.pool = pool.get();
  }

  LoadResult result;
  for (const load::ScenarioSpec& spec : specs) {
    auto run = load::RunScenario(spec, engine_options);
    if (!run.ok()) return run.error();
    result.scenarios.push_back(std::move(run.value()));
  }
  result.report = load::RenderLoadReport(result.scenarios);
  result.metrics_prom =
      obs::RenderPrometheusText(obs::Registry::Default().Snapshot());
  result.journal_jsonl = obs::RenderJournalJsonLines(obs::Journal::Default());

  if (!options.out_dir.empty()) {
    if (Status status = EnsureDirectory(options.out_dir); !status.ok()) {
      return status.error();
    }
    const struct {
      const char* name;
      const std::string* body;
    } artifacts[] = {
        {"load.report.txt", &result.report},
        {"load.metrics.prom", &result.metrics_prom},
        {"load.journal.jsonl", &result.journal_jsonl},
    };
    for (const auto& artifact : artifacts) {
      if (Status status = obs::WriteTextFile(
              options.out_dir + "/" + artifact.name, *artifact.body);
          !status.ok()) {
        return status.error();
      }
    }
  }
  return result;
}

int RunLoadMain(int argc, char** argv) {
  LoadOptions options;
  bool list = false;
  std::string print_spec;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sww_load: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      const char* value = next_value("--scenario");
      if (value == nullptr) return 2;
      options.scenario_names.push_back(value);
    } else if (arg == "--spec") {
      const char* value = next_value("--spec");
      if (value == nullptr) return 2;
      options.spec_file = value;
    } else if (arg == "--out-dir") {
      const char* value = next_value("--out-dir");
      if (value == nullptr) return 2;
      options.out_dir = value;
    } else if (arg == "--threads") {
      const char* value = next_value("--threads");
      if (value == nullptr) return 2;
      options.threads = std::atoi(value);
    } else if (arg == "--live-port") {
      const char* value = next_value("--live-port");
      if (value == nullptr) return 2;
      options.live_port = std::atoi(value);
    } else if (arg == "--hold") {
      const char* value = next_value("--hold");
      if (value == nullptr) return 2;
      options.hold = std::atoi(value);
    } else if (arg == "--burst") {
      const char* value = next_value("--burst");
      if (value == nullptr) return 2;
      options.burst = std::atoi(value);
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--print-spec") {
      const char* value = next_value("--print-spec");
      if (value == nullptr) return 2;
      print_spec = value;
    } else {
      std::fprintf(stderr,
                   "usage: sww_load [--scenario NAME]... [--spec FILE]\n"
                   "                [--out-dir DIR] [--threads N]\n"
                   "                [--list] [--print-spec NAME]\n"
                   "                [--live-port P --hold N --burst M]\n");
      return 2;
    }
  }

  if (list) {
    for (const load::ScenarioSpec& spec : load::BuiltinScenarios()) {
      std::printf("%s\n", spec.name.c_str());
    }
    return 0;
  }
  if (!print_spec.empty()) {
    auto spec = load::FindBuiltinScenario(print_spec);
    if (!spec.ok()) {
      std::fprintf(stderr, "sww_load: %s\n",
                   spec.error().ToString().c_str());
      return 1;
    }
    std::printf("%s\n",
                load::ScenarioSpecToJson(spec.value()).DumpPretty().c_str());
    return 0;
  }

  if (options.live_port != 0) {
    auto live = RunLiveLoad(options);
    if (!live.ok()) {
      std::fprintf(stderr, "sww_load: %s\n", live.error().ToString().c_str());
      return 1;
    }
    std::fputs(live.value().report.c_str(), stdout);
    return 0;
  }

  auto result = RunLoad(options);
  if (!result.ok()) {
    std::fprintf(stderr, "sww_load: %s\n", result.error().ToString().c_str());
    return 1;
  }
  std::fputs(result.value().report.c_str(), stdout);
  return 0;
}

}  // namespace sww::tools
