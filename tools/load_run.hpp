// load_run.hpp — the sww_load driver: run fleet workload scenarios and
// emit their observability artifacts.
//
//   sww_load [--scenario NAME]... [--spec FILE.json] [--out-dir DIR]
//            [--threads N] [--list] [--print-spec NAME]
//   sww_load --live-port P [--hold N] [--burst M] [--out-dir DIR]
//
// Scenarios come from the builtin set (load::BuiltinScenarios) by name
// and/or from a JSON spec file (one object or an array; the grammar is
// documented in docs/performance.md).  With no selection the "smoke"
// scenario runs.  Artifacts land in --out-dir:
//
//   load.report.txt     — per-scenario report (the CI golden)
//   load.metrics.prom   — Prometheus exposition of the run's registry
//   load.journal.jsonl  — the wide-event journal (ring-bounded)
//
// The run is deterministic: a fixed spec produces byte-identical
// artifacts across repeated runs and --threads values.
#pragma once

#include <string>
#include <vector>

#include "load/engine.hpp"
#include "util/error.hpp"

namespace sww::tools {

struct LoadOptions {
  std::vector<std::string> scenario_names;  ///< builtin names to run
  std::string spec_file;                    ///< JSON spec file (optional)
  std::string out_dir;                      ///< empty: no artifacts
  int threads = 0;                          ///< 0: shared pool
  // Live mode (--live-port): instead of the virtual-clock engine, dial a
  // running reactor server over real sockets — hold `hold` idle TCP
  // connections, then push `burst` page fetches through one persistent
  // HTTP/2 session.  Produces live.report.txt (counts only, so the
  // artifact is deterministic and CI can diff it against a golden).
  int live_port = 0;                        ///< 0: modeled engine mode
  int hold = 0;                             ///< idle connections to hold
  int burst = 0;                            ///< page fetches to push
};

struct LiveLoadResult {
  int held = 0;             ///< connections successfully dialed and held
  int burst_ok = 0;         ///< successful page fetches
  std::string serve_mode;   ///< x-sww-mode of the first fetch
  std::string report;       ///< live.report.txt contents
};

/// Live mode: exercise a running reactor server through real sockets.
util::Result<LiveLoadResult> RunLiveLoad(const LoadOptions& options);

struct LoadResult {
  std::vector<load::ScenarioResult> scenarios;
  std::string report;          ///< load.report.txt contents
  std::string metrics_prom;    ///< load.metrics.prom contents
  std::string journal_jsonl;   ///< load.journal.jsonl contents
};

/// Run the selected scenarios (resetting the process registry, journal
/// and tracer first, like RunInspect) and render the artifacts.
util::Result<LoadResult> RunLoad(const LoadOptions& options);

/// CLI entry point; returns the process exit code.
int RunLoadMain(int argc, char** argv);

}  // namespace sww::tools
