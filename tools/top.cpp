#include "tools/top.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/session.hpp"
#include "json/json.hpp"
#include "obs/expose.hpp"
#include "obs/export.hpp"

namespace sww::tools {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

/// Cumulative histogram state accumulated while scanning exposition lines.
struct HistogramBuild {
  std::vector<double> bounds;
  std::vector<std::uint64_t> cumulative;
  std::vector<obs::HistogramExemplar> exemplars;  ///< parallel to bounds
  obs::HistogramExemplar overflow_exemplar;       ///< from the +Inf line
  std::uint64_t count = 0;
  double sum = 0.0;
  bool have_count = false;
};

/// Rebuild a HistogramSnapshot from cumulative buckets.  The exposition
/// format carries no min/max, so they come from the occupied bucket
/// extents — good to the grid's bucket error, which is all the quantile
/// path promises anyway.
obs::HistogramSnapshot FinalizeHistogram(const HistogramBuild& build) {
  obs::HistogramSnapshot snapshot;
  std::uint64_t previous = 0;
  for (std::size_t i = 0; i < build.bounds.size(); ++i) {
    const std::uint64_t n =
        build.cumulative[i] >= previous ? build.cumulative[i] - previous : 0;
    previous = build.cumulative[i];
    snapshot.bounds.push_back(build.bounds[i]);
    snapshot.counts.push_back(n);
  }
  for (std::size_t i = 0; i < build.bounds.size(); ++i) {
    snapshot.exemplars.push_back(
        i < build.exemplars.size() ? build.exemplars[i]
                                   : obs::HistogramExemplar{});
  }
  const std::uint64_t overflow = build.count >= previous
                                     ? build.count - previous
                                     : 0;  // +Inf bucket
  snapshot.counts.push_back(overflow);
  snapshot.exemplars.push_back(build.overflow_exemplar);
  snapshot.count = static_cast<std::size_t>(build.count);
  snapshot.sum = build.sum;
  for (std::size_t i = 0; i < snapshot.bounds.size(); ++i) {
    if (snapshot.counts[i] == 0) continue;
    if (snapshot.min == 0.0) {
      snapshot.min = obs::Histogram::LowerBoundForUpper(snapshot.bounds[i]);
    }
    snapshot.max = snapshot.bounds[i];
  }
  if (overflow > 0) snapshot.max = obs::Histogram::kMaxValue;
  if (snapshot.count > 0) {
    snapshot.mean = snapshot.sum / static_cast<double>(snapshot.count);
    snapshot.p50 = obs::HistogramSnapshotQuantile(snapshot, 50.0);
    snapshot.p95 = obs::HistogramSnapshotQuantile(snapshot, 95.0);
    snapshot.p99 = obs::HistogramSnapshotQuantile(snapshot, 99.0);
  }
  return snapshot;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

}  // namespace

Result<MetricsSample> ParsePrometheusText(std::string_view text) {
  MetricsSample sample;
  std::map<std::string, std::string> types;  // series → counter/gauge/histogram
  std::map<std::string, HistogramBuild> builds;
  std::size_t start = 0;
  std::size_t line_number = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (line.empty()) continue;
    auto fail = [&](const std::string& what) {
      return Error(ErrorCode::kInvalidArgument,
                   "prometheus line " + std::to_string(line_number) + ": " +
                       what + ": " + std::string(line));
    };
    if (line[0] == '#') {
      // Only "# TYPE <series> <type>" carries structure; other comments
      // are ignored.
      constexpr std::string_view kType = "# TYPE ";
      if (line.substr(0, kType.size()) != kType) continue;
      const std::string_view rest = line.substr(kType.size());
      const std::size_t space = rest.find(' ');
      if (space == std::string_view::npos) return fail("malformed TYPE");
      types[std::string(rest.substr(0, space))] =
          std::string(rest.substr(space + 1));
      continue;
    }
    // Sample line: <name>[{labels}] <value>[ # {trace_id="..."} v ts]
    // The OpenMetrics exemplar suffix, when present, is split off first so
    // the value parse below never grabs the exemplar timestamp.
    std::string_view body = line;
    obs::HistogramExemplar exemplar;
    if (const std::size_t marker = line.find(" # ");
        marker != std::string_view::npos) {
      const std::string_view suffix = line.substr(marker + 3);
      constexpr std::string_view kTraceLabel = "{trace_id=\"";
      if (suffix.substr(0, kTraceLabel.size()) != kTraceLabel) {
        return fail("malformed exemplar");
      }
      const std::size_t id_start = kTraceLabel.size();
      const std::size_t id_end = suffix.find('"', id_start);
      if (id_end == std::string_view::npos ||
          suffix.substr(id_end, 3) != "\"} ") {
        return fail("malformed exemplar");
      }
      const std::string id_text(suffix.substr(id_start, id_end - id_start));
      exemplar.trace_id = std::strtoull(id_text.c_str(), nullptr, 16);
      const std::string tail(suffix.substr(id_end + 3));
      char* after_value = nullptr;
      exemplar.value = std::strtod(tail.c_str(), &after_value);
      if (after_value == nullptr || *after_value != ' ') {
        return fail("exemplar without timestamp");
      }
      exemplar.timestamp_nanos = static_cast<std::uint64_t>(
          std::strtod(after_value + 1, nullptr) * 1e9);
      body = line.substr(0, marker);
    }
    const std::size_t brace = body.find('{');
    const std::size_t space = body.find(' ');
    if (space == std::string_view::npos) return fail("no value");
    const std::string name(body.substr(0, std::min(brace, space)));
    const std::string value_text(body.substr(body.rfind(' ') + 1));
    if (auto it = types.find(name); it != types.end()) {
      if (it->second == "counter") {
        sample.counters[name] =
            std::strtoull(value_text.c_str(), nullptr, 10);
        continue;
      }
      if (it->second == "gauge") {
        sample.gauges[name] = std::strtod(value_text.c_str(), nullptr);
        continue;
      }
    }
    // Histogram member lines: <base>_bucket{le="..."} / <base>_sum /
    // <base>_count, where <base> was declared "# TYPE <base> histogram".
    auto histogram_base = [&](std::string_view suffix) -> std::string {
      if (!EndsWith(name, suffix)) return {};
      const std::string base = name.substr(0, name.size() - suffix.size());
      auto it = types.find(base);
      return it != types.end() && it->second == "histogram" ? base
                                                            : std::string{};
    };
    if (const std::string base = histogram_base("_bucket"); !base.empty()) {
      constexpr std::string_view kLe = "{le=\"";
      const std::size_t le = line.find(kLe);
      if (le == std::string_view::npos) return fail("bucket without le");
      const std::size_t le_start = le + kLe.size();
      const std::size_t le_end = line.find('"', le_start);
      if (le_end == std::string_view::npos) return fail("unterminated le");
      const std::string le_text(line.substr(le_start, le_end - le_start));
      HistogramBuild& build = builds[base];
      const std::uint64_t cumulative =
          std::strtoull(value_text.c_str(), nullptr, 10);
      if (le_text == "+Inf") {
        build.count = cumulative;
        build.have_count = true;
        build.overflow_exemplar = exemplar;
      } else {
        build.bounds.push_back(std::strtod(le_text.c_str(), nullptr));
        build.cumulative.push_back(cumulative);
        build.exemplars.push_back(exemplar);
      }
      continue;
    }
    if (const std::string base = histogram_base("_sum"); !base.empty()) {
      builds[base].sum = std::strtod(value_text.c_str(), nullptr);
      continue;
    }
    if (const std::string base = histogram_base("_count"); !base.empty()) {
      builds[base].count = std::strtoull(value_text.c_str(), nullptr, 10);
      builds[base].have_count = true;
      continue;
    }
    return fail("series without TYPE");
  }
  for (const auto& [base, build] : builds) {
    if (!build.have_count) {
      return Error(ErrorCode::kInvalidArgument,
                   "histogram " + base + " has buckets but no _count");
    }
    sample.histograms[base] = FinalizeHistogram(build);
  }
  return sample;
}

Result<MetricsSample> ParseMetricsJsonl(std::string_view text) {
  MetricsSample sample;
  std::size_t start = 0;
  std::size_t line_number = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (line.empty()) continue;
    auto parsed = json::Parse(line);
    if (!parsed.ok()) {
      return Error(ErrorCode::kInvalidArgument,
                   "jsonl line " + std::to_string(line_number) + ": " +
                       parsed.error().ToString());
    }
    const json::Value& doc = parsed.value();
    const std::string kind = doc.GetString("kind");
    const std::string series = obs::PrometheusSeriesName(doc.GetString("name"));
    if (kind == "counter") {
      sample.counters[series] =
          static_cast<std::uint64_t>(doc.GetInt("value"));
    } else if (kind == "gauge") {
      sample.gauges[series] = doc.GetNumber("value");
    } else if (kind == "histogram") {
      obs::HistogramSnapshot snapshot;
      snapshot.count = static_cast<std::size_t>(doc.GetInt("count"));
      snapshot.sum = doc.GetNumber("sum");
      snapshot.min = doc.GetNumber("min");
      snapshot.max = doc.GetNumber("max");
      snapshot.mean = doc.GetNumber("mean");
      snapshot.p50 = doc.GetNumber("p50");
      snapshot.p95 = doc.GetNumber("p95");
      snapshot.p99 = doc.GetNumber("p99");
      if (const json::Value* bounds = doc.Get("bounds");
          bounds != nullptr && bounds->is_array()) {
        for (const json::Value& bound : bounds->AsArray()) {
          snapshot.bounds.push_back(bound.AsNumber());
        }
      }
      if (const json::Value* counts = doc.Get("counts");
          counts != nullptr && counts->is_array()) {
        for (const json::Value& count : counts->AsArray()) {
          snapshot.counts.push_back(
              static_cast<std::uint64_t>(count.AsInt()));
        }
      }
      if (snapshot.counts.size() != snapshot.bounds.size() + 1) {
        return Error(ErrorCode::kInvalidArgument,
                     "jsonl line " + std::to_string(line_number) +
                         ": histogram counts/bounds mismatch");
      }
      sample.histograms[series] = std::move(snapshot);
    } else {
      return Error(ErrorCode::kInvalidArgument,
                   "jsonl line " + std::to_string(line_number) +
                       ": unknown kind \"" + kind + "\"");
    }
  }
  return sample;
}

MetricsSample MergeSamples(const std::vector<MetricsSample>& samples) {
  MetricsSample merged;
  merged.source = "merged";
  std::map<std::string, std::vector<obs::HistogramSnapshot>> parts;
  for (const MetricsSample& sample : samples) {
    for (const auto& [name, value] : sample.counters) {
      merged.counters[name] += value;
    }
    for (const auto& [name, value] : sample.gauges) {
      merged.gauges[name] += value;
    }
    for (const auto& [name, histogram] : sample.histograms) {
      parts[name].push_back(histogram);
    }
  }
  for (const auto& [name, snapshots] : parts) {
    merged.histograms[name] = obs::MergeHistogramSnapshots(snapshots);
  }
  return merged;
}

util::Result<QuantileSpec> ParseQuantileToken(std::string_view token) {
  if (token.size() < 2 || (token[0] != 'p' && token[0] != 'P')) {
    return Error(ErrorCode::kInvalidArgument,
                 "quantile token must look like p50/p99/p999: " +
                     std::string(token));
  }
  const std::string_view digits = token.substr(1);
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Error(ErrorCode::kInvalidArgument,
                   "quantile token must be digits after 'p': " +
                       std::string(token));
    }
  }
  // Convention: first two digits are the integer part, the rest the
  // fraction — p50 = 50, p999 = 99.9, p9999 = 99.99.
  std::string text(digits.substr(0, 2));
  if (digits.size() > 2) {
    text += '.';
    text += digits.substr(2);
  }
  QuantileSpec spec;
  spec.q = std::strtod(text.c_str(), nullptr);
  if (!(spec.q >= 0.0 && spec.q <= 100.0)) {
    return Error(ErrorCode::kInvalidArgument,
                 "quantile out of range: " + std::string(token));
  }
  spec.label = "P" + std::string(digits);
  return spec;
}

std::vector<QuantileSpec> DefaultQuantiles() {
  return {{50.0, "P50"}, {95.0, "P95"}, {99.0, "P99"}};
}

std::string RenderTopTable(const MetricsSample& merged,
                           std::size_t source_count,
                           const std::vector<QuantileSpec>& quantiles) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "sww_top — %zu source%s · %zu counters · %zu gauges · %zu "
                "histograms\n",
                source_count, source_count == 1 ? "" : "s",
                merged.counters.size(), merged.gauges.size(),
                merged.histograms.size());
  out += line;
  if (!merged.histograms.empty()) {
    std::snprintf(line, sizeof(line), "\n%-44s %10s", "HISTOGRAM", "COUNT");
    out += line;
    for (const QuantileSpec& spec : quantiles) {
      std::snprintf(line, sizeof(line), " %10s", spec.label.c_str());
      out += line;
    }
    std::snprintf(line, sizeof(line), " %10s %16s\n", "MAX", "EXEMPLAR");
    out += line;
    for (const auto& [name, h] : merged.histograms) {
      std::snprintf(line, sizeof(line), "%-44s %10zu", name.c_str(), h.count);
      out += line;
      for (const QuantileSpec& spec : quantiles) {
        std::snprintf(line, sizeof(line), " %10.4g",
                      obs::HistogramSnapshotQuantile(h, spec.q));
        out += line;
      }
      // The tail exemplar: the newest traced observation in the highest
      // occupied bucket — the trace id to pull from the journal when the
      // tail looks wrong.
      std::string exemplar_text = "-";
      for (std::size_t i = h.exemplars.size(); i-- > 0;) {
        if (h.exemplars[i].trace_id != 0) {
          char id[17];
          std::snprintf(id, sizeof(id), "%016llx",
                        static_cast<unsigned long long>(
                            h.exemplars[i].trace_id));
          exemplar_text = id;
          break;
        }
      }
      std::snprintf(line, sizeof(line), " %10.4g %16s\n", h.max,
                    exemplar_text.c_str());
      out += line;
    }
  }
  if (!merged.gauges.empty()) {
    std::snprintf(line, sizeof(line), "\n%-44s %10s\n", "GAUGE", "VALUE");
    out += line;
    for (const auto& [name, value] : merged.gauges) {
      std::snprintf(line, sizeof(line), "%-44s %10.6g\n", name.c_str(), value);
      out += line;
    }
  }
  if (!merged.counters.empty()) {
    std::snprintf(line, sizeof(line), "\n%-44s %10s\n", "COUNTER", "VALUE");
    out += line;
    for (const auto& [name, value] : merged.counters) {
      std::snprintf(line, sizeof(line), "%-44s %10llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out += line;
    }
  }
  // Burn-rate report over the stock objectives, for whichever of their
  // series this merged sample carries.  A single sample gives the engine
  // one cumulative snapshot: both windows clamp to whole-run burn, which
  // is exactly the liveness question "is this run burning error budget".
  obs::SloEngine engine{obs::DefaultSloObjectives()};
  bool any_series = false;
  for (const obs::SloObjective& objective : engine.objectives()) {
    auto it = merged.histograms.find(obs::PrometheusSeriesName(objective.series));
    if (it == merged.histograms.end()) continue;
    engine.Ingest(objective.series, it->second, /*now_nanos=*/0);
    any_series = true;
  }
  if (any_series) {
    out += '\n';
    out += obs::RenderSloReport(engine.Evaluate(/*now_nanos=*/0));
  }
  return out;
}

std::string RenderTopTable(const MetricsSample& merged,
                           std::size_t source_count) {
  return RenderTopTable(merged, source_count, DefaultQuantiles());
}

std::string RenderTopTable(const std::vector<MetricsSample>& samples,
                           const std::vector<QuantileSpec>& quantiles) {
  const MetricsSample merged = MergeSamples(samples);
  if (samples.size() <= 1) {
    return RenderTopTable(merged, samples.size(), quantiles);
  }
  // Fleet view: the merged table layout widened with one column per
  // source, so a lopsided member (one host eating the tail, one host
  // dropping journal records) is visible without re-scraping each
  // endpoint alone.
  constexpr std::size_t kMaxSourceColumns = 8;
  const std::size_t shown = std::min(samples.size(), kMaxSourceColumns);
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "sww_top — %zu sources · %zu counters · %zu gauges · %zu "
                "histograms\n",
                samples.size(), merged.counters.size(), merged.gauges.size(),
                merged.histograms.size());
  out += line;
  for (std::size_t i = 0; i < shown; ++i) {
    std::snprintf(line, sizeof(line), "  S%zu = %s\n", i + 1,
                  samples[i].source.c_str());
    out += line;
  }
  if (samples.size() > shown) {
    std::snprintf(line, sizeof(line),
                  "  ... %zu more sources folded into the totals\n",
                  samples.size() - shown);
    out += line;
  }
  auto source_headers = [&](const char* suffix) {
    for (std::size_t i = 0; i < shown; ++i) {
      char label[16];
      std::snprintf(label, sizeof(label), "S%zu%s", i + 1, suffix);
      std::snprintf(line, sizeof(line), " %10s", label);
      out += line;
    }
  };
  if (!merged.histograms.empty()) {
    std::snprintf(line, sizeof(line), "\n%-44s %10s", "HISTOGRAM", "COUNT");
    out += line;
    for (const QuantileSpec& spec : quantiles) {
      std::snprintf(line, sizeof(line), " %10s", spec.label.c_str());
      out += line;
    }
    std::snprintf(line, sizeof(line), " %10s", "MAX");
    out += line;
    source_headers(".CNT");
    std::snprintf(line, sizeof(line), " %16s\n", "EXEMPLAR");
    out += line;
    for (const auto& [name, h] : merged.histograms) {
      std::snprintf(line, sizeof(line), "%-44s %10zu", name.c_str(), h.count);
      out += line;
      for (const QuantileSpec& spec : quantiles) {
        std::snprintf(line, sizeof(line), " %10.4g",
                      obs::HistogramSnapshotQuantile(h, spec.q));
        out += line;
      }
      std::snprintf(line, sizeof(line), " %10.4g", h.max);
      out += line;
      for (std::size_t i = 0; i < shown; ++i) {
        auto it = samples[i].histograms.find(name);
        if (it == samples[i].histograms.end()) {
          std::snprintf(line, sizeof(line), " %10s", "-");
        } else {
          std::snprintf(line, sizeof(line), " %10zu", it->second.count);
        }
        out += line;
      }
      std::string exemplar_text = "-";
      for (std::size_t i = h.exemplars.size(); i-- > 0;) {
        if (h.exemplars[i].trace_id != 0) {
          char id[17];
          std::snprintf(id, sizeof(id), "%016llx",
                        static_cast<unsigned long long>(
                            h.exemplars[i].trace_id));
          exemplar_text = id;
          break;
        }
      }
      std::snprintf(line, sizeof(line), " %16s\n", exemplar_text.c_str());
      out += line;
    }
  }
  if (!merged.gauges.empty()) {
    std::snprintf(line, sizeof(line), "\n%-44s %10s", "GAUGE", "TOTAL");
    out += line;
    source_headers("");
    out += '\n';
    for (const auto& [name, value] : merged.gauges) {
      std::snprintf(line, sizeof(line), "%-44s %10.6g", name.c_str(), value);
      out += line;
      for (std::size_t i = 0; i < shown; ++i) {
        auto it = samples[i].gauges.find(name);
        if (it == samples[i].gauges.end()) {
          std::snprintf(line, sizeof(line), " %10s", "-");
        } else {
          std::snprintf(line, sizeof(line), " %10.6g", it->second);
        }
        out += line;
      }
      out += '\n';
    }
  }
  if (!merged.counters.empty()) {
    std::snprintf(line, sizeof(line), "\n%-44s %10s", "COUNTER", "TOTAL");
    out += line;
    source_headers("");
    out += '\n';
    for (const auto& [name, value] : merged.counters) {
      std::snprintf(line, sizeof(line), "%-44s %10llu", name.c_str(),
                    static_cast<unsigned long long>(value));
      out += line;
      for (std::size_t i = 0; i < shown; ++i) {
        auto it = samples[i].counters.find(name);
        if (it == samples[i].counters.end()) {
          std::snprintf(line, sizeof(line), " %10s", "-");
        } else {
          std::snprintf(line, sizeof(line), " %10llu",
                        static_cast<unsigned long long>(it->second));
        }
        out += line;
      }
      out += '\n';
    }
  }
  // Same whole-run burn evaluation as the single-sample table, over the
  // merged series.
  obs::SloEngine engine{obs::DefaultSloObjectives()};
  bool any_series = false;
  for (const obs::SloObjective& objective : engine.objectives()) {
    auto it =
        merged.histograms.find(obs::PrometheusSeriesName(objective.series));
    if (it == merged.histograms.end()) continue;
    engine.Ingest(objective.series, it->second, /*now_nanos=*/0);
    any_series = true;
  }
  if (any_series) {
    out += '\n';
    out += obs::RenderSloReport(engine.Evaluate(/*now_nanos=*/0));
  }
  return out;
}

Result<std::string> FetchBodyOnce(std::uint16_t port, const std::string& path) {
  auto session = core::LoopbackSession::Connect(port);
  if (!session.ok()) return session.error();
  auto response = session.value()->FetchRaw(path);
  session.value()->Close();
  if (!response.ok()) return response.error();
  if (response.value().status != 200) {
    return Error(ErrorCode::kInvalidArgument,
                 path + " returned status " +
                     std::to_string(response.value().status));
  }
  const util::Bytes& body = response.value().body;
  return std::string(reinterpret_cast<const char*>(body.data()), body.size());
}

Result<MetricsSample> ScrapeOnce(std::uint16_t port, const std::string& path) {
  auto body = FetchBodyOnce(port, path);
  if (!body.ok()) return body.error();
  auto sample = ParsePrometheusText(body.value());
  if (!sample.ok()) return sample.error();
  sample.value().source = "127.0.0.1:" + std::to_string(port) + path;
  return sample;
}

namespace {

void PrintTopUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--once] [--interval-ms N] [--endpoint PORT]...\n"
               "          [--prom FILE]... [--jsonl FILE]...\n"
               "          [--quantiles p50,p95,p99,p999] [--fetch PORT PATH]\n",
               argv0);
}

/// Split a `--quantiles` value ("p50,p95,p999") into column specs.
util::Result<std::vector<QuantileSpec>> ParseQuantileList(
    std::string_view list) {
  std::vector<QuantileSpec> specs;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t end = list.find(',', start);
    if (end == std::string_view::npos) end = list.size();
    auto spec = ParseQuantileToken(list.substr(start, end - start));
    if (!spec.ok()) return spec.error();
    specs.push_back(std::move(spec.value()));
    if (end == list.size()) break;
    start = end + 1;
  }
  if (specs.empty()) {
    return Error(ErrorCode::kInvalidArgument, "--quantiles list is empty");
  }
  return specs;
}

}  // namespace

int RunTopMain(int argc, char** argv) {
  bool once = false;
  int interval_ms = 1000;
  std::vector<QuantileSpec> quantiles = DefaultQuantiles();
  std::vector<std::uint16_t> endpoints;
  std::vector<std::string> prom_files;
  std::vector<std::string> jsonl_files;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--once") {
      once = true;
    } else if (arg == "--interval-ms") {
      const char* value = next("--interval-ms");
      if (value == nullptr) return 2;
      interval_ms = std::atoi(value);
    } else if (arg == "--endpoint") {
      const char* value = next("--endpoint");
      if (value == nullptr) return 2;
      endpoints.push_back(static_cast<std::uint16_t>(std::atoi(value)));
    } else if (arg == "--prom") {
      const char* value = next("--prom");
      if (value == nullptr) return 2;
      prom_files.emplace_back(value);
    } else if (arg == "--jsonl") {
      const char* value = next("--jsonl");
      if (value == nullptr) return 2;
      jsonl_files.emplace_back(value);
    } else if (arg == "--quantiles") {
      const char* value = next("--quantiles");
      if (value == nullptr) return 2;
      auto parsed = ParseQuantileList(value);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.error().ToString().c_str());
        return 2;
      }
      quantiles = std::move(parsed.value());
    } else if (arg == "--fetch") {
      // One-shot raw GET: print the body and exit.  This is how CI pulls
      // /debug/journal from a live server without another HTTP client.
      const char* port_text = next("--fetch");
      if (port_text == nullptr) return 2;
      const char* path = next("--fetch");
      if (path == nullptr) return 2;
      auto body = FetchBodyOnce(
          static_cast<std::uint16_t>(std::atoi(port_text)), path);
      if (!body.ok()) {
        std::fprintf(stderr, "fetch %s: %s\n", path,
                     body.error().ToString().c_str());
        return 1;
      }
      std::fputs(body.value().c_str(), stdout);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      PrintTopUsage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      PrintTopUsage(argv[0]);
      return 2;
    }
  }
  if (endpoints.empty() && prom_files.empty() && jsonl_files.empty()) {
    std::fprintf(stderr, "no sources: give --endpoint, --prom, or --jsonl\n");
    PrintTopUsage(argv[0]);
    return 2;
  }

  for (;;) {
    std::vector<MetricsSample> samples;
    for (const std::string& file : prom_files) {
      auto contents = obs::ReadTextFile(file);
      if (!contents.ok()) {
        std::fprintf(stderr, "%s\n", contents.error().ToString().c_str());
        return 1;
      }
      auto sample = ParsePrometheusText(contents.value());
      if (!sample.ok()) {
        std::fprintf(stderr, "%s: %s\n", file.c_str(),
                     sample.error().ToString().c_str());
        return 1;
      }
      sample.value().source = file;
      samples.push_back(std::move(sample.value()));
    }
    for (const std::string& file : jsonl_files) {
      auto contents = obs::ReadTextFile(file);
      if (!contents.ok()) {
        std::fprintf(stderr, "%s\n", contents.error().ToString().c_str());
        return 1;
      }
      auto sample = ParseMetricsJsonl(contents.value());
      if (!sample.ok()) {
        std::fprintf(stderr, "%s: %s\n", file.c_str(),
                     sample.error().ToString().c_str());
        return 1;
      }
      sample.value().source = file;
      samples.push_back(std::move(sample.value()));
    }
    for (std::uint16_t port : endpoints) {
      auto sample = ScrapeOnce(port);
      if (!sample.ok()) {
        std::fprintf(stderr, "scrape 127.0.0.1:%u: %s\n", port,
                     sample.error().ToString().c_str());
        return 1;
      }
      samples.push_back(std::move(sample.value()));
    }
    const std::string table = RenderTopTable(samples, quantiles);
    if (once) {
      std::fputs(table.c_str(), stdout);
      return 0;
    }
    // Refresh in place: home the cursor and clear below, like top(1).
    std::fputs("\x1b[H\x1b[J", stdout);
    std::fputs(table.c_str(), stdout);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

}  // namespace sww::tools
