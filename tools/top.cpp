#include "tools/top.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "core/client.hpp"
#include "json/json.hpp"
#include "net/pump.hpp"
#include "net/tcp.hpp"
#include "obs/expose.hpp"
#include "obs/export.hpp"

namespace sww::tools {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

/// Cumulative histogram state accumulated while scanning exposition lines.
struct HistogramBuild {
  std::vector<double> bounds;
  std::vector<std::uint64_t> cumulative;
  std::uint64_t count = 0;
  double sum = 0.0;
  bool have_count = false;
};

/// Rebuild a HistogramSnapshot from cumulative buckets.  The exposition
/// format carries no min/max, so they come from the occupied bucket
/// extents — good to the grid's bucket error, which is all the quantile
/// path promises anyway.
obs::HistogramSnapshot FinalizeHistogram(const HistogramBuild& build) {
  obs::HistogramSnapshot snapshot;
  std::uint64_t previous = 0;
  for (std::size_t i = 0; i < build.bounds.size(); ++i) {
    const std::uint64_t n =
        build.cumulative[i] >= previous ? build.cumulative[i] - previous : 0;
    previous = build.cumulative[i];
    snapshot.bounds.push_back(build.bounds[i]);
    snapshot.counts.push_back(n);
  }
  const std::uint64_t overflow = build.count >= previous
                                     ? build.count - previous
                                     : 0;  // +Inf bucket
  snapshot.counts.push_back(overflow);
  snapshot.count = static_cast<std::size_t>(build.count);
  snapshot.sum = build.sum;
  for (std::size_t i = 0; i < snapshot.bounds.size(); ++i) {
    if (snapshot.counts[i] == 0) continue;
    if (snapshot.min == 0.0) {
      snapshot.min = obs::Histogram::LowerBoundForUpper(snapshot.bounds[i]);
    }
    snapshot.max = snapshot.bounds[i];
  }
  if (overflow > 0) snapshot.max = obs::Histogram::kMaxValue;
  if (snapshot.count > 0) {
    snapshot.mean = snapshot.sum / static_cast<double>(snapshot.count);
    snapshot.p50 = obs::HistogramSnapshotQuantile(snapshot, 50.0);
    snapshot.p95 = obs::HistogramSnapshotQuantile(snapshot, 95.0);
    snapshot.p99 = obs::HistogramSnapshotQuantile(snapshot, 99.0);
  }
  return snapshot;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

}  // namespace

Result<MetricsSample> ParsePrometheusText(std::string_view text) {
  MetricsSample sample;
  std::map<std::string, std::string> types;  // series → counter/gauge/histogram
  std::map<std::string, HistogramBuild> builds;
  std::size_t start = 0;
  std::size_t line_number = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (line.empty()) continue;
    auto fail = [&](const std::string& what) {
      return Error(ErrorCode::kInvalidArgument,
                   "prometheus line " + std::to_string(line_number) + ": " +
                       what + ": " + std::string(line));
    };
    if (line[0] == '#') {
      // Only "# TYPE <series> <type>" carries structure; other comments
      // are ignored.
      constexpr std::string_view kType = "# TYPE ";
      if (line.substr(0, kType.size()) != kType) continue;
      const std::string_view rest = line.substr(kType.size());
      const std::size_t space = rest.find(' ');
      if (space == std::string_view::npos) return fail("malformed TYPE");
      types[std::string(rest.substr(0, space))] =
          std::string(rest.substr(space + 1));
      continue;
    }
    // Sample line: <name>[{labels}] <value>
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    if (space == std::string_view::npos) return fail("no value");
    const std::string name(line.substr(0, std::min(brace, space)));
    const std::string value_text(line.substr(line.rfind(' ') + 1));
    if (auto it = types.find(name); it != types.end()) {
      if (it->second == "counter") {
        sample.counters[name] =
            std::strtoull(value_text.c_str(), nullptr, 10);
        continue;
      }
      if (it->second == "gauge") {
        sample.gauges[name] = std::strtod(value_text.c_str(), nullptr);
        continue;
      }
    }
    // Histogram member lines: <base>_bucket{le="..."} / <base>_sum /
    // <base>_count, where <base> was declared "# TYPE <base> histogram".
    auto histogram_base = [&](std::string_view suffix) -> std::string {
      if (!EndsWith(name, suffix)) return {};
      const std::string base = name.substr(0, name.size() - suffix.size());
      auto it = types.find(base);
      return it != types.end() && it->second == "histogram" ? base
                                                            : std::string{};
    };
    if (const std::string base = histogram_base("_bucket"); !base.empty()) {
      constexpr std::string_view kLe = "{le=\"";
      const std::size_t le = line.find(kLe);
      if (le == std::string_view::npos) return fail("bucket without le");
      const std::size_t le_start = le + kLe.size();
      const std::size_t le_end = line.find('"', le_start);
      if (le_end == std::string_view::npos) return fail("unterminated le");
      const std::string le_text(line.substr(le_start, le_end - le_start));
      HistogramBuild& build = builds[base];
      const std::uint64_t cumulative =
          std::strtoull(value_text.c_str(), nullptr, 10);
      if (le_text == "+Inf") {
        build.count = cumulative;
        build.have_count = true;
      } else {
        build.bounds.push_back(std::strtod(le_text.c_str(), nullptr));
        build.cumulative.push_back(cumulative);
      }
      continue;
    }
    if (const std::string base = histogram_base("_sum"); !base.empty()) {
      builds[base].sum = std::strtod(value_text.c_str(), nullptr);
      continue;
    }
    if (const std::string base = histogram_base("_count"); !base.empty()) {
      builds[base].count = std::strtoull(value_text.c_str(), nullptr, 10);
      builds[base].have_count = true;
      continue;
    }
    return fail("series without TYPE");
  }
  for (const auto& [base, build] : builds) {
    if (!build.have_count) {
      return Error(ErrorCode::kInvalidArgument,
                   "histogram " + base + " has buckets but no _count");
    }
    sample.histograms[base] = FinalizeHistogram(build);
  }
  return sample;
}

Result<MetricsSample> ParseMetricsJsonl(std::string_view text) {
  MetricsSample sample;
  std::size_t start = 0;
  std::size_t line_number = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (line.empty()) continue;
    auto parsed = json::Parse(line);
    if (!parsed.ok()) {
      return Error(ErrorCode::kInvalidArgument,
                   "jsonl line " + std::to_string(line_number) + ": " +
                       parsed.error().ToString());
    }
    const json::Value& doc = parsed.value();
    const std::string kind = doc.GetString("kind");
    const std::string series = obs::PrometheusSeriesName(doc.GetString("name"));
    if (kind == "counter") {
      sample.counters[series] =
          static_cast<std::uint64_t>(doc.GetInt("value"));
    } else if (kind == "gauge") {
      sample.gauges[series] = doc.GetNumber("value");
    } else if (kind == "histogram") {
      obs::HistogramSnapshot snapshot;
      snapshot.count = static_cast<std::size_t>(doc.GetInt("count"));
      snapshot.sum = doc.GetNumber("sum");
      snapshot.min = doc.GetNumber("min");
      snapshot.max = doc.GetNumber("max");
      snapshot.mean = doc.GetNumber("mean");
      snapshot.p50 = doc.GetNumber("p50");
      snapshot.p95 = doc.GetNumber("p95");
      snapshot.p99 = doc.GetNumber("p99");
      if (const json::Value* bounds = doc.Get("bounds");
          bounds != nullptr && bounds->is_array()) {
        for (const json::Value& bound : bounds->AsArray()) {
          snapshot.bounds.push_back(bound.AsNumber());
        }
      }
      if (const json::Value* counts = doc.Get("counts");
          counts != nullptr && counts->is_array()) {
        for (const json::Value& count : counts->AsArray()) {
          snapshot.counts.push_back(
              static_cast<std::uint64_t>(count.AsInt()));
        }
      }
      if (snapshot.counts.size() != snapshot.bounds.size() + 1) {
        return Error(ErrorCode::kInvalidArgument,
                     "jsonl line " + std::to_string(line_number) +
                         ": histogram counts/bounds mismatch");
      }
      sample.histograms[series] = std::move(snapshot);
    } else {
      return Error(ErrorCode::kInvalidArgument,
                   "jsonl line " + std::to_string(line_number) +
                       ": unknown kind \"" + kind + "\"");
    }
  }
  return sample;
}

MetricsSample MergeSamples(const std::vector<MetricsSample>& samples) {
  MetricsSample merged;
  merged.source = "merged";
  std::map<std::string, std::vector<obs::HistogramSnapshot>> parts;
  for (const MetricsSample& sample : samples) {
    for (const auto& [name, value] : sample.counters) {
      merged.counters[name] += value;
    }
    for (const auto& [name, value] : sample.gauges) {
      merged.gauges[name] += value;
    }
    for (const auto& [name, histogram] : sample.histograms) {
      parts[name].push_back(histogram);
    }
  }
  for (const auto& [name, snapshots] : parts) {
    merged.histograms[name] = obs::MergeHistogramSnapshots(snapshots);
  }
  return merged;
}

std::string RenderTopTable(const MetricsSample& merged,
                           std::size_t source_count) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "sww_top — %zu source%s · %zu counters · %zu gauges · %zu "
                "histograms\n",
                source_count, source_count == 1 ? "" : "s",
                merged.counters.size(), merged.gauges.size(),
                merged.histograms.size());
  out += line;
  if (!merged.histograms.empty()) {
    std::snprintf(line, sizeof(line), "\n%-44s %10s %10s %10s %10s %10s\n",
                  "HISTOGRAM", "COUNT", "P50", "P95", "P99", "MAX");
    out += line;
    for (const auto& [name, h] : merged.histograms) {
      std::snprintf(line, sizeof(line),
                    "%-44s %10zu %10.4g %10.4g %10.4g %10.4g\n", name.c_str(),
                    h.count, h.p50, h.p95, h.p99, h.max);
      out += line;
    }
  }
  if (!merged.gauges.empty()) {
    std::snprintf(line, sizeof(line), "\n%-44s %10s\n", "GAUGE", "VALUE");
    out += line;
    for (const auto& [name, value] : merged.gauges) {
      std::snprintf(line, sizeof(line), "%-44s %10.6g\n", name.c_str(), value);
      out += line;
    }
  }
  if (!merged.counters.empty()) {
    std::snprintf(line, sizeof(line), "\n%-44s %10s\n", "COUNTER", "VALUE");
    out += line;
    for (const auto& [name, value] : merged.counters) {
      std::snprintf(line, sizeof(line), "%-44s %10llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out += line;
    }
  }
  return out;
}

Result<MetricsSample> ScrapeOnce(std::uint16_t port, const std::string& path) {
  auto transport = net::TcpConnect(port);
  if (!transport.ok()) return transport.error();
  auto client = core::GenerativeClient::Create({});
  if (!client.ok()) return client.error();
  client.value()->StartHandshake();
  auto pump = [&]() -> util::Status {
    auto pumped =
        net::PumpOnce(client.value()->connection(), *transport.value());
    if (!pumped.ok()) return pumped.error();
    if (!pumped.value().made_progress) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return util::Status::Ok();
  };
  auto response = client.value()->FetchRaw(path, pump);
  transport.value()->Close();
  if (!response.ok()) return response.error();
  if (response.value().status != 200) {
    return Error(ErrorCode::kInvalidArgument,
                 path + " returned status " +
                     std::to_string(response.value().status));
  }
  const util::Bytes& body = response.value().body;
  auto sample = ParsePrometheusText(
      std::string_view(reinterpret_cast<const char*>(body.data()),
                       body.size()));
  if (!sample.ok()) return sample.error();
  sample.value().source = "127.0.0.1:" + std::to_string(port) + path;
  return sample;
}

namespace {

void PrintTopUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--once] [--interval-ms N] [--endpoint PORT]...\n"
               "          [--prom FILE]... [--jsonl FILE]...\n",
               argv0);
}

}  // namespace

int RunTopMain(int argc, char** argv) {
  bool once = false;
  int interval_ms = 1000;
  std::vector<std::uint16_t> endpoints;
  std::vector<std::string> prom_files;
  std::vector<std::string> jsonl_files;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--once") {
      once = true;
    } else if (arg == "--interval-ms") {
      const char* value = next("--interval-ms");
      if (value == nullptr) return 2;
      interval_ms = std::atoi(value);
    } else if (arg == "--endpoint") {
      const char* value = next("--endpoint");
      if (value == nullptr) return 2;
      endpoints.push_back(static_cast<std::uint16_t>(std::atoi(value)));
    } else if (arg == "--prom") {
      const char* value = next("--prom");
      if (value == nullptr) return 2;
      prom_files.emplace_back(value);
    } else if (arg == "--jsonl") {
      const char* value = next("--jsonl");
      if (value == nullptr) return 2;
      jsonl_files.emplace_back(value);
    } else if (arg == "--help" || arg == "-h") {
      PrintTopUsage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      PrintTopUsage(argv[0]);
      return 2;
    }
  }
  if (endpoints.empty() && prom_files.empty() && jsonl_files.empty()) {
    std::fprintf(stderr, "no sources: give --endpoint, --prom, or --jsonl\n");
    PrintTopUsage(argv[0]);
    return 2;
  }

  for (;;) {
    std::vector<MetricsSample> samples;
    for (const std::string& file : prom_files) {
      auto contents = obs::ReadTextFile(file);
      if (!contents.ok()) {
        std::fprintf(stderr, "%s\n", contents.error().ToString().c_str());
        return 1;
      }
      auto sample = ParsePrometheusText(contents.value());
      if (!sample.ok()) {
        std::fprintf(stderr, "%s: %s\n", file.c_str(),
                     sample.error().ToString().c_str());
        return 1;
      }
      sample.value().source = file;
      samples.push_back(std::move(sample.value()));
    }
    for (const std::string& file : jsonl_files) {
      auto contents = obs::ReadTextFile(file);
      if (!contents.ok()) {
        std::fprintf(stderr, "%s\n", contents.error().ToString().c_str());
        return 1;
      }
      auto sample = ParseMetricsJsonl(contents.value());
      if (!sample.ok()) {
        std::fprintf(stderr, "%s: %s\n", file.c_str(),
                     sample.error().ToString().c_str());
        return 1;
      }
      sample.value().source = file;
      samples.push_back(std::move(sample.value()));
    }
    for (std::uint16_t port : endpoints) {
      auto sample = ScrapeOnce(port);
      if (!sample.ok()) {
        std::fprintf(stderr, "scrape 127.0.0.1:%u: %s\n", port,
                     sample.error().ToString().c_str());
        return 1;
      }
      samples.push_back(std::move(sample.value()));
    }
    const std::string table =
        RenderTopTable(MergeSamples(samples), samples.size());
    if (once) {
      std::fputs(table.c_str(), stdout);
      return 0;
    }
    // Refresh in place: home the cursor and clear below, like top(1).
    std::fputs("\x1b[H\x1b[J", stdout);
    std::fputs(table.c_str(), stdout);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

}  // namespace sww::tools
