// inspect_run.hpp — the sww_inspect driver: one instrumented end-to-end
// run of the SWW stack, analyzed and rendered as artifacts.
//
// RunInspect drives a client↔server page fetch (twice, so the prompt
// cache gets a hit) and a user→edge→origin CDN leg, with flight-recorder
// wire taps on both connection endpoints and sww-trace context flowing
// across every role boundary.  Under the default ManualClock the run is
// fully deterministic: two invocations produce byte-identical artifacts,
// which is what lets CI diff the report against a checked-in golden.
#pragma once

#include <cstdint>
#include <string>

#include "obs/report.hpp"
#include "util/error.hpp"

namespace sww::tools {

struct InspectOptions {
  /// Use the wall clock instead of a ManualClock starting at zero.
  /// Artifacts are then real-time (and no longer byte-reproducible).
  bool wall_clock = false;
};

/// Everything one run produces, rendered and ready to write.
struct InspectResult {
  obs::RunReport report;
  std::string report_text;    ///< run.report.txt
  std::string report_jsonl;   ///< run.report.jsonl
  std::string frames_jsonl;   ///< run.frames.jsonl (flight recorder)
  std::string frames_text;    ///< tcpdump-style view of the same frames
  std::string trace_json;     ///< run.trace.json (Chrome trace_event)
  std::string metrics_jsonl;  ///< run.metrics.jsonl (registry snapshot)
  /// Telemetry-plane views, fetched live over the session's own HTTP/2
  /// connection mid-run (so the goldens also pin the wire path):
  std::string metrics_prom;     ///< run.metrics.prom (GET /metrics body)
  std::string debug_vars_json;  ///< run.debug_vars.json (GET /debug/vars)
  std::string top_text;         ///< run.top.txt (sww_top --once rendering)
  std::string journal_jsonl;    ///< run.journal.jsonl (GET /debug/journal)
  std::string slo_report;       ///< slo.report.txt (SLO burn-rate report)
  std::uint64_t journal_dropped = 0;  ///< wide events lost to ring overwrite
};

/// Run the instrumented session.  Resets the process-wide tracer,
/// registry, and flight recorder first (the run owns them for its
/// duration) and detaches the manual clock before returning.
util::Result<InspectResult> RunInspect(const InspectOptions& options);

/// Write run.report.txt, run.report.jsonl, run.frames.jsonl,
/// run.trace.json, and run.metrics.jsonl into `out_dir` (must exist).
util::Status WriteInspectArtifacts(const InspectResult& result,
                                   const std::string& out_dir);

}  // namespace sww::tools
