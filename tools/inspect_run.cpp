#include "tools/inspect_run.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <string_view>

#include "cdn/catalog.hpp"
#include "cdn/edge.hpp"
#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "genai/model_specs.hpp"
#include "obs/clock.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "tools/top.hpp"

namespace sww::tools {

using util::Result;
using util::Status;

namespace {

/// The user→edge leg: each request opens a client.fetch span, encodes its
/// context into the sww-trace wire form, and the edge adopts it after a
/// parse round-trip — the exact header path a remote edge would exercise.
void DriveEdgeLeg(cdn::EdgeNode& edge, const cdn::Catalog& catalog) {
  // A deterministic request sequence with repeats, so the edge sees both
  // misses (origin fetches) and hits.
  const std::size_t sequence[] = {0, 1, 2, 0, 1, 0};
  for (std::size_t index : sequence) {
    obs::ScopedSpan fetch("client.fetch", "core");
    fetch.SetProcess("client");
    fetch.AddAttribute("item_id", std::to_string(catalog.item(index).id));
    const std::string header = obs::FormatTraceHeader(fetch.context());
    obs::SpanContext context;
    if (auto parsed = obs::ParseTraceHeader(header)) context = *parsed;
    edge.ServeRequest(catalog.item(index), context);
  }
}

/// mkdir -p: creates each missing component of `path` (0755). Racing
/// creators and pre-existing directories are fine; only a genuine
/// failure (EACCES, ENOTDIR, ...) surfaces as an error.
Status EnsureDirectory(const std::string& path) {
  std::string prefix;
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t end = path.find('/', start);
    if (end == std::string::npos) end = path.size();
    prefix = path.substr(0, end);
    start = end + 1;
    if (prefix.empty() || prefix == ".") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return util::Error(util::ErrorCode::kIo,
                         "cannot create directory: " + prefix);
    }
  }
  return Status::Ok();
}

}  // namespace

Result<InspectResult> RunInspect(const InspectOptions& options) {
  obs::Tracer& tracer = obs::Tracer::Default();
  obs::ManualClock manual_clock;
  tracer.SetClock(options.wall_clock ? nullptr : &manual_clock);
  tracer.SetEnabled(true);
  tracer.Clear();
  obs::Registry::Default().Reset();
  obs::FlightRecorder& recorder = obs::FlightRecorder::Default();
  recorder.Clear();
  obs::Journal::Default().Clear();

  InspectResult result;
  {
    // --- client ↔ server page fetches, wire-tapped -----------------------
    core::ContentStore store;
    if (Status status = store.AddPage("/", core::MakeGoldfishPage());
        !status.ok()) {
      tracer.SetClock(nullptr);
      return status.error();
    }
    core::LocalSession::Options session_options;
    session_options.client.wire_tap = &recorder.GetTap("client");
    session_options.client.enable_prompt_cache = true;
    session_options.server.wire_tap = &recorder.GetTap("server");
    auto session = core::LocalSession::Start(&store, session_options);
    if (!session.ok()) {
      tracer.SetClock(nullptr);
      return session.error();
    }
    // Twice: the second fetch regenerates from the local prompt cache, so
    // the report shows a nonzero prompt-cache hit ratio.
    for (int i = 0; i < 2; ++i) {
      auto fetch = session.value()->FetchPage("/");
      if (!fetch.ok()) {
        tracer.SetClock(nullptr);
        return fetch.error();
      }
    }

    // --- user → edge → origin CDN leg ------------------------------------
    cdn::CatalogOptions catalog_options;
    catalog_options.item_count = 16;
    catalog_options.seed = 7;
    const cdn::Catalog catalog = cdn::Catalog::MakeSynthetic(catalog_options);
    auto image_model = genai::FindImageModel(genai::kSd3Medium);
    auto text_model = genai::FindTextModel(genai::kDeepseek8b);
    if (!image_model.ok() || !text_model.ok()) {
      tracer.SetClock(nullptr);
      return util::Error(util::ErrorCode::kInternal,
                         "builtin model specs missing");
    }
    cdn::EdgeNode edge(cdn::EdgeMode::kPromptMode, 1 << 20,
                       image_model.value(), text_model.value());
    DriveEdgeLeg(edge, catalog);

    // --- telemetry plane, over the same live connection -------------------
    // Last on purpose: by now every instrument in the run has registered,
    // so the scraped series set is the full, stable set.  (Registry::Reset
    // zeroes but never removes instruments, so scraping before a phase
    // first registers its series would make run N+1's exposition differ
    // from run N's.)
    for (const char* path : {"/metrics", "/debug/vars", "/debug/journal"}) {
      auto raw = session.value()->client().FetchRaw(path, session.value()->Pump());
      if (!raw.ok()) {
        tracer.SetClock(nullptr);
        return raw.error();
      }
      std::string body(raw.value().body.begin(), raw.value().body.end());
      if (std::string_view(path) == "/metrics") {
        result.metrics_prom = std::move(body);
      } else if (std::string_view(path) == "/debug/vars") {
        result.debug_vars_json = std::move(body);
      } else {
        result.journal_jsonl = std::move(body);
      }
    }
    auto top_sample = ParsePrometheusText(result.metrics_prom);
    if (!top_sample.ok()) {
      tracer.SetClock(nullptr);
      return top_sample.error();
    }
    result.top_text = RenderTopTable(MergeSamples({top_sample.value()}),
                                     /*source_count=*/1);
  }
  result.journal_dropped = obs::Journal::Default().dropped();

  // --- analyze + render --------------------------------------------------
  const std::vector<obs::Span> spans = tracer.FinishedSpans();
  const obs::RegistrySnapshot snapshot = obs::Registry::Default().Snapshot();
  const std::vector<const obs::ConnectionTap*> taps = recorder.taps();
  result.report = obs::AnalyzeRun(spans, snapshot, taps);
  result.report_text = obs::RenderReportText(result.report);
  result.report_jsonl = obs::RenderReportJsonLines(result.report);
  result.frames_jsonl = obs::RenderFramesJsonLines(taps);
  result.frames_text = obs::RenderFramesText(taps);
  result.trace_json = obs::ExportChromeTrace(spans, "sww_inspect");
  result.metrics_jsonl = obs::ExportJsonLines(snapshot);

  // --- SLO burn-rate report ----------------------------------------------
  // One cumulative snapshot at run-end: both windows clamp to whole-run
  // burn, which under the ManualClock is byte-reproducible.
  obs::SloEngine engine{obs::DefaultSloObjectives()};
  const std::uint64_t now_nanos = tracer.clock().NowNanos();
  for (const obs::SloObjective& objective : engine.objectives()) {
    if (auto it = snapshot.histograms.find(objective.series);
        it != snapshot.histograms.end()) {
      engine.Ingest(objective.series, it->second, now_nanos);
    }
  }
  result.slo_report = obs::RenderSloReport(engine.Evaluate(now_nanos));

  tracer.SetClock(nullptr);
  return result;
}

Status WriteInspectArtifacts(const InspectResult& result,
                             const std::string& out_dir) {
  const std::string base = out_dir.empty() ? "." : out_dir;
  if (Status status = EnsureDirectory(base); !status.ok()) return status;
  struct Artifact {
    const char* name;
    const std::string* contents;
  };
  const Artifact artifacts[] = {
      {"run.report.txt", &result.report_text},
      {"run.report.jsonl", &result.report_jsonl},
      {"run.frames.jsonl", &result.frames_jsonl},
      {"run.trace.json", &result.trace_json},
      {"run.metrics.jsonl", &result.metrics_jsonl},
      {"run.metrics.prom", &result.metrics_prom},
      {"run.debug_vars.json", &result.debug_vars_json},
      {"run.top.txt", &result.top_text},
      {"run.journal.jsonl", &result.journal_jsonl},
      {"slo.report.txt", &result.slo_report},
  };
  for (const Artifact& artifact : artifacts) {
    if (Status status =
            obs::WriteTextFile(base + "/" + artifact.name, *artifact.contents);
        !status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

}  // namespace sww::tools
