file(REMOVE_RECURSE
  "CMakeFiles/http2_connection_test.dir/http2_connection_test.cpp.o"
  "CMakeFiles/http2_connection_test.dir/http2_connection_test.cpp.o.d"
  "http2_connection_test"
  "http2_connection_test.pdb"
  "http2_connection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http2_connection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
