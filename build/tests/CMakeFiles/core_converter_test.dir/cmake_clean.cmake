file(REMOVE_RECURSE
  "CMakeFiles/core_converter_test.dir/core_converter_test.cpp.o"
  "CMakeFiles/core_converter_test.dir/core_converter_test.cpp.o.d"
  "core_converter_test"
  "core_converter_test.pdb"
  "core_converter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_converter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
