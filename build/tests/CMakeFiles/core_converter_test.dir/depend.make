# Empty dependencies file for core_converter_test.
# This may be replaced when dependencies are built.
