# Empty compiler generated dependencies file for reliable_link_test.
# This may be replaced when dependencies are built.
