file(REMOVE_RECURSE
  "CMakeFiles/reliable_link_test.dir/reliable_link_test.cpp.o"
  "CMakeFiles/reliable_link_test.dir/reliable_link_test.cpp.o.d"
  "reliable_link_test"
  "reliable_link_test.pdb"
  "reliable_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
