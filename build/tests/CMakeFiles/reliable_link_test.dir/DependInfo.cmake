
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/reliable_link_test.cpp" "tests/CMakeFiles/reliable_link_test.dir/reliable_link_test.cpp.o" "gcc" "tests/CMakeFiles/reliable_link_test.dir/reliable_link_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sww_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/sww_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/sww_video.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sww_net.dir/DependInfo.cmake"
  "/root/repo/build/src/http2/CMakeFiles/sww_http2.dir/DependInfo.cmake"
  "/root/repo/build/src/hpack/CMakeFiles/sww_hpack.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/sww_html.dir/DependInfo.cmake"
  "/root/repo/build/src/genai/CMakeFiles/sww_genai.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sww_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/sww_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/sww_json.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/sww_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sww_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
