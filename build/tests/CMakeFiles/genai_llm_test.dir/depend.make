# Empty dependencies file for genai_llm_test.
# This may be replaced when dependencies are built.
