file(REMOVE_RECURSE
  "CMakeFiles/genai_llm_test.dir/genai_llm_test.cpp.o"
  "CMakeFiles/genai_llm_test.dir/genai_llm_test.cpp.o.d"
  "genai_llm_test"
  "genai_llm_test.pdb"
  "genai_llm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genai_llm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
