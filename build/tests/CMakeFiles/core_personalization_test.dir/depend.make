# Empty dependencies file for core_personalization_test.
# This may be replaced when dependencies are built.
