file(REMOVE_RECURSE
  "CMakeFiles/core_personalization_test.dir/core_personalization_test.cpp.o"
  "CMakeFiles/core_personalization_test.dir/core_personalization_test.cpp.o.d"
  "core_personalization_test"
  "core_personalization_test.pdb"
  "core_personalization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_personalization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
