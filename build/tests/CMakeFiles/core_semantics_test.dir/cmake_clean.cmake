file(REMOVE_RECURSE
  "CMakeFiles/core_semantics_test.dir/core_semantics_test.cpp.o"
  "CMakeFiles/core_semantics_test.dir/core_semantics_test.cpp.o.d"
  "core_semantics_test"
  "core_semantics_test.pdb"
  "core_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
