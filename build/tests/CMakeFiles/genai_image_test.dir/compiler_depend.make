# Empty compiler generated dependencies file for genai_image_test.
# This may be replaced when dependencies are built.
