file(REMOVE_RECURSE
  "CMakeFiles/genai_image_test.dir/genai_image_test.cpp.o"
  "CMakeFiles/genai_image_test.dir/genai_image_test.cpp.o.d"
  "genai_image_test"
  "genai_image_test.pdb"
  "genai_image_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genai_image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
