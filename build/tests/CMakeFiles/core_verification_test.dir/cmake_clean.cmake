file(REMOVE_RECURSE
  "CMakeFiles/core_verification_test.dir/core_verification_test.cpp.o"
  "CMakeFiles/core_verification_test.dir/core_verification_test.cpp.o.d"
  "core_verification_test"
  "core_verification_test.pdb"
  "core_verification_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_verification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
