# Empty dependencies file for core_verification_test.
# This may be replaced when dependencies are built.
