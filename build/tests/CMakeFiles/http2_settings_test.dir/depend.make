# Empty dependencies file for http2_settings_test.
# This may be replaced when dependencies are built.
