# Empty dependencies file for core_prompt_cache_test.
# This may be replaced when dependencies are built.
