file(REMOVE_RECURSE
  "CMakeFiles/http2_frame_test.dir/http2_frame_test.cpp.o"
  "CMakeFiles/http2_frame_test.dir/http2_frame_test.cpp.o.d"
  "http2_frame_test"
  "http2_frame_test.pdb"
  "http2_frame_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http2_frame_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
