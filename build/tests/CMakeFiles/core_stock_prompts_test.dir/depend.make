# Empty dependencies file for core_stock_prompts_test.
# This may be replaced when dependencies are built.
