file(REMOVE_RECURSE
  "CMakeFiles/core_stock_prompts_test.dir/core_stock_prompts_test.cpp.o"
  "CMakeFiles/core_stock_prompts_test.dir/core_stock_prompts_test.cpp.o.d"
  "core_stock_prompts_test"
  "core_stock_prompts_test.pdb"
  "core_stock_prompts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_stock_prompts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
