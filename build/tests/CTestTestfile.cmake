# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/huffman_test[1]_include.cmake")
include("/root/repo/build/tests/hpack_test[1]_include.cmake")
include("/root/repo/build/tests/http2_frame_test[1]_include.cmake")
include("/root/repo/build/tests/http2_settings_test[1]_include.cmake")
include("/root/repo/build/tests/http2_connection_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/reliable_link_test[1]_include.cmake")
include("/root/repo/build/tests/html_test[1]_include.cmake")
include("/root/repo/build/tests/genai_image_test[1]_include.cmake")
include("/root/repo/build/tests/genai_llm_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/core_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/core_store_test[1]_include.cmake")
include("/root/repo/build/tests/core_generator_test[1]_include.cmake")
include("/root/repo/build/tests/core_session_test[1]_include.cmake")
include("/root/repo/build/tests/core_personalization_test[1]_include.cmake")
include("/root/repo/build/tests/core_converter_test[1]_include.cmake")
include("/root/repo/build/tests/cdn_test[1]_include.cmake")
include("/root/repo/build/tests/video_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_edge_test[1]_include.cmake")
include("/root/repo/build/tests/core_verification_test[1]_include.cmake")
include("/root/repo/build/tests/core_prompt_cache_test[1]_include.cmake")
include("/root/repo/build/tests/core_stock_prompts_test[1]_include.cmake")
