# Empty compiler generated dependencies file for bench_text_article.
# This may be replaced when dependencies are built.
