file(REMOVE_RECURSE
  "CMakeFiles/bench_text_article.dir/bench_text_article.cpp.o"
  "CMakeFiles/bench_text_article.dir/bench_text_article.cpp.o.d"
  "bench_text_article"
  "bench_text_article.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_text_article.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
