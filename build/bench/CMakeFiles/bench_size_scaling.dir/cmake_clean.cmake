file(REMOVE_RECURSE
  "CMakeFiles/bench_size_scaling.dir/bench_size_scaling.cpp.o"
  "CMakeFiles/bench_size_scaling.dir/bench_size_scaling.cpp.o.d"
  "bench_size_scaling"
  "bench_size_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_size_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
