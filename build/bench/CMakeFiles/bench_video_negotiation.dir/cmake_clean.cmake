file(REMOVE_RECURSE
  "CMakeFiles/bench_video_negotiation.dir/bench_video_negotiation.cpp.o"
  "CMakeFiles/bench_video_negotiation.dir/bench_video_negotiation.cpp.o.d"
  "bench_video_negotiation"
  "bench_video_negotiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_video_negotiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
