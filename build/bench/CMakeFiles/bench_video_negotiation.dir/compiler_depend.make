# Empty compiler generated dependencies file for bench_video_negotiation.
# This may be replaced when dependencies are built.
