# Empty dependencies file for bench_http2_negotiation.
# This may be replaced when dependencies are built.
