file(REMOVE_RECURSE
  "CMakeFiles/bench_http2_negotiation.dir/bench_http2_negotiation.cpp.o"
  "CMakeFiles/bench_http2_negotiation.dir/bench_http2_negotiation.cpp.o.d"
  "bench_http2_negotiation"
  "bench_http2_negotiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_http2_negotiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
