# Empty dependencies file for bench_steps_scaling.
# This may be replaced when dependencies are built.
