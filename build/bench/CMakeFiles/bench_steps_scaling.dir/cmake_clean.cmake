file(REMOVE_RECURSE
  "CMakeFiles/bench_steps_scaling.dir/bench_steps_scaling.cpp.o"
  "CMakeFiles/bench_steps_scaling.dir/bench_steps_scaling.cpp.o.d"
  "bench_steps_scaling"
  "bench_steps_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_steps_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
