file(REMOVE_RECURSE
  "CMakeFiles/bench_cdn_storage.dir/bench_cdn_storage.cpp.o"
  "CMakeFiles/bench_cdn_storage.dir/bench_cdn_storage.cpp.o.d"
  "bench_cdn_storage"
  "bench_cdn_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cdn_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
