# Empty dependencies file for bench_cdn_storage.
# This may be replaced when dependencies are built.
