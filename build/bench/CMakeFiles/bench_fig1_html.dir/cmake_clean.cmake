file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_html.dir/bench_fig1_html.cpp.o"
  "CMakeFiles/bench_fig1_html.dir/bench_fig1_html.cpp.o.d"
  "bench_fig1_html"
  "bench_fig1_html.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_html.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
