file(REMOVE_RECURSE
  "CMakeFiles/bench_hpack.dir/bench_hpack.cpp.o"
  "CMakeFiles/bench_hpack.dir/bench_hpack.cpp.o.d"
  "bench_hpack"
  "bench_hpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
