# Empty compiler generated dependencies file for bench_hpack.
# This may be replaced when dependencies are built.
