file(REMOVE_RECURSE
  "CMakeFiles/bench_energy_carbon.dir/bench_energy_carbon.cpp.o"
  "CMakeFiles/bench_energy_carbon.dir/bench_energy_carbon.cpp.o.d"
  "bench_energy_carbon"
  "bench_energy_carbon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_energy_carbon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
