# Empty compiler generated dependencies file for bench_energy_carbon.
# This may be replaced when dependencies are built.
