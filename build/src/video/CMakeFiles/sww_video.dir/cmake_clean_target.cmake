file(REMOVE_RECURSE
  "libsww_video.a"
)
