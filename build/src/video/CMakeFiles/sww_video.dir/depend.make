# Empty dependencies file for sww_video.
# This may be replaced when dependencies are built.
