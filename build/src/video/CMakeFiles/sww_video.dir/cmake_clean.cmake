file(REMOVE_RECURSE
  "CMakeFiles/sww_video.dir/streaming.cpp.o"
  "CMakeFiles/sww_video.dir/streaming.cpp.o.d"
  "libsww_video.a"
  "libsww_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sww_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
