# Empty compiler generated dependencies file for sww_video.
# This may be replaced when dependencies are built.
