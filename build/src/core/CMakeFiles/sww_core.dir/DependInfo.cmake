
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/sww_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/sww_core.dir/client.cpp.o.d"
  "/root/repo/src/core/content_store.cpp" "src/core/CMakeFiles/sww_core.dir/content_store.cpp.o" "gcc" "src/core/CMakeFiles/sww_core.dir/content_store.cpp.o.d"
  "/root/repo/src/core/converter.cpp" "src/core/CMakeFiles/sww_core.dir/converter.cpp.o" "gcc" "src/core/CMakeFiles/sww_core.dir/converter.cpp.o.d"
  "/root/repo/src/core/http_semantics.cpp" "src/core/CMakeFiles/sww_core.dir/http_semantics.cpp.o" "gcc" "src/core/CMakeFiles/sww_core.dir/http_semantics.cpp.o.d"
  "/root/repo/src/core/media_generator.cpp" "src/core/CMakeFiles/sww_core.dir/media_generator.cpp.o" "gcc" "src/core/CMakeFiles/sww_core.dir/media_generator.cpp.o.d"
  "/root/repo/src/core/page_builder.cpp" "src/core/CMakeFiles/sww_core.dir/page_builder.cpp.o" "gcc" "src/core/CMakeFiles/sww_core.dir/page_builder.cpp.o.d"
  "/root/repo/src/core/personalization.cpp" "src/core/CMakeFiles/sww_core.dir/personalization.cpp.o" "gcc" "src/core/CMakeFiles/sww_core.dir/personalization.cpp.o.d"
  "/root/repo/src/core/prompt_cache.cpp" "src/core/CMakeFiles/sww_core.dir/prompt_cache.cpp.o" "gcc" "src/core/CMakeFiles/sww_core.dir/prompt_cache.cpp.o.d"
  "/root/repo/src/core/renderer.cpp" "src/core/CMakeFiles/sww_core.dir/renderer.cpp.o" "gcc" "src/core/CMakeFiles/sww_core.dir/renderer.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/core/CMakeFiles/sww_core.dir/server.cpp.o" "gcc" "src/core/CMakeFiles/sww_core.dir/server.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/sww_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/sww_core.dir/session.cpp.o.d"
  "/root/repo/src/core/stock_prompts.cpp" "src/core/CMakeFiles/sww_core.dir/stock_prompts.cpp.o" "gcc" "src/core/CMakeFiles/sww_core.dir/stock_prompts.cpp.o.d"
  "/root/repo/src/core/verification.cpp" "src/core/CMakeFiles/sww_core.dir/verification.cpp.o" "gcc" "src/core/CMakeFiles/sww_core.dir/verification.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sww_util.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/sww_json.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/sww_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/hpack/CMakeFiles/sww_hpack.dir/DependInfo.cmake"
  "/root/repo/build/src/http2/CMakeFiles/sww_http2.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sww_net.dir/DependInfo.cmake"
  "/root/repo/build/src/html/CMakeFiles/sww_html.dir/DependInfo.cmake"
  "/root/repo/build/src/genai/CMakeFiles/sww_genai.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/sww_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
