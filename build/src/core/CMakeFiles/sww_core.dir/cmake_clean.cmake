file(REMOVE_RECURSE
  "CMakeFiles/sww_core.dir/client.cpp.o"
  "CMakeFiles/sww_core.dir/client.cpp.o.d"
  "CMakeFiles/sww_core.dir/content_store.cpp.o"
  "CMakeFiles/sww_core.dir/content_store.cpp.o.d"
  "CMakeFiles/sww_core.dir/converter.cpp.o"
  "CMakeFiles/sww_core.dir/converter.cpp.o.d"
  "CMakeFiles/sww_core.dir/http_semantics.cpp.o"
  "CMakeFiles/sww_core.dir/http_semantics.cpp.o.d"
  "CMakeFiles/sww_core.dir/media_generator.cpp.o"
  "CMakeFiles/sww_core.dir/media_generator.cpp.o.d"
  "CMakeFiles/sww_core.dir/page_builder.cpp.o"
  "CMakeFiles/sww_core.dir/page_builder.cpp.o.d"
  "CMakeFiles/sww_core.dir/personalization.cpp.o"
  "CMakeFiles/sww_core.dir/personalization.cpp.o.d"
  "CMakeFiles/sww_core.dir/prompt_cache.cpp.o"
  "CMakeFiles/sww_core.dir/prompt_cache.cpp.o.d"
  "CMakeFiles/sww_core.dir/renderer.cpp.o"
  "CMakeFiles/sww_core.dir/renderer.cpp.o.d"
  "CMakeFiles/sww_core.dir/server.cpp.o"
  "CMakeFiles/sww_core.dir/server.cpp.o.d"
  "CMakeFiles/sww_core.dir/session.cpp.o"
  "CMakeFiles/sww_core.dir/session.cpp.o.d"
  "CMakeFiles/sww_core.dir/stock_prompts.cpp.o"
  "CMakeFiles/sww_core.dir/stock_prompts.cpp.o.d"
  "CMakeFiles/sww_core.dir/verification.cpp.o"
  "CMakeFiles/sww_core.dir/verification.cpp.o.d"
  "libsww_core.a"
  "libsww_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sww_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
