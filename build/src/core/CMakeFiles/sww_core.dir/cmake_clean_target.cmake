file(REMOVE_RECURSE
  "libsww_core.a"
)
