# Empty compiler generated dependencies file for sww_core.
# This may be replaced when dependencies are built.
