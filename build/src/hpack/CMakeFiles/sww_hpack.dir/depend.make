# Empty dependencies file for sww_hpack.
# This may be replaced when dependencies are built.
