file(REMOVE_RECURSE
  "libsww_hpack.a"
)
