file(REMOVE_RECURSE
  "CMakeFiles/sww_hpack.dir/dynamic_table.cpp.o"
  "CMakeFiles/sww_hpack.dir/dynamic_table.cpp.o.d"
  "CMakeFiles/sww_hpack.dir/hpack.cpp.o"
  "CMakeFiles/sww_hpack.dir/hpack.cpp.o.d"
  "CMakeFiles/sww_hpack.dir/huffman.cpp.o"
  "CMakeFiles/sww_hpack.dir/huffman.cpp.o.d"
  "CMakeFiles/sww_hpack.dir/static_table.cpp.o"
  "CMakeFiles/sww_hpack.dir/static_table.cpp.o.d"
  "libsww_hpack.a"
  "libsww_hpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sww_hpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
