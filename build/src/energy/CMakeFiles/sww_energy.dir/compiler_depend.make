# Empty compiler generated dependencies file for sww_energy.
# This may be replaced when dependencies are built.
