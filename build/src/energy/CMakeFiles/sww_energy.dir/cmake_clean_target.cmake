file(REMOVE_RECURSE
  "libsww_energy.a"
)
