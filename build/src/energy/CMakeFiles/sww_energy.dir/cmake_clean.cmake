file(REMOVE_RECURSE
  "CMakeFiles/sww_energy.dir/carbon.cpp.o"
  "CMakeFiles/sww_energy.dir/carbon.cpp.o.d"
  "CMakeFiles/sww_energy.dir/device.cpp.o"
  "CMakeFiles/sww_energy.dir/device.cpp.o.d"
  "CMakeFiles/sww_energy.dir/network.cpp.o"
  "CMakeFiles/sww_energy.dir/network.cpp.o.d"
  "libsww_energy.a"
  "libsww_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sww_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
