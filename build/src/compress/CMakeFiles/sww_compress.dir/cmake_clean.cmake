file(REMOVE_RECURSE
  "CMakeFiles/sww_compress.dir/bitio.cpp.o"
  "CMakeFiles/sww_compress.dir/bitio.cpp.o.d"
  "CMakeFiles/sww_compress.dir/huffman_coder.cpp.o"
  "CMakeFiles/sww_compress.dir/huffman_coder.cpp.o.d"
  "CMakeFiles/sww_compress.dir/swz.cpp.o"
  "CMakeFiles/sww_compress.dir/swz.cpp.o.d"
  "libsww_compress.a"
  "libsww_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sww_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
