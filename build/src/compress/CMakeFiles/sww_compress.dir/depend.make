# Empty dependencies file for sww_compress.
# This may be replaced when dependencies are built.
