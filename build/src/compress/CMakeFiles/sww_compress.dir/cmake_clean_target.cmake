file(REMOVE_RECURSE
  "libsww_compress.a"
)
