file(REMOVE_RECURSE
  "libsww_util.a"
)
