# Empty dependencies file for sww_util.
# This may be replaced when dependencies are built.
