# Empty compiler generated dependencies file for sww_util.
# This may be replaced when dependencies are built.
