file(REMOVE_RECURSE
  "CMakeFiles/sww_util.dir/bytes.cpp.o"
  "CMakeFiles/sww_util.dir/bytes.cpp.o.d"
  "CMakeFiles/sww_util.dir/hash.cpp.o"
  "CMakeFiles/sww_util.dir/hash.cpp.o.d"
  "CMakeFiles/sww_util.dir/log.cpp.o"
  "CMakeFiles/sww_util.dir/log.cpp.o.d"
  "CMakeFiles/sww_util.dir/rng.cpp.o"
  "CMakeFiles/sww_util.dir/rng.cpp.o.d"
  "CMakeFiles/sww_util.dir/strings.cpp.o"
  "CMakeFiles/sww_util.dir/strings.cpp.o.d"
  "libsww_util.a"
  "libsww_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sww_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
