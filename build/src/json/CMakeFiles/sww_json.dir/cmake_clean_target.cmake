file(REMOVE_RECURSE
  "libsww_json.a"
)
