# Empty compiler generated dependencies file for sww_json.
# This may be replaced when dependencies are built.
