file(REMOVE_RECURSE
  "CMakeFiles/sww_json.dir/json.cpp.o"
  "CMakeFiles/sww_json.dir/json.cpp.o.d"
  "libsww_json.a"
  "libsww_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sww_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
