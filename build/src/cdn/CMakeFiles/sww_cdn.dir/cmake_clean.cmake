file(REMOVE_RECURSE
  "CMakeFiles/sww_cdn.dir/catalog.cpp.o"
  "CMakeFiles/sww_cdn.dir/catalog.cpp.o.d"
  "CMakeFiles/sww_cdn.dir/edge.cpp.o"
  "CMakeFiles/sww_cdn.dir/edge.cpp.o.d"
  "CMakeFiles/sww_cdn.dir/simulator.cpp.o"
  "CMakeFiles/sww_cdn.dir/simulator.cpp.o.d"
  "libsww_cdn.a"
  "libsww_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sww_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
