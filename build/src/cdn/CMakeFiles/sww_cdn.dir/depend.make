# Empty dependencies file for sww_cdn.
# This may be replaced when dependencies are built.
