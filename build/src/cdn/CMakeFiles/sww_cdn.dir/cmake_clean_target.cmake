file(REMOVE_RECURSE
  "libsww_cdn.a"
)
