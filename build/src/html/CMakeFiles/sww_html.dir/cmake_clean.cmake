file(REMOVE_RECURSE
  "CMakeFiles/sww_html.dir/dom.cpp.o"
  "CMakeFiles/sww_html.dir/dom.cpp.o.d"
  "CMakeFiles/sww_html.dir/entities.cpp.o"
  "CMakeFiles/sww_html.dir/entities.cpp.o.d"
  "CMakeFiles/sww_html.dir/generated_content.cpp.o"
  "CMakeFiles/sww_html.dir/generated_content.cpp.o.d"
  "CMakeFiles/sww_html.dir/parser.cpp.o"
  "CMakeFiles/sww_html.dir/parser.cpp.o.d"
  "libsww_html.a"
  "libsww_html.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sww_html.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
