
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/html/dom.cpp" "src/html/CMakeFiles/sww_html.dir/dom.cpp.o" "gcc" "src/html/CMakeFiles/sww_html.dir/dom.cpp.o.d"
  "/root/repo/src/html/entities.cpp" "src/html/CMakeFiles/sww_html.dir/entities.cpp.o" "gcc" "src/html/CMakeFiles/sww_html.dir/entities.cpp.o.d"
  "/root/repo/src/html/generated_content.cpp" "src/html/CMakeFiles/sww_html.dir/generated_content.cpp.o" "gcc" "src/html/CMakeFiles/sww_html.dir/generated_content.cpp.o.d"
  "/root/repo/src/html/parser.cpp" "src/html/CMakeFiles/sww_html.dir/parser.cpp.o" "gcc" "src/html/CMakeFiles/sww_html.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sww_util.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/sww_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
