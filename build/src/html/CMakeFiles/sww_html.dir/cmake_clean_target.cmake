file(REMOVE_RECURSE
  "libsww_html.a"
)
