# Empty compiler generated dependencies file for sww_html.
# This may be replaced when dependencies are built.
