file(REMOVE_RECURSE
  "libsww_http2.a"
)
