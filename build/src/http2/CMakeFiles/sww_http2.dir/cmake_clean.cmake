file(REMOVE_RECURSE
  "CMakeFiles/sww_http2.dir/connection.cpp.o"
  "CMakeFiles/sww_http2.dir/connection.cpp.o.d"
  "CMakeFiles/sww_http2.dir/frame.cpp.o"
  "CMakeFiles/sww_http2.dir/frame.cpp.o.d"
  "CMakeFiles/sww_http2.dir/settings.cpp.o"
  "CMakeFiles/sww_http2.dir/settings.cpp.o.d"
  "CMakeFiles/sww_http2.dir/stream.cpp.o"
  "CMakeFiles/sww_http2.dir/stream.cpp.o.d"
  "libsww_http2.a"
  "libsww_http2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sww_http2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
