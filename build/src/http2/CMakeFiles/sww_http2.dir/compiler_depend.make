# Empty compiler generated dependencies file for sww_http2.
# This may be replaced when dependencies are built.
