# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("json")
subdirs("compress")
subdirs("hpack")
subdirs("http2")
subdirs("net")
subdirs("html")
subdirs("genai")
subdirs("metrics")
subdirs("energy")
subdirs("core")
subdirs("cdn")
subdirs("video")
