file(REMOVE_RECURSE
  "libsww_genai.a"
)
