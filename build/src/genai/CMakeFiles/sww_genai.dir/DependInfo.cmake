
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/genai/diffusion.cpp" "src/genai/CMakeFiles/sww_genai.dir/diffusion.cpp.o" "gcc" "src/genai/CMakeFiles/sww_genai.dir/diffusion.cpp.o.d"
  "/root/repo/src/genai/embedding.cpp" "src/genai/CMakeFiles/sww_genai.dir/embedding.cpp.o" "gcc" "src/genai/CMakeFiles/sww_genai.dir/embedding.cpp.o.d"
  "/root/repo/src/genai/image.cpp" "src/genai/CMakeFiles/sww_genai.dir/image.cpp.o" "gcc" "src/genai/CMakeFiles/sww_genai.dir/image.cpp.o.d"
  "/root/repo/src/genai/interpolator.cpp" "src/genai/CMakeFiles/sww_genai.dir/interpolator.cpp.o" "gcc" "src/genai/CMakeFiles/sww_genai.dir/interpolator.cpp.o.d"
  "/root/repo/src/genai/llm.cpp" "src/genai/CMakeFiles/sww_genai.dir/llm.cpp.o" "gcc" "src/genai/CMakeFiles/sww_genai.dir/llm.cpp.o.d"
  "/root/repo/src/genai/model_specs.cpp" "src/genai/CMakeFiles/sww_genai.dir/model_specs.cpp.o" "gcc" "src/genai/CMakeFiles/sww_genai.dir/model_specs.cpp.o.d"
  "/root/repo/src/genai/pipeline.cpp" "src/genai/CMakeFiles/sww_genai.dir/pipeline.cpp.o" "gcc" "src/genai/CMakeFiles/sww_genai.dir/pipeline.cpp.o.d"
  "/root/repo/src/genai/prompt_inversion.cpp" "src/genai/CMakeFiles/sww_genai.dir/prompt_inversion.cpp.o" "gcc" "src/genai/CMakeFiles/sww_genai.dir/prompt_inversion.cpp.o.d"
  "/root/repo/src/genai/upscaler.cpp" "src/genai/CMakeFiles/sww_genai.dir/upscaler.cpp.o" "gcc" "src/genai/CMakeFiles/sww_genai.dir/upscaler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sww_util.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/sww_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
