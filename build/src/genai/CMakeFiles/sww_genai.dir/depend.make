# Empty dependencies file for sww_genai.
# This may be replaced when dependencies are built.
