file(REMOVE_RECURSE
  "CMakeFiles/sww_genai.dir/diffusion.cpp.o"
  "CMakeFiles/sww_genai.dir/diffusion.cpp.o.d"
  "CMakeFiles/sww_genai.dir/embedding.cpp.o"
  "CMakeFiles/sww_genai.dir/embedding.cpp.o.d"
  "CMakeFiles/sww_genai.dir/image.cpp.o"
  "CMakeFiles/sww_genai.dir/image.cpp.o.d"
  "CMakeFiles/sww_genai.dir/interpolator.cpp.o"
  "CMakeFiles/sww_genai.dir/interpolator.cpp.o.d"
  "CMakeFiles/sww_genai.dir/llm.cpp.o"
  "CMakeFiles/sww_genai.dir/llm.cpp.o.d"
  "CMakeFiles/sww_genai.dir/model_specs.cpp.o"
  "CMakeFiles/sww_genai.dir/model_specs.cpp.o.d"
  "CMakeFiles/sww_genai.dir/pipeline.cpp.o"
  "CMakeFiles/sww_genai.dir/pipeline.cpp.o.d"
  "CMakeFiles/sww_genai.dir/prompt_inversion.cpp.o"
  "CMakeFiles/sww_genai.dir/prompt_inversion.cpp.o.d"
  "CMakeFiles/sww_genai.dir/upscaler.cpp.o"
  "CMakeFiles/sww_genai.dir/upscaler.cpp.o.d"
  "libsww_genai.a"
  "libsww_genai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sww_genai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
