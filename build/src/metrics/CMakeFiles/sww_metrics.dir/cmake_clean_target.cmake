file(REMOVE_RECURSE
  "libsww_metrics.a"
)
