file(REMOVE_RECURSE
  "CMakeFiles/sww_metrics.dir/clip.cpp.o"
  "CMakeFiles/sww_metrics.dir/clip.cpp.o.d"
  "CMakeFiles/sww_metrics.dir/elo.cpp.o"
  "CMakeFiles/sww_metrics.dir/elo.cpp.o.d"
  "CMakeFiles/sww_metrics.dir/sbert.cpp.o"
  "CMakeFiles/sww_metrics.dir/sbert.cpp.o.d"
  "CMakeFiles/sww_metrics.dir/stats.cpp.o"
  "CMakeFiles/sww_metrics.dir/stats.cpp.o.d"
  "libsww_metrics.a"
  "libsww_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sww_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
