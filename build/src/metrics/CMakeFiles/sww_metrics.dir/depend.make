# Empty dependencies file for sww_metrics.
# This may be replaced when dependencies are built.
