
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/clip.cpp" "src/metrics/CMakeFiles/sww_metrics.dir/clip.cpp.o" "gcc" "src/metrics/CMakeFiles/sww_metrics.dir/clip.cpp.o.d"
  "/root/repo/src/metrics/elo.cpp" "src/metrics/CMakeFiles/sww_metrics.dir/elo.cpp.o" "gcc" "src/metrics/CMakeFiles/sww_metrics.dir/elo.cpp.o.d"
  "/root/repo/src/metrics/sbert.cpp" "src/metrics/CMakeFiles/sww_metrics.dir/sbert.cpp.o" "gcc" "src/metrics/CMakeFiles/sww_metrics.dir/sbert.cpp.o.d"
  "/root/repo/src/metrics/stats.cpp" "src/metrics/CMakeFiles/sww_metrics.dir/stats.cpp.o" "gcc" "src/metrics/CMakeFiles/sww_metrics.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sww_util.dir/DependInfo.cmake"
  "/root/repo/build/src/genai/CMakeFiles/sww_genai.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/sww_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
