file(REMOVE_RECURSE
  "CMakeFiles/sww_net.dir/inmemory.cpp.o"
  "CMakeFiles/sww_net.dir/inmemory.cpp.o.d"
  "CMakeFiles/sww_net.dir/pump.cpp.o"
  "CMakeFiles/sww_net.dir/pump.cpp.o.d"
  "CMakeFiles/sww_net.dir/reliable_link.cpp.o"
  "CMakeFiles/sww_net.dir/reliable_link.cpp.o.d"
  "CMakeFiles/sww_net.dir/tcp.cpp.o"
  "CMakeFiles/sww_net.dir/tcp.cpp.o.d"
  "libsww_net.a"
  "libsww_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sww_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
