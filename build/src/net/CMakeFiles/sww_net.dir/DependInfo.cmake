
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/inmemory.cpp" "src/net/CMakeFiles/sww_net.dir/inmemory.cpp.o" "gcc" "src/net/CMakeFiles/sww_net.dir/inmemory.cpp.o.d"
  "/root/repo/src/net/pump.cpp" "src/net/CMakeFiles/sww_net.dir/pump.cpp.o" "gcc" "src/net/CMakeFiles/sww_net.dir/pump.cpp.o.d"
  "/root/repo/src/net/reliable_link.cpp" "src/net/CMakeFiles/sww_net.dir/reliable_link.cpp.o" "gcc" "src/net/CMakeFiles/sww_net.dir/reliable_link.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/sww_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/sww_net.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sww_util.dir/DependInfo.cmake"
  "/root/repo/build/src/http2/CMakeFiles/sww_http2.dir/DependInfo.cmake"
  "/root/repo/build/src/hpack/CMakeFiles/sww_hpack.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
