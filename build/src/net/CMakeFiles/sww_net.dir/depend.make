# Empty dependencies file for sww_net.
# This may be replaced when dependencies are built.
