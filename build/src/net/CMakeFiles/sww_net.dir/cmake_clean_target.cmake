file(REMOVE_RECURSE
  "libsww_net.a"
)
