# Empty dependencies file for tcp_demo.
# This may be replaced when dependencies are built.
