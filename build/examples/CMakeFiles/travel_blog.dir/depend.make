# Empty dependencies file for travel_blog.
# This may be replaced when dependencies are built.
