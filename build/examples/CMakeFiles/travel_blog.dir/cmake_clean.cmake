file(REMOVE_RECURSE
  "CMakeFiles/travel_blog.dir/travel_blog.cpp.o"
  "CMakeFiles/travel_blog.dir/travel_blog.cpp.o.d"
  "travel_blog"
  "travel_blog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/travel_blog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
