# Empty dependencies file for cdn_edge.
# This may be replaced when dependencies are built.
