file(REMOVE_RECURSE
  "CMakeFiles/cdn_edge.dir/cdn_edge.cpp.o"
  "CMakeFiles/cdn_edge.dir/cdn_edge.cpp.o.d"
  "cdn_edge"
  "cdn_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
