# Empty dependencies file for convert_site.
# This may be replaced when dependencies are built.
