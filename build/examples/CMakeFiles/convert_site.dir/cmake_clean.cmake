file(REMOVE_RECURSE
  "CMakeFiles/convert_site.dir/convert_site.cpp.o"
  "CMakeFiles/convert_site.dir/convert_site.cpp.o.d"
  "convert_site"
  "convert_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convert_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
