# Empty compiler generated dependencies file for video_negotiation.
# This may be replaced when dependencies are built.
