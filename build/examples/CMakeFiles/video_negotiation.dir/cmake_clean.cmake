file(REMOVE_RECURSE
  "CMakeFiles/video_negotiation.dir/video_negotiation.cpp.o"
  "CMakeFiles/video_negotiation.dir/video_negotiation.cpp.o.d"
  "video_negotiation"
  "video_negotiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_negotiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
