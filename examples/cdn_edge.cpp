// cdn_edge — the §2.2 scenario: a CDN keeps *prompts* at its edge nodes
// and materializes content on request, trading storage for edge compute.
// Runs the same Zipf request stream through a content-mode and a
// prompt-mode fleet and prints the trade-off the paper describes.
#include <cstdio>

#include "cdn/simulator.hpp"
#include "energy/carbon.hpp"

int main() {
  using namespace sww;

  cdn::CatalogOptions catalog_options;
  catalog_options.item_count = 5000;
  catalog_options.unique_fraction = 0.15;
  const cdn::Catalog catalog = cdn::Catalog::MakeSynthetic(catalog_options);
  std::printf("catalog: %zu items; %.1f MB as content, %.1f MB as prompts\n\n",
              catalog.size(), catalog.TotalContentBytes() / 1e6,
              catalog.TotalPromptModeBytes() / 1e6);

  cdn::SimulationOptions options;
  options.edge_count = 4;
  options.storage_budget_bytes = 256 << 20;
  options.request_count = 100000;

  const cdn::ComparisonResult result = cdn::RunComparison(catalog, options);

  auto print_fleet = [](const char* label, const cdn::FleetResult& fleet) {
    std::printf("=== %s ===\n", label);
    std::printf("  edge storage used:   %8.1f MB\n",
                fleet.total_stored_bytes / 1e6);
    std::printf("  origin traffic:      %8.1f MB\n",
                fleet.total_origin_bytes / 1e6);
    std::printf("  user traffic:        %8.1f MB\n",
                fleet.total_user_bytes / 1e6);
    std::printf("  hit rate:            %8.1f %%\n", 100.0 * fleet.hit_rate);
    std::printf("  edge generation:     %8.0f s, %.2f kWh\n\n",
                fleet.generation_seconds, fleet.generation_energy_wh / 1000);
  };
  print_fleet("content mode (today's CDN)", result.content_mode);
  print_fleet("prompt mode (SWW edge)", result.prompt_mode);

  std::printf("storage reduction: %.1fx; embodied carbon saved: %.3f kgCO2e\n",
              result.storage_ratio, result.carbon_saved_kg);
  std::printf("(the paper: prompt mode \"maintains the storage benefits, but"
              " loses data\ntransmission benefits\" — note identical user"
              " traffic and the new generation cost)\n");
  return 0;
}
