// tcp_demo — the generative server and client as two genuinely separate
// endpoints over loopback TCP: a ReactorHost (epoll event-loop server)
// accepts the connection and pumps its HTTP/2 engine by readiness
// events; the client connects through LoopbackSession, negotiates
// SETTINGS_GEN_ABILITY, fetches the travel blog, and generates locally.
#include <cstdio>

#include "core/page_builder.hpp"
#include "core/reactor_host.hpp"
#include "core/session.hpp"

int main() {
  using namespace sww;

  core::ContentStore store;
  const core::TravelBlogPage blog = core::MakeTravelBlogPage(2, 1);
  if (auto status = store.AddPage("/blog", blog.html); !status.ok()) {
    std::fprintf(stderr, "AddPage: %s\n", status.ToString().c_str());
    return 1;
  }
  for (const std::string& path : blog.unique_asset_paths) {
    store.AddAsset(path, util::Bytes(25000, 0x33), "image/x-portable-pixmap");
  }

  core::ReactorHost::Options options;
  options.server.shards = 1;
  auto host = core::ReactorHost::Start(&store, std::move(options));
  if (!host.ok()) {
    std::fprintf(stderr, "start: %s\n", host.error().ToString().c_str());
    return 1;
  }
  const std::uint16_t port = host.value()->port();
  std::printf("server listening on 127.0.0.1:%u\n", port);

  auto session = core::LoopbackSession::Connect(port);
  if (!session.ok()) {
    std::fprintf(stderr, "connect: %s\n", session.error().ToString().c_str());
    return 1;
  }
  auto fetch = session.value()->FetchPage("/blog");
  if (!fetch.ok()) {
    std::fprintf(stderr, "fetch: %s\n", fetch.error().ToString().c_str());
    return 1;
  }
  std::printf("[client] mode=%s; %zu items generated on-device; wire bytes: "
              "%llu page + %llu assets; simulated %.1f s / %.3f Wh\n",
              fetch.value().mode.c_str(), fetch.value().generated_items,
              static_cast<unsigned long long>(fetch.value().page_bytes),
              static_cast<unsigned long long>(fetch.value().asset_bytes),
              fetch.value().generation_seconds,
              fetch.value().generation_energy_wh);
  session.value()->Close();
  host.value()->Shutdown();
  const auto stats = host.value()->server().ShardStatsSnapshot();
  std::uint64_t served = 0;
  for (const auto& shard : stats) served += shard.accepted;
  std::printf("[server] %llu connections served across %zu shards\n",
              static_cast<unsigned long long>(served), stats.size());
  return 0;
}
