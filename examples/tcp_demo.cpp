// tcp_demo — the generative server and client as two genuinely separate
// endpoints over loopback TCP: the server thread accepts a connection and
// pumps its HTTP/2 engine; the client connects, negotiates
// SETTINGS_GEN_ABILITY, fetches the travel blog, and generates locally.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "net/pump.hpp"
#include "net/tcp.hpp"

int main() {
  using namespace sww;

  core::ContentStore store;
  const core::TravelBlogPage blog = core::MakeTravelBlogPage(2, 1);
  if (auto status = store.AddPage("/blog", blog.html); !status.ok()) {
    std::fprintf(stderr, "AddPage: %s\n", status.ToString().c_str());
    return 1;
  }
  for (const std::string& path : blog.unique_asset_paths) {
    store.AddAsset(path, util::Bytes(25000, 0x33), "image/x-portable-pixmap");
  }

  auto listener = net::TcpListener::Bind(0);
  if (!listener.ok()) {
    std::fprintf(stderr, "bind: %s\n", listener.error().ToString().c_str());
    return 1;
  }
  const std::uint16_t port = listener.value()->port();
  std::printf("server listening on 127.0.0.1:%u\n", port);

  std::atomic<bool> server_failed{false};
  std::thread server_thread([&] {
    auto transport = listener.value()->Accept(5000);
    if (!transport.ok()) {
      server_failed = true;
      return;
    }
    auto server = core::GenerativeServer::Create(&store, {});
    if (!server.ok()) {
      server_failed = true;
      return;
    }
    server.value()->StartHandshake();
    for (int i = 0; i < 100000; ++i) {
      auto pumped =
          net::PumpOnce(server.value()->connection(), *transport.value());
      if (!pumped.ok() || pumped.value().peer_closed) break;
      if (!server.value()->ProcessEvents().ok()) break;
      if (!pumped.value().made_progress) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    std::printf("[server] served %llu requests (%llu generative pages)\n",
                static_cast<unsigned long long>(server.value()->stats().requests),
                static_cast<unsigned long long>(
                    server.value()->stats().pages_served_generative));
  });

  auto transport = net::TcpConnect(port);
  if (!transport.ok()) {
    std::fprintf(stderr, "connect: %s\n", transport.error().ToString().c_str());
    server_thread.join();
    return 1;
  }
  auto client = core::GenerativeClient::Create({});
  if (!client.ok()) {
    std::fprintf(stderr, "client: %s\n", client.error().ToString().c_str());
    server_thread.join();
    return 1;
  }
  client.value()->StartHandshake();
  auto pump = [&]() -> util::Status {
    auto pumped = net::PumpOnce(client.value()->connection(), *transport.value());
    if (!pumped.ok()) return pumped.error();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return util::Status::Ok();
  };
  auto fetch = client.value()->FetchPage("/blog", pump);
  if (!fetch.ok()) {
    std::fprintf(stderr, "fetch: %s\n", fetch.error().ToString().c_str());
    transport.value()->Close();
    server_thread.join();
    return 1;
  }
  std::printf("[client] mode=%s; %zu items generated on-device; wire bytes: "
              "%llu page + %llu assets; simulated %.1f s / %.3f Wh\n",
              fetch.value().mode.c_str(), fetch.value().generated_items,
              static_cast<unsigned long long>(fetch.value().page_bytes),
              static_cast<unsigned long long>(fetch.value().asset_bytes),
              fetch.value().generation_seconds,
              fetch.value().generation_energy_wh);
  transport.value()->Close();
  server_thread.join();
  return server_failed ? 1 : 0;
}
