// travel_blog — the paper's §2.1 motivating scenario end to end:
// a travel blog page mixing
//   * generic text delivered as bullet points and expanded on-device,
//   * stock landscape imagery delivered as prompts,
//   * unique photos from the specific hike, fetched as files "same as
//     today".
// The example fetches the page twice — once as a generative client, once
// as a naïve client — and compares wire bytes, generation cost, and who
// pays it.
#include <cstdio>

#include "core/page_builder.hpp"
#include "core/renderer.hpp"
#include "core/session.hpp"
#include "genai/diffusion.hpp"
#include "html/parser.hpp"

int main() {
  using namespace sww;

  // Build the store: the page plus the two unique hike photos (synthesized
  // here from a "camera" — in reality these would be real JPEG files).
  core::ContentStore store;
  const core::TravelBlogPage blog = core::MakeTravelBlogPage(3, 2);
  if (auto status = store.AddPage("/blog", blog.html); !status.ok()) {
    std::fprintf(stderr, "AddPage: %s\n", status.ToString().c_str());
    return 1;
  }
  genai::DiffusionModel camera(genai::FindImageModel(genai::kDalle3).value());
  for (std::size_t i = 0; i < blog.unique_asset_paths.size(); ++i) {
    const auto photo = camera.Generate(
        "hikers resting at a mountain hut, afternoon light", 320, 240,
        30, 9000 + i);
    const std::string ppm = photo.value().image.ToPpm();
    store.AddAsset(blog.unique_asset_paths[i],
                   util::Bytes(ppm.begin(), ppm.end()),
                   "image/x-portable-pixmap");
  }
  const core::StorageStats storage = store.Stats();
  std::printf("server storage: %llu B as prompts vs %llu B traditional "
              "(%.1fx) + %llu B unique photos\n\n",
              static_cast<unsigned long long>(storage.prompt_bytes),
              static_cast<unsigned long long>(storage.traditional_bytes),
              storage.CompressionRatio(),
              static_cast<unsigned long long>(storage.unique_asset_bytes));

  struct Run {
    const char* label;
    std::uint32_t ability;
  };
  for (const Run& run : {Run{"generative client", http2::kGenAbilityFull},
                         Run{"naive client", http2::kGenAbilityNone}}) {
    core::LocalSession::Options options;
    options.client.advertised_ability = run.ability;
    auto session = core::LocalSession::Start(&store, options);
    if (!session.ok()) {
      std::fprintf(stderr, "session: %s\n", session.error().ToString().c_str());
      return 1;
    }
    auto fetch = session.value()->FetchPage("/blog");
    if (!fetch.ok()) {
      std::fprintf(stderr, "fetch: %s\n", fetch.error().ToString().c_str());
      return 1;
    }
    std::printf("=== %s ===\n", run.label);
    std::printf("  served mode:        %s\n", fetch.value().mode.c_str());
    std::printf("  wire bytes:         %llu page + %llu assets\n",
                static_cast<unsigned long long>(fetch.value().page_bytes),
                static_cast<unsigned long long>(fetch.value().asset_bytes));
    std::printf("  generated on device: %zu items, %.1f s, %.3f Wh\n",
                fetch.value().generated_items,
                fetch.value().generation_seconds,
                fetch.value().generation_energy_wh);
    std::printf("  server generation:   %.1f s, %.3f Wh\n\n",
                session.value()->server().stats().generation_seconds,
                session.value()->server().stats().generation_energy_wh);
    if (run.ability == http2::kGenAbilityFull) {
      auto doc = html::ParseDocument(fetch.value().final_html);
      core::PageRenderer renderer;
      std::printf("--- rendered blog ---\n%s\n",
                  renderer.RenderToText(*doc.value()).c_str());
    }
  }

  // §2.3: the same page, personalized on-device for a consenting user —
  // identical wire traffic, different pixels, and a disclosure footer.
  {
    core::LocalSession::Options options;
    options.client.generator.profile.interests = {"cycling", "birdwatching"};
    options.client.generator.profile.consented = true;
    auto session = core::LocalSession::Start(&store, options);
    if (!session.ok()) {
      std::fprintf(stderr, "session: %s\n", session.error().ToString().c_str());
      return 1;
    }
    auto fetch = session.value()->FetchPage("/blog");
    if (!fetch.ok()) {
      std::fprintf(stderr, "fetch: %s\n", fetch.error().ToString().c_str());
      return 1;
    }
    std::printf("=== personalized client (2.3) ===\n");
    std::printf("  wire bytes identical to the generative run: %llu page\n",
                static_cast<unsigned long long>(fetch.value().page_bytes));
    std::printf("  personalizations applied: %zu\n",
                session.value()->client().generator().audit().size());
    auto doc = html::ParseDocument(fetch.value().final_html);
    core::PageRenderer renderer;
    const std::string rendered = renderer.RenderWithDisclosure(
        *doc.value(), session.value()->client().generator().audit());
    // Print just the disclosure footer.
    const std::size_t cut = rendered.find("This page was personalized");
    if (cut != std::string::npos) {
      std::printf("%s", rendered.substr(cut).c_str());
    }
  }
  return 0;
}
