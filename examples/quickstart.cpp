// quickstart — the smallest complete SWW flow (README quickstart):
//
//   1. author a page whose image is stored as a *prompt* (Figure 1 form),
//   2. stand up a generative server over a ContentStore,
//   3. connect a generative client; SETTINGS_GEN_ABILITY negotiates,
//   4. fetch the page: the prompt crosses the wire, the image is
//      generated on the client device, the div is rewritten,
//   5. render the page and write the generated image to
//      ./bench_out/quickstart_out (gitignored side-products).
#include <cstdio>
#include <filesystem>

#include "core/page_builder.hpp"
#include "core/renderer.hpp"
#include "core/session.hpp"
#include "html/parser.hpp"

int main() {
  using namespace sww;

  // 1. The baseline page: one generated-content div (Figure 1 "before").
  const std::string page_html = core::MakeGoldfishPage();
  std::printf("--- baseline page (stored on the server) ---\n%s\n\n",
              page_html.c_str());

  // 2-3. Server + client over an in-process connection; the handshake
  // exchanges SETTINGS including SETTINGS_GEN_ABILITY (0x07) = 1.
  core::ContentStore store;
  if (auto status = store.AddPage("/", page_html); !status.ok()) {
    std::fprintf(stderr, "AddPage: %s\n", status.ToString().c_str());
    return 1;
  }
  auto session = core::LocalSession::Start(&store, {});
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n", session.error().ToString().c_str());
    return 1;
  }
  std::printf("negotiated generative mode: %s\n\n",
              session.value()->client().NegotiatedGenerative() ? "yes" : "no");

  // 4. Fetch: prompts over the wire, pixels made locally.
  auto fetch = session.value()->FetchPage("/");
  if (!fetch.ok()) {
    std::fprintf(stderr, "fetch: %s\n", fetch.error().ToString().c_str());
    return 1;
  }
  std::printf("--- page after client-side generation (Figure 1 'after') ---\n%s\n\n",
              fetch.value().final_html.c_str());
  std::printf("wire bytes: %llu (page) + %llu (assets)\n",
              static_cast<unsigned long long>(fetch.value().page_bytes),
              static_cast<unsigned long long>(fetch.value().asset_bytes));
  std::printf("generated items: %zu; simulated laptop cost: %.1f s, %.3f Wh\n",
              fetch.value().generated_items, fetch.value().generation_seconds,
              fetch.value().generation_energy_wh);
  std::printf("semantic digests verified: %zu ok, %zu failed\n\n",
              fetch.value().verified_items,
              fetch.value().failed_verification_items);

  // 5. Render (the prototype's GUI stand-in) and persist artifacts.
  auto document = html::ParseDocument(fetch.value().final_html);
  core::PageRenderer renderer;
  std::printf("--- rendered page ---\n%s\n",
              renderer.RenderToText(*document.value()).c_str());
  std::error_code fs_error;
  std::filesystem::create_directories("bench_out", fs_error);
  if (fs_error) {
    std::fprintf(stderr, "create bench_out/: %s\n", fs_error.message().c_str());
    return 1;
  }
  if (auto status = renderer.WriteFiles(fetch.value().files,
                                        "bench_out/quickstart_out");
      !status.ok()) {
    std::fprintf(stderr, "write: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("generated files written to ./bench_out/quickstart_out/\n");
  return 0;
}
