// video_negotiation — the §3.2 scenario: a video client advertises
// frame-rate boosting and upscaling through the GEN_ABILITY bits of the
// modified HTTP/2 SETTINGS exchange, and the server ships the cheapest
// variant the client can reconstruct.
#include <cstdio>

#include "http2/connection.hpp"
#include "net/pump.hpp"
#include "video/streaming.hpp"

int main() {
  using namespace sww;

  // Real SETTINGS negotiation carrying the video abilities.
  http2::Connection::Options client_options;
  client_options.local_settings.set_gen_ability(
      http2::kGenAbilityFrameRateBoost | http2::kGenAbilityUpscaleOnly);
  http2::Connection::Options server_options;
  server_options.local_settings.set_gen_ability(
      http2::kGenAbilityFrameRateBoost | http2::kGenAbilityUpscaleOnly |
      http2::kGenAbilityFull);
  http2::Connection client(http2::Connection::Role::kClient, client_options);
  http2::Connection server(http2::Connection::Role::kServer, server_options);
  client.StartHandshake();
  server.StartHandshake();
  net::DirectLinkExchange(client, server);

  const std::uint32_t negotiated = server.negotiated_gen_ability();
  std::printf("negotiated abilities: %s\n\n",
              http2::GenAbilityToString(negotiated).c_str());

  // The server plans delivery for a 2-hour 4K60 watch session.
  const video::PlaybackTarget target{video::Resolution::k4K, 60};
  const video::DeliveryPlan plan = video::Negotiate(target, negotiated);
  std::printf("viewer wants 4K60; shipping %s (%.2f GB/h instead of %.2f "
              "GB/h)\n",
              plan.transmitted.name.c_str(), plan.planned_gb_per_hour,
              plan.baseline_gb_per_hour);
  std::printf("client reconstructs: %s%s\n\n",
              plan.client_boosts_frame_rate ? "frame-rate boost 30->60 " : "",
              plan.client_upscales ? "+ upscale to 4K" : "");

  const video::StreamingReport report = video::SimulateStreaming(plan, 2.0);
  std::printf("2-hour session:\n");
  std::printf("  transmitted: %6.2f GB (baseline %.2f GB) -> saved %.2f GB "
              "(%.2fx)\n",
              report.transmitted_gb, report.baseline_gb, report.saved_gb,
              plan.DataSavingsFactor());
  std::printf("  client work: %llu frames interpolated, %llu frames "
              "upscaled\n",
              static_cast<unsigned long long>(report.frames_interpolated),
              static_cast<unsigned long long>(report.frames_upscaled));
  std::printf("  transmission energy saved: %.0f Wh\n",
              report.transmission_energy_saved_wh);
  std::printf("\n(paper: \"moving from 60fps to 30fps will half the data, and"
              " from 4K to high\ndefinition can save 2.3x data, turning"
              " 7GB/hour into 3GB/hour\")\n");
  return 0;
}
