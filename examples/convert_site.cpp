// convert_site — the §4.2 conversion pipeline: take a legacy webpage with
// real images and long prose, invert the images to prompts (the GPT-4V
// step in the paper), bullet the prose, respect CMS unique-tags, and show
// the before/after page and the size accounting.
#include <cstdio>

#include "core/converter.hpp"
#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "genai/diffusion.hpp"
#include "html/parser.hpp"

int main() {
  using namespace sww;

  // A legacy page: two photos (one tagged unique by the CMS) and a long
  // article paragraph.
  const std::string legacy_html =
      "<!DOCTYPE html><html><head><title>Valley guide</title></head><body>"
      "<h1>The valley in spring</h1>"
      R"(<img src="/photos/panorama.jpg" width="256" height="192"/>)"
      R"(<img src="/photos/family.jpg" width="256" height="192" data-sww="unique"/>)"
      "<p>" +
      core::MakeNewsArticleText(1200) + "</p></body></html>";

  // The "existing" image files (synthesized stand-ins for real JPEGs).
  genai::DiffusionModel camera(genai::FindImageModel(genai::kDalle3).value());
  std::map<std::string, genai::Image> payloads;
  payloads["/photos/panorama.jpg"] =
      camera.Generate("a wide valley panorama with a river and forest", 256,
                      192, 30, 42).value().image;
  payloads["/photos/family.jpg"] =
      camera.Generate("family portrait at a picnic table", 256, 192, 30, 43)
          .value().image;

  auto doc = html::ParseDocument(legacy_html).value();
  core::PageConverter converter(
      genai::PromptInverter(genai::PromptInverter::DefaultVocabulary()),
      genai::TextModel(genai::FindTextModel(genai::kDeepseek8b).value()), {});
  auto report = converter.Convert(*doc, payloads);
  if (!report.ok()) {
    std::fprintf(stderr, "convert: %s\n", report.error().ToString().c_str());
    return 1;
  }

  std::printf("conversion report:\n");
  std::printf("  images converted:   %zu\n", report.value().images_converted);
  std::printf("  images kept unique: %zu\n", report.value().images_kept_unique);
  std::printf("  text converted:     %zu (kept %zu)\n",
              report.value().text_blocks_converted,
              report.value().text_blocks_kept);
  std::printf("  bytes: %zu -> %zu (%.1fx)\n\n", report.value().bytes_before,
              report.value().bytes_after, report.value().CompressionRatio());
  for (const std::string& note : report.value().notes) {
    std::printf("  note: %s\n", note.c_str());
  }

  std::printf("\n--- converted page ---\n%s\n\n", doc->Serialize().c_str());

  // Round trip: serve the converted page to a generative client.
  core::ContentStore store;
  if (auto status = store.AddPage("/valley", doc->Serialize()); !status.ok()) {
    std::fprintf(stderr, "AddPage: %s\n", status.ToString().c_str());
    return 1;
  }
  // The unique photo remains a served file.
  const std::string family_ppm = payloads["/photos/family.jpg"].ToPpm();
  store.AddAsset("/photos/family.jpg",
                 util::Bytes(family_ppm.begin(), family_ppm.end()),
                 "image/x-portable-pixmap");
  auto session = core::LocalSession::Start(&store, {});
  auto fetch = session.value()->FetchPage("/valley");
  if (!fetch.ok()) {
    std::fprintf(stderr, "fetch: %s\n", fetch.error().ToString().c_str());
    return 1;
  }
  std::printf("served converted page: mode=%s, %zu generated items, "
              "%llu asset bytes fetched (the unique photo)\n",
              fetch.value().mode.c_str(), fetch.value().generated_items,
              static_cast<unsigned long long>(fetch.value().asset_bytes));
  return 0;
}
