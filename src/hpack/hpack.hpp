// hpack.hpp — HPACK encoder and decoder (RFC 7541).
//
// One Encoder and one Decoder exist per direction of an HTTP/2 connection;
// each owns its dynamic table.  The decoder enforces the RFC's error rules
// (invalid index, table size update above the protocol limit, truncated
// input) and surfaces them as kCompression errors, which the connection
// layer turns into COMPRESSION_ERROR.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hpack/dynamic_table.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace sww::hpack {

/// One header field.  `sensitive` asks the encoder to use the
/// never-indexed literal representation (RFC 7541 §6.2.3, e.g. cookies).
struct HeaderField {
  std::string name;
  std::string value;
  bool sensitive = false;

  bool operator==(const HeaderField& other) const {
    return name == other.name && value == other.value;
  }
};

using HeaderList = std::vector<HeaderField>;

/// HPACK primitive: encode an integer with an N-bit prefix (RFC 7541 §5.1).
/// `first_byte_flags` holds the bits above the prefix (e.g. 0x80 for an
/// indexed field).
void EncodeInteger(std::uint64_t value, int prefix_bits,
                   std::uint8_t first_byte_flags, util::Bytes& out);

/// Decode an integer with an N-bit prefix.  Caps at 2^62 to avoid overflow.
util::Result<std::uint64_t> DecodeInteger(util::ByteReader& reader,
                                          int prefix_bits);

/// HPACK primitive: string literal, choosing Huffman when strictly shorter.
void EncodeString(std::string_view text, util::Bytes& out);
util::Result<std::string> DecodeString(util::ByteReader& reader);

/// Header block encoder with indexing strategy:
///   1. exact match in static or dynamic table → indexed representation
///   2. sensitive → literal never indexed
///   3. name match → literal with incremental indexing, indexed name
///   4. otherwise → literal with incremental indexing, new name
class Encoder {
 public:
  explicit Encoder(std::size_t max_table_size = 4096);

  /// Encode a full header list into one header block fragment.
  util::Bytes EncodeBlock(const HeaderList& headers);

  /// Encode into a caller-owned buffer (appended), so a connection can
  /// reuse one buffer across blocks and keep the hot path allocation-free.
  void EncodeBlockInto(const HeaderList& headers, util::Bytes& out);

  /// Schedule a dynamic table size update (emitted at the start of the next
  /// block, as RFC 7541 §4.2 requires).
  void SetMaxTableSize(std::size_t max_size);

  const DynamicTable& table() const { return table_; }

 private:
  void EncodeField(const HeaderField& field, util::Bytes& out);

  DynamicTable table_;
  std::size_t pending_table_size_ = 0;
  bool table_size_update_pending_ = false;
};

/// Header block decoder.
class Decoder {
 public:
  explicit Decoder(std::size_t max_table_size = 4096);

  /// Decode one complete header block fragment into a header list.
  util::Result<HeaderList> DecodeBlock(util::BytesView block);

  /// The protocol-level ceiling for dynamic table size updates (set from
  /// SETTINGS_HEADER_TABLE_SIZE).  Updates above this are COMPRESSION_ERROR.
  void SetMaxTableSizeLimit(std::size_t limit);

  const DynamicTable& table() const { return table_; }

 private:
  util::Result<HeaderField> LookupIndexed(std::uint64_t index) const;
  util::Result<std::string> LookupName(std::uint64_t index) const;

  DynamicTable table_;
  std::size_t max_table_size_limit_;
};

}  // namespace sww::hpack
