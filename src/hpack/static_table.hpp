// static_table.hpp — the HPACK static table (RFC 7541, Appendix A).
//
// 61 predefined header fields, indexed 1..61.  Index 0 is unused by the
// wire format.  The encoder also needs reverse lookup: exact (name, value)
// match and name-only match.  Both run through constexpr-built perfect
// hash tables (a seed found at compile time maps all entries to distinct
// slots), so a lookup is one hash, one slot load, and one verifying
// compare — O(1) instead of a 61-entry scan per header field.  The linear
// scans survive as *Linear oracles for the differential test suite.
#pragma once

#include <cstddef>
#include <string_view>

#include "util/error.hpp"

namespace sww::hpack {

struct StaticEntry {
  std::string_view name;
  std::string_view value;
};

inline constexpr std::size_t kStaticTableSize = 61;

/// Entry for wire index 1..61.  A bad index is peer-controlled wire data,
/// so it surfaces as a kCompression error (COMPRESSION_ERROR upstream),
/// never an exception.
util::Result<StaticEntry> StaticTableEntry(std::size_t index);

/// Wire index (1-based) of an exact (name, value) match, or 0 if none.
std::size_t StaticTableFind(std::string_view name, std::string_view value);

/// Wire index (1-based) of the first entry whose name matches, or 0.
std::size_t StaticTableFindName(std::string_view name);

/// Reference implementations (linear scans over the RFC table) — oracles
/// for the perfect-hash fast lanes, used by tests and benchmarks only.
std::size_t StaticTableFindLinear(std::string_view name, std::string_view value);
std::size_t StaticTableFindNameLinear(std::string_view name);

}  // namespace sww::hpack
