// static_table.hpp — the HPACK static table (RFC 7541, Appendix A).
//
// 61 predefined header fields, indexed 1..61.  Index 0 is unused by the
// wire format.  The encoder also needs reverse lookup: exact (name, value)
// match and name-only match.
#pragma once

#include <cstddef>
#include <string_view>

namespace sww::hpack {

struct StaticEntry {
  std::string_view name;
  std::string_view value;
};

inline constexpr std::size_t kStaticTableSize = 61;

/// Entry for wire index 1..61; throws std::out_of_range otherwise.
const StaticEntry& StaticTableEntry(std::size_t index);

/// Wire index (1-based) of an exact (name, value) match, or 0 if none.
std::size_t StaticTableFind(std::string_view name, std::string_view value);

/// Wire index (1-based) of the first entry whose name matches, or 0.
std::size_t StaticTableFindName(std::string_view name);

}  // namespace sww::hpack
