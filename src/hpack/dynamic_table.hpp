// dynamic_table.hpp — the HPACK dynamic table (RFC 7541 §2.3.2, §4).
//
// A FIFO of recently used header fields shared (in each direction) between
// encoder and decoder.  Entry size is name + value + 32 bytes of overhead;
// insertion evicts from the oldest end until the table fits its maximum
// size.  Wire indices address the dynamic table starting at 62
// (kStaticTableSize + 1), newest entry first.
//
// Storage is a power-of-two ring buffer addressed by a monotonic insertion
// sequence number (entry with sequence s lives in slot s & mask), so
// inserts and evictions move no entries and the hot At() lookup is one
// index computation.  An interned name index (name → live sequences,
// oldest first) makes the encoder's Find/FindName one hash probe instead
// of a scan over every buffered field; lookups are transparent
// (string_view keyed), so the fast lanes allocate nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sww::hpack {

struct DynamicEntry {
  std::string name;
  std::string value;

  /// RFC 7541 §4.1: size = len(name) + len(value) + 32.
  std::size_t Size() const { return name.size() + value.size() + 32; }
};

class DynamicTable {
 public:
  explicit DynamicTable(std::size_t max_size = 4096) : max_size_(max_size) {}

  /// Insert at the "newest" end, evicting oldest entries as needed.  An
  /// entry larger than the whole table empties the table (per RFC).
  void Insert(std::string name, std::string value);

  /// Entry by 0-based dynamic index (0 = newest).  Throws std::out_of_range.
  const DynamicEntry& At(std::size_t index) const;

  /// 0-based index of the newest exact match, or npos.
  std::size_t Find(std::string_view name, std::string_view value) const;
  /// 0-based index of the newest name match, or npos.
  std::size_t FindName(std::string_view name) const;

  /// Change the maximum size (dynamic table size update), evicting as needed.
  void SetMaxSize(std::size_t max_size);

  std::size_t size_bytes() const { return size_; }
  std::size_t max_size() const { return max_size_; }
  std::size_t entry_count() const { return count_; }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  /// Transparent hashing so find() takes string_view without a temporary.
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  using NameIndex =
      std::unordered_map<std::string, std::vector<std::uint64_t>, NameHash,
                         std::equal_to<>>;

  void EvictOldest();
  void EvictToFit(std::size_t budget);
  void Grow();
  const DynamicEntry& EntryForSequence(std::uint64_t seq) const {
    return ring_[static_cast<std::size_t>(seq) & mask_];
  }

  std::vector<DynamicEntry> ring_;  // power-of-two capacity, slot = seq & mask
  std::size_t mask_ = 0;            // ring_.size() - 1 (ring_ may be empty)
  std::size_t count_ = 0;           // live entries
  std::uint64_t next_seq_ = 0;      // sequence of the next insertion
  std::size_t size_ = 0;            // RFC size of live entries
  std::size_t max_size_;

  NameIndex name_index_;  // name → live insertion sequences, oldest first
};

}  // namespace sww::hpack
