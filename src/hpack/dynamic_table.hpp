// dynamic_table.hpp — the HPACK dynamic table (RFC 7541 §2.3.2, §4).
//
// A FIFO of recently used header fields shared (in each direction) between
// encoder and decoder.  Entry size is name + value + 32 bytes of overhead;
// insertion evicts from the oldest end until the table fits its maximum
// size.  Wire indices address the dynamic table starting at 62
// (kStaticTableSize + 1), newest entry first.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>

namespace sww::hpack {

struct DynamicEntry {
  std::string name;
  std::string value;

  /// RFC 7541 §4.1: size = len(name) + len(value) + 32.
  std::size_t Size() const { return name.size() + value.size() + 32; }
};

class DynamicTable {
 public:
  explicit DynamicTable(std::size_t max_size = 4096) : max_size_(max_size) {}

  /// Insert at the "newest" end, evicting oldest entries as needed.  An
  /// entry larger than the whole table empties the table (per RFC).
  void Insert(std::string name, std::string value);

  /// Entry by 0-based dynamic index (0 = newest).  Throws std::out_of_range.
  const DynamicEntry& At(std::size_t index) const;

  /// 0-based index of an exact match, or npos.
  std::size_t Find(std::string_view name, std::string_view value) const;
  /// 0-based index of a name match, or npos.
  std::size_t FindName(std::string_view name) const;

  /// Change the maximum size (dynamic table size update), evicting as needed.
  void SetMaxSize(std::size_t max_size);

  std::size_t size_bytes() const { return size_; }
  std::size_t max_size() const { return max_size_; }
  std::size_t entry_count() const { return entries_.size(); }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  void EvictToFit();

  std::deque<DynamicEntry> entries_;  // front = newest
  std::size_t size_ = 0;
  std::size_t max_size_;
};

}  // namespace sww::hpack
