#include "hpack/static_table.hpp"

#include <array>
#include <cstdint>

namespace sww::hpack {

namespace {

// RFC 7541, Appendix A — order is normative (indices are wire values).
constexpr std::array<StaticEntry, kStaticTableSize> kStaticTable = {{
    {":authority", ""},                    // 1
    {":method", "GET"},                    // 2
    {":method", "POST"},                   // 3
    {":path", "/"},                        // 4
    {":path", "/index.html"},              // 5
    {":scheme", "http"},                   // 6
    {":scheme", "https"},                  // 7
    {":status", "200"},                    // 8
    {":status", "204"},                    // 9
    {":status", "206"},                    // 10
    {":status", "304"},                    // 11
    {":status", "400"},                    // 12
    {":status", "404"},                    // 13
    {":status", "500"},                    // 14
    {"accept-charset", ""},                // 15
    {"accept-encoding", "gzip, deflate"},  // 16
    {"accept-language", ""},               // 17
    {"accept-ranges", ""},                 // 18
    {"accept", ""},                        // 19
    {"access-control-allow-origin", ""},   // 20
    {"age", ""},                           // 21
    {"allow", ""},                         // 22
    {"authorization", ""},                 // 23
    {"cache-control", ""},                 // 24
    {"content-disposition", ""},           // 25
    {"content-encoding", ""},              // 26
    {"content-language", ""},              // 27
    {"content-length", ""},                // 28
    {"content-location", ""},              // 29
    {"content-range", ""},                 // 30
    {"content-type", ""},                  // 31
    {"cookie", ""},                        // 32
    {"date", ""},                          // 33
    {"etag", ""},                          // 34
    {"expect", ""},                        // 35
    {"expires", ""},                       // 36
    {"from", ""},                          // 37
    {"host", ""},                          // 38
    {"if-match", ""},                      // 39
    {"if-modified-since", ""},             // 40
    {"if-none-match", ""},                 // 41
    {"if-range", ""},                      // 42
    {"if-unmodified-since", ""},           // 43
    {"last-modified", ""},                 // 44
    {"link", ""},                          // 45
    {"location", ""},                      // 46
    {"max-forwards", ""},                  // 47
    {"proxy-authenticate", ""},            // 48
    {"proxy-authorization", ""},           // 49
    {"range", ""},                         // 50
    {"referer", ""},                       // 51
    {"refresh", ""},                       // 52
    {"retry-after", ""},                   // 53
    {"server", ""},                        // 54
    {"set-cookie", ""},                    // 55
    {"strict-transport-security", ""},     // 56
    {"transfer-encoding", ""},             // 57
    {"user-agent", ""},                    // 58
    {"vary", ""},                          // 59
    {"via", ""},                           // 60
    {"www-authenticate", ""},              // 61
}};

// --- Perfect hash construction (all at compile time) ---------------------
//
// FNV-1a over name (and value) mixed with a seed; the builders search for
// the first seed under which every key lands in a distinct slot of a
// power-of-two table, so runtime lookup is hash → slot → one verifying
// compare.  The search runs in constexpr evaluation: a bad edit to the
// table that defeats the search is a compile error, not a silent slow path.

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

constexpr std::uint64_t HashField(std::string_view name, std::string_view value,
                                  std::uint64_t seed) {
  std::uint64_t h = kFnvOffset ^ (seed * 0x9e3779b97f4a7c15ULL);
  for (char c : name) {
    h = (h ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }
  h = (h ^ 0xffu) * kFnvPrime;  // field separator (never a header octet here)
  for (char c : value) {
    h = (h ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }
  return h ^ (h >> 32);
}

constexpr std::uint64_t HashName(std::string_view name, std::uint64_t seed) {
  std::uint64_t h = kFnvOffset ^ (seed * 0x9e3779b97f4a7c15ULL);
  for (char c : name) {
    h = (h ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }
  return h ^ (h >> 32);
}

/// 512 slots comfortably hold 61 keys collision-free for a small seed.
constexpr std::size_t kHashSlots = 512;

struct PerfectTable {
  std::uint64_t seed = 0;
  std::array<std::uint8_t, kHashSlots> slot{};  // 0 = empty, else wire index
};

constexpr PerfectTable BuildExactTable() {
  for (std::uint64_t seed = 1;; ++seed) {
    PerfectTable table{};
    table.seed = seed;
    bool ok = true;
    for (std::size_t i = 0; i < kStaticTable.size() && ok; ++i) {
      const std::size_t s =
          HashField(kStaticTable[i].name, kStaticTable[i].value, seed) &
          (kHashSlots - 1);
      if (table.slot[s] != 0) {
        ok = false;
      } else {
        table.slot[s] = static_cast<std::uint8_t>(i + 1);
      }
    }
    if (ok) return table;
  }
}

constexpr PerfectTable BuildNameTable() {
  for (std::uint64_t seed = 1;; ++seed) {
    PerfectTable table{};
    table.seed = seed;
    bool ok = true;
    for (std::size_t i = 0; i < kStaticTable.size() && ok; ++i) {
      // Only the first entry per name is addressable by name (":method" →
      // 2, never 3); later duplicates share its slot.
      bool first = true;
      for (std::size_t j = 0; j < i; ++j) {
        if (kStaticTable[j].name == kStaticTable[i].name) {
          first = false;
          break;
        }
      }
      if (!first) continue;
      const std::size_t s = HashName(kStaticTable[i].name, seed) & (kHashSlots - 1);
      if (table.slot[s] != 0) {
        ok = false;
      } else {
        table.slot[s] = static_cast<std::uint8_t>(i + 1);
      }
    }
    if (ok) return table;
  }
}

constexpr PerfectTable kExactTable = BuildExactTable();
constexpr PerfectTable kNameTable = BuildNameTable();

}  // namespace

util::Result<StaticEntry> StaticTableEntry(std::size_t index) {
  if (index < 1 || index > kStaticTableSize) {
    return util::Error(util::ErrorCode::kCompression,
                       "hpack static table index out of range");
  }
  return kStaticTable[index - 1];
}

std::size_t StaticTableFind(std::string_view name, std::string_view value) {
  const std::size_t s =
      HashField(name, value, kExactTable.seed) & (kHashSlots - 1);
  const std::size_t index = kExactTable.slot[s];
  if (index == 0) return 0;
  const StaticEntry& entry = kStaticTable[index - 1];
  return (entry.name == name && entry.value == value) ? index : 0;
}

std::size_t StaticTableFindName(std::string_view name) {
  const std::size_t s = HashName(name, kNameTable.seed) & (kHashSlots - 1);
  const std::size_t index = kNameTable.slot[s];
  if (index == 0) return 0;
  return kStaticTable[index - 1].name == name ? index : 0;
}

std::size_t StaticTableFindLinear(std::string_view name, std::string_view value) {
  for (std::size_t i = 0; i < kStaticTable.size(); ++i) {
    if (kStaticTable[i].name == name && kStaticTable[i].value == value) {
      return i + 1;
    }
  }
  return 0;
}

std::size_t StaticTableFindNameLinear(std::string_view name) {
  for (std::size_t i = 0; i < kStaticTable.size(); ++i) {
    if (kStaticTable[i].name == name) return i + 1;
  }
  return 0;
}

}  // namespace sww::hpack
