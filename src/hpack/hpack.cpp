#include "hpack/hpack.hpp"

#include "hpack/huffman.hpp"
#include "hpack/static_table.hpp"

namespace sww::hpack {

using util::ByteReader;
using util::Bytes;
using util::BytesView;
using util::Error;
using util::ErrorCode;
using util::Result;

void EncodeInteger(std::uint64_t value, int prefix_bits,
                   std::uint8_t first_byte_flags, Bytes& out) {
  const std::uint64_t max_prefix = (1ULL << prefix_bits) - 1;
  if (value < max_prefix) {
    out.push_back(static_cast<std::uint8_t>(first_byte_flags | value));
    return;
  }
  out.push_back(static_cast<std::uint8_t>(first_byte_flags | max_prefix));
  value -= max_prefix;
  while (value >= 128) {
    out.push_back(static_cast<std::uint8_t>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

Result<std::uint64_t> DecodeInteger(ByteReader& reader, int prefix_bits) {
  auto first = reader.ReadU8();
  if (!first) return first.error();
  const std::uint64_t max_prefix = (1ULL << prefix_bits) - 1;
  std::uint64_t value = first.value() & max_prefix;
  if (value < max_prefix) return value;
  int shift = 0;
  while (true) {
    auto next = reader.ReadU8();
    if (!next) return next.error();
    const std::uint64_t chunk = next.value() & 0x7f;
    if (shift >= 62) {
      return Error(ErrorCode::kCompression, "hpack integer overflow");
    }
    value += chunk << shift;
    if ((next.value() & 0x80) == 0) return value;
    shift += 7;
  }
}

void EncodeString(std::string_view text, Bytes& out) {
  const std::size_t huffman_size = HuffmanEncodedSize(text);
  if (huffman_size < text.size()) {
    EncodeInteger(huffman_size, 7, 0x80, out);
    HuffmanEncode(text, out);
  } else {
    EncodeInteger(text.size(), 7, 0x00, out);
    out.insert(out.end(), text.begin(), text.end());
  }
}

Result<std::string> DecodeString(ByteReader& reader) {
  auto first = reader.PeekU8();
  if (!first) return first.error();
  const bool huffman = (first.value() & 0x80) != 0;
  auto length = DecodeInteger(reader, 7);
  if (!length) return length.error();
  if (length.value() > reader.remaining()) {
    return Error(ErrorCode::kTruncated, "hpack string length past end of block");
  }
  auto raw = reader.ReadBytes(static_cast<std::size_t>(length.value()));
  if (!raw) return raw.error();
  if (!huffman) return util::ToString(raw.value());
  return HuffmanDecode(raw.value());
}

Encoder::Encoder(std::size_t max_table_size) : table_(max_table_size) {}

void Encoder::SetMaxTableSize(std::size_t max_size) {
  table_.SetMaxSize(max_size);
  pending_table_size_ = max_size;
  table_size_update_pending_ = true;
}

Bytes Encoder::EncodeBlock(const HeaderList& headers) {
  Bytes out;
  EncodeBlockInto(headers, out);
  return out;
}

void Encoder::EncodeBlockInto(const HeaderList& headers, Bytes& out) {
  if (table_size_update_pending_) {
    EncodeInteger(pending_table_size_, 5, 0x20, out);
    table_size_update_pending_ = false;
  }
  for (const HeaderField& field : headers) {
    EncodeField(field, out);
  }
}

void Encoder::EncodeField(const HeaderField& field, Bytes& out) {
  if (!field.sensitive) {
    // 1. Exact matches → indexed representation (one to a few bytes).
    if (std::size_t idx = StaticTableFind(field.name, field.value); idx != 0) {
      EncodeInteger(idx, 7, 0x80, out);
      return;
    }
    if (std::size_t idx = table_.Find(field.name, field.value);
        idx != DynamicTable::npos) {
      EncodeInteger(kStaticTableSize + 1 + idx, 7, 0x80, out);
      return;
    }
  }

  // Name index if any table knows the name.
  std::size_t name_index = StaticTableFindName(field.name);
  if (name_index == 0) {
    if (std::size_t idx = table_.FindName(field.name); idx != DynamicTable::npos) {
      name_index = kStaticTableSize + 1 + idx;
    }
  }

  if (field.sensitive) {
    // Literal never indexed: prefix 0001, 4-bit name index.
    EncodeInteger(name_index, 4, 0x10, out);
    if (name_index == 0) EncodeString(field.name, out);
    EncodeString(field.value, out);
    return;
  }

  // Literal with incremental indexing: prefix 01, 6-bit name index.
  EncodeInteger(name_index, 6, 0x40, out);
  if (name_index == 0) EncodeString(field.name, out);
  EncodeString(field.value, out);
  table_.Insert(field.name, field.value);
}

Decoder::Decoder(std::size_t max_table_size)
    : table_(max_table_size), max_table_size_limit_(max_table_size) {}

void Decoder::SetMaxTableSizeLimit(std::size_t limit) {
  max_table_size_limit_ = limit;
  if (table_.max_size() > limit) table_.SetMaxSize(limit);
}

Result<HeaderField> Decoder::LookupIndexed(std::uint64_t index) const {
  if (index == 0) {
    return Error(ErrorCode::kCompression, "hpack index 0 is invalid");
  }
  if (index <= kStaticTableSize) {
    auto entry = StaticTableEntry(static_cast<std::size_t>(index));
    if (!entry) return entry.error();
    return HeaderField{std::string(entry.value().name),
                       std::string(entry.value().value), false};
  }
  const std::size_t dyn_index = static_cast<std::size_t>(index) - kStaticTableSize - 1;
  if (dyn_index >= table_.entry_count()) {
    return Error(ErrorCode::kCompression, "hpack index beyond dynamic table");
  }
  const DynamicEntry& entry = table_.At(dyn_index);
  return HeaderField{entry.name, entry.value, false};
}

Result<std::string> Decoder::LookupName(std::uint64_t index) const {
  auto field = LookupIndexed(index);
  if (!field) return field.error();
  return std::move(field).value().name;
}

Result<HeaderList> Decoder::DecodeBlock(BytesView block) {
  ByteReader reader(block);
  HeaderList headers;
  bool saw_field = false;
  while (!reader.empty()) {
    auto first = reader.PeekU8();
    if (!first) return first.error();
    const std::uint8_t byte = first.value();

    if ((byte & 0x80) != 0) {
      // Indexed header field.
      auto index = DecodeInteger(reader, 7);
      if (!index) return index.error();
      auto field = LookupIndexed(index.value());
      if (!field) return field.error();
      headers.push_back(std::move(field).value());
      saw_field = true;
    } else if ((byte & 0xc0) == 0x40) {
      // Literal with incremental indexing.
      auto index = DecodeInteger(reader, 6);
      if (!index) return index.error();
      std::string name;
      if (index.value() != 0) {
        auto looked_up = LookupName(index.value());
        if (!looked_up) return looked_up.error();
        name = std::move(looked_up).value();
      } else {
        auto parsed = DecodeString(reader);
        if (!parsed) return parsed.error();
        name = std::move(parsed).value();
      }
      auto value = DecodeString(reader);
      if (!value) return value.error();
      table_.Insert(name, value.value());
      headers.push_back(HeaderField{std::move(name), std::move(value).value(), false});
      saw_field = true;
    } else if ((byte & 0xe0) == 0x20) {
      // Dynamic table size update.
      if (saw_field) {
        return Error(ErrorCode::kCompression,
                     "hpack table size update after first field");
      }
      auto new_size = DecodeInteger(reader, 5);
      if (!new_size) return new_size.error();
      if (new_size.value() > max_table_size_limit_) {
        return Error(ErrorCode::kCompression,
                     "hpack table size update above SETTINGS limit");
      }
      table_.SetMaxSize(static_cast<std::size_t>(new_size.value()));
    } else {
      // Literal without indexing (0000) or never indexed (0001): same wire
      // layout, 4-bit name index; never-indexed only differs in proxy
      // re-encoding semantics, which we preserve via `sensitive`.
      const bool never_indexed = (byte & 0xf0) == 0x10;
      auto index = DecodeInteger(reader, 4);
      if (!index) return index.error();
      std::string name;
      if (index.value() != 0) {
        auto looked_up = LookupName(index.value());
        if (!looked_up) return looked_up.error();
        name = std::move(looked_up).value();
      } else {
        auto parsed = DecodeString(reader);
        if (!parsed) return parsed.error();
        name = std::move(parsed).value();
      }
      auto value = DecodeString(reader);
      if (!value) return value.error();
      headers.push_back(
          HeaderField{std::move(name), std::move(value).value(), never_indexed});
      saw_field = true;
    }
  }
  return headers;
}

}  // namespace sww::hpack
