#include "hpack/dynamic_table.hpp"

#include <stdexcept>

namespace sww::hpack {

void DynamicTable::Insert(std::string name, std::string value) {
  DynamicEntry entry{std::move(name), std::move(value)};
  const std::size_t entry_size = entry.Size();
  if (entry_size > max_size_) {
    // RFC 7541 §4.4: an entry larger than the table empties it; the entry
    // itself is not inserted.
    entries_.clear();
    size_ = 0;
    return;
  }
  size_ += entry_size;
  entries_.push_front(std::move(entry));
  EvictToFit();
}

const DynamicEntry& DynamicTable::At(std::size_t index) const {
  if (index >= entries_.size()) {
    throw std::out_of_range("hpack dynamic table index out of range");
  }
  return entries_[index];
}

std::size_t DynamicTable::Find(std::string_view name, std::string_view value) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name && entries_[i].value == value) return i;
  }
  return npos;
}

std::size_t DynamicTable::FindName(std::string_view name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return i;
  }
  return npos;
}

void DynamicTable::SetMaxSize(std::size_t max_size) {
  max_size_ = max_size;
  EvictToFit();
}

void DynamicTable::EvictToFit() {
  while (size_ > max_size_ && !entries_.empty()) {
    size_ -= entries_.back().Size();
    entries_.pop_back();
  }
}

}  // namespace sww::hpack
