#include "hpack/dynamic_table.hpp"

#include <stdexcept>
#include <utility>

namespace sww::hpack {

void DynamicTable::Grow() {
  const std::size_t new_capacity = ring_.empty() ? 8 : ring_.size() * 2;
  std::vector<DynamicEntry> grown(new_capacity);
  const std::size_t new_mask = new_capacity - 1;
  for (std::uint64_t seq = next_seq_ - count_; seq != next_seq_; ++seq) {
    grown[static_cast<std::size_t>(seq) & new_mask] =
        std::move(ring_[static_cast<std::size_t>(seq) & mask_]);
  }
  ring_ = std::move(grown);
  mask_ = new_mask;
}

void DynamicTable::Insert(std::string name, std::string value) {
  const std::size_t entry_size = name.size() + value.size() + 32;
  if (entry_size > max_size_) {
    // RFC 7541 §4.4: an entry larger than the table empties it; the entry
    // itself is not inserted.
    EvictToFit(0);
    return;
  }
  EvictToFit(max_size_ - entry_size);
  if (count_ == ring_.size()) Grow();
  const std::uint64_t seq = next_seq_++;
  DynamicEntry& slot = ring_[static_cast<std::size_t>(seq) & mask_];
  slot.name = std::move(name);
  slot.value = std::move(value);
  name_index_[slot.name].push_back(seq);
  size_ += entry_size;
  ++count_;
}

const DynamicEntry& DynamicTable::At(std::size_t index) const {
  if (index >= count_) {
    throw std::out_of_range("hpack dynamic table index out of range");
  }
  return EntryForSequence(next_seq_ - 1 - index);
}

std::size_t DynamicTable::Find(std::string_view name, std::string_view value) const {
  const auto it = name_index_.find(name);
  if (it == name_index_.end()) return npos;
  // Sequences are ordered oldest → newest; the newest match wins, so scan
  // from the back.  Same-name entries are few in practice (cookies at most).
  const std::vector<std::uint64_t>& seqs = it->second;
  for (auto rit = seqs.rbegin(); rit != seqs.rend(); ++rit) {
    if (EntryForSequence(*rit).value == value) {
      return static_cast<std::size_t>(next_seq_ - 1 - *rit);
    }
  }
  return npos;
}

std::size_t DynamicTable::FindName(std::string_view name) const {
  const auto it = name_index_.find(name);
  if (it == name_index_.end()) return npos;
  return static_cast<std::size_t>(next_seq_ - 1 - it->second.back());
}

void DynamicTable::SetMaxSize(std::size_t max_size) {
  max_size_ = max_size;
  EvictToFit(max_size_);
}

void DynamicTable::EvictOldest() {
  const std::uint64_t seq = next_seq_ - count_;
  DynamicEntry& entry = ring_[static_cast<std::size_t>(seq) & mask_];
  // Eviction is strictly oldest-first, so the evicted sequence is the front
  // of its name bucket.
  if (const auto it = name_index_.find(entry.name); it != name_index_.end()) {
    std::vector<std::uint64_t>& seqs = it->second;
    if (!seqs.empty() && seqs.front() == seq) {
      seqs.erase(seqs.begin());
    }
    if (seqs.empty()) name_index_.erase(it);
  }
  size_ -= entry.Size();
  entry.name.clear();
  entry.value.clear();
  --count_;
}

void DynamicTable::EvictToFit(std::size_t budget) {
  while (size_ > budget && count_ > 0) EvictOldest();
}

}  // namespace sww::hpack
