// huffman.hpp — the HPACK static Huffman code (RFC 7541, Appendix B).
//
// HTTP/2 header strings may be Huffman coded with a fixed, canonical code
// table.  Encoding packs codes MSB-first and pads the final byte with the
// EOS prefix (all ones); decoding walks a trie and enforces the RFC's
// padding rules (at most 7 bits, all ones, EOS itself never decoded).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace sww::hpack {

/// One code table entry: the code's bits (right-aligned) and bit length.
struct HuffmanCode {
  std::uint32_t bits;
  std::uint8_t length;
};

/// The 257-entry table: symbols 0..255 plus EOS (index 256).
const HuffmanCode& CodeForSymbol(unsigned symbol);

/// Number of bytes `text` occupies when Huffman coded (without encoding it).
/// The HPACK encoder uses this to pick the shorter of raw vs. Huffman form.
std::size_t HuffmanEncodedSize(std::string_view text);

/// Huffman-encode `text`, appending to `out`.
void HuffmanEncode(std::string_view text, util::Bytes& out);

/// Huffman-decode an encoded span.  Errors (kCompression) on: a decoded EOS
/// symbol, padding longer than 7 bits, or padding that is not all ones —
/// each of which RFC 7541 §5.2 requires treating as a decoding error.
util::Result<std::string> HuffmanDecode(util::BytesView encoded);

}  // namespace sww::hpack
