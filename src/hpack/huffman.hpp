// huffman.hpp — the HPACK static Huffman code (RFC 7541, Appendix B).
//
// HTTP/2 header strings may be Huffman coded with a fixed, canonical code
// table.  Encoding packs codes MSB-first through a 64-bit accumulator into
// a pre-sized buffer and pads the final byte with the EOS prefix (all
// ones).  Decoding runs a flat 256-state × 256-input finite-state machine
// (one whole input byte per step, 0–2 symbols emitted per step) built once
// from the code table; the RFC's padding rules (at most 7 bits, all ones,
// EOS itself never decoded) are folded into the per-state flags.  The
// original bit-at-a-time trie walk is kept as HuffmanDecodeTrie — the
// oracle the differential test suite and benchmarks verify the FSM
// against, byte for byte.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace sww::hpack {

/// One code table entry: the code's bits (right-aligned) and bit length.
struct HuffmanCode {
  std::uint32_t bits;
  std::uint8_t length;
};

/// The 257-entry table: symbols 0..255 plus EOS (index 256).
const HuffmanCode& CodeForSymbol(unsigned symbol);

/// Number of bytes `text` occupies when Huffman coded (without encoding it).
/// The HPACK encoder uses this to pick the shorter of raw vs. Huffman form.
std::size_t HuffmanEncodedSize(std::string_view text);

/// Huffman-encode `text`, appending to `out`.  The output is pre-sized via
/// HuffmanEncodedSize and filled through a wide accumulator (whole 64-bit
/// words flushed at a time) instead of per-byte push_back.
void HuffmanEncode(std::string_view text, util::Bytes& out);

/// Huffman-decode an encoded span via the FSM fast lane.  Errors
/// (kCompression) on: a decoded EOS symbol, padding longer than 7 bits, or
/// padding that is not all ones — each of which RFC 7541 §5.2 requires
/// treating as a decoding error.
util::Result<std::string> HuffmanDecode(util::BytesView encoded);

/// Reference decoder: the original bit-at-a-time trie walk.  Semantically
/// identical to HuffmanDecode (same outputs, same error classes); kept as
/// the oracle for the differential suite and the speedup benchmarks.
util::Result<std::string> HuffmanDecodeTrie(util::BytesView encoded);

// --- FSM internals, exposed for tests and benchmarks ---------------------

/// One transition of the decoder FSM: consuming one input byte from one
/// state.  `flags` fold in everything the decode loop needs: failure (the
/// byte walks off the code tree or through the EOS symbol), whether the
/// destination state is a valid end of input (root, or an all-ones EOS
/// prefix of ≤ 7 bits), which padding error to report otherwise, and how
/// many symbols the step emitted (0–2, in `symbols`).
struct HuffmanFsmEntry {
  std::uint8_t next = 0;      ///< destination state (trie node id)
  std::uint8_t flags = 0;
  std::uint8_t symbols[2] = {0, 0};
};

inline constexpr std::uint8_t kHuffmanFsmFail = 0x01;     ///< invalid code path
inline constexpr std::uint8_t kHuffmanFsmFailEos = 0x02;  ///< walked through EOS
inline constexpr std::uint8_t kHuffmanFsmAccept = 0x04;   ///< valid end of input
inline constexpr std::uint8_t kHuffmanFsmPadLong = 0x08;  ///< >7 bits mid-code
inline constexpr int kHuffmanFsmEmitShift = 4;            ///< emit count in bits 4-5

/// The canonical HPACK code tree is complete, so it has exactly 256
/// internal nodes — every decoder state fits a uint8_t.
inline constexpr std::size_t kHuffmanFsmStates = 256;

/// The flat 256 × 256 transition table (row = state, column = input byte),
/// built on first use from the code table.
const HuffmanFsmEntry* HuffmanFsmTable();

}  // namespace sww::hpack
