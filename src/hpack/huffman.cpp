#include "hpack/huffman.hpp"

#include <array>
#include <memory>
#include <stdexcept>
#include <vector>

namespace sww::hpack {

using util::Bytes;
using util::BytesView;
using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

// RFC 7541, Appendix B.  Index = symbol (0..255), entry 256 = EOS.
constexpr std::array<HuffmanCode, 257> kCodes = {{
    {0x1ff8, 13},     {0x7fffd8, 23},   {0xfffffe2, 28},  {0xfffffe3, 28},
    {0xfffffe4, 28},  {0xfffffe5, 28},  {0xfffffe6, 28},  {0xfffffe7, 28},
    {0xfffffe8, 28},  {0xffffea, 24},   {0x3ffffffc, 30}, {0xfffffe9, 28},
    {0xfffffea, 28},  {0x3ffffffd, 30}, {0xfffffeb, 28},  {0xfffffec, 28},
    {0xfffffed, 28},  {0xfffffee, 28},  {0xfffffef, 28},  {0xffffff0, 28},
    {0xffffff1, 28},  {0xffffff2, 28},  {0x3ffffffe, 30}, {0xffffff3, 28},
    {0xffffff4, 28},  {0xffffff5, 28},  {0xffffff6, 28},  {0xffffff7, 28},
    {0xffffff8, 28},  {0xffffff9, 28},  {0xffffffa, 28},  {0xffffffb, 28},
    {0x14, 6},        {0x3f8, 10},      {0x3f9, 10},      {0xffa, 12},
    {0x1ff9, 13},     {0x15, 6},        {0xf8, 8},        {0x7fa, 11},
    {0x3fa, 10},      {0x3fb, 10},      {0xf9, 8},        {0x7fb, 11},
    {0xfa, 8},        {0x16, 6},        {0x17, 6},        {0x18, 6},
    {0x0, 5},         {0x1, 5},         {0x2, 5},         {0x19, 6},
    {0x1a, 6},        {0x1b, 6},        {0x1c, 6},        {0x1d, 6},
    {0x1e, 6},        {0x1f, 6},        {0x5c, 7},        {0xfb, 8},
    {0x7ffc, 15},     {0x20, 6},        {0xffb, 12},      {0x3fc, 10},
    {0x1ffa, 13},     {0x21, 6},        {0x5d, 7},        {0x5e, 7},
    {0x5f, 7},        {0x60, 7},        {0x61, 7},        {0x62, 7},
    {0x63, 7},        {0x64, 7},        {0x65, 7},        {0x66, 7},
    {0x67, 7},        {0x68, 7},        {0x69, 7},        {0x6a, 7},
    {0x6b, 7},        {0x6c, 7},        {0x6d, 7},        {0x6e, 7},
    {0x6f, 7},        {0x70, 7},        {0x71, 7},        {0x72, 7},
    {0xfc, 8},        {0x73, 7},        {0xfd, 8},        {0x1ffb, 13},
    {0x7fff0, 19},    {0x1ffc, 13},     {0x3ffc, 14},     {0x22, 6},
    {0x7ffd, 15},     {0x3, 5},         {0x23, 6},        {0x4, 5},
    {0x24, 6},        {0x5, 5},         {0x25, 6},        {0x26, 6},
    {0x27, 6},        {0x6, 5},         {0x74, 7},        {0x75, 7},
    {0x28, 6},        {0x29, 6},        {0x2a, 6},        {0x7, 5},
    {0x2b, 6},        {0x76, 7},        {0x2c, 6},        {0x8, 5},
    {0x9, 5},         {0x2d, 6},        {0x77, 7},        {0x78, 7},
    {0x79, 7},        {0x7a, 7},        {0x7b, 7},        {0x7ffe, 15},
    {0x7fc, 11},      {0x3ffd, 14},     {0x1ffd, 13},     {0xffffffc, 28},
    {0xfffe6, 20},    {0x3fffd2, 22},   {0xfffe7, 20},    {0xfffe8, 20},
    {0x3fffd3, 22},   {0x3fffd4, 22},   {0x3fffd5, 22},   {0x7fffd9, 23},
    {0x3fffd6, 22},   {0x7fffda, 23},   {0x7fffdb, 23},   {0x7fffdc, 23},
    {0x7fffdd, 23},   {0x7fffde, 23},   {0xffffeb, 24},   {0x7fffdf, 23},
    {0xffffec, 24},   {0xffffed, 24},   {0x3fffd7, 22},   {0x7fffe0, 23},
    {0xffffee, 24},   {0x7fffe1, 23},   {0x7fffe2, 23},   {0x7fffe3, 23},
    {0x7fffe4, 23},   {0x1fffdc, 21},   {0x3fffd8, 22},   {0x7fffe5, 23},
    {0x3fffd9, 22},   {0x7fffe6, 23},   {0x7fffe7, 23},   {0xffffef, 24},
    {0x3fffda, 22},   {0x1fffdd, 21},   {0xfffe9, 20},    {0x3fffdb, 22},
    {0x3fffdc, 22},   {0x7fffe8, 23},   {0x7fffe9, 23},   {0x1fffde, 21},
    {0x7fffea, 23},   {0x3fffdd, 22},   {0x3fffde, 22},   {0xfffff0, 24},
    {0x1fffdf, 21},   {0x3fffdf, 22},   {0x7fffeb, 23},   {0x7fffec, 23},
    {0x1fffe0, 21},   {0x1fffe1, 21},   {0x3fffe0, 22},   {0x1fffe2, 21},
    {0x7fffed, 23},   {0x3fffe1, 22},   {0x7fffee, 23},   {0x7fffef, 23},
    {0xfffea, 20},    {0x3fffe2, 22},   {0x3fffe3, 22},   {0x3fffe4, 22},
    {0x7ffff0, 23},   {0x3fffe5, 22},   {0x3fffe6, 22},   {0x7ffff1, 23},
    {0x3ffffe0, 26},  {0x3ffffe1, 26},  {0xfffeb, 20},    {0x7fff1, 19},
    {0x3fffe7, 22},   {0x7ffff2, 23},   {0x3fffe8, 22},   {0x1ffffec, 25},
    {0x3ffffe2, 26},  {0x3ffffe3, 26},  {0x3ffffe4, 26},  {0x7ffffde, 27},
    {0x7ffffdf, 27},  {0x3ffffe5, 26},  {0xfffff1, 24},   {0x1ffffed, 25},
    {0x7fff2, 19},    {0x1fffe3, 21},   {0x3ffffe6, 26},  {0x7ffffe0, 27},
    {0x7ffffe1, 27},  {0x3ffffe7, 26},  {0x7ffffe2, 27},  {0xfffff2, 24},
    {0x1fffe4, 21},   {0x1fffe5, 21},   {0x3ffffe8, 26},  {0x3ffffe9, 26},
    {0xffffffd, 28},  {0x7ffffe3, 27},  {0x7ffffe4, 27},  {0x7ffffe5, 27},
    {0xfffec, 20},    {0xfffff3, 24},   {0xfffed, 20},    {0x1fffe6, 21},
    {0x3fffe9, 22},   {0x1fffe7, 21},   {0x1fffe8, 21},   {0x7ffff3, 23},
    {0x3fffea, 22},   {0x3fffeb, 22},   {0x1ffffee, 25},  {0x1ffffef, 25},
    {0xfffff4, 24},   {0xfffff5, 24},   {0x3ffffea, 26},  {0x7ffff4, 23},
    {0x3ffffeb, 26},  {0x7ffffe6, 27},  {0x3ffffec, 26},  {0x3ffffed, 26},
    {0x7ffffe7, 27},  {0x7ffffe8, 27},  {0x7ffffe9, 27},  {0x7ffffea, 27},
    {0x7ffffeb, 27},  {0xffffffe, 28},  {0x7ffffec, 27},  {0x7ffffed, 27},
    {0x7ffffee, 27},  {0x7ffffef, 27},  {0x7fffff0, 27},  {0x3ffffee, 26},
    {0x3fffffff, 30},
}};

/// Decoding trie node.  The static code has ≤ 511 internal nodes; we build
/// the trie once (thread-safe via static local init) and share it.
struct TrieNode {
  int child[2] = {-1, -1};
  int symbol = -1;  // 0..256 when this node terminates a code
};

class Trie {
 public:
  Trie() {
    nodes_.reserve(600);
    nodes_.emplace_back();
    for (unsigned sym = 0; sym < kCodes.size(); ++sym) {
      const HuffmanCode& code = kCodes[sym];
      int node = 0;
      for (int bit_index = code.length - 1; bit_index >= 0; --bit_index) {
        const int bit = (code.bits >> bit_index) & 1;
        if (nodes_[static_cast<std::size_t>(node)].child[bit] < 0) {
          nodes_[static_cast<std::size_t>(node)].child[bit] =
              static_cast<int>(nodes_.size());
          nodes_.emplace_back();
        }
        node = nodes_[static_cast<std::size_t>(node)].child[bit];
      }
      nodes_[static_cast<std::size_t>(node)].symbol = static_cast<int>(sym);
    }
  }

  const TrieNode& node(int index) const {
    return nodes_[static_cast<std::size_t>(index)];
  }

  std::size_t node_count() const { return nodes_.size(); }

 private:
  std::vector<TrieNode> nodes_;
};

const Trie& GetTrie() {
  static const Trie trie;
  return trie;
}

/// Builds the flat per-byte transition table from the trie.  The canonical
/// code is complete (Kraft sum exactly 1), so the trie has exactly 256
/// internal nodes, every internal node has both children, and a uint8_t
/// state id covers the whole machine.
class FsmBuilder {
 public:
  FsmBuilder() {
    const Trie& trie = GetTrie();

    // Enumerate internal nodes breadth-first from the root, recording for
    // each its state id, depth (== bits consumed since the last emitted
    // symbol when the decoder sits on it), and whether its path from the
    // root is all ones (an EOS prefix — the only legal padding).
    std::vector<int> state_of_node;          // trie node index -> state id
    std::vector<int> node_of_state;          // state id -> trie node index
    std::vector<int> depth_of_state;
    std::vector<bool> all_ones_of_state;
    state_of_node.assign(trie.node_count(), -1);
    auto add_state = [&](int node, int depth, bool all_ones) {
      state_of_node[static_cast<std::size_t>(node)] =
          static_cast<int>(node_of_state.size());
      node_of_state.push_back(node);
      depth_of_state.push_back(depth);
      all_ones_of_state.push_back(all_ones);
    };
    add_state(0, 0, true);
    for (std::size_t s = 0; s < node_of_state.size(); ++s) {
      const TrieNode& node = trie.node(node_of_state[s]);
      for (int bit = 0; bit < 2; ++bit) {
        const int child = node.child[bit];
        if (child < 0 || trie.node(child).symbol >= 0) continue;  // leaf
        add_state(child, depth_of_state[s] + 1,
                  all_ones_of_state[s] && bit == 1);
      }
    }
    if (node_of_state.size() != kHuffmanFsmStates) {
      throw std::logic_error("hpack huffman code tree is not complete");
    }

    auto end_flags = [&](int state) -> std::uint8_t {
      // Classification if the input ends on this state, matching the trie
      // oracle's check order: root is fine, >7 bits of any incomplete code
      // is "padding longer than 7 bits", a short non-all-ones remainder is
      // "padding is not EOS prefix".
      if (state == 0) return kHuffmanFsmAccept;
      if (depth_of_state[static_cast<std::size_t>(state)] > 7)
        return kHuffmanFsmPadLong;
      return all_ones_of_state[static_cast<std::size_t>(state)]
                 ? kHuffmanFsmAccept
                 : 0;
    };

    for (std::size_t state = 0; state < kHuffmanFsmStates; ++state) {
      for (unsigned byte = 0; byte < 256; ++byte) {
        HuffmanFsmEntry& entry =
            table_[(state << 8) | byte];
        int node = node_of_state[state];
        int emit = 0;
        bool fail = false;
        bool fail_eos = false;
        for (int bit_index = 7; bit_index >= 0 && !fail; --bit_index) {
          const int bit = (byte >> bit_index) & 1;
          const int next = trie.node(node).child[bit];
          if (next < 0) {  // unreachable for a complete code; be safe
            fail = true;
            break;
          }
          const int symbol = trie.node(next).symbol;
          if (symbol < 0) {
            node = next;
          } else if (symbol == 256) {
            fail = fail_eos = true;
          } else {
            if (emit < 2) entry.symbols[emit] = static_cast<std::uint8_t>(symbol);
            ++emit;
            node = 0;  // leaf consumed; next code starts at the root
          }
        }
        if (fail || emit > 2) {
          entry = HuffmanFsmEntry{};
          entry.flags = static_cast<std::uint8_t>(
              kHuffmanFsmFail | (fail_eos ? kHuffmanFsmFailEos : 0));
          continue;
        }
        entry.next = static_cast<std::uint8_t>(
            state_of_node[static_cast<std::size_t>(node)]);
        entry.flags = static_cast<std::uint8_t>(
            end_flags(state_of_node[static_cast<std::size_t>(node)]) |
            (emit << kHuffmanFsmEmitShift));
      }
    }
  }

  const HuffmanFsmEntry* table() const { return table_.data(); }

 private:
  std::array<HuffmanFsmEntry, kHuffmanFsmStates * 256> table_{};
};

}  // namespace

const HuffmanFsmEntry* HuffmanFsmTable() {
  static const FsmBuilder builder;
  return builder.table();
}

const HuffmanCode& CodeForSymbol(unsigned symbol) {
  return kCodes.at(symbol);
}

std::size_t HuffmanEncodedSize(std::string_view text) {
  std::size_t bits = 0;
  for (char c : text) {
    bits += kCodes[static_cast<std::uint8_t>(c)].length;
  }
  return (bits + 7) / 8;
}

void HuffmanEncode(std::string_view text, Bytes& out) {
  // Pre-size the output once and fill it through a wide accumulator:
  // codes (≤ 30 bits each) pack into a 128-bit window and flush as whole
  // 64-bit words, instead of growing the vector a byte at a time.
  const std::size_t base = out.size();
  out.resize(base + HuffmanEncodedSize(text));
  std::uint8_t* dst = out.data() + base;
  unsigned __int128 accumulator = 0;
  int bit_count = 0;
  for (char c : text) {
    const HuffmanCode& code = kCodes[static_cast<std::uint8_t>(c)];
    accumulator = (accumulator << code.length) | code.bits;
    bit_count += code.length;
    if (bit_count >= 64) {
      bit_count -= 64;
      const std::uint64_t word =
          static_cast<std::uint64_t>(accumulator >> bit_count);
      for (int shift = 56; shift >= 0; shift -= 8) {
        *dst++ = static_cast<std::uint8_t>(word >> shift);
      }
    }
  }
  if ((bit_count & 7) != 0) {
    // Pad with the most significant bits of EOS (all ones).
    const int pad = 8 - (bit_count & 7);
    accumulator = (accumulator << pad) | ((1u << pad) - 1u);
    bit_count += pad;
  }
  while (bit_count >= 8) {
    bit_count -= 8;
    *dst++ = static_cast<std::uint8_t>(accumulator >> bit_count);
  }
}

namespace {
/// Reserve for the common case (~6.5 coded bits per symbol in header text,
/// an ~1.25× expansion) instead of the 8/5 worst case; rare all-5-bit-code
/// inputs cost one buffer growth instead of every input over-reserving.
std::size_t DecodedSizeHint(std::size_t encoded_size) {
  return encoded_size + encoded_size / 4 + 4;
}
}  // namespace

Result<std::string> HuffmanDecode(BytesView encoded) {
  const HuffmanFsmEntry* table = HuffmanFsmTable();
  std::string out;
  out.reserve(DecodedSizeHint(encoded.size()));
  std::uint32_t state = 0;
  std::uint8_t end_flags = kHuffmanFsmAccept;  // empty input is valid
  for (std::uint8_t byte : encoded) {
    const HuffmanFsmEntry& entry = table[(state << 8) | byte];
    if (entry.flags & kHuffmanFsmFail) {
      if (entry.flags & kHuffmanFsmFailEos) {
        return Error(ErrorCode::kCompression, "huffman: explicit EOS in data");
      }
      return Error(ErrorCode::kCompression, "huffman: invalid code path");
    }
    const int emit = entry.flags >> kHuffmanFsmEmitShift;
    if (emit != 0) {
      out.push_back(static_cast<char>(entry.symbols[0]));
      if (emit == 2) out.push_back(static_cast<char>(entry.symbols[1]));
    }
    state = entry.next;
    end_flags = entry.flags;
  }
  if ((end_flags & kHuffmanFsmAccept) == 0) {
    if (end_flags & kHuffmanFsmPadLong) {
      return Error(ErrorCode::kCompression, "huffman: padding longer than 7 bits");
    }
    return Error(ErrorCode::kCompression, "huffman: padding is not EOS prefix");
  }
  return out;
}

Result<std::string> HuffmanDecodeTrie(BytesView encoded) {
  const Trie& trie = GetTrie();
  std::string out;
  out.reserve(DecodedSizeHint(encoded.size()));
  int node = 0;
  int bits_since_symbol = 0;    // depth into the current (incomplete) code
  bool padding_all_ones = true; // RFC 7541 §5.2: padding must be EOS prefix
  for (std::uint8_t byte : encoded) {
    for (int bit_index = 7; bit_index >= 0; --bit_index) {
      const int bit = (byte >> bit_index) & 1;
      if (bit == 0) padding_all_ones = false;
      const int next = trie.node(node).child[bit];
      if (next < 0) {
        return Error(ErrorCode::kCompression, "huffman: invalid code path");
      }
      node = next;
      ++bits_since_symbol;
      const int symbol = trie.node(node).symbol;
      if (symbol >= 0) {
        if (symbol == 256) {
          return Error(ErrorCode::kCompression, "huffman: explicit EOS in data");
        }
        out.push_back(static_cast<char>(symbol));
        node = 0;
        bits_since_symbol = 0;
        padding_all_ones = true;
      }
    }
  }
  if (bits_since_symbol > 7) {
    return Error(ErrorCode::kCompression, "huffman: padding longer than 7 bits");
  }
  if (bits_since_symbol > 0 && !padding_all_ones) {
    return Error(ErrorCode::kCompression, "huffman: padding is not EOS prefix");
  }
  return out;
}

}  // namespace sww::hpack
