#include "compress/swz.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

#include "compress/huffman_coder.hpp"
#include "util/simd.hpp"

namespace sww::compress {

using util::Bytes;
using util::BytesView;
using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

constexpr std::uint32_t kHashSize = 1 << 15;

std::uint32_t HashPrefix(const std::uint8_t* p) {
  // Multiplicative hash of a 4-byte prefix.
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 17;
}

}  // namespace

Bytes Lz77Tokenize(BytesView data) {
  Bytes ops;
  ops.reserve(data.size() / 2 + 16);

  // Hash chains over 4-byte prefixes.
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> previous(data.size(), -1);

  Bytes pending_literals;
  auto flush_literals = [&]() {
    std::size_t offset = 0;
    while (offset < pending_literals.size()) {
      const std::size_t run =
          std::min<std::size_t>(0x80, pending_literals.size() - offset);
      ops.push_back(static_cast<std::uint8_t>(run - 1));
      ops.insert(ops.end(), pending_literals.begin() + static_cast<std::ptrdiff_t>(offset),
                 pending_literals.begin() + static_cast<std::ptrdiff_t>(offset + run));
      offset += run;
    }
    pending_literals.clear();
  };

  std::size_t position = 0;
  while (position < data.size()) {
    std::size_t best_length = 0;
    std::size_t best_distance = 0;
    if (position + kMinMatch <= data.size()) {
      const std::uint32_t hash = HashPrefix(&data[position]);
      std::int64_t candidate = head[hash];
      int chain_budget = 32;
      while (candidate >= 0 && chain_budget-- > 0) {
        const std::size_t distance = position - static_cast<std::size_t>(candidate);
        if (distance > kWindowSize) break;
        // Extend the match: the SIMD fast lane compares 16/32 bytes per
        // step (util::simd::MatchLength); the result — the exact common
        // prefix length — is identical in every dispatch lane, so the op
        // stream and everything downstream of it are byte-stable.
        const std::size_t limit =
            std::min(kMaxMatch, data.size() - position);
        const std::size_t length = util::simd::MatchLength(
            &data[static_cast<std::size_t>(candidate)], &data[position], limit);
        if (length > best_length) {
          best_length = length;
          best_distance = distance;
          if (length == kMaxMatch) break;
        }
        candidate = previous[static_cast<std::size_t>(candidate)];
      }
    }

    if (best_length >= kMinMatch) {
      flush_literals();
      ops.push_back(static_cast<std::uint8_t>(0x80 + (best_length - kMinMatch)));
      const std::uint16_t distance_field =
          static_cast<std::uint16_t>(best_distance - 1);
      ops.push_back(static_cast<std::uint8_t>(distance_field >> 8));
      ops.push_back(static_cast<std::uint8_t>(distance_field));
      // Insert hash entries for every covered position.
      const std::size_t end = position + best_length;
      while (position < end) {
        if (position + kMinMatch <= data.size()) {
          const std::uint32_t hash = HashPrefix(&data[position]);
          previous[position] = head[hash];
          head[hash] = static_cast<std::int64_t>(position);
        }
        ++position;
      }
    } else {
      if (position + kMinMatch <= data.size()) {
        const std::uint32_t hash = HashPrefix(&data[position]);
        previous[position] = head[hash];
        head[hash] = static_cast<std::int64_t>(position);
      }
      pending_literals.push_back(data[position]);
      ++position;
    }
  }
  flush_literals();
  return ops;
}

Result<Bytes> Lz77Reconstruct(BytesView ops, std::size_t expected_size) {
  Bytes out;
  out.reserve(expected_size);
  std::size_t position = 0;
  while (position < ops.size() && out.size() < expected_size) {
    const std::uint8_t control = ops[position++];
    if (control < 0x80) {
      const std::size_t run = static_cast<std::size_t>(control) + 1;
      if (position + run > ops.size()) {
        return Error(ErrorCode::kTruncated, "swz: literal run past end");
      }
      out.insert(out.end(), ops.begin() + static_cast<std::ptrdiff_t>(position),
                 ops.begin() + static_cast<std::ptrdiff_t>(position + run));
      position += run;
    } else {
      if (position + 2 > ops.size()) {
        return Error(ErrorCode::kTruncated, "swz: match header past end");
      }
      const std::size_t length = (control - 0x80) + kMinMatch;
      const std::size_t distance =
          (static_cast<std::size_t>(ops[position]) << 8 | ops[position + 1]) + 1;
      position += 2;
      if (distance > out.size()) {
        return Error(ErrorCode::kMalformed, "swz: match distance before start");
      }
      for (std::size_t i = 0; i < length; ++i) {
        out.push_back(out[out.size() - distance]);  // overlapping copies OK
      }
    }
  }
  if (out.size() != expected_size) {
    return Error(ErrorCode::kMalformed, "swz: reconstructed size mismatch");
  }
  return out;
}

Bytes SwzCompress(BytesView data) {
  const Bytes ops = Lz77Tokenize(data);
  const Bytes coded = HuffmanCompress(ops);

  util::ByteWriter writer(coded.size() + 12);
  writer.WriteString("SWZ1");
  writer.WriteU32(static_cast<std::uint32_t>(data.size()));
  // The op-stream length is needed to bound Huffman decode.
  writer.WriteU32(static_cast<std::uint32_t>(ops.size()));
  writer.WriteBytes(coded);
  return std::move(writer).TakeBytes();
}

Result<Bytes> SwzDecompress(BytesView compressed) {
  util::ByteReader reader(compressed);
  auto magic = reader.ReadString(4);
  if (!magic) return magic.error();
  if (magic.value() != "SWZ1") {
    return Error(ErrorCode::kMalformed, "swz: bad magic");
  }
  auto original_size = reader.ReadU32();
  if (!original_size) return original_size.error();
  auto ops_size = reader.ReadU32();
  if (!ops_size) return ops_size.error();
  auto ops = HuffmanDecompress(reader.Rest(), ops_size.value());
  if (!ops) return ops.error();
  return Lz77Reconstruct(ops.value(), original_size.value());
}

double SwzRatio(BytesView data) {
  if (data.empty()) return 1.0;
  const Bytes compressed = SwzCompress(data);
  return static_cast<double>(data.size()) /
         static_cast<double>(compressed.size());
}

}  // namespace sww::compress
