#include "compress/bitio.hpp"

namespace sww::compress {

void BitWriter::Write(std::uint32_t bits, int count) {
  const std::uint32_t mask =
      count >= 32 ? 0xffffffffu : ((1u << count) - 1u);
  accumulator_ |= static_cast<std::uint64_t>(bits & mask) << pending_bits_;
  pending_bits_ += count;
  total_bits_ += static_cast<std::size_t>(count);
  while (pending_bits_ >= 8) {
    buffer_.push_back(static_cast<std::uint8_t>(accumulator_));
    accumulator_ >>= 8;
    pending_bits_ -= 8;
  }
}

util::Bytes BitWriter::Finish() && {
  if (pending_bits_ > 0) {
    buffer_.push_back(static_cast<std::uint8_t>(accumulator_));
    accumulator_ = 0;
    pending_bits_ = 0;
  }
  return std::move(buffer_);
}

util::Result<std::uint32_t> BitReader::Read(int count) {
  std::uint32_t value = 0;
  for (int i = 0; i < count; ++i) {
    const std::size_t byte_index = bit_position_ >> 3;
    if (byte_index >= bytes_.size()) {
      return util::Error(util::ErrorCode::kTruncated, "bit stream exhausted");
    }
    const int bit_index = static_cast<int>(bit_position_ & 7);
    if ((bytes_[byte_index] >> bit_index) & 1) {
      value |= (1u << i);
    }
    ++bit_position_;
  }
  return value;
}

}  // namespace sww::compress
