// swz.hpp — the swz content coding: LZ77 + canonical Huffman.
//
// A self-contained DEFLATE-class compressor used as the HTTP content
// coding for SWW pages ("accept-encoding: swz").  Prompts are text, so
// they compress well — the coding stacks with the prompt-for-media
// substitution itself (§2.1's "reduced network load" benefit).
//
// Format:
//   magic "SWZ1" (4 bytes)
//   original size, u32 big-endian
//   Huffman-coded LZ77 op stream (see lz77.cpp for the op grammar)
#pragma once

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace sww::compress {

/// The content-coding token used in accept-encoding / content-encoding.
inline constexpr std::string_view kContentCoding = "swz";

/// Compress. Always succeeds; output may exceed input for incompressible
/// data (callers keep the original when that happens).
util::Bytes SwzCompress(util::BytesView data);

/// Decompress. Validates magic, size and the coded stream.
util::Result<util::Bytes> SwzDecompress(util::BytesView compressed);

/// Convenience: compression ratio of `data` under swz.
double SwzRatio(util::BytesView data);

// --- LZ77 stage (exposed for tests) ----------------------------------------

/// Tokenize into the op-stream grammar:
///   control byte C:
///     C < 0x80 → literal run of C+1 bytes (raw bytes follow)
///     C ≥ 0x80 → match of length (C-0x80)+kMinMatch, then distance-1 as
///                u16 big-endian (window ≤ 64 KiB)
util::Bytes Lz77Tokenize(util::BytesView data);

/// Reconstruct original bytes from an op stream.
util::Result<util::Bytes> Lz77Reconstruct(util::BytesView ops,
                                          std::size_t expected_size);

inline constexpr std::size_t kMinMatch = 4;
inline constexpr std::size_t kMaxMatch = 0x7f + kMinMatch;  // 131
inline constexpr std::size_t kWindowSize = 1 << 16;

}  // namespace sww::compress
