#include "compress/huffman_coder.hpp"

#include <algorithm>
#include <queue>
#include <vector>

namespace sww::compress {

using util::Bytes;
using util::BytesView;
using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

/// Reverse the low `length` bits (canonical codes are MSB-first by
/// construction; our bit IO is LSB-first).
std::uint32_t ReverseBits(std::uint32_t value, int length) {
  std::uint32_t reversed = 0;
  for (int i = 0; i < length; ++i) {
    reversed = (reversed << 1) | ((value >> i) & 1);
  }
  return reversed;
}

}  // namespace

HuffmanCode HuffmanCode::FromFrequencies(
    const std::array<std::uint64_t, kSymbolCount>& frequencies) {
  HuffmanCode code;

  // Standard heap-based Huffman over present symbols.
  struct Node {
    std::uint64_t weight;
    int index;        // tie-break for determinism
    int left = -1;    // children into `nodes`
    int right = -1;
    int symbol = -1;  // leaf symbol
  };
  std::vector<Node> nodes;
  auto compare = [&nodes](int a, int b) {
    if (nodes[static_cast<std::size_t>(a)].weight !=
        nodes[static_cast<std::size_t>(b)].weight) {
      return nodes[static_cast<std::size_t>(a)].weight >
             nodes[static_cast<std::size_t>(b)].weight;
    }
    return nodes[static_cast<std::size_t>(a)].index >
           nodes[static_cast<std::size_t>(b)].index;
  };
  std::priority_queue<int, std::vector<int>, decltype(compare)> heap(compare);

  int present = 0;
  for (int s = 0; s < kSymbolCount; ++s) {
    if (frequencies[static_cast<std::size_t>(s)] > 0) {
      Node node;
      node.weight = frequencies[static_cast<std::size_t>(s)];
      node.index = static_cast<int>(nodes.size());
      node.symbol = s;
      nodes.push_back(node);
      heap.push(node.index);
      ++present;
    }
  }
  if (present == 0) return code;
  if (present == 1) {
    // A single-symbol alphabet still needs a 1-bit code.
    for (int s = 0; s < kSymbolCount; ++s) {
      if (frequencies[static_cast<std::size_t>(s)] > 0) {
        code.lengths[static_cast<std::size_t>(s)] = 1;
      }
    }
    code.AssignCanonicalCodes();
    return code;
  }

  while (heap.size() > 1) {
    const int a = heap.top();
    heap.pop();
    const int b = heap.top();
    heap.pop();
    Node parent;
    parent.weight = nodes[static_cast<std::size_t>(a)].weight +
                    nodes[static_cast<std::size_t>(b)].weight;
    parent.index = static_cast<int>(nodes.size());
    parent.left = a;
    parent.right = b;
    nodes.push_back(parent);
    heap.push(parent.index);
  }

  // Depth-assign via explicit stack.
  std::vector<std::pair<int, int>> stack{{heap.top(), 0}};
  while (!stack.empty()) {
    const auto [index, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(index)];
    if (node.symbol >= 0) {
      code.lengths[static_cast<std::size_t>(node.symbol)] =
          static_cast<std::uint8_t>(std::max(1, depth));
    } else {
      stack.emplace_back(node.left, depth + 1);
      stack.emplace_back(node.right, depth + 1);
    }
  }

  // Length-limit to kMaxCodeLength: flatten over-deep codes and repair the
  // Kraft sum by deepening the shallowest codes (simple, deterministic).
  bool overflow = false;
  for (int s = 0; s < kSymbolCount; ++s) {
    if (code.lengths[static_cast<std::size_t>(s)] > kMaxCodeLength) {
      code.lengths[static_cast<std::size_t>(s)] = kMaxCodeLength;
      overflow = true;
    }
  }
  if (overflow) {
    auto kraft = [&code]() {
      std::uint64_t sum = 0;  // in units of 2^-kMaxCodeLength
      for (int s = 0; s < kSymbolCount; ++s) {
        const int len = code.lengths[static_cast<std::size_t>(s)];
        if (len > 0) sum += 1ULL << (kMaxCodeLength - len);
      }
      return sum;
    };
    const std::uint64_t budget = 1ULL << kMaxCodeLength;
    while (kraft() > budget) {
      // Deepen the longest code shorter than the limit.
      int best = -1;
      for (int s = 0; s < kSymbolCount; ++s) {
        const int len = code.lengths[static_cast<std::size_t>(s)];
        if (len > 0 && len < kMaxCodeLength &&
            (best < 0 || len > code.lengths[static_cast<std::size_t>(best)])) {
          best = s;
        }
      }
      if (best < 0) break;
      code.lengths[static_cast<std::size_t>(best)]++;
    }
  }

  code.AssignCanonicalCodes();
  return code;
}

void HuffmanCode::AssignCanonicalCodes() {
  // Count codes per length, then assign increasing values per the
  // canonical rule (as in DEFLATE).
  std::array<int, kMaxCodeLength + 1> length_count{};
  for (int s = 0; s < kSymbolCount; ++s) {
    ++length_count[lengths[static_cast<std::size_t>(s)]];
  }
  length_count[0] = 0;
  std::array<std::uint32_t, kMaxCodeLength + 2> next_code{};
  std::uint32_t running = 0;
  for (int len = 1; len <= kMaxCodeLength; ++len) {
    running = (running + static_cast<std::uint32_t>(length_count[len - 1])) << 1;
    next_code[len] = running;
  }
  for (int s = 0; s < kSymbolCount; ++s) {
    const int len = lengths[static_cast<std::size_t>(s)];
    if (len == 0) continue;
    codes[static_cast<std::size_t>(s)] = ReverseBits(next_code[len]++, len);
  }
}

Bytes HuffmanCompress(BytesView data) {
  std::array<std::uint64_t, kSymbolCount> frequencies{};
  for (std::uint8_t byte : data) ++frequencies[byte];
  const HuffmanCode code = HuffmanCode::FromFrequencies(frequencies);

  BitWriter writer;
  for (int s = 0; s < kSymbolCount; ++s) {
    writer.Write(code.lengths[static_cast<std::size_t>(s)], 4);
  }
  for (std::uint8_t byte : data) {
    writer.Write(code.codes[byte], code.lengths[byte]);
  }
  return std::move(writer).Finish();
}

Result<Bytes> HuffmanDecompress(BytesView coded, std::size_t expected_size) {
  BitReader reader(coded);
  HuffmanCode code;
  bool any = false;
  for (int s = 0; s < kSymbolCount; ++s) {
    auto nibble = reader.Read(4);
    if (!nibble) return nibble.error();
    code.lengths[static_cast<std::size_t>(s)] =
        static_cast<std::uint8_t>(nibble.value());
    if (nibble.value() > 0) any = true;
  }
  if (!any) {
    if (expected_size != 0) {
      return Error(ErrorCode::kMalformed, "swz: empty code, nonempty payload");
    }
    return Bytes{};
  }
  code.AssignCanonicalCodes();

  // Decode table: because codes are LSB-first we walk bit by bit against
  // candidate (code, length) pairs via a small per-length lookup.
  struct Candidate {
    std::uint32_t code;
    int symbol;
  };
  std::array<std::vector<Candidate>, kMaxCodeLength + 1> by_length;
  for (int s = 0; s < kSymbolCount; ++s) {
    const int len = code.lengths[static_cast<std::size_t>(s)];
    if (len > 0) {
      by_length[static_cast<std::size_t>(len)].push_back(
          Candidate{code.codes[static_cast<std::size_t>(s)], s});
    }
  }

  Bytes out;
  out.reserve(expected_size);
  while (out.size() < expected_size) {
    std::uint32_t bits = 0;
    int length = 0;
    int symbol = -1;
    while (length < kMaxCodeLength && symbol < 0) {
      auto bit = reader.Read(1);
      if (!bit) return bit.error();
      bits |= (bit.value() << length);
      ++length;
      for (const Candidate& candidate :
           by_length[static_cast<std::size_t>(length)]) {
        if (candidate.code == bits) {
          symbol = candidate.symbol;
          break;
        }
      }
    }
    if (symbol < 0) {
      return Error(ErrorCode::kMalformed, "swz: invalid huffman code");
    }
    out.push_back(static_cast<std::uint8_t>(symbol));
  }
  return out;
}

}  // namespace sww::compress
