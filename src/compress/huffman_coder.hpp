// huffman_coder.hpp — dynamic canonical Huffman coding over byte symbols.
//
// Unlike hpack/huffman.hpp (the *fixed* HPACK code), this builds a code
// from observed frequencies, transmits it as a canonical length table
// (256 × 4 bits), and codes the stream with it — the entropy stage of the
// swz content coding.
#pragma once

#include <array>
#include <cstdint>

#include "compress/bitio.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace sww::compress {

inline constexpr int kMaxCodeLength = 15;
inline constexpr int kSymbolCount = 256;

/// Code lengths per symbol (0 = symbol unused), canonical assignment.
struct HuffmanCode {
  std::array<std::uint8_t, kSymbolCount> lengths{};
  std::array<std::uint32_t, kSymbolCount> codes{};  // LSB-first, reversed

  /// Build length-limited code lengths from frequencies, then canonical
  /// codes.  Always succeeds (falls back to flattening over-deep trees).
  static HuffmanCode FromFrequencies(
      const std::array<std::uint64_t, kSymbolCount>& frequencies);

  /// Recompute canonical codes from the length table (after transmit).
  void AssignCanonicalCodes();
};

/// Encode `data` with a per-buffer code.  Output layout:
///   [256 × 4-bit length nibbles][coded bits...]
/// Lengths above 15 cannot occur; a nibble of 0 means unused symbol.
util::Bytes HuffmanCompress(util::BytesView data);

/// Inverse of HuffmanCompress; `expected_size` bounds the output (from the
/// container header) so corrupt streams cannot balloon.
util::Result<util::Bytes> HuffmanDecompress(util::BytesView coded,
                                            std::size_t expected_size);

}  // namespace sww::compress
