// bitio.hpp — LSB-first bit stream reader/writer for the swz coder.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace sww::compress {

/// Append bits LSB-first into a growing byte buffer.
class BitWriter {
 public:
  /// Write the low `count` bits of `bits` (count ≤ 32).
  void Write(std::uint32_t bits, int count);

  /// Pad the final partial byte with zero bits and return the buffer.
  util::Bytes Finish() &&;

  std::size_t bit_count() const { return total_bits_; }

 private:
  util::Bytes buffer_;
  std::uint64_t accumulator_ = 0;
  int pending_bits_ = 0;
  std::size_t total_bits_ = 0;
};

/// Read bits LSB-first from a byte span.
class BitReader {
 public:
  explicit BitReader(util::BytesView bytes) : bytes_(bytes) {}

  /// Read `count` bits (count ≤ 32); kTruncated past the end.
  util::Result<std::uint32_t> Read(int count);

  std::size_t bits_consumed() const { return bit_position_; }

 private:
  util::BytesView bytes_;
  std::size_t bit_position_ = 0;
};

}  // namespace sww::compress
