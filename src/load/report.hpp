// report.hpp — deterministic per-scenario text reports (`load.report.txt`).
//
// The rendering is byte-stable for a given ScenarioResult: fixed-width
// snprintf formatting, no locale, no pointers, no wall-clock — the CI
// fleet-smoke job diffs the output against a golden file, and the
// determinism acceptance test diffs two independent runs.
#pragma once

#include <string>
#include <vector>

#include "load/engine.hpp"

namespace sww::load {

/// One scenario's report block.
std::string RenderScenarioReport(const ScenarioResult& result);

/// Concatenated blocks for a multi-scenario run, separated by blank
/// lines, with a one-line header naming the engine.
std::string RenderLoadReport(const std::vector<ScenarioResult>& results);

}  // namespace sww::load
