// spec.hpp — declarative fleet-workload scenarios.
//
// A scenario is *data*, not code: population size, client-class mix,
// arrival curve, catalog shape, serve mode, server capacity and fault
// windows, all in one struct that parses from JSON and renders back.
// Later scaling PRs (epoll server, sharded edge, agent mode) add
// scenarios — JSON files or builtin entries — instead of new harnesses,
// and every scenario automatically gets the same coordinated-omission-
// free measurement and per-scenario observability series.
//
// The spec grammar is documented in docs/performance.md ("Fleet
// workload"); keep the two in sync.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cdn/catalog.hpp"
#include "json/json.hpp"
#include "load/samplers.hpp"
#include "util/error.hpp"

namespace sww::load {

/// How pages travel from edge to client — the paper's trade-off axis.
enum class ServeMode {
  /// Today's web: the edge caches and ships materialized content bytes.
  kTraditional,
  /// The paper's intermediate CDN design: edges cache prompts and
  /// materialize per request on workstation-class hardware.
  kEdgeGenerative,
  /// Full SWW: edges cache and ship prompt bytes; the *client device*
  /// generates (device profile from the client class).
  kClientGenerative,
};

std::string_view ServeModeName(ServeMode mode);
util::Result<ServeMode> ParseServeMode(std::string_view name);

/// One slice of the client population: how common it is, what hardware it
/// generates on, and what network it sits behind.
struct ClientClass {
  std::string name = "default";
  double weight = 1.0;
  /// energy::DeviceProfile selector: "laptop" or "workstation".
  std::string device = "laptop";
  double rtt_ms = 20.0;
  double bandwidth_mbps = 100.0;
  /// Fraction of segments lost (net::reliable_link-style loss class):
  /// inflates transfer time by 1/(1-loss) and the handshake by
  /// retransmission round trips.
  double loss_rate = 0.0;
  /// Fraction of requests that fail outright (timeout after
  /// error_timeout_seconds; excluded from goodput, counted as bad).
  double error_rate = 0.0;
};

/// A server fault window: no request may *start* service inside it.
/// Queued arrivals pile up and drain afterwards — the coordinated-
/// omission check rides on this (arrivals keep their scheduled times, so
/// the pile-up lands in the latency distribution).
struct StallWindow {
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

struct ScenarioSpec {
  std::string name = "scenario";  ///< [a-z0-9_-]+: names metric series
  std::uint64_t seed = 1;
  double duration_seconds = 60.0;
  /// Distinct simulated users; drives client prompt-cache revisit hits.
  std::uint64_t population = 1000;

  ArrivalCurve arrivals;
  cdn::CatalogOptions catalog;
  ServeMode serve_mode = ServeMode::kClientGenerative;
  std::vector<ClientClass> classes;

  std::uint64_t edge_storage_budget_bytes = 16ull << 20;
  /// Concurrent server-side serve slots (the G/G/c service stations).
  int server_concurrency = 8;
  /// Fixed per-request server+protocol cost when not calibrating.
  double server_overhead_seconds = 0.002;
  /// Calibrate the overhead from one real in-process LocalSession page
  /// fetch (its journal wire_seconds) instead of the constant above.
  bool calibrate_overhead = false;
  std::vector<StallWindow> stalls;
  double error_timeout_seconds = 10.0;

  // Per-scenario SLO objective over load.<name>.latency.
  double slo_threshold_seconds = 30.0;
  double slo_target = 0.99;
  /// Cumulative snapshots fed to the burn-rate engine over the run.
  int slo_ingest_points = 16;
};

/// Validate invariants JSON parsing cannot express (positive duration,
/// nonempty classes, metric-safe name, windows inside the run...).
util::Status ValidateScenarioSpec(const ScenarioSpec& spec);

/// Parse one scenario object.  Unknown keys are an error — a typo in a
/// scenario file must not silently fall back to defaults.
util::Result<ScenarioSpec> ParseScenarioSpec(const json::Value& doc);
/// Parse a JSON text holding one scenario object or an array of them.
util::Result<std::vector<ScenarioSpec>> ParseScenarioSpecText(
    std::string_view text);

/// Render back to JSON (round-trips through ParseScenarioSpec).
json::Value ScenarioSpecToJson(const ScenarioSpec& spec);

/// The stock scenarios: "smoke" (small fixed-seed CI scenario),
/// "smoke-stall" (smoke plus a mid-run stall window),
/// "flash-crowd" (burst over an edge-generative fleet),
/// "diurnal-mixed" (sinusoidal day over a mixed population), and
/// "lossy-cellular" (constrained lossy clients, client-generative).
std::vector<ScenarioSpec> BuiltinScenarios();
util::Result<ScenarioSpec> FindBuiltinScenario(std::string_view name);

}  // namespace sww::load
