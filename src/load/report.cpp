#include "load/report.hpp"

#include <cstdio>

namespace sww::load {

namespace {

double Ratio(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

void Append(std::string& out, const char* text) { out += text; }

}  // namespace

std::string RenderScenarioReport(const ScenarioResult& result) {
  const ScenarioSpec& spec = result.spec;
  std::string out;
  char line[256];

  std::snprintf(line, sizeof(line), "scenario %s  (seed %llu, %s)\n",
                spec.name.c_str(),
                static_cast<unsigned long long>(spec.seed),
                std::string(ServeModeName(spec.serve_mode)).c_str());
  Append(out, line);
  std::snprintf(line, sizeof(line),
                "  duration        %10.3f s virtual   makespan %10.3f s\n",
                result.duration_seconds, result.makespan_seconds);
  Append(out, line);
  std::snprintf(
      line, sizeof(line),
      "  requests        %10llu   errors %llu (%.2f%%)   coalesced %llu\n",
      static_cast<unsigned long long>(result.requests),
      static_cast<unsigned long long>(result.errors),
      100.0 * Ratio(result.errors, result.requests),
      static_cast<unsigned long long>(result.coalesced));
  Append(out, line);
  std::snprintf(line, sizeof(line),
                "  goodput         %10.3f req/s     %10.4f Mbps\n",
                result.goodput_rps, result.goodput_mbps);
  Append(out, line);

  const obs::HistogramSnapshot& lat = result.latency;
  std::snprintf(line, sizeof(line),
                "  latency p50     %10.4f s   p95 %10.4f s\n",
                obs::HistogramSnapshotQuantile(lat, 50.0),
                obs::HistogramSnapshotQuantile(lat, 95.0));
  Append(out, line);
  std::snprintf(line, sizeof(line),
                "  latency p99     %10.4f s   p999 %9.4f s   max %9.4f s\n",
                obs::HistogramSnapshotQuantile(lat, 99.0),
                obs::HistogramSnapshotQuantile(lat, 99.9), lat.max);
  Append(out, line);
  std::snprintf(line, sizeof(line),
                "  queue wait p50  %10.4f s   p99 %10.4f s   max %9.4f s\n",
                obs::HistogramSnapshotQuantile(result.queue_wait, 50.0),
                obs::HistogramSnapshotQuantile(result.queue_wait, 99.0),
                result.queue_wait.max);
  Append(out, line);

  std::snprintf(line, sizeof(line),
                "  edge            %10llu serves    hit ratio %.4f\n",
                static_cast<unsigned long long>(result.edge_requests),
                Ratio(result.edge_hits, result.edge_requests));
  Append(out, line);
  std::snprintf(
      line, sizeof(line),
      "  client cache    %10llu hits      hit ratio %.4f   coalesce %.4f\n",
      static_cast<unsigned long long>(result.client_cache_hits),
      Ratio(result.client_cache_hits, result.requests),
      Ratio(result.coalesced, result.requests));
  Append(out, line);
  std::snprintf(line, sizeof(line),
                "  delivered       %10llu bytes     server overhead %.6f s\n",
                static_cast<unsigned long long>(result.delivered_bytes),
                result.server_overhead_seconds);
  Append(out, line);
  std::snprintf(line, sizeof(line),
                "  energy          %10.4f Wh        %10.4f J/page   "
                "%.6f gCO2e/page\n",
                result.total_energy_wh, result.energy_joules_per_page,
                result.gco2e_per_page);
  Append(out, line);
  std::snprintf(line, sizeof(line),
                "  journal         %10llu records   dropped %llu\n",
                static_cast<unsigned long long>(result.journal_recorded),
                static_cast<unsigned long long>(result.journal_dropped));
  Append(out, line);

  for (const obs::SloEvaluation& eval : result.slo) {
    std::snprintf(
        line, sizeof(line),
        "  slo %-28s p%.0f %.4f s vs %.3f s  burn fast %.2fx slow %.2fx  %s\n",
        eval.objective.name.c_str(), eval.objective.quantile,
        eval.quantile_value, eval.objective.threshold, eval.fast.burn_rate,
        eval.slow.burn_rate, eval.burning ? "BURNING" : "ok");
    Append(out, line);
  }
  return out;
}

std::string RenderLoadReport(const std::vector<ScenarioResult>& results) {
  std::string out = "sww_load fleet report\n";
  for (const ScenarioResult& result : results) {
    out += '\n';
    out += RenderScenarioReport(result);
  }
  return out;
}

}  // namespace sww::load
