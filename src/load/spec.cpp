#include "load/spec.hpp"

#include <set>

namespace sww::load {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

std::string_view ServeModeName(ServeMode mode) {
  switch (mode) {
    case ServeMode::kTraditional: return "traditional";
    case ServeMode::kEdgeGenerative: return "edge-generative";
    case ServeMode::kClientGenerative: return "client-generative";
  }
  return "unknown";
}

Result<ServeMode> ParseServeMode(std::string_view name) {
  if (name == "traditional") return ServeMode::kTraditional;
  if (name == "edge-generative") return ServeMode::kEdgeGenerative;
  if (name == "client-generative") return ServeMode::kClientGenerative;
  return Error(ErrorCode::kInvalidArgument,
               "unknown serve_mode: " + std::string(name));
}

namespace {

bool MetricSafeName(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Reject unknown keys: scenario files are config, and a misspelled knob
/// silently reverting to its default is the worst possible failure mode.
Status CheckKeys(const json::Value& doc, const std::set<std::string>& known,
                 const std::string& where) {
  if (!doc.is_object()) {
    return Error(ErrorCode::kInvalidArgument, where + " must be an object");
  }
  for (const auto& [key, value] : doc.AsObject()) {
    (void)value;
    if (known.find(key) == known.end()) {
      return Error(ErrorCode::kInvalidArgument,
                   where + ": unknown key \"" + key + "\"");
    }
  }
  return Status::Ok();
}

Result<ArrivalCurve> ParseArrivals(const json::Value& doc) {
  if (Status status = CheckKeys(doc,
                                {"base_rps", "diurnal_amplitude",
                                 "diurnal_period_seconds", "flash_crowds"},
                                "arrivals");
      !status.ok()) {
    return status.error();
  }
  ArrivalCurve curve;
  curve.base_rps = doc.GetNumber("base_rps", curve.base_rps);
  curve.diurnal_amplitude =
      doc.GetNumber("diurnal_amplitude", curve.diurnal_amplitude);
  curve.diurnal_period_seconds =
      doc.GetNumber("diurnal_period_seconds", curve.diurnal_period_seconds);
  if (const json::Value* crowds = doc.Get("flash_crowds"); crowds != nullptr) {
    if (!crowds->is_array()) {
      return Error(ErrorCode::kInvalidArgument,
                   "arrivals.flash_crowds must be an array");
    }
    for (const json::Value& entry : crowds->AsArray()) {
      if (Status status = CheckKeys(
              entry, {"start_seconds", "duration_seconds", "multiplier"},
              "flash_crowds entry");
          !status.ok()) {
        return status.error();
      }
      FlashCrowd crowd;
      crowd.start_seconds = entry.GetNumber("start_seconds");
      crowd.duration_seconds = entry.GetNumber("duration_seconds");
      crowd.multiplier = entry.GetNumber("multiplier", 1.0);
      curve.flash_crowds.push_back(crowd);
    }
  }
  return curve;
}

Result<ClientClass> ParseClientClass(const json::Value& doc) {
  if (Status status = CheckKeys(doc,
                                {"name", "weight", "device", "rtt_ms",
                                 "bandwidth_mbps", "loss_rate", "error_rate"},
                                "class");
      !status.ok()) {
    return status.error();
  }
  ClientClass klass;
  klass.name = doc.GetString("name", klass.name);
  klass.weight = doc.GetNumber("weight", klass.weight);
  klass.device = doc.GetString("device", klass.device);
  klass.rtt_ms = doc.GetNumber("rtt_ms", klass.rtt_ms);
  klass.bandwidth_mbps = doc.GetNumber("bandwidth_mbps", klass.bandwidth_mbps);
  klass.loss_rate = doc.GetNumber("loss_rate", klass.loss_rate);
  klass.error_rate = doc.GetNumber("error_rate", klass.error_rate);
  return klass;
}

}  // namespace

Status ValidateScenarioSpec(const ScenarioSpec& spec) {
  auto fail = [&](const std::string& what) {
    return Error(ErrorCode::kInvalidArgument,
                 "scenario \"" + spec.name + "\": " + what);
  };
  if (!MetricSafeName(spec.name)) {
    return Error(ErrorCode::kInvalidArgument,
                 "scenario name must match [a-z0-9_-]+ (it names metric "
                 "series): \"" +
                     spec.name + "\"");
  }
  if (!(spec.duration_seconds > 0.0)) return fail("duration must be > 0");
  if (spec.population == 0) return fail("population must be > 0");
  if (!(spec.arrivals.base_rps > 0.0)) return fail("base_rps must be > 0");
  if (spec.arrivals.diurnal_amplitude < 0.0 ||
      spec.arrivals.diurnal_amplitude >= 1.0) {
    return fail("diurnal_amplitude must be in [0, 1)");
  }
  for (const FlashCrowd& crowd : spec.arrivals.flash_crowds) {
    if (crowd.duration_seconds <= 0.0 || crowd.multiplier <= 0.0 ||
        crowd.start_seconds < 0.0 ||
        crowd.start_seconds >= spec.duration_seconds) {
      return fail("flash crowd must sit inside the run with positive "
                  "duration and multiplier");
    }
  }
  if (spec.catalog.item_count == 0) return fail("catalog needs items");
  if (spec.classes.empty()) return fail("at least one client class");
  double weight_total = 0.0;
  for (const ClientClass& klass : spec.classes) {
    if (klass.weight <= 0.0) return fail("class weights must be > 0");
    if (klass.device != "laptop" && klass.device != "workstation") {
      return fail("class device must be \"laptop\" or \"workstation\": \"" +
                  klass.device + "\"");
    }
    if (klass.loss_rate < 0.0 || klass.loss_rate >= 1.0) {
      return fail("loss_rate must be in [0, 1)");
    }
    if (klass.error_rate < 0.0 || klass.error_rate >= 1.0) {
      return fail("error_rate must be in [0, 1)");
    }
    if (klass.bandwidth_mbps <= 0.0) return fail("bandwidth must be > 0");
    if (klass.rtt_ms < 0.0) return fail("rtt must be >= 0");
    weight_total += klass.weight;
  }
  if (weight_total <= 0.0) return fail("class weights must sum > 0");
  if (spec.server_concurrency < 1) return fail("server_concurrency >= 1");
  if (spec.server_overhead_seconds < 0.0) return fail("overhead >= 0");
  for (const StallWindow& stall : spec.stalls) {
    if (stall.duration_seconds <= 0.0 || stall.start_seconds < 0.0 ||
        stall.start_seconds >= spec.duration_seconds) {
      return fail("stall windows must sit inside the run");
    }
  }
  if (!(spec.error_timeout_seconds > 0.0)) return fail("error timeout > 0");
  if (!(spec.slo_threshold_seconds > 0.0)) return fail("slo threshold > 0");
  if (spec.slo_target <= 0.0 || spec.slo_target >= 1.0) {
    return fail("slo target in (0, 1)");
  }
  if (spec.slo_ingest_points < 1) return fail("slo_ingest_points >= 1");
  return Status::Ok();
}

Result<ScenarioSpec> ParseScenarioSpec(const json::Value& doc) {
  if (Status status = CheckKeys(
          doc,
          {"name", "seed", "duration_seconds", "population", "arrivals",
           "catalog", "serve_mode", "classes", "edge_storage_budget_mb",
           "server_concurrency", "server_overhead_seconds",
           "calibrate_overhead", "stalls", "error_timeout_seconds",
           "slo_threshold_seconds", "slo_target", "slo_ingest_points"},
          "scenario");
      !status.ok()) {
    return status.error();
  }
  ScenarioSpec spec;
  spec.name = doc.GetString("name", spec.name);
  spec.seed = static_cast<std::uint64_t>(doc.GetInt("seed", 1));
  spec.duration_seconds =
      doc.GetNumber("duration_seconds", spec.duration_seconds);
  spec.population = static_cast<std::uint64_t>(
      doc.GetInt("population", static_cast<std::int64_t>(spec.population)));
  if (const json::Value* arrivals = doc.Get("arrivals"); arrivals != nullptr) {
    auto parsed = ParseArrivals(*arrivals);
    if (!parsed.ok()) return parsed.error();
    spec.arrivals = std::move(parsed.value());
  }
  if (const json::Value* catalog = doc.Get("catalog"); catalog != nullptr) {
    if (Status status = CheckKeys(*catalog,
                                  {"items", "unique_fraction",
                                   "text_fraction", "zipf_exponent", "seed"},
                                  "catalog");
        !status.ok()) {
      return status.error();
    }
    spec.catalog.item_count = static_cast<std::size_t>(catalog->GetInt(
        "items", static_cast<std::int64_t>(spec.catalog.item_count)));
    spec.catalog.unique_fraction =
        catalog->GetNumber("unique_fraction", spec.catalog.unique_fraction);
    spec.catalog.text_fraction =
        catalog->GetNumber("text_fraction", spec.catalog.text_fraction);
    spec.catalog.zipf_exponent =
        catalog->GetNumber("zipf_exponent", spec.catalog.zipf_exponent);
    spec.catalog.seed = static_cast<std::uint64_t>(catalog->GetInt(
        "seed", static_cast<std::int64_t>(spec.catalog.seed)));
  }
  if (doc.Has("serve_mode")) {
    auto mode = ParseServeMode(doc.GetString("serve_mode"));
    if (!mode.ok()) return mode.error();
    spec.serve_mode = mode.value();
  }
  if (const json::Value* classes = doc.Get("classes"); classes != nullptr) {
    if (!classes->is_array()) {
      return Error(ErrorCode::kInvalidArgument, "classes must be an array");
    }
    for (const json::Value& entry : classes->AsArray()) {
      auto klass = ParseClientClass(entry);
      if (!klass.ok()) return klass.error();
      spec.classes.push_back(std::move(klass.value()));
    }
  }
  if (doc.Has("edge_storage_budget_mb")) {
    spec.edge_storage_budget_bytes = static_cast<std::uint64_t>(
        doc.GetNumber("edge_storage_budget_mb") * (1 << 20));
  }
  spec.server_concurrency = static_cast<int>(
      doc.GetInt("server_concurrency", spec.server_concurrency));
  spec.server_overhead_seconds =
      doc.GetNumber("server_overhead_seconds", spec.server_overhead_seconds);
  spec.calibrate_overhead =
      doc.GetBool("calibrate_overhead", spec.calibrate_overhead);
  if (const json::Value* stalls = doc.Get("stalls"); stalls != nullptr) {
    if (!stalls->is_array()) {
      return Error(ErrorCode::kInvalidArgument, "stalls must be an array");
    }
    for (const json::Value& entry : stalls->AsArray()) {
      if (Status status = CheckKeys(
              entry, {"start_seconds", "duration_seconds"}, "stall entry");
          !status.ok()) {
        return status.error();
      }
      StallWindow stall;
      stall.start_seconds = entry.GetNumber("start_seconds");
      stall.duration_seconds = entry.GetNumber("duration_seconds");
      spec.stalls.push_back(stall);
    }
  }
  spec.error_timeout_seconds =
      doc.GetNumber("error_timeout_seconds", spec.error_timeout_seconds);
  spec.slo_threshold_seconds =
      doc.GetNumber("slo_threshold_seconds", spec.slo_threshold_seconds);
  spec.slo_target = doc.GetNumber("slo_target", spec.slo_target);
  spec.slo_ingest_points = static_cast<int>(
      doc.GetInt("slo_ingest_points", spec.slo_ingest_points));
  if (spec.classes.empty()) spec.classes.push_back(ClientClass{});
  if (Status status = ValidateScenarioSpec(spec); !status.ok()) {
    return status.error();
  }
  return spec;
}

Result<std::vector<ScenarioSpec>> ParseScenarioSpecText(
    std::string_view text) {
  auto parsed = json::Parse(text);
  if (!parsed.ok()) return parsed.error();
  std::vector<ScenarioSpec> specs;
  if (parsed.value().is_array()) {
    for (const json::Value& entry : parsed.value().AsArray()) {
      auto spec = ParseScenarioSpec(entry);
      if (!spec.ok()) return spec.error();
      specs.push_back(std::move(spec.value()));
    }
    return specs;
  }
  auto spec = ParseScenarioSpec(parsed.value());
  if (!spec.ok()) return spec.error();
  specs.push_back(std::move(spec.value()));
  return specs;
}

json::Value ScenarioSpecToJson(const ScenarioSpec& spec) {
  json::Object doc;
  doc["name"] = json::Value(spec.name);
  doc["seed"] = json::Value(static_cast<std::int64_t>(spec.seed));
  doc["duration_seconds"] = json::Value(spec.duration_seconds);
  doc["population"] =
      json::Value(static_cast<std::int64_t>(spec.population));
  {
    json::Object arrivals;
    arrivals["base_rps"] = json::Value(spec.arrivals.base_rps);
    arrivals["diurnal_amplitude"] =
        json::Value(spec.arrivals.diurnal_amplitude);
    arrivals["diurnal_period_seconds"] =
        json::Value(spec.arrivals.diurnal_period_seconds);
    json::Array crowds;
    for (const FlashCrowd& crowd : spec.arrivals.flash_crowds) {
      json::Object entry;
      entry["start_seconds"] = json::Value(crowd.start_seconds);
      entry["duration_seconds"] = json::Value(crowd.duration_seconds);
      entry["multiplier"] = json::Value(crowd.multiplier);
      crowds.push_back(json::Value(std::move(entry)));
    }
    arrivals["flash_crowds"] = json::Value(std::move(crowds));
    doc["arrivals"] = json::Value(std::move(arrivals));
  }
  {
    json::Object catalog;
    catalog["items"] =
        json::Value(static_cast<std::int64_t>(spec.catalog.item_count));
    catalog["unique_fraction"] = json::Value(spec.catalog.unique_fraction);
    catalog["text_fraction"] = json::Value(spec.catalog.text_fraction);
    catalog["zipf_exponent"] = json::Value(spec.catalog.zipf_exponent);
    catalog["seed"] =
        json::Value(static_cast<std::int64_t>(spec.catalog.seed));
    doc["catalog"] = json::Value(std::move(catalog));
  }
  doc["serve_mode"] = json::Value(ServeModeName(spec.serve_mode));
  {
    json::Array classes;
    for (const ClientClass& klass : spec.classes) {
      json::Object entry;
      entry["name"] = json::Value(klass.name);
      entry["weight"] = json::Value(klass.weight);
      entry["device"] = json::Value(klass.device);
      entry["rtt_ms"] = json::Value(klass.rtt_ms);
      entry["bandwidth_mbps"] = json::Value(klass.bandwidth_mbps);
      entry["loss_rate"] = json::Value(klass.loss_rate);
      entry["error_rate"] = json::Value(klass.error_rate);
      classes.push_back(json::Value(std::move(entry)));
    }
    doc["classes"] = json::Value(std::move(classes));
  }
  doc["edge_storage_budget_mb"] = json::Value(
      static_cast<double>(spec.edge_storage_budget_bytes) / (1 << 20));
  doc["server_concurrency"] = json::Value(spec.server_concurrency);
  doc["server_overhead_seconds"] = json::Value(spec.server_overhead_seconds);
  doc["calibrate_overhead"] = json::Value(spec.calibrate_overhead);
  {
    json::Array stalls;
    for (const StallWindow& stall : spec.stalls) {
      json::Object entry;
      entry["start_seconds"] = json::Value(stall.start_seconds);
      entry["duration_seconds"] = json::Value(stall.duration_seconds);
      stalls.push_back(json::Value(std::move(entry)));
    }
    doc["stalls"] = json::Value(std::move(stalls));
  }
  doc["error_timeout_seconds"] = json::Value(spec.error_timeout_seconds);
  doc["slo_threshold_seconds"] = json::Value(spec.slo_threshold_seconds);
  doc["slo_target"] = json::Value(spec.slo_target);
  doc["slo_ingest_points"] = json::Value(spec.slo_ingest_points);
  return json::Value(std::move(doc));
}

std::vector<ScenarioSpec> BuiltinScenarios() {
  std::vector<ScenarioSpec> scenarios;

  // smoke — the small fixed-seed scenario the CI fleet-smoke job goldens.
  // Traditional serve mode keeps latency at wire scale (tens of ms), so
  // the stalled variant below inflates p99 by orders of magnitude — the
  // cleanest possible coordinated-omission demonstration.  Calibrates
  // its serve overhead from one real LocalSession page fetch, so the
  // golden covers the core stack integration too.
  {
    ScenarioSpec spec;
    spec.name = "smoke";
    spec.seed = 42;
    spec.duration_seconds = 60.0;
    spec.population = 64;
    spec.arrivals.base_rps = 6.0;
    spec.catalog.item_count = 48;
    spec.catalog.seed = 7;
    spec.serve_mode = ServeMode::kTraditional;
    spec.classes = {
        {"laptop-wifi", 0.7, "laptop", 20.0, 100.0, 0.0, 0.0},
        {"workstation-fiber", 0.3, "workstation", 8.0, 400.0, 0.0, 0.0},
    };
    spec.edge_storage_budget_bytes = 4ull << 20;
    spec.server_concurrency = 4;
    spec.calibrate_overhead = true;
    spec.slo_threshold_seconds = 1.0;
    scenarios.push_back(std::move(spec));
  }

  // smoke-stall — smoke plus a 6 s full stall at t=20.  Open-loop
  // arrivals keep their schedule, so the stall lands in p99 instead of
  // thinning the stream: the coordinated-omission regression scenario.
  {
    ScenarioSpec spec = scenarios.front();
    spec.name = "smoke-stall";
    spec.stalls = {{20.0, 6.0}};
    scenarios.push_back(std::move(spec));
  }

  // flash-crowd — an edge-generative fleet hit by a 6x burst.
  {
    ScenarioSpec spec;
    spec.name = "flash-crowd";
    spec.seed = 1001;
    spec.duration_seconds = 120.0;
    spec.population = 512;
    spec.arrivals.base_rps = 12.0;
    spec.arrivals.flash_crowds = {{60.0, 10.0, 6.0}};
    spec.catalog.item_count = 128;
    spec.catalog.seed = 11;
    spec.serve_mode = ServeMode::kEdgeGenerative;
    spec.classes = {
        {"phone-lte", 0.5, "laptop", 60.0, 20.0, 0.005, 0.002},
        {"laptop-wifi", 0.4, "laptop", 20.0, 100.0, 0.0, 0.0},
        {"workstation-fiber", 0.1, "workstation", 8.0, 400.0, 0.0, 0.0},
    };
    spec.edge_storage_budget_bytes = 8ull << 20;
    // Edge generation is seconds-scale on workstation hardware; the base
    // load needs ~100 busy slots, and the 6x burst is a deliberate
    // overload that drains afterwards.
    spec.server_concurrency = 256;
    spec.slo_threshold_seconds = 60.0;
    scenarios.push_back(std::move(spec));
  }

  // diurnal-mixed — a compressed day: sinusoidal rate over a mixed
  // population and a mixed traditional/SWW catalog.
  {
    ScenarioSpec spec;
    spec.name = "diurnal-mixed";
    spec.seed = 2002;
    spec.duration_seconds = 3600.0;
    spec.population = 4096;
    spec.arrivals.base_rps = 8.0;
    spec.arrivals.diurnal_amplitude = 0.6;
    spec.arrivals.diurnal_period_seconds = 3600.0;
    spec.catalog.item_count = 1024;
    spec.catalog.seed = 13;
    spec.serve_mode = ServeMode::kClientGenerative;
    spec.classes = {
        {"phone-lte", 0.45, "laptop", 60.0, 20.0, 0.005, 0.002},
        {"laptop-wifi", 0.35, "laptop", 20.0, 100.0, 0.0, 0.0},
        {"workstation-fiber", 0.2, "workstation", 8.0, 400.0, 0.0, 0.0},
    };
    spec.edge_storage_budget_bytes = 16ull << 20;
    spec.server_concurrency = 32;
    // Client-side laptop image generation reaches ~310 s at 1024x1024
    // (the paper's 6.3.1 number); the objective sits above that tail.
    spec.slo_threshold_seconds = 400.0;
    scenarios.push_back(std::move(spec));
  }

  // lossy-cellular — constrained lossy clients, the Agent-First-Web
  // heterogeneity argument: the population is NOT one profile.
  {
    ScenarioSpec spec;
    spec.name = "lossy-cellular";
    spec.seed = 3003;
    spec.duration_seconds = 300.0;
    spec.population = 1024;
    spec.arrivals.base_rps = 10.0;
    spec.catalog.item_count = 256;
    spec.catalog.seed = 17;
    spec.serve_mode = ServeMode::kClientGenerative;
    spec.classes = {
        {"phone-3g", 0.4, "laptop", 150.0, 2.0, 0.03, 0.01},
        {"phone-lte", 0.4, "laptop", 60.0, 20.0, 0.005, 0.002},
        {"laptop-wifi", 0.2, "laptop", 20.0, 100.0, 0.0, 0.0},
    };
    spec.edge_storage_budget_bytes = 8ull << 20;
    spec.server_concurrency = 16;
    spec.error_timeout_seconds = 15.0;
    spec.slo_threshold_seconds = 400.0;
    scenarios.push_back(std::move(spec));
  }

  return scenarios;
}

Result<ScenarioSpec> FindBuiltinScenario(std::string_view name) {
  for (ScenarioSpec& spec : BuiltinScenarios()) {
    if (spec.name == name) return std::move(spec);
  }
  return Error(ErrorCode::kNotFound,
               "no builtin scenario named \"" + std::string(name) + "\"");
}

}  // namespace sww::load
