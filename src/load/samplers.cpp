#include "load/samplers.hpp"

#include <algorithm>
#include <cmath>

namespace sww::load {

ZipfSampler::ZipfSampler(std::size_t item_count, double exponent)
    : exponent_(exponent) {
  if (item_count == 0) item_count = 1;
  cdf_.resize(item_count);
  double total = 0.0;
  for (std::size_t k = 0; k < item_count; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent_);
    cdf_[k] = total;
  }
  for (double& value : cdf_) value /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::Sample(double u) const {
  if (u <= 0.0) return 0;
  if (u >= 1.0) return cdf_.size() - 1;
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

double ArrivalCurve::RateAt(double t) const {
  double rate = base_rps;
  if (diurnal_amplitude > 0.0 && diurnal_period_seconds > 0.0) {
    rate *= 1.0 + diurnal_amplitude *
                      std::sin(2.0 * M_PI * t / diurnal_period_seconds);
  }
  for (const FlashCrowd& crowd : flash_crowds) {
    if (t >= crowd.start_seconds &&
        t < crowd.start_seconds + crowd.duration_seconds) {
      rate *= crowd.multiplier;
    }
  }
  return rate < 0.0 ? 0.0 : rate;
}

ArrivalSchedule::ArrivalSchedule(const ArrivalCurve& curve,
                                 double duration_seconds, std::uint64_t seed)
    : duration_(duration_seconds > 0.0 ? duration_seconds : 0.0),
      step_(duration_ / static_cast<double>(kGridSteps)),
      seed_(seed) {
  // Trapezoidal cumulative rate on the fixed grid.  The grid — not the
  // host — defines the integral, so every machine tabulates the same Λ.
  cumulative_.resize(kGridSteps + 1);
  cumulative_[0] = 0.0;
  double previous_rate = curve.RateAt(0.0);
  for (std::size_t i = 1; i <= kGridSteps; ++i) {
    const double t = static_cast<double>(i) * step_;
    const double rate = curve.RateAt(t);
    cumulative_[i] =
        cumulative_[i - 1] + 0.5 * (previous_rate + rate) * step_;
    previous_rate = rate;
  }
  const double expected = cumulative_.back();
  count_ = expected > 0.0 ? static_cast<std::size_t>(expected) : 0;
}

double ArrivalSchedule::InverseCumulative(double target) const {
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), target);
  if (it == cumulative_.begin()) return 0.0;
  if (it == cumulative_.end()) return duration_;
  const std::size_t hi = static_cast<std::size_t>(it - cumulative_.begin());
  const double lo_value = cumulative_[hi - 1];
  const double hi_value = cumulative_[hi];
  const double span = hi_value - lo_value;
  const double frac = span > 0.0 ? (target - lo_value) / span : 0.0;
  return (static_cast<double>(hi - 1) + frac) * step_;
}

double ArrivalSchedule::ArrivalSeconds(std::size_t index) const {
  const double jitter = Draw(seed_, index, DrawStream::kArrivalJitter);
  return InverseCumulative(static_cast<double>(index) + jitter);
}

std::size_t WeightedChoice(const std::vector<double>& cumulative_weights,
                           double u) {
  if (cumulative_weights.empty()) return 0;
  if (u <= 0.0) return 0;
  if (u >= 1.0) return cumulative_weights.size() - 1;
  const auto it = std::lower_bound(cumulative_weights.begin(),
                                   cumulative_weights.end(), u);
  if (it == cumulative_weights.end()) return cumulative_weights.size() - 1;
  return static_cast<std::size_t>(it - cumulative_weights.begin());
}

std::vector<double> CumulativeWeights(const std::vector<double>& weights) {
  std::vector<double> cumulative(weights.size());
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) total = 1.0;
  double running = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    running += (weights[i] > 0.0 ? weights[i] : 0.0) / total;
    cumulative[i] = running;
  }
  if (!cumulative.empty()) cumulative.back() = 1.0;
  return cumulative;
}

}  // namespace sww::load
