// engine.hpp — the deterministic open-loop fleet workload engine.
//
// RunScenario replays a ScenarioSpec against the in-process CDN edge on a
// virtual clock and reports coordinated-omission-free latency, goodput
// and energy.  Two passes:
//
//   1. *Precompute* (parallel, stateless): for every arrival index i the
//      engine derives — via counter-based draws keyed by (seed, i) — the
//      arrival instant, the client class, the page, the user, the network
//      jitter and the failure flag.  Any thread can compute any index;
//      the population is bit-identical across thread counts.
//
//   2. *Simulate* (sequential discrete-event pass): arrivals feed a
//      G/G/c service station (`server_concurrency` slots).  Service
//      start is max(arrival, earliest free slot), pushed out of any
//      stall window; service time is the calibrated per-request overhead
//      plus edge-side generation; the edge cache is consulted per
//      request; the wire and client-generation legs complete the
//      latency.  Because arrival times never depend on completions, a
//      stalled or saturated server piles queueing delay into the
//      recorded distribution — p99 inflates instead of the arrival
//      stream silently thinning (the coordinated-omission bug in
//      closed-loop harnesses).
//
// Every request flows through the observability spine: one
// obs::Journal record per request, exemplared per-scenario latency
// histograms (`load.<name>.latency`, `load.<name>.queue_wait`),
// goodput/error/energy counters, and an obs::SloEngine burn evaluation
// over the run.
#pragma once

#include <cstdint>
#include <vector>

#include "load/spec.hpp"
#include "obs/journal.hpp"
#include "obs/registry.hpp"
#include "obs/slo.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace sww::load {

struct EngineOptions {
  /// Pool for the precompute pass; nullptr uses ThreadPool::Shared().
  util::ThreadPool* pool = nullptr;
  /// Registry receiving the load.<name>.* series; nullptr uses
  /// Registry::Default().
  obs::Registry* registry = nullptr;
  /// Journal receiving one record per request; nullptr uses
  /// Journal::Default().
  obs::Journal* journal = nullptr;
};

/// Everything one scenario run produced.  Histograms are private
/// snapshots (isolated per run); the same observations are mirrored into
/// the registry series for /metrics and sww_top.
struct ScenarioResult {
  ScenarioSpec spec;

  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  /// Client prompt-cache revisit hits (client-generative mode only):
  /// same user, same page — regenerated on-device, nothing on the wire.
  std::uint64_t client_cache_hits = 0;
  std::uint64_t edge_requests = 0;
  std::uint64_t edge_hits = 0;
  /// Single-flight coalescing is a ROADMAP item; reported now (always 0)
  /// so report columns stay stable when it lands.
  std::uint64_t coalesced = 0;
  std::uint64_t delivered_bytes = 0;  ///< edge→client wire bytes, ok only

  double duration_seconds = 0.0;      ///< the spec's virtual duration
  double makespan_seconds = 0.0;      ///< last completion instant
  double goodput_rps = 0.0;           ///< ok requests / duration
  double goodput_mbps = 0.0;          ///< delivered bits / duration

  obs::HistogramSnapshot latency;     ///< arrival → completion, errors incl.
  obs::HistogramSnapshot queue_wait;  ///< arrival → service start, ok only

  double server_overhead_seconds = 0.0;  ///< effective (calibrated) value
  double total_energy_wh = 0.0;
  double energy_joules_per_page = 0.0;
  double gco2e_per_page = 0.0;

  std::uint64_t journal_recorded = 0;  ///< records this run offered
  std::uint64_t journal_dropped = 0;   ///< of those, lost to ring overwrite

  std::vector<obs::SloEvaluation> slo;
};

/// Measure the fixed per-request server+protocol cost from one real
/// in-process LocalSession page fetch on the modeled clock (the journal
/// wire phase of a goldfish-page fetch).  Deterministic.
util::Result<double> CalibrateServerOverheadSeconds();

/// Run one scenario.  Deterministic for a given spec: repeated runs and
/// different pool sizes produce identical results, byte for byte.
util::Result<ScenarioResult> RunScenario(const ScenarioSpec& spec,
                                         const EngineOptions& options = {});

}  // namespace sww::load
