#include "load/engine.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "cdn/edge.hpp"
#include "core/page_builder.hpp"
#include "core/session.hpp"
#include "energy/carbon.hpp"
#include "energy/device.hpp"
#include "energy/network.hpp"
#include "genai/model_specs.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"

namespace sww::load {

using util::Result;

namespace {

constexpr double kNanosPerSecond = 1e9;
/// Calibrated overheads never go below this: a zero service time would
/// make every server slot interchangeable and queueing vacuous.
constexpr double kMinOverheadSeconds = 1e-4;

std::uint64_t ToNanos(double seconds) {
  return seconds <= 0.0
             ? 0
             : static_cast<std::uint64_t>(seconds * kNanosPerSecond);
}

/// Everything arrival i needs, derived statelessly in the precompute
/// pass.  No field depends on any other arrival.
struct Arrival {
  double arrival_seconds = 0.0;
  std::uint32_t class_index = 0;
  std::uint32_t item_index = 0;
  std::uint64_t user = 0;
  std::uint64_t trace_id = 0;
  double net_jitter = 1.0;
  bool error = false;
};

const energy::DeviceProfile& DeviceFor(const ClientClass& klass) {
  return klass.device == "workstation" ? energy::Workstation()
                                       : energy::Laptop();
}

cdn::EdgeMode EdgeModeFor(ServeMode mode) {
  switch (mode) {
    case ServeMode::kTraditional: return cdn::EdgeMode::kContentMode;
    case ServeMode::kEdgeGenerative: return cdn::EdgeMode::kPromptMode;
    case ServeMode::kClientGenerative:
      return cdn::EdgeMode::kPromptPassthrough;
  }
  return cdn::EdgeMode::kContentMode;
}

double ClientGenerationSeconds(const cdn::CatalogItem& item,
                               const energy::DeviceProfile& device,
                               const genai::ImageModelSpec& image_model,
                               const genai::TextModelSpec& text_model) {
  if (item.is_image) {
    return energy::ImageGenerationSeconds(device, image_model,
                                          image_model.default_steps,
                                          item.width, item.height);
  }
  return energy::TextGenerationSeconds(device, text_model, item.words);
}

double ClientGenerationEnergyWh(const cdn::CatalogItem& item,
                                const energy::DeviceProfile& device,
                                const genai::ImageModelSpec& image_model,
                                const genai::TextModelSpec& text_model) {
  if (item.is_image) {
    return energy::ImageGenerationEnergyWh(device, image_model,
                                           image_model.default_steps,
                                           item.width, item.height);
  }
  return energy::TextGenerationEnergyWh(device, text_model, item.words);
}

/// Wire time of one response: two round trips (request + response,
/// with a retransmission penalty proportional to the loss class) plus
/// the serialization delay of the payload, inflated by 1/(1-loss) for
/// retransmitted segments, all wobbled by the per-request jitter draw.
double NetworkSeconds(const ClientClass& klass, std::uint64_t bytes,
                      double jitter) {
  const double rtt_s = klass.rtt_ms * 1e-3;
  const double handshake = 2.0 * rtt_s * (1.0 + 4.0 * klass.loss_rate);
  const double transfer = static_cast<double>(bytes) * 8.0 /
                          (klass.bandwidth_mbps * 1e6) /
                          (1.0 - klass.loss_rate);
  return (handshake + transfer) * jitter;
}

/// Service may not *start* inside a stall window (sorted by start):
/// queued arrivals resume when the window closes.
double PushOutOfStalls(double t, const std::vector<StallWindow>& stalls) {
  for (const StallWindow& stall : stalls) {
    if (t >= stall.start_seconds &&
        t < stall.start_seconds + stall.duration_seconds) {
      t = stall.start_seconds + stall.duration_seconds;
    }
  }
  return t;
}

}  // namespace

Result<double> CalibrateServerOverheadSeconds() {
  // One real page fetch through the in-process HTTP/2 stack on a manual
  // clock: total elapsed minus the modeled generation/upscale makespan is
  // the server+protocol cost a simulated request should carry.
  obs::Tracer& tracer = obs::Tracer::Default();
  obs::ManualClock clock;
  tracer.SetClock(&clock);
  core::ContentStore store;
  if (util::Status status = store.AddPage("/", core::MakeGoldfishPage());
      !status.ok()) {
    tracer.SetClock(nullptr);
    return status.error();
  }
  auto session = core::LocalSession::Start(&store, {});
  if (!session.ok()) {
    tracer.SetClock(nullptr);
    return session.error();
  }
  const std::uint64_t before = clock.NowNanos();
  auto fetch = session.value()->FetchPage("/");
  const std::uint64_t after = clock.NowNanos();
  tracer.SetClock(nullptr);
  if (!fetch.ok()) return fetch.error();
  const double elapsed =
      static_cast<double>(after - before) / kNanosPerSecond;
  const double modeled = fetch.value().generation_wall_seconds +
                         fetch.value().upscale_seconds;
  const double overhead = elapsed > modeled ? elapsed - modeled : 0.0;
  return std::max(overhead, kMinOverheadSeconds);
}

Result<ScenarioResult> RunScenario(const ScenarioSpec& spec,
                                   const EngineOptions& options) {
  if (util::Status status = ValidateScenarioSpec(spec); !status.ok()) {
    return status.error();
  }
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::ThreadPool::Shared();
  obs::Registry& registry =
      options.registry != nullptr ? *options.registry
                                  : obs::Registry::Default();
  obs::Journal& journal =
      options.journal != nullptr ? *options.journal : obs::Journal::Default();

  auto image_model = genai::FindImageModel(genai::kSd3Medium);
  auto text_model = genai::FindTextModel(genai::kDeepseek8b);
  if (!image_model.ok()) return image_model.error();
  if (!text_model.ok()) return text_model.error();

  ScenarioResult result;
  result.spec = spec;
  result.duration_seconds = spec.duration_seconds;
  result.server_overhead_seconds = spec.server_overhead_seconds;
  if (spec.calibrate_overhead) {
    auto calibrated = CalibrateServerOverheadSeconds();
    if (!calibrated.ok()) return calibrated.error();
    result.server_overhead_seconds = calibrated.value();
  }

  const std::uint64_t journal_total_before = journal.total_recorded();
  const std::uint64_t journal_dropped_before = journal.dropped();

  // ---- precompute: the stateless per-arrival population ----------------
  const ArrivalSchedule schedule(spec.arrivals, spec.duration_seconds,
                                 spec.seed);
  const cdn::Catalog catalog = cdn::Catalog::MakeSynthetic(spec.catalog);
  std::vector<double> class_weights;
  class_weights.reserve(spec.classes.size());
  for (const ClientClass& klass : spec.classes) {
    class_weights.push_back(klass.weight);
  }
  const std::vector<double> class_cdf = CumulativeWeights(class_weights);

  std::vector<Arrival> arrivals(schedule.count());
  pool.ParallelFor(
      static_cast<std::int64_t>(arrivals.size()),
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t signed_i = begin; signed_i < end; ++signed_i) {
          const std::uint64_t i = static_cast<std::uint64_t>(signed_i);
          Arrival& a = arrivals[i];
          a.arrival_seconds = schedule.ArrivalSeconds(i);
          a.class_index = static_cast<std::uint32_t>(
              WeightedChoice(class_cdf, Draw(spec.seed, i, DrawStream::kClass)));
          a.item_index = static_cast<std::uint32_t>(
              catalog.SampleRequestUniform(
                  Draw(spec.seed, i, DrawStream::kPage)));
          a.user = DrawU64(spec.seed, i, DrawStream::kUser) % spec.population;
          a.trace_id = DrawU64(spec.seed, i, DrawStream::kTrace);
          if (a.trace_id == 0) a.trace_id = 1;  // 0 means "untraced"
          a.net_jitter =
              0.9 + 0.2 * Draw(spec.seed, i, DrawStream::kNetworkJitter);
          a.error = Draw(spec.seed, i, DrawStream::kError) <
                    spec.classes[a.class_index].error_rate;
        }
      });

  std::vector<StallWindow> stalls = spec.stalls;
  std::sort(stalls.begin(), stalls.end(),
            [](const StallWindow& a, const StallWindow& b) {
              return a.start_seconds < b.start_seconds;
            });

  // ---- simulate: sequential discrete-event pass ------------------------
  // Per-run private histograms keep results isolated; the same
  // observations mirror into the registry series for /metrics.
  obs::Histogram latency_hist;
  obs::Histogram queue_hist;
  obs::Histogram& registry_latency =
      registry.GetHistogram("load." + spec.name + ".latency");
  obs::Histogram& registry_queue =
      registry.GetHistogram("load." + spec.name + ".queue_wait");
  obs::Counter& requests_counter =
      registry.GetCounter("load." + spec.name + ".requests");
  obs::Counter& errors_counter =
      registry.GetCounter("load." + spec.name + ".errors");
  obs::Counter& cache_hits_counter =
      registry.GetCounter("load." + spec.name + ".client_cache_hits");
  obs::Counter& delivered_counter =
      registry.GetCounter("load." + spec.name + ".delivered_bytes");
  obs::Gauge& energy_gauge =
      registry.GetGauge("load." + spec.name + ".energy_wh");
  obs::Gauge& goodput_gauge =
      registry.GetGauge("load." + spec.name + ".goodput_rps");

  // The edge journal records carry tracer-clock timestamps; drive that
  // clock along the virtual service timeline so records are deterministic
  // and monotone.
  obs::Tracer& tracer = obs::Tracer::Default();
  obs::ManualClock virtual_clock;
  tracer.SetClock(&virtual_clock);

  cdn::EdgeNode edge(EdgeModeFor(spec.serve_mode),
                     spec.edge_storage_budget_bytes, image_model.value(),
                     text_model.value());

  // G/G/c service station: earliest-free-slot min-heap.
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      workers;
  for (int i = 0; i < spec.server_concurrency; ++i) workers.push(0.0);

  // Client prompt caches (client-generative mode): (user, page) pairs
  // already generated on-device.  A revisit regenerates locally without
  // touching the network — the repo's PromptCache semantics.
  std::unordered_set<std::uint64_t> client_cache;
  const bool client_generative =
      spec.serve_mode == ServeMode::kClientGenerative;

  obs::SloEngine slo_engine({obs::SloObjective{
      spec.name + "-latency-p99", "load." + spec.name + ".latency", 99.0,
      spec.slo_threshold_seconds, spec.slo_target, 300.0, 3600.0, 14.4,
      14.4}});
  const double ingest_step =
      spec.duration_seconds / static_cast<double>(spec.slo_ingest_points);
  double next_ingest = ingest_step;

  double makespan = 0.0;
  double total_energy_wh = 0.0;

  for (const Arrival& a : arrivals) {
    while (a.arrival_seconds >= next_ingest &&
           next_ingest <= spec.duration_seconds) {
      slo_engine.Ingest("load." + spec.name + ".latency",
                        latency_hist.Snapshot(), ToNanos(next_ingest));
      next_ingest += ingest_step;
    }

    const ClientClass& klass = spec.classes[a.class_index];
    const energy::DeviceProfile& device = DeviceFor(klass);
    const cdn::CatalogItem& item = catalog.item(a.item_index);
    const bool cacheable_on_client = client_generative && !item.unique;
    const std::uint64_t cache_key =
        a.user * static_cast<std::uint64_t>(catalog.size()) + a.item_index;

    ++result.requests;
    requests_counter.Add();

    double latency = 0.0;
    double queue_wait = -1.0;  // <0: request never reached the server
    double generation_seconds = 0.0;
    double wire_seconds = 0.0;
    double request_energy_wh = 0.0;
    std::uint64_t wire_bytes = 0;
    bool client_cache_hit = false;
    bool edge_hit = false;
    std::string outcome_label = "ok";

    if (cacheable_on_client && client_cache.count(cache_key) != 0) {
      // On-device revisit: regenerate locally, nothing on the wire.
      client_cache_hit = true;
      ++result.client_cache_hits;
      cache_hits_counter.Add();
      generation_seconds = ClientGenerationSeconds(
          item, device, image_model.value(), text_model.value());
      request_energy_wh = ClientGenerationEnergyWh(
          item, device, image_model.value(), text_model.value());
      latency = generation_seconds;
    } else {
      // Server leg: wait for a slot (and for any stall window to pass) —
      // open-loop arrivals keep coming, so this wait is *recorded*, not
      // coordinated away.
      const double slot_free = workers.top();
      workers.pop();
      double start = std::max(a.arrival_seconds, slot_free);
      start = PushOutOfStalls(start, stalls);
      queue_wait = start - a.arrival_seconds;

      virtual_clock.SetNanos(ToNanos(start));
      const cdn::ServeOutcome serve = edge.Serve(item);
      edge_hit = serve.hit;

      const double service =
          result.server_overhead_seconds + serve.generation_seconds;
      const double server_done = start + service;
      workers.push(server_done);

      if (a.error) {
        // The response was lost on the way back: the client gives up at
        // its timeout.  The server still did the work.
        outcome_label = "error";
        ++result.errors;
        errors_counter.Add();
        latency = spec.error_timeout_seconds;
        request_energy_wh = serve.generation_energy_wh;
        generation_seconds = serve.generation_seconds;
      } else {
        wire_bytes = serve.bytes_to_user;
        wire_seconds = NetworkSeconds(klass, wire_bytes, a.net_jitter);
        double client_generation = 0.0;
        if (cacheable_on_client) {
          client_generation = ClientGenerationSeconds(
              item, device, image_model.value(), text_model.value());
          request_energy_wh += ClientGenerationEnergyWh(
              item, device, image_model.value(), text_model.value());
          client_cache.insert(cache_key);
        }
        generation_seconds = serve.generation_seconds + client_generation;
        request_energy_wh += serve.generation_energy_wh +
                             energy::TransmissionEnergyWh(wire_bytes);
        latency =
            (server_done - a.arrival_seconds) + wire_seconds + client_generation;
        result.delivered_bytes += wire_bytes;
        delivered_counter.Add(wire_bytes);
      }
    }

    const double completion = a.arrival_seconds + latency;
    makespan = std::max(makespan, completion);
    total_energy_wh += request_energy_wh;

    const std::uint64_t completion_nanos = ToNanos(completion);
    latency_hist.Observe(latency, a.trace_id, completion_nanos);
    registry_latency.Observe(latency, a.trace_id, completion_nanos);
    if (queue_wait >= 0.0) {
      queue_hist.Observe(queue_wait);
      registry_queue.Observe(queue_wait);
    }

    obs::JournalRecord record;
    record.kind = "load";
    record.trace_id = a.trace_id;
    record.path = "item:" + std::to_string(item.id);
    record.timestamp_nanos = completion_nanos;
    record.mode = std::string(ServeModeName(spec.serve_mode));
    record.device = device.name;
    record.outcome = outcome_label;
    record.cache = client_cache_hit || edge_hit ? "hit" : "miss";
    record.total_seconds = latency;
    record.wire_seconds = wire_seconds;
    record.generation_seconds = generation_seconds;
    record.page_bytes = item.content_bytes;
    record.wire_bytes_sent = wire_bytes;
    record.energy_joules = request_energy_wh * 3600.0;
    journal.Record(std::move(record));
  }

  // Flush remaining ingest points, then evaluate at the true end of the
  // run (>= every ingest instant).
  while (next_ingest <= spec.duration_seconds + 0.5 * ingest_step) {
    slo_engine.Ingest("load." + spec.name + ".latency",
                      latency_hist.Snapshot(), ToNanos(next_ingest));
    next_ingest += ingest_step;
  }
  const double end_seconds = std::max(spec.duration_seconds, makespan);
  slo_engine.Ingest("load." + spec.name + ".latency", latency_hist.Snapshot(),
                    ToNanos(end_seconds));
  result.slo = slo_engine.Evaluate(ToNanos(end_seconds));

  tracer.SetClock(nullptr);

  const cdn::EdgeStats edge_stats = edge.stats();
  result.edge_requests = edge_stats.requests;
  result.edge_hits = edge_stats.hits;
  result.makespan_seconds = makespan;
  result.total_energy_wh = total_energy_wh;
  const std::uint64_t good = result.requests - result.errors;
  result.goodput_rps =
      static_cast<double>(good) / spec.duration_seconds;
  result.goodput_mbps = static_cast<double>(result.delivered_bytes) * 8.0 /
                        spec.duration_seconds / 1e6;
  if (good > 0) {
    result.energy_joules_per_page =
        total_energy_wh * 3600.0 / static_cast<double>(good);
    result.gco2e_per_page = energy::OperationalCarbonGrams(total_energy_wh) /
                            static_cast<double>(good);
  }
  result.latency = latency_hist.Snapshot();
  result.queue_wait = queue_hist.Snapshot();
  energy_gauge.Set(total_energy_wh);
  goodput_gauge.Set(result.goodput_rps);
  result.journal_recorded = journal.total_recorded() - journal_total_before;
  result.journal_dropped = journal.dropped() - journal_dropped_before;
  return result;
}

}  // namespace sww::load
