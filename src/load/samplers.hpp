// samplers.hpp — stateless samplers for the fleet workload engine.
//
// Every random quantity the load engine draws — which page, which client
// class, how much network jitter, when exactly the i-th request arrives —
// comes from util::CounterHash keyed by (scenario seed, arrival index,
// stream id).  No sampler carries sequential state, so the per-arrival
// precompute pass can be tiled across any number of threads (or SIMD
// lanes) and still produce bit-identical populations: the i-th request is
// the same request no matter who computes it.  This is the same contract
// that makes the tile-parallel diffusion renderer schedule-independent.
//
// The arrival process is *open-loop* by construction: arrival times are a
// pure function of the scenario spec and the virtual clock, never of
// completions.  A stalled server therefore keeps accumulating arrivals —
// latency percentiles inflate instead of the arrival stream silently
// thinning, which is precisely the coordinated-omission bug in closed-loop
// harnesses that this module exists to avoid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace sww::load {

/// Stream ids separating the independent per-arrival draws.  Stable
/// values: changing one reshuffles every golden trace downstream.
enum class DrawStream : std::uint64_t {
  kArrivalJitter = 1,  ///< position of arrival i inside its quantile slot
  kPage = 2,           ///< Zipf page draw
  kClass = 3,          ///< client-class mix draw
  kNetworkJitter = 4,  ///< per-request wire time wobble
  kError = 5,          ///< request failure draw
  kUser = 6,           ///< which member of the population issued it
  kTrace = 7,          ///< trace id linking exemplars ↔ journal records
};

/// Uniform double in [0, 1) for arrival `index` on `stream`.  Stateless.
inline double Draw(std::uint64_t seed, std::uint64_t index, DrawStream stream) {
  return util::CounterRange(seed, index, static_cast<std::uint64_t>(stream),
                            0.0, 1.0);
}

/// Uniform 64-bit value for arrival `index` on `stream`.  Stateless.
inline std::uint64_t DrawU64(std::uint64_t seed, std::uint64_t index,
                             DrawStream stream) {
  return util::CounterHash(seed, index,
                           static_cast<std::uint64_t>(stream));
}

/// Zipf(s) popularity over `item_count` ranks: P(k) ∝ 1/(k+1)^s.  The CDF
/// is precomputed once; Sample inverts a uniform draw by binary search, so
/// concurrent samplers share one immutable table.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t item_count, double exponent);

  /// Rank for uniform u in [0, 1); u outside clamps to the extreme ranks.
  std::size_t Sample(double u) const;

  std::size_t item_count() const { return cdf_.size(); }
  double exponent() const { return exponent_; }
  /// P(rank) — exposed for the chi-square sanity tests.
  double Probability(std::size_t rank) const;

 private:
  double exponent_;
  std::vector<double> cdf_;  ///< cumulative, cdf_.back() == 1.0
};

/// One flash-crowd burst: the arrival rate multiplies by `multiplier`
/// inside [start, start + duration).
struct FlashCrowd {
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  double multiplier = 1.0;
};

/// The time-varying arrival rate: a base requests/second scaled by a
/// diurnal sinusoid and any active flash crowds.
struct ArrivalCurve {
  double base_rps = 10.0;
  /// Diurnal swing in [0, 1): rate(t) spans base·(1±amplitude).
  double diurnal_amplitude = 0.0;
  double diurnal_period_seconds = 86400.0;
  std::vector<FlashCrowd> flash_crowds;

  /// Instantaneous rate at virtual time `t` (requests/second, >= 0).
  double RateAt(double t) const;
};

/// Deterministic open-loop arrival schedule over [0, duration): the
/// cumulative rate Λ(t) is tabulated on a fixed grid, the total count is
/// N = floor(Λ(duration)), and arrival i sits at Λ⁻¹(i + jitter_i) with
/// jitter_i ∈ [0, 1) drawn statelessly — a jittered-quantile inversion.
/// Arrival times are strictly increasing in i (quantile slots do not
/// overlap), and ArrivalSeconds(i) is a pure function of (spec, i): the
/// schedule can be evaluated in any order, from any thread.
class ArrivalSchedule {
 public:
  /// Grid resolution for the cumulative-rate table.  Fixed (not adaptive)
  /// so the schedule is identical regardless of host or duration.
  static constexpr std::size_t kGridSteps = 8192;

  ArrivalSchedule(const ArrivalCurve& curve, double duration_seconds,
                  std::uint64_t seed);

  std::size_t count() const { return count_; }
  double duration_seconds() const { return duration_; }

  /// Virtual arrival time of request `index` (seconds, in [0, duration)).
  double ArrivalSeconds(std::size_t index) const;

 private:
  /// Smallest t with cumulative(t) >= target (linear interpolation
  /// between grid points).
  double InverseCumulative(double target) const;

  double duration_;
  double step_;
  std::uint64_t seed_;
  std::size_t count_;
  std::vector<double> cumulative_;  ///< Λ at grid point i·step
};

/// Index of the slot containing `u` in a cumulative weight table
/// (cumulative_weights.back() must be ~1).  Binary search; deterministic.
std::size_t WeightedChoice(const std::vector<double>& cumulative_weights,
                           double u);

/// Normalize raw weights into the cumulative table WeightedChoice wants.
std::vector<double> CumulativeWeights(const std::vector<double>& weights);

}  // namespace sww::load
