// elo.hpp — the Elo rating system and a simulated model arena.
//
// The paper reports ELO scores from the Artificial Analysis text-to-image
// arena (Table 1) and cites the stochastic analysis of the Elo algorithm in
// round-robin tournaments [18].  We implement the rating algorithm itself
// and a Bradley-Terry arena: each model has a latent strength (set to the
// published ratings); simulated pairwise battles are decided by the
// Bradley-Terry win probability and the ratings are updated online.  The
// converged estimates recover the latent strengths (up to the scale's
// translation invariance, which we fix by mean-anchoring) — reproducing
// Table 1's ELO column from first principles rather than hard-coding it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sww::metrics {

/// Expected score of `a` against `b` under the Elo/Bradley-Terry model.
double EloExpectedScore(double rating_a, double rating_b);

/// One online Elo update; returns the new (rating_a, rating_b).
struct EloUpdate {
  double rating_a;
  double rating_b;
};
EloUpdate EloApply(double rating_a, double rating_b, double score_a,
                   double k_factor = 16.0);

/// A player in the arena.
struct ArenaPlayer {
  std::string name;
  double latent_strength;  ///< Bradley-Terry strength on the Elo scale
  double rating = 1000.0;  ///< running estimate
  std::uint64_t games = 0;
  std::uint64_t wins = 0;
};

class EloArena {
 public:
  explicit EloArena(std::uint64_t seed = 42, double k_factor = 16.0)
      : seed_(seed), k_factor_(k_factor) {}

  void AddPlayer(std::string name, double latent_strength);

  /// Run `rounds` full round-robins.  Each pairing plays both "sides".
  void RunRoundRobin(int rounds);

  /// Translate ratings so their mean equals the latent strengths' mean
  /// (Elo is translation-invariant; this fixes the gauge for comparison).
  void AnchorToLatentMean();

  const std::vector<ArenaPlayer>& players() const { return players_; }
  const ArenaPlayer* Find(std::string_view name) const;

 private:
  std::vector<ArenaPlayer> players_;
  std::uint64_t seed_;
  double k_factor_;
};

}  // namespace sww::metrics
