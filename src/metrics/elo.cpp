#include "metrics/elo.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace sww::metrics {

double EloExpectedScore(double rating_a, double rating_b) {
  return 1.0 / (1.0 + std::pow(10.0, (rating_b - rating_a) / 400.0));
}

EloUpdate EloApply(double rating_a, double rating_b, double score_a,
                   double k_factor) {
  const double expected_a = EloExpectedScore(rating_a, rating_b);
  const double delta = k_factor * (score_a - expected_a);
  return EloUpdate{rating_a + delta, rating_b - delta};
}

void EloArena::AddPlayer(std::string name, double latent_strength) {
  ArenaPlayer player;
  player.name = std::move(name);
  player.latent_strength = latent_strength;
  players_.push_back(std::move(player));
}

void EloArena::RunRoundRobin(int rounds) {
  util::Rng rng(seed_);
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < players_.size(); ++i) {
      for (std::size_t j = i + 1; j < players_.size(); ++j) {
        ArenaPlayer& a = players_[i];
        ArenaPlayer& b = players_[j];
        // Bradley-Terry outcome from latent strengths.
        const double p_a_wins =
            EloExpectedScore(a.latent_strength, b.latent_strength);
        const double score_a = rng.NextBool(p_a_wins) ? 1.0 : 0.0;
        const EloUpdate update = EloApply(a.rating, b.rating, score_a, k_factor_);
        a.rating = update.rating_a;
        b.rating = update.rating_b;
        a.games++;
        b.games++;
        if (score_a > 0.5) {
          a.wins++;
        } else {
          b.wins++;
        }
      }
    }
  }
}

void EloArena::AnchorToLatentMean() {
  if (players_.empty()) return;
  double latent_mean = 0.0;
  double rating_mean = 0.0;
  for (const ArenaPlayer& p : players_) {
    latent_mean += p.latent_strength;
    rating_mean += p.rating;
  }
  latent_mean /= static_cast<double>(players_.size());
  rating_mean /= static_cast<double>(players_.size());
  const double shift = latent_mean - rating_mean;
  for (ArenaPlayer& p : players_) p.rating += shift;
}

const ArenaPlayer* EloArena::Find(std::string_view name) const {
  for (const ArenaPlayer& p : players_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

}  // namespace sww::metrics
