// stats.hpp — descriptive statistics for the evaluation harness.
//
// §6.3.2 reports word-length overshoot as mean and 25th/75th percentiles;
// the benches need the same summaries.
#pragma once

#include <string>
#include <vector>

namespace sww::metrics {

/// Word-length overshoot: "the percentage of words above or below the
/// requested number of words" — signed relative deviation in percent.
double WordOvershootPercent(int requested_words, int actual_words);

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// Summarize a sample (linear-interpolated percentiles).  Empty input
/// yields an all-zero summary.
Summary Summarize(std::vector<double> values);

/// Percentile with linear interpolation; `q` in [0,100].
double Percentile(std::vector<double> values, double q);

/// Median absolute deviation: median(|x - median(x)|).  A robust spread
/// estimate for the bench harness — one slow outlier iteration moves the
/// MAD far less than it moves the standard deviation.  Empty input
/// yields 0.
double MedianAbsoluteDeviation(const std::vector<double>& values);

std::string FormatSummary(const Summary& summary);

}  // namespace sww::metrics
