// clip.hpp — the CLIP-score simulator.
//
// CLIP score (Hessel et al., the paper's quality metric for text-to-image)
// measures reference-free similarity between a prompt and an image.  Our
// substitute projects both into the shared embedding space (genai/embedding)
// and maps the raw cosine onto the CLIP operating range, calibrated so the
// full prompt→generate→score pipeline reproduces Table 1:
//
//   random image (no prompt)  ≈ 0.09   (the paper's stated baseline)
//   SD 2.1                    ≈ 0.19
//   SD 3 / SD 3.5 Medium      ≈ 0.27
//   DALLE 3                   ≈ 0.32
#pragma once

#include <string_view>

#include "genai/image.hpp"

namespace sww::metrics {

/// Affine calibration from raw cosine to the CLIP scale.
inline constexpr double kClipFloor = 0.09;  ///< score of an unrelated image
inline constexpr double kClipGain = 0.39;   ///< slope on raw cosine

/// Reference-free prompt/image similarity on the CLIP scale.
double ClipScore(std::string_view prompt, const genai::Image& image);

/// The raw cosine in the shared embedding space (diagnostics/tests).
double RawPromptImageCosine(std::string_view prompt, const genai::Image& image);

}  // namespace sww::metrics
