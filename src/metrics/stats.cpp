#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace sww::metrics {

double WordOvershootPercent(int requested_words, int actual_words) {
  if (requested_words <= 0) return 0.0;
  return 100.0 * (actual_words - requested_words) /
         static_cast<double>(requested_words);
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double position = std::clamp(q, 0.0, 100.0) / 100.0 *
                          static_cast<double>(values.size() - 1);
  const std::size_t lower = static_cast<std::size_t>(std::floor(position));
  const std::size_t upper = static_cast<std::size_t>(std::ceil(position));
  const double fraction = position - static_cast<double>(lower);
  return values[lower] + (values[upper] - values[lower]) * fraction;
}

double MedianAbsoluteDeviation(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  const double median = Percentile(values, 50.0);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::fabs(v - median));
  return Percentile(std::move(deviations), 50.0);
}

Summary Summarize(std::vector<double> values) {
  Summary summary;
  if (values.empty()) return summary;
  summary.count = values.size();
  double sum = 0.0;
  for (double v : values) sum += v;
  summary.mean = sum / static_cast<double>(values.size());
  double variance = 0.0;
  for (double v : values) variance += (v - summary.mean) * (v - summary.mean);
  summary.stddev = std::sqrt(variance / static_cast<double>(values.size()));
  std::sort(values.begin(), values.end());
  summary.min = values.front();
  summary.max = values.back();
  summary.p25 = Percentile(values, 25.0);
  summary.median = Percentile(values, 50.0);
  summary.p75 = Percentile(values, 75.0);
  return summary;
}

std::string FormatSummary(const Summary& summary) {
  return util::Format(
      "n=%zu mean=%.3f sd=%.3f min=%.3f p25=%.3f med=%.3f p75=%.3f max=%.3f",
      summary.count, summary.mean, summary.stddev, summary.min, summary.p25,
      summary.median, summary.p75, summary.max);
}

}  // namespace sww::metrics
