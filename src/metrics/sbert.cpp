#include "metrics/sbert.hpp"

#include <algorithm>
#include <cmath>

#include "genai/embedding.hpp"
#include "genai/llm.hpp"
#include "util/strings.hpp"

namespace sww::metrics {

namespace {

/// Content-word recall: fraction of source content words present in the
/// candidate.  This is the dominant signal real SBERT picks up for the
/// expansion task (missing facts depress similarity sharply; extra filler
/// depresses it mildly).
double ContentRecall(const std::vector<std::string>& source_tokens,
                     const std::vector<std::string>& candidate_tokens) {
  if (source_tokens.empty()) return 0.0;
  std::size_t hit = 0;
  for (const std::string& token : source_tokens) {
    if (std::find(candidate_tokens.begin(), candidate_tokens.end(), token) !=
        candidate_tokens.end()) {
      ++hit;
    }
  }
  return static_cast<double>(hit) / static_cast<double>(source_tokens.size());
}

std::vector<std::string> ContentTokens(std::string_view text) {
  std::vector<std::string> out;
  for (const std::string& token : util::Tokenize(text)) {
    if (!genai::IsStopWord(token)) out.push_back(token);
  }
  return out;
}

/// Map recall/cosine evidence onto the SBERT scale.  Real SBERT gives
/// paraphrases with full content overlap ≈0.95+, ~85% overlap ≈0.9, and
/// unrelated same-domain text ≈0.3-0.5; this piecewise-smooth map encodes
/// that operating curve.
double MapToSbertScale(double recall, double embedding_cosine) {
  const double evidence = 0.8 * recall + 0.2 * std::max(0.0, embedding_cosine);
  return std::clamp(0.35 + 0.62 * std::pow(evidence, 0.8), 0.0, 1.0);
}

}  // namespace

double SbertScore(const std::vector<std::string>& bullets,
                  std::string_view expansion) {
  std::vector<std::string> source_tokens;
  for (const std::string& bullet : bullets) {
    for (std::string& token : ContentTokens(bullet)) {
      source_tokens.push_back(std::move(token));
    }
  }
  const std::vector<std::string> candidate_tokens = ContentTokens(expansion);
  const double recall = ContentRecall(source_tokens, candidate_tokens);
  const double cosine =
      genai::Cosine(genai::TextEmbedding(source_tokens),
                    genai::TextEmbedding(candidate_tokens));
  return MapToSbertScale(recall, cosine);
}

double SbertScore(std::string_view a, std::string_view b) {
  return SbertScore(std::vector<std::string>{std::string(a)}, b);
}

}  // namespace sww::metrics
