#include "metrics/clip.hpp"

#include <algorithm>

#include "genai/embedding.hpp"

namespace sww::metrics {

double RawPromptImageCosine(std::string_view prompt, const genai::Image& image) {
  const genai::Vec text = genai::TextEmbeddingOf(prompt);
  const genai::Vec img = genai::ImageEmbedding(image);
  return genai::Cosine(text, img);
}

double ClipScore(std::string_view prompt, const genai::Image& image) {
  const double raw = RawPromptImageCosine(prompt, image);
  // Unrelated pairs have raw ≈ 0 (± sampling noise), mapping to the floor;
  // perfectly planted prompts approach raw ≈ 1 → ~0.48, comfortably above
  // any model the paper measures.
  return std::clamp(kClipFloor + kClipGain * std::max(0.0, raw), 0.0, 1.0);
}

}  // namespace sww::metrics
