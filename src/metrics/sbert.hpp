// sbert.hpp — the sentence-similarity (SBERT) simulator.
//
// §6.3.2 scores text expansion by comparing "bullet points semantic
// similarity to the paragraph of text" with Sentence-BERT embeddings.
// Our substitute builds bag-of-content-words embeddings in the shared
// token space and measures cosine similarity, mapped onto the band real
// SBERT reports for faithful paraphrases.  Calibrated so the four text
// models land in the paper's 0.82–0.91 range, ordered by model fidelity.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sww::metrics {

/// Similarity between source bullets and an expanded paragraph, on the
/// SBERT scale (≈0.3 for unrelated text, →1 for verbatim content overlap).
double SbertScore(const std::vector<std::string>& bullets,
                  std::string_view expansion);

/// Pairwise sentence similarity (both sides free text).
double SbertScore(std::string_view a, std::string_view b);

}  // namespace sww::metrics
