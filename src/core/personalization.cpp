#include "core/personalization.hpp"

#include <algorithm>
#include <cmath>

#include "util/hash.hpp"
#include "util/strings.hpp"

namespace sww::core {

PersonalizedPrompt PersonalizePrompt(const PersonalizationProfile& profile,
                                     std::string_view prompt) {
  PersonalizedPrompt out;
  out.prompt = std::string(prompt);
  if (!profile.Active()) return out;

  const std::vector<std::string> prompt_tokens = util::Tokenize(prompt);
  if (prompt_tokens.empty()) return out;

  // Echo-chamber guard: bound injected tokens by the strength cap.
  const double strength = std::clamp(profile.max_strength, 0.0, 0.3);
  const std::size_t budget = static_cast<std::size_t>(
      std::floor(strength * static_cast<double>(prompt_tokens.size())));
  if (budget == 0) return out;

  // Deterministic interest selection: rank interests by a hash of
  // (interest, prompt) so different pages personalize differently but the
  // same page re-personalizes identically.
  std::vector<std::pair<std::uint64_t, std::string>> ranked;
  for (const std::string& interest : profile.interests) {
    const std::uint64_t h = util::HashCombine(util::Fnv1a64(interest),
                                              util::Fnv1a64(prompt));
    ranked.emplace_back(h, interest);
  }
  std::sort(ranked.begin(), ranked.end());

  for (std::size_t i = 0; i < std::min(budget, ranked.size()); ++i) {
    out.injected_tokens.push_back(ranked[i].second);
  }
  if (out.injected_tokens.empty()) return out;

  out.prompt += ", with a subtle nod to " +
                util::Join(out.injected_tokens, " and ");
  out.applied = true;
  return out;
}

void PersonalizationAudit::Record(PersonalizationRecord record) {
  records_.push_back(std::move(record));
}

std::string PersonalizationAudit::Disclosure() const {
  if (records_.empty()) return "";
  std::string out =
      "This page was personalized on your device. No profile data left it.\n";
  for (const PersonalizationRecord& record : records_) {
    out += "  * " + record.item_name + ": used " +
           util::Join(record.injected_tokens, ", ") + "\n";
  }
  return out;
}

}  // namespace sww::core
