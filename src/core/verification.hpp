// verification.hpp — trustworthy generated content (§7 "Ethics and Trust").
//
// "The trustworthiness of generated data is another aspect that needs to
// be carefully studied.  This is not only a problem of the generated
// content diverging semantically from the original, but also of verifying
// generated content on end-user devices."
//
// Mechanism: a *semantic digest* — the sign pattern of the authored
// prompt's embedding in the shared semantic space, carried in the
// generated-content metadata ("digest", 16 hex characters).  Verification
// is two-staged, because the two failure modes have different structure:
//
//   1. prompt integrity (exact): the client recomputes the digest of the
//      prompt it received; any tampering with the prompt in transit or in
//      cache mismatches deterministically.
//   2. semantic faithfulness (statistical): the generated image's
//      recovered embedding must agree with the digest within a Hamming
//      budget — catching a corrupted/substituted generator whose output
//      no longer carries the prompt's semantics.  Medium-fidelity models
//      legitimately sit closer to the noise floor, so this stage uses a
//      wider budget than stage 1's zero tolerance.
//
// Both must hold for the item to count as verified.
#pragma once

#include <cstdint>
#include <string>

#include "genai/embedding.hpp"
#include "genai/image.hpp"

namespace sww::core {

/// 64-bit semantic signature: bit i = sign of embedding component i.
using SemanticDigest = std::uint64_t;

/// Digest of a prompt's embedding (authoring side).
SemanticDigest DigestOfPrompt(std::string_view prompt);

/// Digest of an image's recovered embedding (verification side).
SemanticDigest DigestOfImage(const genai::Image& image);

/// Hamming distance between signatures (0..64).
int DigestDistance(SemanticDigest a, SemanticDigest b);

/// Acceptance budget for direct image-vs-digest checks (high-fidelity
/// generators): random embeddings differ in ~32±4 of 64 bits.
inline constexpr int kDefaultDigestBudget = 24;
/// Budget for the faithfulness stage of full content verification —
/// wider, because legitimate medium-fidelity models keep fewer signs.
inline constexpr int kFaithfulnessBudget = 28;

struct VerificationResult {
  bool verified = false;
  int distance = 0;
  int budget = kDefaultDigestBudget;
};

/// Verify a generated image against the prompt's expected digest.
VerificationResult VerifyGeneratedImage(const genai::Image& image,
                                        SemanticDigest expected,
                                        int budget = kDefaultDigestBudget);

/// Full two-stage verification of one generated item.
struct ContentVerification {
  bool prompt_integrity = false;      ///< digest matches the received prompt
  bool semantically_faithful = false; ///< pixels within the Hamming budget
  int distance = 0;                   ///< image-vs-digest Hamming distance

  bool verified() const { return prompt_integrity && semantically_faithful; }
};

/// `received_prompt` is the prompt the client actually generated from
/// (stage 2 is measured against it); `authored_prompt` is the prompt the
/// digest claims to describe — usually the same string, but bounded
/// client-side personalization may extend it (stage 1 then checks the
/// authored prefix).
ContentVerification VerifyGeneratedContent(std::string_view authored_prompt,
                                           std::string_view received_prompt,
                                           SemanticDigest expected,
                                           const genai::Image& image,
                                           int budget = kFaithfulnessBudget);

/// Hex round trip for the metadata field.
std::string DigestToHex(SemanticDigest digest);
/// Returns 0 on malformed input (verification will then fail loudly,
/// since a real digest of 0 is vanishingly unlikely to match).
SemanticDigest DigestFromHex(std::string_view hex);

}  // namespace sww::core
