#include "core/converter.hpp"

#include "html/generated_content.hpp"
#include "json/json.hpp"
#include "util/strings.hpp"

namespace sww::core {

using util::Result;

PageConverter::PageConverter(genai::PromptInverter inverter,
                             genai::TextModel summarizer,
                             ConverterOptions options)
    : inverter_(std::move(inverter)),
      summarizer_(std::move(summarizer)),
      options_(options) {}

bool PageConverter::ShouldConvertImage(const html::Node& img) const {
  const std::string tag = img.GetAttribute(kCmsTagAttribute).value_or("");
  if (tag == kCmsTagUnique) return false;
  if (tag == kCmsTagGeneratable) return true;
  return options_.convert_untagged_images;
}

bool PageConverter::ShouldConvertText(const html::Node& block) const {
  const std::string tag = block.GetAttribute(kCmsTagAttribute).value_or("");
  if (tag == kCmsTagUnique) return false;
  if (tag == kCmsTagGeneratable) return true;
  if (!options_.convert_untagged_text) return false;
  return util::CountWords(block.InnerText()) >= options_.min_text_words;
}

Result<ConversionReport> PageConverter::Convert(
    html::Node& document,
    const std::map<std::string, genai::Image>& image_payloads) {
  ConversionReport report;

  // Before size: the page itself plus every referenced image payload.
  report.bytes_before = document.Serialize().size();
  for (html::Node* img : document.FindByTag("img")) {
    const std::string src = img->GetAttribute("src").value_or("");
    auto payload = image_payloads.find(src);
    if (payload != image_payloads.end()) {
      report.bytes_before += payload->second.TypicalCompressedBytes();
    }
  }

  // Images → prompts (prompt inversion).
  for (html::Node* img : document.FindByTag("img")) {
    const std::string src = img->GetAttribute("src").value_or("");
    auto payload = image_payloads.find(src);
    if (payload == image_payloads.end()) {
      ++report.images_kept_unique;
      report.notes.push_back("kept (no payload): " + src);
      continue;
    }
    if (!ShouldConvertImage(*img)) {
      ++report.images_kept_unique;
      report.notes.push_back("kept (tagged unique): " + src);
      continue;
    }
    const genai::InvertedPrompt inverted =
        inverter_.Invert(payload->second, options_.max_prompt_keywords);
    if (inverted.prompt.empty()) {
      ++report.images_kept_unique;
      report.notes.push_back("kept (inversion failed): " + src);
      continue;
    }
    json::Value metadata{json::Object{}};
    metadata.Set("prompt", inverted.prompt);
    // Derive a stable name from the source path.
    std::string name = src;
    if (auto slash = name.rfind('/'); slash != std::string::npos) {
      name = name.substr(slash + 1);
    }
    if (auto dot = name.rfind('.'); dot != std::string::npos) {
      name = name.substr(0, dot);
    }
    metadata.Set("name", name);
    metadata.Set("width", payload->second.width());
    metadata.Set("height", payload->second.height());
    auto replacement = html::MakeGeneratedContentDiv(
        html::GeneratedContentType::kImage, metadata);
    if (img->parent() != nullptr) {
      img->parent()->ReplaceChild(img, std::move(replacement));
      ++report.images_converted;
    }
  }

  // Long text blocks → bullets.
  for (html::Node* paragraph : document.FindByTag("p")) {
    const std::string text = paragraph->InnerText();
    const std::size_t words = util::CountWords(text);
    if (!ShouldConvertText(*paragraph)) {
      ++report.text_blocks_kept;
      continue;
    }
    const std::vector<std::string> bullets = summarizer_.SummarizeToBullets(text);
    if (bullets.empty()) {
      ++report.text_blocks_kept;
      continue;
    }
    json::Value metadata{json::Object{}};
    json::Array bullet_array;
    for (const std::string& bullet : bullets) bullet_array.emplace_back(bullet);
    // `prompt` summarizes the task; `bullets` carry the information.
    metadata.Set("prompt", "expand the bullet points into flowing prose");
    metadata.Set("bullets", json::Value(std::move(bullet_array)));
    metadata.Set("words",
                 options_.target_words > 0 ? options_.target_words
                                           : static_cast<int>(words));
    auto replacement = html::MakeGeneratedContentDiv(
        html::GeneratedContentType::kText, metadata);
    if (paragraph->parent() != nullptr) {
      paragraph->parent()->ReplaceChild(paragraph, std::move(replacement));
      ++report.text_blocks_converted;
    }
  }

  report.bytes_after = document.Serialize().size();
  return report;
}

}  // namespace sww::core
