// http_semantics.hpp — request/response message types over HTTP/2 headers.
//
// HTTP/2 encodes the request line and status line as pseudo-header fields
// (":method", ":path", ":scheme", ":authority", ":status" — RFC 9113 §8.3).
// This module converts between those header lists and typed messages, and
// validates the pseudo-header rules (pseudo-headers first, no unknown
// pseudo-headers, mandatory fields present).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "hpack/hpack.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace sww::core {

struct Request {
  std::string method = "GET";
  std::string scheme = "https";
  std::string authority;
  std::string path = "/";
  hpack::HeaderList extra_headers;  // regular headers, in order
  util::Bytes body;

  hpack::HeaderList ToHeaders() const;
  std::optional<std::string> Header(std::string_view name) const;
};

struct Response {
  int status = 200;
  hpack::HeaderList extra_headers;
  util::Bytes body;
  /// Size of the body as it crossed the wire (differs from body.size()
  /// after a content coding was decoded).  Set by ParseResponse/FetchRaw.
  std::size_t wire_body_bytes = 0;

  hpack::HeaderList ToHeaders() const;
  std::optional<std::string> Header(std::string_view name) const;
  void SetHeader(std::string_view name, std::string_view value);
};

/// Parse and validate a request header list (+ accumulated body).
util::Result<Request> ParseRequest(const hpack::HeaderList& headers,
                                   util::BytesView body);

/// Parse and validate a response header list (+ accumulated body).
util::Result<Response> ParseResponse(const hpack::HeaderList& headers,
                                     util::BytesView body);

/// Canonical reason phrases for the handful of statuses the server emits.
std::string_view ReasonPhrase(int status);

/// The response header naming the SWW serving mode, for observability:
/// "generative" (prompts served) or "traditional" (materialized content).
inline constexpr std::string_view kSwwModeHeader = "x-sww-mode";

/// Request header a client sends to override negotiation for one request
/// (§7 "Negotiating models"): a client whose local model cannot satisfy a
/// page's "min_fidelity" requirement re-requests it materialized.
inline constexpr std::string_view kSwwForceHeader = "x-sww-force";

}  // namespace sww::core
