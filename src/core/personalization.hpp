// personalization.hpp — personalized content generation (§2.3).
//
// "Generating content on end-user devices also means that there is an
// opportunity to generate personalized content ... The generation
// algorithm can use as an input information about users' background,
// preferences and hobbies ... This personalized approach is likely to
// [be] very attractive, however it has a potential for harm, not only
// from malicious actors but also by creating an echo chamber."
//
// The paper flags this as "a major concern as an element that needs to be
// addressed prior to deployment" — so the implementation bakes the
// mitigations in rather than bolting them on:
//
//   * consent gate — a profile only applies if the user opted in;
//   * strength cap — personalization may contribute at most a bounded
//     fraction of the prompt's tokens (echo-chamber guard: the authored
//     content always dominates the personalized flavor);
//   * audit trail — every applied personalization is recorded so the
//     rendered page can disclose exactly what was changed and why.
//
// Personalization happens strictly on the client device; the profile
// never crosses the network (that is the §2.3 privacy upside of SWW).
#pragma once

#include <string>
#include <vector>

#include "util/error.hpp"

namespace sww::core {

struct PersonalizationProfile {
  /// User interests as plain tokens, e.g. {"cycling", "birds"}.
  std::vector<std::string> interests;
  /// Explicit opt-in.  Without it the profile is inert.
  bool consented = false;
  /// Echo-chamber guard: personalization tokens may make up at most this
  /// fraction of the final prompt's tokens.  Clamped to [0, 0.3].
  double max_strength = 0.2;

  bool Active() const { return consented && !interests.empty(); }
};

/// One applied personalization, for disclosure.
struct PersonalizationRecord {
  std::string item_name;        ///< generated-content item it applied to
  std::string original_prompt;
  std::string personalized_prompt;
  std::vector<std::string> injected_tokens;
};

/// Apply a profile to a prompt.  Deterministic: token choice depends on
/// the prompt and profile only.  Returns the prompt unchanged when the
/// profile is inactive or the strength cap leaves no token budget.
struct PersonalizedPrompt {
  std::string prompt;
  std::vector<std::string> injected_tokens;
  bool applied = false;
};

PersonalizedPrompt PersonalizePrompt(const PersonalizationProfile& profile,
                                     std::string_view prompt);

/// A client-side ledger of applied personalizations (the transparency
/// mechanism).  The renderer can append a disclosure section from it.
class PersonalizationAudit {
 public:
  void Record(PersonalizationRecord record);
  const std::vector<PersonalizationRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void Clear() { records_.clear(); }

  /// Human-readable disclosure block ("content personalized using: …").
  std::string Disclosure() const;

 private:
  std::vector<PersonalizationRecord> records_;
};

}  // namespace sww::core
