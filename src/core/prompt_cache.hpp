// prompt_cache.hpp — client-side caching of prompt-form pages.
//
// A consequence of SWW the paper's §7 hints at ("traffic reduction on the
// network provides more flexibility in cache placement"): the *browser*
// cache changes character too.  Caching the prompt form of a page costs
// kilobytes where caching its rendered media costs megabytes — and a
// revisit regenerates everything locally, touching the network not at
// all.  This is an LRU byte-budgeted cache of generative-mode page bodies.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "obs/registry.hpp"

namespace sww::core {

class PromptCache {
 public:
  explicit PromptCache(std::size_t capacity_bytes = 512 * 1024);

  /// Per-instance view; the same events are mirrored into the process-wide
  /// obs::Registry under client.prompt_cache.* so Snapshot() aggregates
  /// every cache in the process.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;

    double HitRate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  /// Look up a cached page body; counts a hit or miss.
  std::optional<std::string> Get(const std::string& path);

  /// Insert/replace a page body.  Entries larger than the whole capacity
  /// are not cached.
  void Put(const std::string& path, std::string body);

  /// Drop one entry (e.g. after a failed verification) or everything.
  void Invalidate(const std::string& path);
  void Clear();

  std::size_t stored_bytes() const { return stored_bytes_; }
  std::size_t entry_count() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }

 private:
  void EvictToFit();

  struct Entry {
    std::string path;
    std::string body;
  };

  std::size_t capacity_;
  std::size_t stored_bytes_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;

  // Process-wide mirrors of the Stats events.
  struct Instruments {
    obs::Counter* hits;
    obs::Counter* misses;
    obs::Counter* insertions;
    obs::Counter* evictions;
  };
  Instruments instruments_;
};

}  // namespace sww::core
