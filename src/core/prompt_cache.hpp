// prompt_cache.hpp — client-side caching of prompt-form pages.
//
// A consequence of SWW the paper's §7 hints at ("traffic reduction on the
// network provides more flexibility in cache placement"): the *browser*
// cache changes character too.  Caching the prompt form of a page costs
// kilobytes where caching its rendered media costs megabytes — and a
// revisit regenerates everything locally, touching the network not at
// all.  This is an LRU byte-budgeted cache of generative-mode page bodies.
//
// Concurrency: the cache is safe to hit from every pool worker at once.
// The byte budget is divided over `stripes` independent shards, each with
// its own LRU list guarded by one stripe of a util::StripedMutex — two
// lookups only contend when their paths hash to the same stripe.  LRU
// order (and therefore eviction) is per-stripe; construct with stripes=1
// for a single globally-ordered LRU.  Hit/miss/eviction stats accumulate
// in relaxed atomics and merge on read.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/registry.hpp"
#include "util/striped_lock.hpp"

namespace sww::core {

class PromptCache {
 public:
  /// Stripe count used when none is given; bounded by the stripe count of
  /// the underlying StripedMutex.
  static constexpr std::size_t kDefaultStripes = 8;

  explicit PromptCache(std::size_t capacity_bytes = 512 * 1024,
                       std::size_t stripes = kDefaultStripes);

  /// Merged per-instance view; the same events are mirrored into the
  /// process-wide obs::Registry under client.prompt_cache.* so Snapshot()
  /// aggregates every cache in the process.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;

    double HitRate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  /// Look up a cached page body; counts a hit or miss.
  std::optional<std::string> Get(const std::string& path);

  /// Insert/replace a page body.  Entries larger than their stripe's
  /// share of the capacity are not cached.
  void Put(const std::string& path, std::string body);

  /// Drop one entry (e.g. after a failed verification) or everything.
  void Invalidate(const std::string& path);
  void Clear();

  std::size_t stored_bytes() const;
  std::size_t entry_count() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t stripe_count() const { return stripes_.size(); }
  Stats stats() const;

 private:
  struct Entry {
    std::string path;
    std::string body;
  };

  /// One shard: an independent LRU over its slice of the byte budget.
  struct Stripe {
    std::size_t capacity = 0;
    std::size_t stored_bytes = 0;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  std::size_t StripeOf(const std::string& path) const;
  /// Caller holds the stripe's lock.
  void InvalidateLocked(Stripe& stripe, const std::string& path);
  void EvictToFitLocked(Stripe& stripe);
  /// Recompute the client.prompt_cache.hit_ratio gauge from the counters.
  void RefreshHitRatio();

  std::size_t capacity_;
  std::vector<Stripe> stripes_;
  mutable util::StripedMutex<> locks_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};

  // Process-wide mirrors of the Stats events.
  struct Instruments {
    obs::Counter* hits;
    obs::Counter* misses;
    obs::Counter* insertions;
    obs::Counter* evictions;
    /// Live hit ratio (hits / lookups), refreshed on every Get so a
    /// /metrics scrape mid-run sees the current value, not a final one.
    obs::Gauge* hit_ratio;
  };
  Instruments instruments_;
};

}  // namespace sww::core
