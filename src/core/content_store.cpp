#include "core/content_store.hpp"

#include "html/parser.hpp"

namespace sww::core {

using util::Error;
using util::ErrorCode;
using util::Status;

std::size_t TraditionalItemBytes(html::GeneratedContentType type,
                                 const json::Value& metadata) {
  switch (type) {
    case html::GeneratedContentType::kImage: {
      const auto width = metadata.GetInt("width", 512);
      const auto height = metadata.GetInt("height", 512);
      return static_cast<std::size_t>(width * height / 8);
    }
    case html::GeneratedContentType::kText: {
      const auto words = metadata.GetInt("words", 100);
      return static_cast<std::size_t>(words * 5);
    }
  }
  return 0;
}

std::size_t PromptItemBytes(const json::Value& metadata) {
  return metadata.Dump().size();
}

Status ContentStore::AddPage(std::string path, std::string html_text) {
  auto document = html::ParseDocument(html_text);
  if (!document) return document.error();
  html::ExtractionResult extraction =
      html::ExtractGeneratedContent(*document.value());
  if (!extraction.errors.empty()) {
    return Error(ErrorCode::kMalformed,
                 "page has invalid generated content: " + extraction.errors.front());
  }
  PageEntry entry;
  entry.html = std::move(html_text);
  for (const html::GeneratedContentSpec& spec : extraction.specs) {
    entry.item_types.push_back(spec.type);
    entry.item_metadata.push_back(spec.metadata);
  }
  pages_[std::move(path)] = std::move(entry);
  return Status::Ok();
}

void ContentStore::AddAsset(std::string path, util::Bytes bytes,
                            std::string content_type) {
  assets_[std::move(path)] = Asset{std::move(bytes), std::move(content_type)};
}

const PageEntry* ContentStore::FindPage(std::string_view path) const {
  auto it = pages_.find(path);
  return it == pages_.end() ? nullptr : &it->second;
}

const Asset* ContentStore::FindAsset(std::string_view path) const {
  auto it = assets_.find(path);
  return it == assets_.end() ? nullptr : &it->second;
}

std::vector<std::string> ContentStore::PagePaths() const {
  std::vector<std::string> paths;
  paths.reserve(pages_.size());
  for (const auto& [path, entry] : pages_) {
    (void)entry;
    paths.push_back(path);
  }
  return paths;
}

StorageStats ContentStore::Stats() const {
  StorageStats stats;
  stats.page_count = pages_.size();
  stats.asset_count = assets_.size();
  for (const auto& [path, entry] : pages_) {
    (void)path;
    stats.prompt_bytes += entry.html.size();
    std::uint64_t traditional = entry.html.size();
    for (std::size_t i = 0; i < entry.item_types.size(); ++i) {
      // Traditional form: the div's metadata is replaced by materialized
      // content of typical size; the prompt bytes leave the page.
      const std::size_t prompt = PromptItemBytes(entry.item_metadata[i]);
      const std::size_t materialized =
          TraditionalItemBytes(entry.item_types[i], entry.item_metadata[i]);
      traditional = traditional - prompt + materialized;
    }
    stats.traditional_bytes += traditional;
  }
  for (const auto& [path, asset] : assets_) {
    (void)path;
    stats.unique_asset_bytes += asset.bytes.size();
  }
  return stats;
}

}  // namespace sww::core
