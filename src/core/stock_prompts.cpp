#include "core/stock_prompts.hpp"

#include <algorithm>

#include "core/verification.hpp"
#include "util/strings.hpp"

namespace sww::core {

using util::Error;
using util::ErrorCode;
using util::Result;

const char* PromptLicenseName(PromptLicense license) {
  switch (license) {
    case PromptLicense::kPublicDomain: return "public-domain";
    case PromptLicense::kCcBy: return "cc-by";
    case PromptLicense::kCcBySa: return "cc-by-sa";
    case PromptLicense::kCommercial: return "commercial";
  }
  return "?";
}

StockPromptLibrary StockPromptLibrary::Builtin() {
  StockPromptLibrary library;
  struct Entry {
    const char* id;
    const char* category;
    const char* prompt;
    PromptLicense license;
    const char* attribution;
  };
  static const Entry kCatalog[] = {
      {"landscape/alpine-meadow", "landscape",
       "an alpine meadow below a glacier, wildflowers in the foreground, "
       "crisp morning light, wide-angle photograph",
       PromptLicense::kCcBySa, "Stock Prompts Collective"},
      {"landscape/volcanic-ridge", "landscape",
       "a volcanic ridge under heavy cloud, black gravel slopes, thin fog "
       "lifting, dramatic diffuse light",
       PromptLicense::kCcBySa, "Stock Prompts Collective"},
      {"landscape/river-delta", "landscape",
       "a wide river delta seen from above, braided channels, golden hour",
       PromptLicense::kPublicDomain, ""},
      {"landscape/coastal-cliffs", "landscape",
       "coastal cliffs above a calm sea, seabirds circling, late afternoon",
       PromptLicense::kCcBy, "OpenPrompt Archive"},
      {"food/rustic-bread", "food",
       "a rustic sourdough loaf on a wooden board, flour dusting, warm "
       "window light, shallow depth of field",
       PromptLicense::kCcBy, "OpenPrompt Archive"},
      {"food/market-fruit", "food",
       "a market stall with stacked seasonal fruit, bright colors, candid "
       "photograph",
       PromptLicense::kPublicDomain, ""},
      {"food/coffee-pour", "food",
       "coffee being poured into a ceramic cup, steam visible, cozy cafe "
       "background",
       PromptLicense::kCommercial, "Premium Prompt Works"},
      {"business/team-meeting", "business",
       "a small team meeting around a whiteboard, natural office light, "
       "candid working atmosphere",
       PromptLicense::kCommercial, "Premium Prompt Works"},
      {"business/handshake", "business",
       "a professional handshake in a bright lobby, shallow focus",
       PromptLicense::kCcBy, "OpenPrompt Archive"},
      {"travel/old-bridge", "travel",
       "a rainbow over an old stone bridge crossing a river, lush banks, "
       "after-rain clarity",
       PromptLicense::kCcBySa, "Stock Prompts Collective"},
      {"travel/mountain-hut", "travel",
       "a mountain hut at dusk with warm windows, snow patches, hikers "
       "resting outside",
       PromptLicense::kCcBySa, "Stock Prompts Collective"},
      {"travel/harbor-town", "travel",
       "a small harbor town at dusk, fishing boats, reflections in still "
       "water",
       PromptLicense::kPublicDomain, ""},
      {"abstract/paper-texture", "abstract",
       "a softly lit handmade paper texture, subtle fibers, neutral tones",
       PromptLicense::kPublicDomain, ""},
      {"abstract/ink-wash", "abstract",
       "an ink wash gradient in deep blue, organic edges, high resolution",
       PromptLicense::kCcBy, "OpenPrompt Archive"},
      {"nature/forest-path", "nature",
       "a pine forest path with long morning shadows, mist between trunks",
       PromptLicense::kCcBySa, "Stock Prompts Collective"},
      {"nature/waterfall", "nature",
       "an icelandic waterfall in a green valley, long exposure, moss on "
       "basalt",
       PromptLicense::kCcBySa, "Stock Prompts Collective"},
      {"nature/goldfish", "nature",
       "a cartoon goldfish with large friendly eyes in a round glass bowl, "
       "bright orange scales, simple flat colors",
       PromptLicense::kPublicDomain, ""},
      {"city/night-street", "city",
       "a rain-washed city street at night, neon reflections, umbrellas",
       PromptLicense::kCommercial, "Premium Prompt Works"},
      {"city/rooftops", "city",
       "terracotta rooftops of an old town from a bell tower, afternoon sun",
       PromptLicense::kCcBy, "OpenPrompt Archive"},
      {"city/tram", "city",
       "a vintage tram turning through a narrow street, motion blur",
       PromptLicense::kCcBySa, "Stock Prompts Collective"},
  };
  for (const Entry& entry : kCatalog) {
    library.Add(StockPrompt{entry.id, entry.category, entry.prompt,
                            entry.license, entry.attribution});
  }
  return library;
}

void StockPromptLibrary::Add(StockPrompt prompt) {
  prompts_.push_back(std::move(prompt));
}

Result<StockPrompt> StockPromptLibrary::Find(std::string_view id) const {
  for (const StockPrompt& prompt : prompts_) {
    if (prompt.id == id) return prompt;
  }
  return Error(ErrorCode::kNotFound, "no stock prompt: " + std::string(id));
}

std::vector<StockPrompt> StockPromptLibrary::Category(
    std::string_view category) const {
  std::vector<StockPrompt> out;
  for (const StockPrompt& prompt : prompts_) {
    if (prompt.category == category) out.push_back(prompt);
  }
  return out;
}

std::vector<StockPrompt> StockPromptLibrary::Search(
    const std::vector<std::string>& keywords) const {
  std::vector<StockPrompt> out;
  for (const StockPrompt& prompt : prompts_) {
    const std::string haystack = util::ToLower(prompt.prompt);
    const bool all_present = std::all_of(
        keywords.begin(), keywords.end(), [&haystack](const std::string& kw) {
          return haystack.find(util::ToLower(kw)) != std::string::npos;
        });
    if (all_present) out.push_back(prompt);
  }
  return out;
}

bool StockPromptLibrary::UsageAllowed(
    const StockPrompt& prompt,
    const std::vector<std::string>& licensed_ids) const {
  if (prompt.license != PromptLicense::kCommercial) return true;
  return std::find(licensed_ids.begin(), licensed_ids.end(), prompt.id) !=
         licensed_ids.end();
}

Result<json::Value> StockPromptLibrary::MakeImageMetadata(
    std::string_view id, int width, int height,
    const std::vector<std::string>& licensed_ids) const {
  auto entry = Find(id);
  if (!entry) return entry.error();
  if (!UsageAllowed(entry.value(), licensed_ids)) {
    return Error(ErrorCode::kUnsupported,
                 "stock prompt '" + std::string(id) +
                     "' requires a commercial license grant");
  }
  json::Value metadata{json::Object{}};
  metadata.Set("prompt", entry.value().prompt);
  // Derive a file-safe name from the id.
  std::string name = entry.value().id;
  std::replace(name.begin(), name.end(), '/', '-');
  metadata.Set("name", name);
  metadata.Set("width", width);
  metadata.Set("height", height);
  metadata.Set("digest", DigestToHex(DigestOfPrompt(entry.value().prompt)));
  metadata.Set("license", PromptLicenseName(entry.value().license));
  if (!entry.value().attribution.empty()) {
    metadata.Set("attribution", entry.value().attribution);
  }
  return metadata;
}

}  // namespace sww::core
