#include "core/verification.hpp"

#include <bit>

#include "util/strings.hpp"

namespace sww::core {

namespace {

SemanticDigest SignBits(const genai::Vec& embedding) {
  SemanticDigest digest = 0;
  for (int i = 0; i < genai::kEmbeddingDim && i < 64; ++i) {
    if (embedding[static_cast<std::size_t>(i)] >= 0.0) {
      digest |= (1ULL << i);
    }
  }
  return digest;
}

}  // namespace

SemanticDigest DigestOfPrompt(std::string_view prompt) {
  return SignBits(genai::TextEmbeddingOf(prompt));
}

SemanticDigest DigestOfImage(const genai::Image& image) {
  return SignBits(genai::ImageEmbedding(image));
}

int DigestDistance(SemanticDigest a, SemanticDigest b) {
  return std::popcount(a ^ b);
}

VerificationResult VerifyGeneratedImage(const genai::Image& image,
                                        SemanticDigest expected, int budget) {
  VerificationResult result;
  result.budget = budget;
  result.distance = DigestDistance(DigestOfImage(image), expected);
  result.verified = result.distance <= budget;
  return result;
}

ContentVerification VerifyGeneratedContent(std::string_view authored_prompt,
                                           std::string_view received_prompt,
                                           SemanticDigest expected,
                                           const genai::Image& image,
                                           int budget) {
  ContentVerification result;
  // Stage 1 — exact: the digest must be the digest of the authored prompt.
  result.prompt_integrity = DigestOfPrompt(authored_prompt) == expected;
  // Stage 2 — statistical: the pixels must carry the semantics of the
  // prompt that was actually used for generation.
  const SemanticDigest used = DigestOfPrompt(received_prompt);
  result.distance = DigestDistance(DigestOfImage(image), used);
  result.semantically_faithful = result.distance <= budget;
  return result;
}

std::string DigestToHex(SemanticDigest digest) {
  return util::Format("%016llx", static_cast<unsigned long long>(digest));
}

SemanticDigest DigestFromHex(std::string_view hex) {
  if (hex.size() != 16) return 0;
  SemanticDigest digest = 0;
  for (char c : hex) {
    digest <<= 4;
    if (c >= '0' && c <= '9') {
      digest |= static_cast<SemanticDigest>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digest |= static_cast<SemanticDigest>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digest |= static_cast<SemanticDigest>(c - 'A' + 10);
    } else {
      return 0;
    }
  }
  return digest;
}

}  // namespace sww::core
