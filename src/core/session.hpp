// session.hpp — client/server session harnesses.
//
// LocalSession wires a GenerativeClient and a GenerativeServer
// back-to-back with a deterministic byte shuttle (no sockets, no
// threads) — the workhorse for tests, benchmarks and the quickstart
// example, and the only harness that runs under ManualClock.
//
// LoopbackSession is the client side of a real TCP connection to a live
// server (normally a core::ReactorHost): it dials 127.0.0.1, runs the
// SETTINGS handshake, and exposes the same FetchPage/FetchRaw surface
// with a socket-backed pump.  Used by sww_top's scraper, the live load
// mode, and the TCP integration tests.
#pragma once

#include <memory>

#include "core/client.hpp"
#include "core/server.hpp"
#include "net/transport.hpp"

namespace sww::core {

class LocalSession {
 public:
  struct Options {
    GenerativeClient::Options client;
    GenerativeServer::Options server;
  };

  /// Create both endpoints over the shared store and run the connection
  /// preface + SETTINGS exchange to completion.
  static util::Result<std::unique_ptr<LocalSession>> Start(
      const ContentStore* store, Options options);

  GenerativeClient& client() { return *client_; }
  GenerativeServer& server() { return *server_; }

  /// The pump callable FetchPage needs: moves bytes client→server, lets the
  /// server answer, moves bytes back.
  GenerativeClient::PumpFn Pump();

  /// Convenience: fetch and materialize a page over this session.
  util::Result<PageFetch> FetchPage(const std::string& path);

 private:
  LocalSession(std::unique_ptr<GenerativeClient> client,
               std::unique_ptr<GenerativeServer> server)
      : client_(std::move(client)), server_(std::move(server)) {}

  util::Status PumpOnce();

  std::unique_ptr<GenerativeClient> client_;
  std::unique_ptr<GenerativeServer> server_;
};

class LoopbackSession {
 public:
  struct Options {
    GenerativeClient::Options client;
    /// Dial deadline (surfaces ECONNREFUSED/ETIMEDOUT from TcpConnect).
    int connect_timeout_ms = 5000;
    /// Give up a fetch when the socket makes no progress for this long.
    int pump_timeout_ms = 10'000;
  };

  /// Dial 127.0.0.1:`port` and run the preface + SETTINGS exchange to
  /// completion against the live server.
  static util::Result<std::unique_ptr<LoopbackSession>> Connect(
      std::uint16_t port);
  static util::Result<std::unique_ptr<LoopbackSession>> Connect(
      std::uint16_t port, Options options);

  GenerativeClient& client() { return *client_; }

  /// Socket-backed pump: one PumpOnce over the transport; yields the CPU
  /// briefly when the wire is idle, errors after pump_timeout_ms of no
  /// progress.
  GenerativeClient::PumpFn Pump();

  util::Result<PageFetch> FetchPage(const std::string& path);
  util::Result<Response> FetchRaw(const std::string& path);

  void Close();

 private:
  LoopbackSession(std::unique_ptr<GenerativeClient> client,
                  std::unique_ptr<net::Transport> transport, Options options)
      : client_(std::move(client)),
        transport_(std::move(transport)),
        options_(std::move(options)) {}

  std::unique_ptr<GenerativeClient> client_;
  std::unique_ptr<net::Transport> transport_;
  Options options_;
};

}  // namespace sww::core
