// session.hpp — in-process client/server harness.
//
// Wires a GenerativeClient and a GenerativeServer back-to-back with a
// deterministic byte shuttle (no sockets, no threads) — the workhorse for
// tests, benchmarks and the quickstart example.  The TCP examples build
// the same parts over net::TcpTransport instead.
#pragma once

#include <memory>

#include "core/client.hpp"
#include "core/server.hpp"

namespace sww::core {

class LocalSession {
 public:
  struct Options {
    GenerativeClient::Options client;
    GenerativeServer::Options server;
  };

  /// Create both endpoints over the shared store and run the connection
  /// preface + SETTINGS exchange to completion.
  static util::Result<std::unique_ptr<LocalSession>> Start(
      const ContentStore* store, Options options);

  GenerativeClient& client() { return *client_; }
  GenerativeServer& server() { return *server_; }

  /// The pump callable FetchPage needs: moves bytes client→server, lets the
  /// server answer, moves bytes back.
  GenerativeClient::PumpFn Pump();

  /// Convenience: fetch and materialize a page over this session.
  util::Result<PageFetch> FetchPage(const std::string& path);

 private:
  LocalSession(std::unique_ptr<GenerativeClient> client,
               std::unique_ptr<GenerativeServer> server)
      : client_(std::move(client)), server_(std::move(server)) {}

  util::Status PumpOnce();

  std::unique_ptr<GenerativeClient> client_;
  std::unique_ptr<GenerativeServer> server_;
};

}  // namespace sww::core
