// stock_prompts.hpp — a stock prompt library (§7 "New Opportunities").
//
// "One interesting aspect is that of stock photos, as these will mostly
// become prompts.  Possibly in a few years' time we will see stock
// prompts companies emerge."  And under Ethics and Trust: "Another
// question relates to copyrights, as a lot of content will be reduced to
// prompts and then generated.  Possibly content sharing licenses will be
// updated to allow use on SWW."
//
// This module models that marketplace artifact: a catalog of curated,
// licensed prompts.  Each entry carries its license and attribution; the
// library enforces license terms at lookup time (a proprietary prompt
// cannot be embedded into a page without a license grant) and stamps
// attribution into the generated-content metadata so it survives delivery
// and appears alongside the generated media.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "util/error.hpp"

namespace sww::core {

enum class PromptLicense {
  kPublicDomain,   ///< free for any use, no attribution required
  kCcBy,           ///< free with attribution
  kCcBySa,         ///< attribution + share-alike (the paper's figures' terms)
  kCommercial,     ///< requires a purchased grant
};

const char* PromptLicenseName(PromptLicense license);

struct StockPrompt {
  std::string id;          ///< catalog key, e.g. "landscape/alpine-meadow"
  std::string category;    ///< "landscape", "food", "business", ...
  std::string prompt;
  PromptLicense license = PromptLicense::kCcBy;
  std::string attribution; ///< required credit line (empty for PD)
};

class StockPromptLibrary {
 public:
  /// An empty library; use Builtin() for the curated starter catalog.
  StockPromptLibrary() = default;

  /// ~20 curated entries across the categories the examples use.
  static StockPromptLibrary Builtin();

  void Add(StockPrompt prompt);
  std::size_t size() const { return prompts_.size(); }

  /// Lookup by id.
  util::Result<StockPrompt> Find(std::string_view id) const;

  /// All entries in a category.
  std::vector<StockPrompt> Category(std::string_view category) const;

  /// Entries whose prompt mentions every given keyword (case-folded).
  std::vector<StockPrompt> Search(const std::vector<std::string>& keywords) const;

  /// License gate: can this entry be embedded into a page?
  /// `licensed_ids` holds purchased grants for kCommercial entries.
  bool UsageAllowed(const StockPrompt& prompt,
                    const std::vector<std::string>& licensed_ids) const;

  /// Build generated-content metadata from a stock prompt: prompt, name,
  /// dimensions, semantic digest, license and attribution fields.
  /// Fails (kUnsupported) when the license gate rejects the use.
  util::Result<json::Value> MakeImageMetadata(
      std::string_view id, int width, int height,
      const std::vector<std::string>& licensed_ids = {}) const;

 private:
  std::vector<StockPrompt> prompts_;
};

}  // namespace sww::core
