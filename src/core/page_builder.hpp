// page_builder.hpp — workload generators for the paper's experiments.
//
// Deterministic builders for every page the evaluation uses:
//   * the Figure 1 goldfish div (quickstart),
//   * the Figure 2 Wikimedia "Landscape" search-results page — 49 images
//    whose prompts span the paper's observed 120-262 character range,
//   * the §2.1 travel blog (generic text + stock images + unique photos),
//   * the §6.2 newspaper article (~2,400 bytes of prose).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sww::core {

/// Figure 1: one generated-content div for a cartoon goldfish image.
std::string MakeGoldfishPage();

/// A landscape prompt of 120-262 characters (the paper's GPT-4V range),
/// deterministic in `seed`.
std::string MakeLandscapePrompt(std::uint64_t seed);

struct LandscapePage {
  std::string html;
  std::vector<std::string> prompts;
  std::size_t total_metadata_bytes = 0;   ///< prompt form of all 49 images
  std::size_t traditional_image_bytes = 0;///< the 1.4 MB the originals cost
  /// Bytes of one original Wikimedia thumbnail file (≈640×360 JPEG); the
  /// paper's 1.4 MB / 49 images ≈ 28.6 kB each.
  std::size_t original_bytes_per_image = 28800;
};

/// Figure 2: the Wikimedia Commons "Landscape" search results.
/// `image_count` defaults to the paper's 49.  The page *displays* (and the
/// client regenerates) 256×192 results, while the traditional-size
/// accounting uses the original ≈28.8 kB thumbnail files — matching the
/// paper, where 1.4 MB of files were transferred for search-result-sized
/// pictures and per-image generation cost ≈6.3 s on the laptop.
/// `with_digests` attaches §7 semantic digests (+29 B/item); the paper's
/// own experiment carried bare prompts, so the Figure 2 bench disables it
/// for the data-reduction comparison.
LandscapePage MakeLandscapeSearchPage(int image_count = 49,
                                      int thumb_width = 256,
                                      int thumb_height = 192,
                                      std::uint64_t seed = 2025,
                                      bool with_digests = true);

struct TravelBlogPage {
  std::string html;
  /// Paths of unique assets the page references (the hike photos); the
  /// caller stores matching assets in the ContentStore.
  std::vector<std::string> unique_asset_paths;
};

/// §2.1's example page: generic travel text as a txt div, stock landscape
/// images as img divs, and `unique_photos` real photo links kept as-is.
TravelBlogPage MakeTravelBlogPage(int stock_images = 3, int unique_photos = 2,
                                  std::uint64_t seed = 7);

/// §6.2's text experiment: a newspaper article of ~`target_bytes` bytes
/// (default 2,400) as legacy HTML (plain paragraphs, no SWW markup).
std::string MakeNewsArticleHtml(std::size_t target_bytes = 2400,
                                std::uint64_t seed = 11);
/// The same article as raw prose (no markup).
std::string MakeNewsArticleText(std::size_t target_bytes = 2400,
                                std::uint64_t seed = 11);

struct FoodMenuPage {
  std::string html;
  std::size_t dish_count = 0;
};

/// The paper's opening déjà-vu example: "every food delivery menu looks
/// exactly the same."  A delivery-app menu page where every dish photo is
/// a licensed stock prompt (from the §7 stock library) and every dish
/// blurb is a bullet-expanded text div — i.e. the page is almost entirely
/// generatable, which is precisely the paper's point.
FoodMenuPage MakeFoodMenuPage(int dish_count = 8, std::uint64_t seed = 21);

}  // namespace sww::core
