#include "core/http_semantics.hpp"

#include "util/strings.hpp"

namespace sww::core {

using util::Error;
using util::ErrorCode;
using util::Result;

hpack::HeaderList Request::ToHeaders() const {
  hpack::HeaderList headers;
  headers.push_back({":method", method, false});
  headers.push_back({":scheme", scheme, false});
  if (!authority.empty()) headers.push_back({":authority", authority, false});
  headers.push_back({":path", path, false});
  for (const hpack::HeaderField& field : extra_headers) headers.push_back(field);
  return headers;
}

std::optional<std::string> Request::Header(std::string_view name) const {
  const std::string lowered = util::ToLower(name);
  for (const hpack::HeaderField& field : extra_headers) {
    if (field.name == lowered) return field.value;
  }
  return std::nullopt;
}

hpack::HeaderList Response::ToHeaders() const {
  hpack::HeaderList headers;
  headers.push_back({":status", std::to_string(status), false});
  for (const hpack::HeaderField& field : extra_headers) headers.push_back(field);
  return headers;
}

std::optional<std::string> Response::Header(std::string_view name) const {
  const std::string lowered = util::ToLower(name);
  for (const hpack::HeaderField& field : extra_headers) {
    if (field.name == lowered) return field.value;
  }
  return std::nullopt;
}

void Response::SetHeader(std::string_view name, std::string_view value) {
  const std::string lowered = util::ToLower(name);
  for (hpack::HeaderField& field : extra_headers) {
    if (field.name == lowered) {
      field.value = std::string(value);
      return;
    }
  }
  extra_headers.push_back({lowered, std::string(value), false});
}

namespace {

/// RFC 9113 §8.3: pseudo-headers must precede regular fields and must not
/// repeat.
util::Status CheckPseudoHeaderOrder(const hpack::HeaderList& headers) {
  bool seen_regular = false;
  for (const hpack::HeaderField& field : headers) {
    const bool pseudo = !field.name.empty() && field.name[0] == ':';
    if (pseudo && seen_regular) {
      return Error(ErrorCode::kProtocol, "pseudo-header after regular header");
    }
    if (!pseudo) seen_regular = true;
  }
  return util::Status::Ok();
}

}  // namespace

Result<Request> ParseRequest(const hpack::HeaderList& headers,
                             util::BytesView body) {
  if (auto status = CheckPseudoHeaderOrder(headers); !status.ok()) {
    return status.error();
  }
  Request request;
  request.method.clear();
  request.scheme.clear();
  request.path.clear();
  for (const hpack::HeaderField& field : headers) {
    if (field.name == ":method") {
      if (!request.method.empty()) {
        return Error(ErrorCode::kProtocol, "duplicate :method");
      }
      request.method = field.value;
    } else if (field.name == ":scheme") {
      request.scheme = field.value;
    } else if (field.name == ":authority") {
      request.authority = field.value;
    } else if (field.name == ":path") {
      if (!request.path.empty()) {
        return Error(ErrorCode::kProtocol, "duplicate :path");
      }
      request.path = field.value;
    } else if (!field.name.empty() && field.name[0] == ':') {
      return Error(ErrorCode::kProtocol, "unknown pseudo-header " + field.name);
    } else {
      request.extra_headers.push_back(field);
    }
  }
  if (request.method.empty() || request.path.empty()) {
    return Error(ErrorCode::kProtocol, "request missing :method or :path");
  }
  request.body.assign(body.begin(), body.end());
  return request;
}

Result<Response> ParseResponse(const hpack::HeaderList& headers,
                               util::BytesView body) {
  if (auto status = CheckPseudoHeaderOrder(headers); !status.ok()) {
    return status.error();
  }
  Response response;
  bool saw_status = false;
  for (const hpack::HeaderField& field : headers) {
    if (field.name == ":status") {
      if (saw_status) return Error(ErrorCode::kProtocol, "duplicate :status");
      saw_status = true;
      try {
        response.status = std::stoi(field.value);
      } catch (...) {
        return Error(ErrorCode::kProtocol, "bad :status value " + field.value);
      }
    } else if (!field.name.empty() && field.name[0] == ':') {
      return Error(ErrorCode::kProtocol, "unknown pseudo-header " + field.name);
    } else {
      response.extra_headers.push_back(field);
    }
  }
  if (!saw_status) return Error(ErrorCode::kProtocol, "response missing :status");
  response.body.assign(body.begin(), body.end());
  response.wire_body_bytes = response.body.size();
  return response;
}

std::string_view ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "";
  }
}

}  // namespace sww::core
