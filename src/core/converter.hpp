// converter.hpp — webpage creation & conversion (§4.2).
//
// "A simple script that goes over a webpage can identify content, call a
// media converter to turn the object into a prompt, and replace the
// existing object with a generated content object."
//
// Two inputs steer what converts:
//   * CMS tags — "a dedicated feature to content management systems ...
//     would tag every content item as generatable or unique.  This one-bit
//     flag will be associated with every linked file."  We read it from a
//     `data-sww` attribute ("generatable" / "unique").
//   * defaults — untagged images convert when invertible; untagged text
//     blocks convert when they are long enough to be worth bulleting.
//
// Image→prompt uses the PromptInverter (the paper's GPT-4V step); text→
// bullets uses the text model's summarizer.  The report carries the before
// /after sizes that §6.2's compression figures are computed from.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "genai/llm.hpp"
#include "genai/prompt_inversion.hpp"
#include "html/dom.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace sww::core {

/// The CMS one-bit tag attribute.
inline constexpr std::string_view kCmsTagAttribute = "data-sww";
inline constexpr std::string_view kCmsTagGeneratable = "generatable";
inline constexpr std::string_view kCmsTagUnique = "unique";

struct ConverterOptions {
  /// Minimum words before an untagged text block is converted to bullets.
  std::size_t min_text_words = 40;
  /// Words the client should regenerate for a converted text block.
  /// 0 = preserve the original block's word count.
  int target_words = 0;
  /// Image prompts aim at the paper's observed 120-262 character range.
  std::size_t max_prompt_keywords = 8;
  /// Convert untagged images (tagged ones always follow their tag).
  bool convert_untagged_images = true;
  /// Convert untagged long text blocks.
  bool convert_untagged_text = true;
};

struct ConversionReport {
  std::size_t images_converted = 0;
  std::size_t images_kept_unique = 0;
  std::size_t text_blocks_converted = 0;
  std::size_t text_blocks_kept = 0;
  std::size_t bytes_before = 0;  ///< page HTML + referenced image payloads
  std::size_t bytes_after = 0;   ///< converted page HTML (prompts inline)
  std::vector<std::string> notes;

  double CompressionRatio() const {
    return bytes_after == 0 ? 0.0
                            : static_cast<double>(bytes_before) / bytes_after;
  }
};

class PageConverter {
 public:
  PageConverter(genai::PromptInverter inverter, genai::TextModel summarizer,
                ConverterOptions options);

  /// Convert a legacy page in place.  `image_payloads` maps an <img> src to
  /// its file bytes (needed both for inversion and for before-size
  /// accounting); images without payloads are kept unique.
  util::Result<ConversionReport> Convert(
      html::Node& document,
      const std::map<std::string, genai::Image>& image_payloads);

 private:
  bool ShouldConvertImage(const html::Node& img) const;
  bool ShouldConvertText(const html::Node& block) const;

  genai::PromptInverter inverter_;
  genai::TextModel summarizer_;
  ConverterOptions options_;
};

}  // namespace sww::core
