// content_store.hpp — the generative server's storage model (§2.1, §2.2).
//
// "the server stores a baseline webpage with prompts that should be used
// to generate content.  Only unique content, such as pictures from the
// specific hike, are stored on the server and all other content is turned
// into prompts."
//
// The store keeps two resource kinds:
//   * pages — baseline HTML containing generated-content divs,
//   * assets — unique files served verbatim (the pictures from the hike).
//
// It also does the storage accounting the paper's compression results rest
// on: for every page it computes the bytes held in prompt form versus the
// bytes a traditional copy of the same content would occupy (images at
// their typical compressed size, text at its expanded size).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "html/generated_content.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace sww::core {

struct Asset {
  util::Bytes bytes;
  std::string content_type;
};

struct PageEntry {
  std::string html;  ///< baseline page with generated-content divs
  /// Extracted at insertion time (shared by serving and accounting).
  std::vector<html::GeneratedContentType> item_types;
  std::vector<json::Value> item_metadata;
};

/// Size a generated item would occupy in traditional (materialized) form:
/// images at the paper's typical compressed size (pixels/8), text at
/// ~5 bytes/word (250 words ≈ 1,250 B, Table 2's text row).
std::size_t TraditionalItemBytes(html::GeneratedContentType type,
                                 const json::Value& metadata);

/// Wire/storage size of the item in prompt form: its compact metadata.
std::size_t PromptItemBytes(const json::Value& metadata);

struct StorageStats {
  std::uint64_t page_count = 0;
  std::uint64_t asset_count = 0;
  std::uint64_t prompt_bytes = 0;        ///< HTML + metadata as stored
  std::uint64_t traditional_bytes = 0;   ///< same pages, materialized
  std::uint64_t unique_asset_bytes = 0;  ///< stored either way

  double CompressionRatio() const {
    return prompt_bytes == 0
               ? 0.0
               : static_cast<double>(traditional_bytes) /
                     static_cast<double>(prompt_bytes);
  }
};

class ContentStore {
 public:
  /// Add a baseline page.  The HTML is parsed; invalid generated-content
  /// divs are an error (the store refuses to serve pages it cannot
  /// account for).
  util::Status AddPage(std::string path, std::string html);

  /// Add a unique asset served verbatim.
  void AddAsset(std::string path, util::Bytes bytes, std::string content_type);

  const PageEntry* FindPage(std::string_view path) const;
  const Asset* FindAsset(std::string_view path) const;
  std::vector<std::string> PagePaths() const;

  /// Aggregate accounting over everything stored.
  StorageStats Stats() const;

 private:
  std::map<std::string, PageEntry, std::less<>> pages_;
  std::map<std::string, Asset, std::less<>> assets_;
};

}  // namespace sww::core
