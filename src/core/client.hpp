// client.hpp — the generative client (§5.2).
//
// "the generative client begins by establishing a connection to the
// server, followed by exchanging settings, advertising its generation
// ability and logging the server's ability.  After this, the client can
// send a webpage request.  As the client receives the HTML file, it parses
// it and generates content.  Once parsing and generation are complete, the
// site is rendered."
//
// The prototype's three entities map to: the html:: parser, the
// core::PageRenderer (standing in for the PyQt GUI), and the http2::
// connection.  The client is transport-agnostic: callers provide a pump
// function that moves bytes between the connection and whatever carries
// them (in-memory pair, loopback TCP, or a direct link to a server object).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/http_semantics.hpp"
#include "core/media_generator.hpp"
#include "core/prompt_cache.hpp"
#include "http2/connection.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace sww::core {

/// The outcome of fetching and materializing one page.
struct PageFetch {
  Response response;          ///< the page response itself
  bool from_cache = false;    ///< served from the local prompt cache
  /// §7 model negotiation: the page demanded a stronger model than this
  /// client has, so it was re-requested in materialized form.
  bool model_fallback = false;
  std::string mode;           ///< "generative" / "traditional" / "" (no header)
  std::string final_html;     ///< DOM after client-side generation
  /// All produced/downloaded files: generated images (PPM) and fetched
  /// unique assets, keyed by path.
  std::map<std::string, util::Bytes> files;
  /// Per-item generation details (prompts, sizes, simulated costs).
  std::vector<GeneratedMedia> media;

  std::uint64_t page_bytes = 0;       ///< HTML bytes received
  std::uint64_t asset_bytes = 0;      ///< asset bytes received
  std::size_t generated_items = 0;
  double generation_seconds = 0.0;    ///< simulated device-seconds (sum)
  double generation_energy_wh = 0.0;
  /// Modeled elapsed generation time with the configured parallelism: the
  /// makespan of the batch schedule over the generator's device lanes.
  /// Equals generation_seconds when generation is serial.
  double generation_wall_seconds = 0.0;

  /// §2.2 upscale-assist mode: images restored to authored size locally.
  std::size_t upscaled_items = 0;
  double upscale_seconds = 0.0;
  double upscale_energy_wh = 0.0;

  /// §7 trust: semantic-digest verification outcomes for items whose
  /// metadata carried a digest.
  std::size_t verified_items = 0;
  std::size_t failed_verification_items = 0;

  std::uint64_t TotalWireBytes() const { return page_bytes + asset_bytes; }
};

class GenerativeClient {
 public:
  struct Options {
    /// Ability advertised in SETTINGS_GEN_ABILITY (paper's prototype: 1).
    std::uint32_t advertised_ability = http2::kGenAbilityFull;
    /// Generate on the laptop profile (end-user device) by default.
    bool laptop = true;
    MediaGenerator::Options generator;
    /// Fetch unique assets referenced by <img src="/..."> links.
    bool fetch_assets = true;
    /// Cache generative-mode page bodies locally: a revisit regenerates
    /// everything on-device without touching the network.
    bool enable_prompt_cache = false;
    std::size_t prompt_cache_bytes = 512 * 1024;
    /// Advertise "accept-encoding: swz"; responses arrive content-coded
    /// and are decoded transparently (page_bytes reports wire bytes).
    bool accept_compression = false;
    /// Flight-recorder wire tap installed on the connection at creation
    /// (so the SETTINGS handshake is captured).  Not owned; must outlive
    /// the client.  nullptr disables frame recording.
    obs::ConnectionTap* wire_tap = nullptr;
  };

  /// Moves bytes between this connection and the peer once; returns an
  /// error only on transport/protocol failure.
  using PumpFn = std::function<util::Status()>;

  static util::Result<std::unique_ptr<GenerativeClient>> Create(Options options);

  http2::Connection& connection() { return *connection_; }
  void StartHandshake() { connection_->StartHandshake(); }

  /// True once the peer's SETTINGS arrived and both sides advertise full
  /// generation ability.
  bool NegotiatedGenerative() const { return connection_->generative_mode(); }

  /// Plain GET: request, pump to completion, parse the response.
  util::Result<Response> FetchRaw(const std::string& path, const PumpFn& pump);
  util::Result<Response> FetchRaw(const std::string& path, const PumpFn& pump,
                                  const hpack::HeaderList& extra_headers);

  /// Full SWW flow: GET the page, parse, generate content on-device (or
  /// fetch server-materialized assets in traditional mode), return the
  /// final page.
  util::Result<PageFetch> FetchPage(const std::string& path, const PumpFn& pump);

  const MediaGenerator& generator() const { return *generator_; }
  const PromptCache& prompt_cache() const { return prompt_cache_; }
  PromptCache& prompt_cache() { return prompt_cache_; }

 private:
  explicit GenerativeClient(Options options, MediaGenerator generator);

  util::Status PumpUntilComplete(std::uint32_t stream_id, const PumpFn& pump);
  /// FetchPage body; FetchPage itself wraps this to emit exactly one
  /// wide-event journal record and one fetch.latency observation per
  /// completed fetch, success or failure.
  util::Result<PageFetch> FetchPageInner(const std::string& path,
                                         const PumpFn& pump,
                                         obs::ScopedSpan& span);
  void DrainEvents();
  /// Parse the page body in `fetch`, run generation/asset-fetch/upscale,
  /// and fill in the final DOM and statistics.
  util::Status MaterializePage(PageFetch& fetch, const PumpFn& pump);
  /// §7 model negotiation: does the page demand more fidelity than the
  /// loaded pipeline provides?
  bool RequiresStrongerModel(const std::string& body) const;

  Options options_;
  std::unique_ptr<MediaGenerator> generator_;
  std::unique_ptr<http2::Connection> connection_;
  std::set<std::uint32_t> completed_streams_;
  PromptCache prompt_cache_{512 * 1024};

  // Process-wide client.* mirrors in obs::Registry.
  struct Instruments {
    obs::Counter* pages_fetched;
    obs::Counter* pages_from_cache;
    obs::Counter* model_fallbacks;
    obs::Counter* negotiations;
    obs::Counter* items_generated;
    obs::Histogram* page_bytes;
    obs::Histogram* asset_bytes;
    /// End-to-end FetchPage latency on the tracer clock (modeled
    /// seconds).  The SLO engine's stock fetch-latency objective and the
    /// /metrics exemplars both hang off this series.
    obs::Histogram* fetch_latency;
  };
  Instruments instruments_;
};

}  // namespace sww::core
