#include "core/client.hpp"

#include "compress/swz.hpp"
#include "genai/upscaler.hpp"
#include "html/generated_content.hpp"
#include "html/parser.hpp"
#include "obs/journal.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace sww::core {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

Result<std::unique_ptr<GenerativeClient>> GenerativeClient::Create(
    Options options) {
  const energy::DeviceProfile& device =
      options.laptop ? energy::Laptop() : energy::Workstation();
  auto generator = MediaGenerator::Create(device, options.generator);
  if (!generator) return generator.error();
  return std::unique_ptr<GenerativeClient>(
      new GenerativeClient(std::move(options), std::move(generator).value()));
}

GenerativeClient::GenerativeClient(Options options, MediaGenerator generator)
    : options_(std::move(options)),
      generator_(std::make_unique<MediaGenerator>(std::move(generator))),
      prompt_cache_(options_.prompt_cache_bytes) {
  http2::Connection::Options conn_options;
  conn_options.local_settings.set_gen_ability(options_.advertised_ability);
  conn_options.local_settings.set_enable_push(false);
  conn_options.local_settings.set_initial_window_size(1 << 20);
  connection_ = std::make_unique<http2::Connection>(
      http2::Connection::Role::kClient, conn_options);
  connection_->SetWireTap(options_.wire_tap);
  obs::Registry& registry = obs::Registry::Default();
  instruments_.pages_fetched = &registry.GetCounter("client.pages_fetched");
  instruments_.pages_from_cache =
      &registry.GetCounter("client.pages_from_cache");
  instruments_.model_fallbacks = &registry.GetCounter("client.model_fallbacks");
  instruments_.negotiations = &registry.GetCounter("client.negotiations");
  instruments_.items_generated = &registry.GetCounter("client.items_generated");
  instruments_.page_bytes = &registry.GetHistogram("client.page_bytes");
  instruments_.asset_bytes = &registry.GetHistogram("client.asset_bytes");
  instruments_.fetch_latency = &registry.GetHistogram("fetch.latency");
}

void GenerativeClient::DrainEvents() {
  for (const http2::Connection::Event& event : connection_->TakeEvents()) {
    using Type = http2::Connection::Event::Type;
    switch (event.type) {
      case Type::kMessageComplete:
        completed_streams_.insert(event.stream_id);
        break;
      case Type::kRemoteSettingsReceived:
        // §5.2: the client logs the server's advertised ability.
        instruments_.negotiations->Add();
        util::LogInfo("sww.client",
                      "server gen ability: " +
                          http2::GenAbilityToString(
                              connection_->remote_settings().gen_ability()));
        break;
      case Type::kStreamReset:
        completed_streams_.insert(event.stream_id);  // surfaces as missing data
        break;
      default:
        break;
    }
  }
}

Status GenerativeClient::PumpUntilComplete(std::uint32_t stream_id,
                                           const PumpFn& pump) {
  constexpr int kMaxRounds = 1024;
  for (int round = 0; round < kMaxRounds; ++round) {
    DrainEvents();
    if (completed_streams_.count(stream_id) != 0) return Status::Ok();
    if (Status status = pump(); !status.ok()) return status;
  }
  return Error(ErrorCode::kIo, "pump did not complete stream " +
                                   std::to_string(stream_id));
}

Result<Response> GenerativeClient::FetchRaw(const std::string& path,
                                            const PumpFn& pump) {
  return FetchRaw(path, pump, {});
}

Result<Response> GenerativeClient::FetchRaw(
    const std::string& path, const PumpFn& pump,
    const hpack::HeaderList& extra_headers) {
  obs::ScopedSpan span("client.fetch", "core");
  span.SetProcess("client");
  span.AddAttribute("path", path);
  if (!connection_->handshake_started()) {
    connection_->StartHandshake();
  }
  Request request;
  request.path = path;
  request.authority = "sww.local";
  request.extra_headers = extra_headers;
  // Cross-process trace propagation: the server parents its
  // server.request span under this fetch via the sww-trace header, so the
  // whole exchange exports as one distributed trace.
  if (const obs::SpanContext context = span.context(); context.valid()) {
    request.extra_headers.push_back(
        {std::string(obs::kTraceHeaderName), obs::FormatTraceHeader(context),
         false});
  }
  if (options_.accept_compression) {
    request.extra_headers.push_back(
        {"accept-encoding", std::string(compress::kContentCoding), false});
  }
  auto stream_id = connection_->SubmitRequest(request.ToHeaders(), {});
  if (!stream_id) return stream_id.error();
  if (Status status = PumpUntilComplete(stream_id.value(), pump); !status.ok()) {
    return status.error();
  }
  const http2::Stream* stream = connection_->FindStream(stream_id.value());
  if (stream == nullptr) {
    return Error(ErrorCode::kInternal, "completed stream vanished");
  }
  auto response = ParseResponse(stream->headers, stream->body);
  completed_streams_.erase(stream_id.value());
  connection_->ReleaseStream(stream_id.value());
  if (!response) return response;
  span.AddAttribute("status", std::to_string(response.value().status));
  span.AddAttribute("wire_bytes",
                    std::to_string(response.value().wire_body_bytes));
  // Transparent content decoding: body becomes the decoded entity while
  // wire_body_bytes keeps what actually crossed the network.
  if (response.value().Header("content-encoding").value_or("") ==
      compress::kContentCoding) {
    auto decoded = compress::SwzDecompress(response.value().body);
    if (!decoded) return decoded.error();
    response.value().body = std::move(decoded).value();
  }
  return response;
}

Status GenerativeClient::MaterializePage(PageFetch& fetch, const PumpFn& pump) {
  obs::ScopedSpan span("client.materialize", "core");
  span.SetProcess("client");
  auto document = html::ParseDocument(util::ToString(fetch.response.body));
  if (!document) return document.error();

  // Client-side generation: materialize every generated-content div as
  // one batch — independent specs fan out across the generator's pool,
  // and results merge back here in document order (DOM splices, files,
  // stats, and warnings are deterministic for any thread count).
  html::ExtractionResult extraction =
      html::ExtractGeneratedContent(*document.value());
  auto batch = generator_->GenerateBatch(extraction.specs);
  if (!batch) return batch.error();
  fetch.generation_seconds += batch.value().device_seconds;
  fetch.generation_wall_seconds += batch.value().wall_seconds;
  for (std::size_t i = 0; i < batch.value().items.size(); ++i) {
    GeneratedMedia& media = batch.value().items[i];
    MediaGenerator::Splice(extraction.specs[i], media);
    fetch.generation_energy_wh += media.energy_wh;
    if (media.type == html::GeneratedContentType::kImage) {
      fetch.files[media.file_path] = media.file_bytes;
    }
    if (media.has_verification) {
      if (media.verification.verified()) {
        ++fetch.verified_items;
      } else {
        ++fetch.failed_verification_items;
        // One warn per failed item can storm on a corrupted page; the
        // per-site bucket keeps the tail while reporting the drop count.
        SWW_LOG_RATELIMITED(
            util::LogLevel::kWarn, "sww.client",
            "semantic digest mismatch for generated item '" + media.name +
                "' (distance " +
                std::to_string(media.verification.distance) + ")");
      }
    }
    fetch.media.push_back(std::move(media));
    ++fetch.generated_items;
    instruments_.items_generated->Add();
  }

  // Unique content files "are fetched, same as today" — follow root-
  // relative <img> links that generation did not satisfy locally.
  if (options_.fetch_assets) {
    for (html::Node* img : document.value()->FindByTag("img")) {
      const std::string src = img->GetAttribute("src").value_or("");
      if (src.empty() || src[0] != '/') continue;  // local generated file
      if (fetch.files.count(src) != 0) continue;
      auto asset = FetchRaw(src, pump);
      if (!asset) return asset.error();
      if (asset.value().status == 200) {
        fetch.asset_bytes += asset.value().wire_body_bytes;
        instruments_.asset_bytes->Observe(
            static_cast<double>(asset.value().wire_body_bytes),
            span.context().trace_id,
            obs::Tracer::Default().clock().NowNanos());
        fetch.files[src] = asset.value().body;
      }
    }
  }

  // §2.2 upscale-assist: restore half-resolution assets to authored size.
  for (html::Node* img : document.value()->FindByTag("img")) {
    const std::string factor_attr =
        img->GetAttribute("data-sww-upscale").value_or("");
    if (factor_attr.empty()) continue;
    const std::string src = img->GetAttribute("src").value_or("");
    auto file = fetch.files.find(src);
    if (file == fetch.files.end()) continue;
    auto small = genai::Image::FromPpm(util::ToString(file->second));
    if (!small) continue;  // non-PPM unique asset; leave as-is
    int width = 0, height = 0;
    try {
      width = std::stoi(img->GetAttribute("width").value_or("0"));
      height = std::stoi(img->GetAttribute("height").value_or("0"));
    } catch (...) {
      continue;
    }
    if (width <= small.value().width() || height <= small.value().height()) {
      continue;
    }
    auto upscaled = genai::Upscale(small.value(), width, height);
    if (!upscaled) continue;
    const std::string ppm = upscaled.value().image.ToPpm();
    file->second.assign(ppm.begin(), ppm.end());
    img->RemoveAttribute("data-sww-upscale");
    ++fetch.upscaled_items;
    fetch.upscale_seconds +=
        energy::UpscaleSeconds(generator_->device(), width, height);
    fetch.upscale_energy_wh +=
        energy::UpscaleEnergyWh(generator_->device(), width, height);
  }

  fetch.final_html = document.value()->Serialize();
  span.AddAttribute("generated_items", std::to_string(fetch.generated_items));
  span.AddAttribute("upscaled_items", std::to_string(fetch.upscaled_items));
  return Status::Ok();
}

Result<PageFetch> GenerativeClient::FetchPage(const std::string& path,
                                              const PumpFn& pump) {
  obs::Tracer& tracer = obs::Tracer::Default();
  const std::uint64_t start_nanos = tracer.clock().NowNanos();
  const http2::Connection::WireStats before = connection_->wire_stats();
  obs::ScopedSpan span("client.fetch_page", "core");
  span.SetProcess("client");
  span.AddAttribute("path", path);

  Result<PageFetch> fetch = FetchPageInner(path, pump, span);

  // The tail-attribution contract: exactly one wide event and one
  // fetch.latency observation per completed fetch — success or failure —
  // all keyed by the trace id the wire already carried.
  const std::uint64_t end_nanos = tracer.clock().NowNanos();
  const double total_seconds =
      static_cast<double>(end_nanos - start_nanos) * 1e-9;
  const obs::SpanContext context = span.context();
  instruments_.fetch_latency->Observe(total_seconds, context.trace_id,
                                      end_nanos);

  obs::JournalRecord record;
  record.kind = "page_fetch";
  record.trace_id = context.trace_id;
  record.path = path;
  record.timestamp_nanos = end_nanos;
  record.device = generator_->device().name;
  record.total_seconds = total_seconds;
  const http2::Connection::WireStats& after = connection_->wire_stats();
  record.wire_bytes_sent = after.bytes_sent - before.bytes_sent;
  record.wire_bytes_received = after.bytes_received - before.bytes_received;
  auto frame_total = [](const std::map<http2::FrameType, std::uint64_t>& mix) {
    std::uint64_t total = 0;
    for (const auto& [type, n] : mix) {
      (void)type;
      total += n;
    }
    return total;
  };
  record.frames_sent =
      frame_total(after.frames_sent) - frame_total(before.frames_sent);
  record.frames_received =
      frame_total(after.frames_received) - frame_total(before.frames_received);
  if (fetch.ok()) {
    const PageFetch& result = fetch.value();
    record.outcome = "ok";
    record.mode = result.mode;
    record.cache = options_.enable_prompt_cache
                       ? (result.from_cache ? "hit" : "miss")
                       : "none";
    record.generation_seconds = result.generation_wall_seconds;
    record.upscale_seconds = result.upscale_seconds;
    const double local_seconds =
        result.generation_wall_seconds + result.upscale_seconds;
    record.wire_seconds =
        total_seconds > local_seconds ? total_seconds - local_seconds : 0.0;
    record.page_bytes = result.page_bytes;
    record.asset_bytes = result.asset_bytes;
    record.energy_joules =
        (result.generation_energy_wh + result.upscale_energy_wh) * 3600.0;
  } else {
    record.outcome = util::ErrorCodeName(fetch.error().code);
    record.cache = options_.enable_prompt_cache ? "miss" : "none";
    record.wire_seconds = total_seconds;
  }
  obs::Journal::Default().Record(std::move(record));
  return fetch;
}

Result<PageFetch> GenerativeClient::FetchPageInner(const std::string& path,
                                                   const PumpFn& pump,
                                                   obs::ScopedSpan& span) {
  instruments_.pages_fetched->Add();
  // Prompt-cache fast path: a cached generative page regenerates entirely
  // on-device; the network is not touched for the page body.
  if (options_.enable_prompt_cache) {
    if (std::optional<std::string> cached = prompt_cache_.Get(path)) {
      PageFetch fetch;
      fetch.from_cache = true;
      fetch.mode = "generative";
      fetch.response.status = 200;
      fetch.response.SetHeader(std::string(kSwwModeHeader), "generative");
      fetch.response.body = util::ToBytes(*cached);
      instruments_.pages_from_cache->Add();
      span.AddAttribute("from_cache", "true");
      if (Status status = MaterializePage(fetch, pump); !status.ok()) {
        return status.error();
      }
      return fetch;
    }
  }

  auto response = FetchRaw(path, pump);
  if (!response) return response.error();

  PageFetch fetch;
  fetch.response = std::move(response).value();
  fetch.page_bytes = fetch.response.wire_body_bytes;
  instruments_.page_bytes->Observe(
      static_cast<double>(fetch.response.wire_body_bytes),
      span.context().trace_id, obs::Tracer::Default().clock().NowNanos());
  fetch.mode = fetch.response.Header(kSwwModeHeader).value_or("");
  span.AddAttribute("mode", fetch.mode.empty() ? "-" : fetch.mode);
  if (fetch.response.status != 200) {
    fetch.final_html = util::ToString(fetch.response.body);
    return fetch;
  }

  // §7 model negotiation: if the page demands more model than this client
  // carries, re-request it materialized rather than render it badly.
  if (fetch.mode == "generative" &&
      RequiresStrongerModel(util::ToString(fetch.response.body))) {
    util::LogInfo("sww.client",
                  "page requires a stronger model; falling back to "
                  "materialized delivery");
    hpack::HeaderList force = {
        {std::string(kSwwForceHeader), "traditional", false}};
    auto forced = FetchRaw(path, pump, force);
    if (!forced) return forced.error();
    fetch.response = std::move(forced).value();
    fetch.page_bytes += fetch.response.wire_body_bytes;
    instruments_.page_bytes->Observe(
        static_cast<double>(fetch.response.wire_body_bytes),
        span.context().trace_id, obs::Tracer::Default().clock().NowNanos());
    fetch.mode = fetch.response.Header(kSwwModeHeader).value_or("");
    fetch.model_fallback = true;
    instruments_.model_fallbacks->Add();
    span.AddAttribute("model_fallback", "true");
    if (Status status = MaterializePage(fetch, pump); !status.ok()) {
      return status.error();
    }
    return fetch;
  }

  // Only the generative (prompt) form is cacheable: traditional and
  // upscale-assist bodies reference ephemeral server-side assets.
  if (options_.enable_prompt_cache && fetch.mode == "generative") {
    prompt_cache_.Put(path, util::ToString(fetch.response.body));
  }

  if (Status status = MaterializePage(fetch, pump); !status.ok()) {
    return status.error();
  }
  return fetch;
}

bool GenerativeClient::RequiresStrongerModel(const std::string& body) const {
  auto document = html::ParseDocument(body);
  if (!document.ok()) return false;
  html::ExtractionResult extraction =
      html::ExtractGeneratedContent(*document.value());
  for (const html::GeneratedContentSpec& spec : extraction.specs) {
    const double required = spec.metadata.GetNumber("min_fidelity", 0.0);
    const double available =
        spec.type == html::GeneratedContentType::kImage
            ? generator_->pipeline().diffusion().spec().fidelity
            : generator_->pipeline().text().spec().fidelity;
    if (required > available) return true;
  }
  return false;
}

}  // namespace sww::core
