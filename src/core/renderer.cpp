#include "core/renderer.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <cstdio>

#include "util/strings.hpp"

namespace sww::core {

using util::Error;
using util::ErrorCode;
using util::Status;

namespace {

bool IsBlockTag(const std::string& tag) {
  return tag == "p" || tag == "div" || tag == "section" || tag == "article" ||
         tag == "ul" || tag == "ol" || tag == "li" || tag == "body" ||
         tag == "header" || tag == "footer" || tag == "main";
}

bool IsHeadingTag(const std::string& tag) {
  return tag.size() == 2 && tag[0] == 'h' && tag[1] >= '1' && tag[1] <= '6';
}

}  // namespace

void PageRenderer::AppendWrapped(std::string_view text, std::string& out) const {
  int column = 0;
  for (const std::string& word : util::SplitWhitespace(text)) {
    if (column != 0 && column + 1 + static_cast<int>(word.size()) >
                           options_.line_width) {
      out += "\n";
      column = 0;
    }
    if (column != 0) {
      out += " ";
      ++column;
    }
    out += word;
    column += static_cast<int>(word.size());
  }
  if (column != 0) out += "\n";
}

void PageRenderer::RenderNode(const html::Node& node, std::string& out,
                              int depth) const {
  switch (node.type()) {
    case html::NodeType::kDocument:
      for (const auto& child : node.children()) RenderNode(*child, out, depth);
      return;
    case html::NodeType::kDoctype:
    case html::NodeType::kComment:
      return;
    case html::NodeType::kText: {
      // Inline text is gathered by the enclosing block; standalone
      // top-level text renders directly.
      AppendWrapped(node.text(), out);
      return;
    }
    case html::NodeType::kElement:
      break;
  }

  const std::string& tag = node.tag();
  if (tag == "head" || tag == "script" || tag == "style") return;

  if (tag == "title") {
    const std::string title = node.InnerText();
    out += "=== " + title + " ===\n\n";
    return;
  }
  if (IsHeadingTag(tag)) {
    const std::string text = node.InnerText();
    out += "\n" + text + "\n";
    out += std::string(text.size(), tag[1] == '1' ? '=' : '-') + "\n";
    return;
  }
  if (tag == "img") {
    if (options_.show_image_boxes) {
      out += util::Format("[image %sx%s: %s <%s>]\n",
                          node.GetAttribute("width").value_or("?").c_str(),
                          node.GetAttribute("height").value_or("?").c_str(),
                          node.GetAttribute("alt").value_or("").c_str(),
                          node.GetAttribute("src").value_or("").c_str());
    }
    return;
  }
  if (tag == "p") {
    AppendWrapped(node.InnerText(), out);
    out += "\n";
    return;
  }
  if (tag == "li") {
    out += "  * ";
    AppendWrapped(node.InnerText(), out);
    return;
  }
  if (tag == "br") {
    out += "\n";
    return;
  }

  for (const auto& child : node.children()) {
    RenderNode(*child, out, depth + (IsBlockTag(tag) ? 1 : 0));
  }
  if (IsBlockTag(tag) && !out.empty() && out.back() != '\n') out += "\n";
}

std::string PageRenderer::RenderToText(const html::Node& document) const {
  std::string out;
  RenderNode(document, out, 0);
  return out;
}

std::string PageRenderer::RenderWithDisclosure(
    const html::Node& document, const PersonalizationAudit& audit) const {
  std::string out = RenderToText(document);
  const std::string disclosure = audit.Disclosure();
  if (!disclosure.empty()) {
    out += "\n" + std::string(options_.line_width, '-') + "\n" + disclosure;
  }
  return out;
}

Status PageRenderer::WriteFiles(const std::map<std::string, util::Bytes>& files,
                                const std::string& directory) const {
  ::mkdir(directory.c_str(), 0755);
  for (const auto& [path, bytes] : files) {
    // Flatten the path: "generated/goldfish.ppm" → "generated_goldfish.ppm".
    std::string flat = path;
    for (char& c : flat) {
      if (c == '/') c = '_';
    }
    while (!flat.empty() && flat.front() == '_') flat.erase(flat.begin());
    const std::string full = directory + "/" + flat;
    std::FILE* file = std::fopen(full.c_str(), "wb");
    if (file == nullptr) {
      return Error(ErrorCode::kIo, "cannot open " + full);
    }
    const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
    std::fclose(file);
    if (written != bytes.size()) {
      return Error(ErrorCode::kIo, "short write to " + full);
    }
  }
  return Status::Ok();
}

}  // namespace sww::core
