#include "core/session.hpp"

#include <chrono>
#include <thread>

#include "net/pump.hpp"
#include "net/tcp.hpp"

namespace sww::core {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

Result<std::unique_ptr<LocalSession>> LocalSession::Start(
    const ContentStore* store, Options options) {
  auto client = GenerativeClient::Create(options.client);
  if (!client) return client.error();
  auto server = GenerativeServer::Create(store, options.server);
  if (!server) return server.error();
  auto session = std::unique_ptr<LocalSession>(new LocalSession(
      std::move(client).value(), std::move(server).value()));
  session->client_->StartHandshake();
  session->server_->StartHandshake();
  // Drive the preface/SETTINGS exchange until both sides are settled.
  for (int round = 0; round < 8; ++round) {
    if (Status status = session->PumpOnce(); !status.ok()) return status.error();
    if (session->client_->connection().remote_settings_received() &&
        session->server_->connection().remote_settings_received() &&
        session->client_->connection().local_settings_acked() &&
        session->server_->connection().local_settings_acked()) {
      break;
    }
  }
  return session;
}

Status LocalSession::PumpOnce() {
  bool progress = true;
  int rounds = 0;
  while (progress && rounds++ < 64) {
    progress = false;
    // Zero-copy handoff: Receive() only appends to the receiving side's
    // output arena, so a borrowed view of the sender's arena stays valid.
    if (client_->connection().HasOutput()) {
      if (Status status = server_->connection().Receive(
              client_->connection().OutputView());
          !status.ok()) {
        return status;
      }
      client_->connection().ClearOutput();
      progress = true;
    }
    if (Status status = server_->ProcessEvents(); !status.ok()) return status;
    if (server_->connection().HasOutput()) {
      if (Status status = client_->connection().Receive(
              server_->connection().OutputView());
          !status.ok()) {
        return status;
      }
      server_->connection().ClearOutput();
      progress = true;
    }
  }
  return Status::Ok();
}

GenerativeClient::PumpFn LocalSession::Pump() {
  return [this]() { return PumpOnce(); };
}

Result<PageFetch> LocalSession::FetchPage(const std::string& path) {
  return client_->FetchPage(path, Pump());
}

Result<std::unique_ptr<LoopbackSession>> LoopbackSession::Connect(
    std::uint16_t port) {
  return Connect(port, Options{});
}

Result<std::unique_ptr<LoopbackSession>> LoopbackSession::Connect(
    std::uint16_t port, Options options) {
  auto transport = net::TcpConnect(port, options.connect_timeout_ms);
  if (!transport.ok()) return transport.error();
  auto client = GenerativeClient::Create(options.client);
  if (!client.ok()) return client.error();
  auto session = std::unique_ptr<LoopbackSession>(
      new LoopbackSession(std::move(client).value(),
                          std::move(transport).value(), std::move(options)));
  session->client_->StartHandshake();
  // Drive the handshake against the live server under the pump deadline.
  const auto pump = session->Pump();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(session->options_.pump_timeout_ms);
  while (!(session->client_->connection().remote_settings_received() &&
           session->client_->connection().local_settings_acked())) {
    if (Status status = pump(); !status.ok()) return status.error();
    if (std::chrono::steady_clock::now() > deadline) {
      return Error(ErrorCode::kIo, "SETTINGS handshake timed out");
    }
  }
  return session;
}

GenerativeClient::PumpFn LoopbackSession::Pump() {
  // Shared progress deadline across calls: FetchPage's pump loop calls
  // this many times, and each no-progress round sleeps briefly instead
  // of spinning the wire.
  auto last_progress = std::make_shared<std::chrono::steady_clock::time_point>(
      std::chrono::steady_clock::now());
  return [this, last_progress]() -> Status {
    auto result = net::PumpOnce(client_->connection(), *transport_);
    if (!result.ok()) return result.error();
    const auto now = std::chrono::steady_clock::now();
    if (result.value().made_progress) {
      *last_progress = now;
      return Status::Ok();
    }
    if (result.value().peer_closed) {
      return Error(ErrorCode::kClosed, "server closed the connection");
    }
    if (now - *last_progress >
        std::chrono::milliseconds(options_.pump_timeout_ms)) {
      return Error(ErrorCode::kIo, "pump made no progress before deadline");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    return Status::Ok();
  };
}

Result<PageFetch> LoopbackSession::FetchPage(const std::string& path) {
  return client_->FetchPage(path, Pump());
}

Result<Response> LoopbackSession::FetchRaw(const std::string& path) {
  return client_->FetchRaw(path, Pump());
}

void LoopbackSession::Close() {
  if (transport_) transport_->Close();
}

}  // namespace sww::core
