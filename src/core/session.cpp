#include "core/session.hpp"

namespace sww::core {

using util::Result;
using util::Status;

Result<std::unique_ptr<LocalSession>> LocalSession::Start(
    const ContentStore* store, Options options) {
  auto client = GenerativeClient::Create(options.client);
  if (!client) return client.error();
  auto server = GenerativeServer::Create(store, options.server);
  if (!server) return server.error();
  auto session = std::unique_ptr<LocalSession>(new LocalSession(
      std::move(client).value(), std::move(server).value()));
  session->client_->StartHandshake();
  session->server_->StartHandshake();
  // Drive the preface/SETTINGS exchange until both sides are settled.
  for (int round = 0; round < 8; ++round) {
    if (Status status = session->PumpOnce(); !status.ok()) return status.error();
    if (session->client_->connection().remote_settings_received() &&
        session->server_->connection().remote_settings_received() &&
        session->client_->connection().local_settings_acked() &&
        session->server_->connection().local_settings_acked()) {
      break;
    }
  }
  return session;
}

Status LocalSession::PumpOnce() {
  bool progress = true;
  int rounds = 0;
  while (progress && rounds++ < 64) {
    progress = false;
    // Zero-copy handoff: Receive() only appends to the receiving side's
    // output arena, so a borrowed view of the sender's arena stays valid.
    if (client_->connection().HasOutput()) {
      if (Status status = server_->connection().Receive(
              client_->connection().OutputView());
          !status.ok()) {
        return status;
      }
      client_->connection().ClearOutput();
      progress = true;
    }
    if (Status status = server_->ProcessEvents(); !status.ok()) return status;
    if (server_->connection().HasOutput()) {
      if (Status status = client_->connection().Receive(
              server_->connection().OutputView());
          !status.ok()) {
        return status;
      }
      server_->connection().ClearOutput();
      progress = true;
    }
  }
  return Status::Ok();
}

GenerativeClient::PumpFn LocalSession::Pump() {
  return [this]() { return PumpOnce(); };
}

Result<PageFetch> LocalSession::FetchPage(const std::string& path) {
  return client_->FetchPage(path, Pump());
}

}  // namespace sww::core
