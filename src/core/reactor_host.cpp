#include "core/reactor_host.hpp"

#include <utility>

namespace sww::core {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

/// One accepted connection: a GenerativeServer behind the ReactorApp
/// seam.  Lives and dies on its shard thread.
class GenerativeServerApp final : public net::ReactorApp {
 public:
  explicit GenerativeServerApp(std::unique_ptr<GenerativeServer> server)
      : server_(std::move(server)) {}

  http2::Connection& connection() override { return server_->connection(); }
  void OnConnected() override { server_->StartHandshake(); }
  util::Status OnEvents() override { return server_->ProcessEvents(); }

  const GenerativeServer& server() const { return *server_; }

 private:
  std::unique_ptr<GenerativeServer> server_;
};

}  // namespace

Result<std::unique_ptr<ReactorHost>> ReactorHost::Start(
    const ContentStore* store, Options options) {
  if (store == nullptr) {
    return Error(ErrorCode::kInvalidArgument, "reactor host needs a store");
  }
  // Fail fast on bad per-connection options (model files, policy) instead
  // of rejecting every connection at accept time.
  if (auto probe = GenerativeServer::Create(store, options.per_connection);
      !probe.ok()) {
    return probe.error();
  }
  auto host = std::unique_ptr<ReactorHost>(new ReactorHost());
  net::ReactorServer::Options server_options = options.server;
  const GenerativeServer::Options per_connection = options.per_connection;
  server_options.on_close = nullptr;
  if (options.on_connection_close) {
    auto user_close = options.on_connection_close;
    server_options.on_close = [user_close](net::ReactorApp& app) {
      user_close(static_cast<GenerativeServerApp&>(app).server());
    };
  }
  auto factory = [store, per_connection]() -> std::unique_ptr<net::ReactorApp> {
    auto server = GenerativeServer::Create(store, per_connection);
    if (!server.ok()) return nullptr;  // ReactorServer drops the socket
    return std::make_unique<GenerativeServerApp>(std::move(server).value());
  };
  auto server = net::ReactorServer::Start(std::move(factory),
                                          std::move(server_options));
  if (!server.ok()) return server.error();
  host->server_ = std::move(server).value();
  return host;
}

}  // namespace sww::core
