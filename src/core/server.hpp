// server.hpp — the generative server (§5.1).
//
// "When clients connect, the server negotiates the generative ability
// using the modified HTTP/2 ... If the client's generative ability is
// confirmed, the server can serve the content in its generative form as
// indicated by the client.  If the ability is not confirmed it will serve
// traditional content with no client-side generation expected.  A server
// can choose to serve traditional content even if the client supports
// generative ability, for example to provide higher performance or based
// on the availability of renewable energy."
//
// One GenerativeServer instance handles one HTTP/2 connection (the session
// harness and the TCP examples instantiate one per accepted connection,
// sharing the ContentStore).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/content_store.hpp"
#include "core/http_semantics.hpp"
#include "core/media_generator.hpp"
#include "http2/connection.hpp"
#include "obs/registry.hpp"
#include "util/error.hpp"

namespace sww::core {

/// Serving policy — the server-side override knob from §5.1.
enum class ServePolicy {
  kAuto,               ///< generative iff the client negotiated the ability
  kAlwaysTraditional,  ///< e.g. renewable energy unavailable at the edge
  kAlwaysGenerative,   ///< testing: fail requests from naïve clients
};

/// How a page is delivered on this connection, after negotiation+policy.
enum class ServeMode {
  kGenerative,   ///< prompts over the wire; client generates (ability: full)
  kUpscaleAssist,///< half-resolution assets; client upscales (§2.2)
  kTraditional,  ///< fully materialized on the server
};

const char* ServeModeName(ServeMode mode);

class GenerativeServer {
 public:
  struct Options {
    ServePolicy policy = ServePolicy::kAuto;
    /// Ability advertised in SETTINGS_GEN_ABILITY (paper default: 1).
    std::uint32_t advertised_ability = http2::kGenAbilityFull;
    /// Models used for *server-side* generation (traditional fallback).
    MediaGenerator::Options generator;
    /// Device the server generates on (the paper's edge/workstation).
    bool workstation = true;
    /// Flight-recorder wire tap installed on the connection at creation
    /// (so the SETTINGS handshake is captured).  Not owned; must outlive
    /// the server.  nullptr disables frame recording.
    obs::ConnectionTap* wire_tap = nullptr;
  };

  /// Per-connection view; every event is mirrored into the process-wide
  /// obs::Registry under server.* so one Snapshot() aggregates all
  /// connections.  Byte totals are what actually went out on each stream
  /// (post content-coding), accounted in exactly one place.
  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t pages_served_generative = 0;
    std::uint64_t pages_served_upscale = 0;
    std::uint64_t pages_served_traditional = 0;
    std::uint64_t assets_served = 0;
    std::uint64_t telemetry_requests = 0;
    std::uint64_t not_found = 0;
    std::uint64_t page_bytes_sent = 0;
    std::uint64_t asset_bytes_sent = 0;
    /// Simulated server-side generation cost (traditional fallback path).
    double generation_seconds = 0.0;
    double generation_energy_wh = 0.0;
  };

  static util::Result<std::unique_ptr<GenerativeServer>> Create(
      const ContentStore* store, Options options);

  /// The underlying protocol connection (wire I/O is pumped externally).
  http2::Connection& connection() { return *connection_; }

  void StartHandshake() { connection_->StartHandshake(); }

  /// Process all pending protocol events, answering completed requests.
  util::Status ProcessEvents();

  /// Whether the negotiated connection is serving generatively.
  bool ServingGenerative() const;
  /// The effective serve mode after negotiation and policy.
  ServeMode CurrentServeMode() const;

  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

  /// Flip policy mid-connection (e.g. renewable energy became available)
  /// — affects subsequent requests only.
  void SetPolicy(ServePolicy policy) { options_.policy = policy; }

 private:
  GenerativeServer(const ContentStore* store, Options options,
                   MediaGenerator generator);

  /// What a response body counts as; drives the single byte-accounting
  /// site (AccountResponse).
  enum class ResponseKind { kPage, kAsset, kTelemetry, kNotFound, kError };

  util::Result<Response> HandleRequest(const Request& request,
                                       ResponseKind* kind);
  /// The one place request/byte statistics are recorded, called once per
  /// response *after* content coding — so stats_ totals cannot drift from
  /// what SendResponse actually submits to the connection.
  void AccountResponse(ResponseKind kind, const Response& response);
  /// Mirror server-side generation cost into stats_ and the registry.
  void RecordGeneration(double seconds, double energy_wh);
  util::Result<Response> ServePage(const PageEntry& page);
  util::Result<Response> ServePageTraditional(const PageEntry& page);
  /// §2.2 upscale-only clients: materialize at reduced resolution, tag the
  /// <img> with data-sww-upscale so the client restores full size locally.
  util::Result<Response> ServePageUpscaleAssist(const PageEntry& page);
  util::Status SendResponse(std::uint32_t stream_id, const Response& response);
  /// Apply the swz content coding when the client accepts it and it helps.
  void MaybeCompress(const Request& request, Response& response);

  const ContentStore* store_;
  Options options_;
  MediaGenerator generator_;
  std::unique_ptr<http2::Connection> connection_;
  /// Assets materialized by server-side generation, served on follow-up
  /// requests (traditional mode still references image files by path).
  std::map<std::string, Asset, std::less<>> ephemeral_assets_;
  Stats stats_;

  // Process-wide mirrors of the Stats events.
  struct Instruments {
    obs::Counter* requests;
    obs::Counter* pages_generative;
    obs::Counter* pages_upscale;
    obs::Counter* pages_traditional;
    obs::Counter* assets_served;
    obs::Counter* telemetry_requests;
    obs::Counter* not_found;
    obs::Counter* errors;
    obs::Counter* negotiations;
    obs::Histogram* page_bytes;
    obs::Histogram* asset_bytes;
    obs::Gauge* generation_seconds;
    obs::Gauge* generation_energy_wh;
  };
  Instruments instruments_;
};

}  // namespace sww::core
