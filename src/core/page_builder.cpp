#include "core/page_builder.hpp"

#include "core/content_store.hpp"
#include "core/stock_prompts.hpp"
#include "core/verification.hpp"
#include "genai/llm.hpp"
#include "html/generated_content.hpp"
#include "json/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace sww::core {

namespace {

const std::vector<std::string>& LandscapeSubjects() {
  static const std::vector<std::string> subjects = {
      "alpine meadow below a glacier",      "icelandic valley with a waterfall",
      "swedish lakeside at dusk",           "volcanic ridge under heavy cloud",
      "rainbow over an old river bridge",   "sand beach with cloud reflections",
      "strawberry field after the rain",    "rolling farmland in morning mist",
      "desert canyon at golden hour",       "pine forest on a mountain slope",
      "coastal cliffs above a calm sea",    "snowfield crossed by a hiking trail",
      "terraced hills in soft light",       "wide river delta from above",
      "stone village under a summer sky",   "high plateau with grazing sheep",
  };
  return subjects;
}

const std::vector<std::string>& LandscapeDetails() {
  static const std::vector<std::string> details = {
      "long shadows stretch across the foreground",
      "a narrow footpath winds toward the horizon",
      "scattered boulders break the even grass",
      "thin fog lifts from the lower slopes",
      "sunlight catches the distant peaks",
      "still water mirrors the moving clouds",
      "wildflowers edge the gravel track",
      "a lone tree stands against the skyline",
      "patches of snow cling to the shaded side",
      "warm evening light softens every ridge",
  };
  return details;
}

const std::vector<std::string>& LandscapeStyles() {
  static const std::vector<std::string> styles = {
      "wide-angle photograph, natural colors",
      "high-resolution landscape photography",
      "crisp daylight, deep depth of field",
      "golden-hour photograph with soft contrast",
      "overcast diffuse light, muted palette",
  };
  return styles;
}

}  // namespace

std::string MakeGoldfishPage() {
  json::Value metadata{json::Object{}};
  metadata.Set("prompt",
               "A cartoon goldfish with large friendly eyes swimming in a "
               "round glass bowl, bright orange scales, simple flat colors");
  metadata.Set("name", "goldfish");
  metadata.Set("width", 512);
  metadata.Set("height", 512);
  // §7 trust: semantic digest so the client can verify what it generates.
  metadata.Set("digest", DigestToHex(DigestOfPrompt(metadata.GetString("prompt"))));
  auto div = html::MakeGeneratedContentDiv(html::GeneratedContentType::kImage,
                                           metadata);
  return "<!DOCTYPE html><html><head><title>Goldfish</title></head><body>"
         "<h1>Meet the goldfish</h1>" +
         div->Serialize() + "</body></html>";
}

std::string MakeLandscapePrompt(std::uint64_t seed) {
  util::Rng rng(seed);
  std::string prompt =
      "A " + LandscapeSubjects()[rng.NextIndex(LandscapeSubjects().size())];
  prompt += ", " + LandscapeDetails()[rng.NextIndex(LandscapeDetails().size())];
  prompt += ", " + LandscapeStyles()[rng.NextIndex(LandscapeStyles().size())];
  // Stretch toward the paper's 120-262 character range (average ≈180, as
  // in the paper's 8.92 kB / 49 prompts) by appending detail clauses.
  while (prompt.size() < 120 + rng.NextBounded(60)) {
    prompt += "; " + LandscapeDetails()[rng.NextIndex(LandscapeDetails().size())];
  }
  if (prompt.size() > 262) prompt.resize(262);
  return prompt;
}

LandscapePage MakeLandscapeSearchPage(int image_count, int thumb_width,
                                      int thumb_height, std::uint64_t seed,
                                      bool with_digests) {
  LandscapePage page;
  std::string body = "<h1>Search results: Landscape</h1><div class=\"results\">";
  for (int i = 0; i < image_count; ++i) {
    const std::string prompt =
        MakeLandscapePrompt(seed + static_cast<std::uint64_t>(i) * 977);
    page.prompts.push_back(prompt);
    json::Value metadata{json::Object{}};
    metadata.Set("prompt", prompt);
    metadata.Set("name", util::Format("landscape-%02d", i));
    metadata.Set("width", thumb_width);
    metadata.Set("height", thumb_height);
    if (with_digests) {
      metadata.Set("digest", DigestToHex(DigestOfPrompt(prompt)));
    }
    page.total_metadata_bytes += metadata.Dump().size();
    page.traditional_image_bytes += page.original_bytes_per_image;
    auto div = html::MakeGeneratedContentDiv(html::GeneratedContentType::kImage,
                                             metadata);
    body += div->Serialize();
  }
  body += "</div>";
  page.html =
      "<!DOCTYPE html><html><head><title>Wikimedia Commons - Landscape"
      "</title></head><body>" +
      body + "</body></html>";
  return page;
}

TravelBlogPage MakeTravelBlogPage(int stock_images, int unique_photos,
                                  std::uint64_t seed) {
  TravelBlogPage page;
  util::Rng rng(seed);
  std::string body = "<h1>Three days on the high trail</h1>";

  // Generic intro text: delivered as bullets, regenerated on-device.
  json::Value text_metadata{json::Object{}};
  json::Array bullets;
  bullets.emplace_back("high mountain trail crosses three valleys");
  bullets.emplace_back("spring season best, mild weather, long days");
  bullets.emplace_back("pack light, carry water, start before sunrise");
  bullets.emplace_back("huts available, booking recommended");
  text_metadata.Set("prompt", "expand the bullet points into flowing prose");
  text_metadata.Set("bullets", json::Value(std::move(bullets)));
  text_metadata.Set("words", 180);
  text_metadata.Set("name", "intro");
  body += html::MakeGeneratedContentDiv(html::GeneratedContentType::kText,
                                        text_metadata)
              ->Serialize();

  // Stock imagery: prompts.
  for (int i = 0; i < stock_images; ++i) {
    json::Value metadata{json::Object{}};
    metadata.Set("prompt",
                 MakeLandscapePrompt(seed * 31 + static_cast<std::uint64_t>(i)));
    metadata.Set("name", util::Format("stock-%d", i));
    metadata.Set("width", 512);
    metadata.Set("height", 384);
    body += html::MakeGeneratedContentDiv(html::GeneratedContentType::kImage,
                                          metadata)
                ->Serialize();
  }

  // Unique photos from the actual hike: fetched as files, same as today.
  body += "<h2>Photos from the hike</h2>";
  for (int i = 0; i < unique_photos; ++i) {
    const std::string path = util::Format("/assets/hike-photo-%d.ppm", i);
    page.unique_asset_paths.push_back(path);
    body += "<img src=\"" + path +
            "\" width=\"320\" height=\"240\" alt=\"photo from the hike\" "
            "data-sww=\"unique\"/>";
  }
  (void)rng;
  page.html =
      "<!DOCTYPE html><html><head><title>Travel blog</title></head><body>" +
      body + "</body></html>";
  return page;
}

std::string MakeNewsArticleText(std::size_t target_bytes, std::uint64_t seed) {
  util::Rng rng(seed);
  static const std::vector<std::string> kFacts = {
      "The regional council approved the coastal transit line on Tuesday",
      "construction is scheduled to begin in the autumn",
      "the project budget stands at two hundred million",
      "an independent review flagged drainage risks near the harbor",
      "local businesses expect disruption during the first phase",
      "the completed line should carry forty thousand passengers daily",
      "officials promised quarterly public progress reports",
      "an environmental assessment cleared the northern route",
      "opposition members asked for a revised cost ceiling",
      "the mayor called the vote a turning point for the district",
  };
  std::string text;
  std::size_t i = 0;
  while (text.size() < target_bytes) {
    std::string sentence = kFacts[i % kFacts.size()];
    if (rng.NextBool(0.5)) {
      sentence += ", according to people familiar with the planning";
    }
    sentence += ". ";
    sentence[0] =
        static_cast<char>(std::toupper(static_cast<unsigned char>(sentence[0])));
    text += sentence;
    ++i;
  }
  text.resize(target_bytes);
  return text;
}

FoodMenuPage MakeFoodMenuPage(int dish_count, std::uint64_t seed) {
  static const std::vector<std::string> kDishes = {
      "margherita pizza", "pad thai",       "lamb kofta",    "poke bowl",
      "mushroom risotto", "smash burger",   "falafel wrap",  "ramen",
      "caesar salad",     "butter chicken", "fish tacos",    "gnocchi",
  };
  static const std::vector<std::string> kNotes = {
      "fresh ingredients prepared daily",
      "served with house sauce",
      "available mild or spicy",
      "popular with regulars",
      "generous portion, feeds two",
      "gluten free option available",
  };
  const StockPromptLibrary library = StockPromptLibrary::Builtin();
  util::Rng rng(seed);
  FoodMenuPage page;
  page.dish_count = static_cast<std::size_t>(dish_count);

  // Banner photo straight from the stock prompt catalog (free tier).
  std::string body = "<h1>Tonight's menu</h1>";
  if (auto banner = library.MakeImageMetadata("food/market-fruit", 512, 160);
      banner.ok()) {
    body += html::MakeGeneratedContentDiv(html::GeneratedContentType::kImage,
                                          banner.value())
                ->Serialize();
  }
  body += "<ul class=\"menu\">";
  for (int i = 0; i < dish_count; ++i) {
    const std::string& dish = kDishes[static_cast<std::size_t>(i) % kDishes.size()];
    body += "<li class=\"dish\">";
    // Dish photo: a (free-tier) stock prompt specialized with the dish name.
    json::Value image_metadata{json::Object{}};
    const std::string prompt =
        "overhead photograph of " + dish + ", rustic table, soft daylight, "
        "appetizing styling";
    image_metadata.Set("prompt", prompt);
    image_metadata.Set("name", util::Format("dish-%02d", i));
    image_metadata.Set("width", 256);
    image_metadata.Set("height", 192);
    image_metadata.Set("digest", DigestToHex(DigestOfPrompt(prompt)));
    body += html::MakeGeneratedContentDiv(html::GeneratedContentType::kImage,
                                          image_metadata)
                ->Serialize();
    // Dish blurb: bullets expanded on-device.
    json::Value text_metadata{json::Object{}};
    json::Array bullets;
    bullets.emplace_back(dish);
    bullets.emplace_back(kNotes[rng.NextIndex(kNotes.size())]);
    bullets.emplace_back(kNotes[rng.NextIndex(kNotes.size())]);
    text_metadata.Set("prompt", "expand the bullet points into a dish blurb");
    text_metadata.Set("bullets", json::Value(std::move(bullets)));
    text_metadata.Set("words", 40);
    text_metadata.Set("name", util::Format("blurb-%02d", i));
    body += html::MakeGeneratedContentDiv(html::GeneratedContentType::kText,
                                          text_metadata)
                ->Serialize();
    body += "</li>";
  }
  body += "</ul>";
  page.html =
      "<!DOCTYPE html><html><head><title>Delivery menu</title></head><body>" +
      body + "</body></html>";
  return page;
}

std::string MakeNewsArticleHtml(std::size_t target_bytes, std::uint64_t seed) {
  // Account for the markup overhead so the body lands near target_bytes.
  const std::string prefix =
      "<!DOCTYPE html><html><head><title>Local news</title></head><body>"
      "<h1>Transit line approved</h1><p>";
  const std::string suffix = "</p></body></html>";
  const std::size_t overhead = prefix.size() + suffix.size();
  const std::size_t body_bytes =
      target_bytes > overhead ? target_bytes - overhead : target_bytes;
  return prefix + MakeNewsArticleText(body_bytes, seed) + suffix;
}

}  // namespace sww::core
