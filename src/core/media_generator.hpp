// media_generator.hpp — the paper's media generator object (§4.1).
//
// "The media generator has two roles: parsing the passed metadata and
// invoking content generation using the parsed information.  The media
// generator has two generation subroutines, one to generate text and the
// other to generate images."
//
// It holds a *preloaded* GenerationPipeline (the paper's performance
// optimization) and a device profile, so every invocation also yields the
// simulated time and energy that generation would cost on that device —
// the quantities §6 evaluates.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/personalization.hpp"
#include "core/verification.hpp"
#include "energy/device.hpp"
#include "genai/pipeline.hpp"
#include "html/generated_content.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace sww::core {

/// One materialized item.
struct GeneratedMedia {
  html::GeneratedContentType type;
  std::string name;          ///< metadata "name" (or derived)
  std::string prompt;
  /// Image output: file path + bytes (PPM).  Text output: the prose.
  std::string file_path;     ///< e.g. "generated/goldfish.ppm" (images)
  util::Bytes file_bytes;
  std::string text;          ///< expanded prose (text items)
  int width = 0, height = 0;
  int words = 0;

  // Simulated cost on the generator's device.
  double seconds = 0.0;
  double energy_wh = 0.0;

  /// §7 trust: set when the metadata carried a semantic digest.
  bool has_verification = false;
  ContentVerification verification;

  /// Bytes this item would have cost to transmit in traditional form.
  std::size_t traditional_bytes = 0;
  /// Bytes its prompt/metadata actually cost.
  std::size_t metadata_bytes = 0;
};

/// The outcome of materializing a page's specs as one concurrent batch.
/// `items` is in spec order regardless of which worker finished first.
struct GeneratedBatch {
  std::vector<GeneratedMedia> items;
  /// Total device-seconds across items (what energy accounting sums).
  double device_seconds = 0.0;
  /// Modeled elapsed time of the parallel schedule: items are placed on
  /// `lanes` device lanes by deterministic greedy assignment (each item,
  /// in spec order, goes to the least-loaded lane) and the makespan is the
  /// heaviest lane.  Equals device_seconds when lanes == 1.
  double wall_seconds = 0.0;
  int lanes = 1;
};

class MediaGenerator {
 public:
  struct Options {
    std::string image_model = "sd-3-medium";
    std::string text_model = "deepseek-r1-8b";
    int inference_steps = 15;   ///< the paper's evaluation step count
    /// Directory prefix used in generated file paths.
    std::string output_prefix = "generated/";
    /// §2.3: optional on-device personalization.  Inert unless the user
    /// consented; bounded by its strength cap; every application is
    /// recorded in audit().
    PersonalizationProfile profile;
    /// Concurrency: when set, GenerateBatch fans items out across this
    /// pool and the diffusion kernel renders tile-parallel.  Output bytes,
    /// stats, and audit order are identical with any pool or none (the
    /// build phase is pure; all side effects merge on the calling thread
    /// in spec order).  Not owned; must outlive the generator.
    util::ThreadPool* pool = nullptr;
  };

  /// Loads the pipeline once (preloaded-pipeline optimization).
  static util::Result<MediaGenerator> Create(const energy::DeviceProfile& device,
                                             Options options);

  /// Materialize one generated-content spec.  Deterministic: the seed is
  /// derived from the prompt, so the same prompt yields the same bytes.
  util::Result<GeneratedMedia> Generate(const html::GeneratedContentSpec& spec);

  /// Materialize and splice into the DOM: the placeholder div becomes an
  /// <img> (Figure 1's "after") or a text paragraph.
  util::Result<GeneratedMedia> GenerateAndReplace(html::GeneratedContentSpec& spec);

  /// Materialize every spec of a page as one batch.  With a pool in
  /// Options, items build concurrently (and images render tile-parallel);
  /// results, stats, audit records, and telemetry merge on the calling
  /// thread in spec order, so every observable outcome is byte-identical
  /// to the serial path.  Fails with the first (spec-order) item error;
  /// items after a failed one produce no side effects, matching serial
  /// semantics.  Does not touch the DOM — pair with Splice.
  util::Result<GeneratedBatch> GenerateBatch(
      const std::vector<html::GeneratedContentSpec>& specs);

  /// Replace a placeholder div with its materialized media (the DOM half
  /// of GenerateAndReplace, usable after a batch).
  static void Splice(html::GeneratedContentSpec& spec,
                     const GeneratedMedia& media);

  const energy::DeviceProfile& device() const { return *device_; }
  const genai::GenerationPipeline& pipeline() const { return pipeline_; }
  int inference_steps() const { return options_.inference_steps; }

  /// Cumulative simulated cost since creation.
  double total_seconds() const { return total_seconds_; }
  double total_energy_wh() const { return total_energy_wh_; }
  std::uint64_t items_generated() const { return items_; }

  /// Disclosure ledger of applied personalizations (§2.3).
  const PersonalizationAudit& audit() const { return audit_; }

 private:
  MediaGenerator(const energy::DeviceProfile& device, Options options,
                 genai::GenerationPipeline pipeline)
      : device_(&device), options_(std::move(options)),
        pipeline_(std::move(pipeline)) {
    pipeline_.SetThreadPool(options_.pool);
  }

  /// One item's pure build output: no shared state touched yet.  The
  /// personalization record (if any) is carried alongside so the audit
  /// ledger can be appended in spec order at merge time.
  struct BuiltItem {
    util::Result<GeneratedMedia> media{GeneratedMedia{}};
    std::optional<PersonalizationRecord> audit;
  };

  /// Pure compute phase — safe to run on any pool worker: reads options_
  /// and pipeline_ (const), mutates nothing.
  BuiltItem BuildItem(const html::GeneratedContentSpec& spec) const;
  BuiltItem BuildImage(const html::GeneratedContentSpec& spec) const;
  BuiltItem BuildText(const html::GeneratedContentSpec& spec) const;

  /// Merge phase — calling thread only, spec order: emits the
  /// genai.generate span, registry counters, simulated clock advance,
  /// audit record, and cumulative totals for one built item.
  util::Result<GeneratedMedia> Absorb(BuiltItem built);

  const energy::DeviceProfile* device_;
  Options options_;
  genai::GenerationPipeline pipeline_;
  PersonalizationAudit audit_;
  double total_seconds_ = 0.0;
  double total_energy_wh_ = 0.0;
  std::uint64_t items_ = 0;
};

}  // namespace sww::core
