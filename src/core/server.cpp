#include "core/server.hpp"

#include <cassert>

#include "compress/swz.hpp"
#include "html/parser.hpp"
#include "obs/expose.hpp"
#include "obs/journal.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace sww::core {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

Result<std::unique_ptr<GenerativeServer>> GenerativeServer::Create(
    const ContentStore* store, Options options) {
  const energy::DeviceProfile& device =
      options.workstation ? energy::Workstation() : energy::Laptop();
  auto generator = MediaGenerator::Create(device, options.generator);
  if (!generator) return generator.error();
  return std::unique_ptr<GenerativeServer>(new GenerativeServer(
      store, std::move(options), std::move(generator).value()));
}

GenerativeServer::GenerativeServer(const ContentStore* store, Options options,
                                   MediaGenerator generator)
    : store_(store), options_(std::move(options)), generator_(std::move(generator)) {
  http2::Connection::Options conn_options;
  conn_options.local_settings.set_gen_ability(options_.advertised_ability);
  conn_options.local_settings.set_enable_push(false);
  conn_options.local_settings.set_initial_window_size(1 << 20);
  connection_ = std::make_unique<http2::Connection>(
      http2::Connection::Role::kServer, conn_options);
  connection_->SetWireTap(options_.wire_tap);
  obs::Registry& registry = obs::Registry::Default();
  instruments_.requests = &registry.GetCounter("server.requests");
  instruments_.pages_generative = &registry.GetCounter("server.pages_generative");
  instruments_.pages_upscale = &registry.GetCounter("server.pages_upscale");
  instruments_.pages_traditional =
      &registry.GetCounter("server.pages_traditional");
  instruments_.assets_served = &registry.GetCounter("server.assets_served");
  instruments_.telemetry_requests =
      &registry.GetCounter("server.telemetry_requests");
  instruments_.not_found = &registry.GetCounter("server.not_found");
  instruments_.errors = &registry.GetCounter("server.errors");
  instruments_.negotiations = &registry.GetCounter("server.negotiations");
  instruments_.page_bytes = &registry.GetHistogram("server.page_bytes");
  instruments_.asset_bytes = &registry.GetHistogram("server.asset_bytes");
  instruments_.generation_seconds =
      &registry.GetGauge("server.generation_seconds");
  instruments_.generation_energy_wh =
      &registry.GetGauge("server.generation_energy_wh");
}

const char* ServeModeName(ServeMode mode) {
  switch (mode) {
    case ServeMode::kGenerative: return "generative";
    case ServeMode::kUpscaleAssist: return "upscale-assist";
    case ServeMode::kTraditional: return "traditional";
  }
  return "?";
}

bool GenerativeServer::ServingGenerative() const {
  return CurrentServeMode() == ServeMode::kGenerative;
}

ServeMode GenerativeServer::CurrentServeMode() const {
  if (options_.policy == ServePolicy::kAlwaysTraditional) {
    return ServeMode::kTraditional;
  }
  if (options_.policy == ServePolicy::kAlwaysGenerative) {
    return ServeMode::kGenerative;
  }
  const std::uint32_t ability = connection_->negotiated_gen_ability();
  if (ability & http2::kGenAbilityFull) return ServeMode::kGenerative;
  if (ability & http2::kGenAbilityUpscaleOnly) return ServeMode::kUpscaleAssist;
  return ServeMode::kTraditional;
}

Status GenerativeServer::ProcessEvents() {
  for (const http2::Connection::Event& event : connection_->TakeEvents()) {
    using Type = http2::Connection::Event::Type;
    if (event.type == Type::kRemoteSettingsReceived) {
      instruments_.negotiations->Add();
      util::LogInfo("sww.server",
                    "client gen ability: " +
                        http2::GenAbilityToString(
                            connection_->remote_settings().gen_ability()));
      continue;
    }
    if (event.type != Type::kMessageComplete) continue;

    const http2::Stream* stream = connection_->FindStream(event.stream_id);
    if (stream == nullptr) continue;
    // Adopt the client's trace context (sww-trace header) so this request
    // span parents under the originating client.fetch — one distributed
    // trace per page fetch.  An absent/malformed header starts a fresh
    // trace, exactly like a client that does not speak sww-trace.
    obs::SpanContext remote_context;
    for (const hpack::HeaderField& field : stream->headers) {
      if (field.name == obs::kTraceHeaderName) {
        if (auto parsed = obs::ParseTraceHeader(field.value)) {
          remote_context = *parsed;
        }
        break;
      }
    }
    obs::ScopedSpan span("server.request", "core", remote_context);
    span.SetProcess("server");
    span.AddAttribute("stream_id", std::to_string(event.stream_id));
    auto request = ParseRequest(stream->headers, stream->body);
    Response response;
    ResponseKind kind = ResponseKind::kError;
    if (!request) {
      response.status = 400;
      response.SetHeader("content-type", "text/plain");
      const std::string message = request.error().ToString();
      response.body.assign(message.begin(), message.end());
    } else {
      span.AddAttribute("path", request.value().path);
      auto handled = HandleRequest(request.value(), &kind);
      if (!handled) {
        kind = ResponseKind::kError;
        response.status = 500;
        response.SetHeader("content-type", "text/plain");
        const std::string message = handled.error().ToString();
        response.body.assign(message.begin(), message.end());
      } else {
        response = std::move(handled).value();
      }
      MaybeCompress(request.value(), response);
    }
    // Single accounting site, after content coding: stats_ reflects the
    // exact entity bytes SendResponse submits.
    AccountResponse(kind, response);
    span.AddAttribute("status", std::to_string(response.status));
    span.AddAttribute(
        "mode", response.Header(kSwwModeHeader).value_or("-"));
    if (Status status = SendResponse(event.stream_id, response); !status.ok()) {
      return status;
    }
    // Entity bytes can never exceed what the connection actually framed
    // and queued (frame headers only add); a violation means a second,
    // stray accounting site crept back in.
    assert(stats_.page_bytes_sent + stats_.asset_bytes_sent <=
           connection_->wire_stats().bytes_sent);
    connection_->ReleaseStream(event.stream_id);
  }
  return Status::Ok();
}

void GenerativeServer::AccountResponse(ResponseKind kind,
                                       const Response& response) {
  ++stats_.requests;
  instruments_.requests->Add();
  // Exemplar context: AccountResponse always runs inside the
  // server.request span, so the thread's current span names the
  // distributed trace this response belongs to (invalid → untraced).
  obs::Tracer& tracer = obs::Tracer::Default();
  const obs::SpanContext context = tracer.ContextOf(tracer.CurrentSpan());
  switch (kind) {
    case ResponseKind::kPage:
      stats_.page_bytes_sent += response.body.size();
      instruments_.page_bytes->Observe(static_cast<double>(response.body.size()),
                                       context.trace_id,
                                       tracer.clock().NowNanos());
      break;
    case ResponseKind::kAsset:
      stats_.asset_bytes_sent += response.body.size();
      instruments_.asset_bytes->Observe(static_cast<double>(response.body.size()));
      break;
    case ResponseKind::kTelemetry:
      // Exposition bodies are not page/asset content; only the request
      // itself is counted (in HandleRequest), keeping the byte-accounting
      // invariant below untouched.
      break;
    case ResponseKind::kNotFound:
      ++stats_.not_found;
      instruments_.not_found->Add();
      break;
    case ResponseKind::kError:
      instruments_.errors->Add();
      break;
  }
}

void GenerativeServer::RecordGeneration(double seconds, double energy_wh) {
  stats_.generation_seconds += seconds;
  stats_.generation_energy_wh += energy_wh;
  instruments_.generation_seconds->Add(seconds);
  instruments_.generation_energy_wh->Add(energy_wh);
}

Result<Response> GenerativeServer::HandleRequest(const Request& request,
                                                 ResponseKind* kind) {
  // Byte accounting happens exclusively in AccountResponse (driven by
  // *kind); this function only classifies and builds the response.
  *kind = ResponseKind::kError;
  if (request.method != "GET") {
    Response response;
    response.status = 405;
    response.SetHeader("content-type", "text/plain");
    response.SetHeader("allow", "GET");
    const std::string message = "method not allowed";
    response.body.assign(message.begin(), message.end());
    return response;
  }

  // Self-hosted telemetry plane: the server exposes its own registry over
  // the same HTTP/2 stack it serves pages on.  Routed before the content
  // store so stores cannot shadow the exposition paths.
  if (request.path == "/metrics" || request.path == "/debug/vars" ||
      request.path == "/debug/journal") {
    *kind = ResponseKind::kTelemetry;
    ++stats_.telemetry_requests;
    instruments_.telemetry_requests->Add();
    Response response;
    std::string body;
    if (request.path == "/metrics") {
      response.SetHeader("content-type", obs::kPrometheusContentType);
      body = obs::RenderPrometheusText(obs::Registry::Default().Snapshot());
    } else if (request.path == "/debug/vars") {
      response.SetHeader("content-type", "application/json");
      body = obs::RenderDebugVarsJson(
          obs::Registry::Default().Snapshot(),
          static_cast<std::int64_t>(
              obs::Tracer::Default().clock().NowNanos()));
    } else {
      // The process-wide wide-event journal, one JSON object per fetch
      // plus a journal_summary trailer.
      response.SetHeader("content-type", "application/jsonl");
      body = obs::RenderJournalJsonLines(obs::Journal::Default());
    }
    response.body.assign(body.begin(), body.end());
    return response;
  }

  if (const PageEntry* page = store_->FindPage(request.path); page != nullptr) {
    *kind = ResponseKind::kPage;
    // §7 model negotiation: the client may force materialized delivery
    // when its local model cannot meet the page's fidelity requirement.
    if (request.Header(kSwwForceHeader).value_or("") == "traditional") {
      ++stats_.pages_served_traditional;
      instruments_.pages_traditional->Add();
      return ServePageTraditional(*page);
    }
    util::Result<Response> response(Response{});
    switch (CurrentServeMode()) {
      case ServeMode::kGenerative:
        ++stats_.pages_served_generative;
        instruments_.pages_generative->Add();
        response = ServePage(*page);
        break;
      case ServeMode::kUpscaleAssist:
        ++stats_.pages_served_upscale;
        instruments_.pages_upscale->Add();
        response = ServePageUpscaleAssist(*page);
        break;
      case ServeMode::kTraditional:
        ++stats_.pages_served_traditional;
        instruments_.pages_traditional->Add();
        response = ServePageTraditional(*page);
        break;
    }
    return response;
  }

  if (const Asset* asset = store_->FindAsset(request.path); asset != nullptr) {
    *kind = ResponseKind::kAsset;
    ++stats_.assets_served;
    instruments_.assets_served->Add();
    Response response;
    response.SetHeader("content-type", asset->content_type);
    response.body = asset->bytes;
    return response;
  }
  if (auto it = ephemeral_assets_.find(request.path);
      it != ephemeral_assets_.end()) {
    *kind = ResponseKind::kAsset;
    ++stats_.assets_served;
    instruments_.assets_served->Add();
    Response response;
    response.SetHeader("content-type", it->second.content_type);
    response.body = it->second.bytes;
    return response;
  }

  *kind = ResponseKind::kNotFound;
  Response response;
  response.status = 404;
  response.SetHeader("content-type", "text/plain");
  const std::string message = "not found: " + request.path;
  response.body.assign(message.begin(), message.end());
  return response;
}

Result<Response> GenerativeServer::ServePage(const PageEntry& page) {
  // Generative form: the baseline page, prompts and all, goes out as-is.
  Response response;
  response.SetHeader("content-type", "text/html");
  response.SetHeader(std::string(kSwwModeHeader), "generative");
  response.body.assign(page.html.begin(), page.html.end());
  return response;
}

Result<Response> GenerativeServer::ServePageTraditional(const PageEntry& page) {
  // "When the client does not support generative content, the server uses
  // the prompt to generate the content before sending it to the client."
  auto document = html::ParseDocument(page.html);
  if (!document) return document.error();
  html::ExtractionResult extraction =
      html::ExtractGeneratedContent(*document.value());
  for (html::GeneratedContentSpec& spec : extraction.specs) {
    auto media = generator_.GenerateAndReplace(spec);
    if (!media) return media.error();
    RecordGeneration(media.value().seconds, media.value().energy_wh);
    if (media.value().type == html::GeneratedContentType::kImage) {
      // Serve the materialized image on its referenced path.  Root-relative
      // so the client's asset fetch matches.
      ephemeral_assets_["/" + media.value().file_path] =
          Asset{media.value().file_bytes, "image/x-portable-pixmap"};
      // Point the img src at the absolute path.
      if (spec.node != nullptr) {
        if (html::Node* img = spec.node->FindFirstByTag("img"); img != nullptr) {
          img->SetAttribute("src", "/" + media.value().file_path);
        }
      }
    }
  }
  Response response;
  response.SetHeader("content-type", "text/html");
  response.SetHeader(std::string(kSwwModeHeader), "traditional");
  const std::string serialized = document.value()->Serialize();
  response.body.assign(serialized.begin(), serialized.end());
  return response;
}

Result<Response> GenerativeServer::ServePageUpscaleAssist(const PageEntry& page) {
  // §2.2 upscale-only clients: the server still materializes, but at half
  // resolution — a ~4x byte saving on the wire — and tags each image so
  // the client restores the authored size with its (sub-second) upscaler.
  auto document = html::ParseDocument(page.html);
  if (!document) return document.error();
  html::ExtractionResult extraction =
      html::ExtractGeneratedContent(*document.value());
  for (html::GeneratedContentSpec& spec : extraction.specs) {
    if (spec.type == html::GeneratedContentType::kImage) {
      const int full_width = spec.width();
      const int full_height = spec.height();
      // Generate the reduced-resolution variant.
      html::GeneratedContentSpec reduced = spec;
      reduced.metadata.Set("width", std::max(1, full_width / 2));
      reduced.metadata.Set("height", std::max(1, full_height / 2));
      auto media = generator_.Generate(reduced);
      if (!media) return media.error();
      RecordGeneration(media.value().seconds, media.value().energy_wh);
      ephemeral_assets_["/" + media.value().file_path] =
          Asset{media.value().file_bytes, "image/x-portable-pixmap"};
      // Replace the div: <img> declares the authored size plus the
      // upscale factor the client must apply.
      html::ReplaceWithImage(*spec.node, "/" + media.value().file_path,
                             full_width, full_height, media.value().prompt);
      if (html::Node* img = spec.node->FindFirstByTag("img"); img != nullptr) {
        img->SetAttribute("data-sww-upscale", "2");
      }
    } else {
      // Text cannot be "upscaled"; the server expands it fully.
      auto media = generator_.GenerateAndReplace(spec);
      if (!media) return media.error();
      RecordGeneration(media.value().seconds, media.value().energy_wh);
    }
  }
  Response response;
  response.SetHeader("content-type", "text/html");
  response.SetHeader(std::string(kSwwModeHeader),
                     ServeModeName(ServeMode::kUpscaleAssist));
  const std::string serialized = document.value()->Serialize();
  response.body.assign(serialized.begin(), serialized.end());
  return response;
}

void GenerativeServer::MaybeCompress(const Request& request,
                                     Response& response) {
  // Apply the swz content coding when the client accepts it, the entity
  // is text, and coding actually helps.
  if (response.body.size() < 128) return;
  const std::string accept = request.Header("accept-encoding").value_or("");
  if (accept.find(compress::kContentCoding) == std::string::npos) return;
  const std::string content_type =
      response.Header("content-type").value_or("");
  if (content_type.rfind("text/", 0) != 0) return;
  util::Bytes coded = compress::SwzCompress(response.body);
  if (coded.size() >= response.body.size()) return;
  response.body = std::move(coded);
  response.SetHeader("content-encoding", compress::kContentCoding);
}

Status GenerativeServer::SendResponse(std::uint32_t stream_id,
                                      const Response& response) {
  if (Status status = connection_->SubmitHeaders(stream_id, response.ToHeaders(),
                                                 response.body.empty());
      !status.ok()) {
    return status;
  }
  if (!response.body.empty()) {
    return connection_->SubmitData(stream_id, response.body, /*end_stream=*/true);
  }
  return Status::Ok();
}

}  // namespace sww::core
