// reactor_host.hpp — GenerativeServer on the epoll reactor.
//
// Adapts the core:: application protocol onto net::ReactorServer: each
// accepted connection gets its own GenerativeServer (sharing the
// ContentStore), driven entirely by readiness events on the owning
// shard.  This is the serving path of `sww_serve` and the C10K bench;
// LocalSession remains the deterministic in-process harness.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/content_store.hpp"
#include "core/server.hpp"
#include "net/reactor_server.hpp"
#include "util/error.hpp"

namespace sww::core {

class ReactorHost {
 public:
  struct Options {
    /// Transport-tier knobs (port, shards, timeouts, backpressure).
    net::ReactorServer::Options server;
    /// Application options stamped onto every accepted connection.
    GenerativeServer::Options per_connection;
    /// Called on the owning shard thread as a connection closes, with
    /// the final per-connection server state (stats etc).
    std::function<void(const GenerativeServer&)> on_connection_close;
  };

  /// Bind and start serving `store` on all shards.
  static util::Result<std::unique_ptr<ReactorHost>> Start(
      const ContentStore* store, Options options);

  std::uint16_t port() const { return server_->port(); }
  net::ReactorServer& server() { return *server_; }
  const net::ReactorServer& server() const { return *server_; }

  /// Graceful GOAWAY + drain; idempotent (destructor calls it).
  void Shutdown() { server_->Shutdown(); }

 private:
  ReactorHost() = default;
  std::unique_ptr<net::ReactorServer> server_;
};

}  // namespace sww::core
