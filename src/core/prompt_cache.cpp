#include "core/prompt_cache.hpp"

namespace sww::core {

PromptCache::PromptCache(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {
  obs::Registry& registry = obs::Registry::Default();
  instruments_.hits = &registry.GetCounter("client.prompt_cache.hits");
  instruments_.misses = &registry.GetCounter("client.prompt_cache.misses");
  instruments_.insertions =
      &registry.GetCounter("client.prompt_cache.insertions");
  instruments_.evictions =
      &registry.GetCounter("client.prompt_cache.evictions");
}

std::optional<std::string> PromptCache::Get(const std::string& path) {
  auto it = index_.find(path);
  if (it == index_.end()) {
    ++stats_.misses;
    instruments_.misses->Add();
    return std::nullopt;
  }
  ++stats_.hits;
  instruments_.hits->Add();
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->body;
}

void PromptCache::Put(const std::string& path, std::string body) {
  if (body.size() > capacity_) return;
  Invalidate(path);
  stored_bytes_ += body.size();
  lru_.push_front(Entry{path, std::move(body)});
  index_[path] = lru_.begin();
  ++stats_.insertions;
  instruments_.insertions->Add();
  EvictToFit();
}

void PromptCache::Invalidate(const std::string& path) {
  auto it = index_.find(path);
  if (it == index_.end()) return;
  stored_bytes_ -= it->second->body.size();
  lru_.erase(it->second);
  index_.erase(it);
}

void PromptCache::Clear() {
  lru_.clear();
  index_.clear();
  stored_bytes_ = 0;
}

void PromptCache::EvictToFit() {
  while (stored_bytes_ > capacity_ && !lru_.empty()) {
    stored_bytes_ -= lru_.back().body.size();
    index_.erase(lru_.back().path);
    lru_.pop_back();
    ++stats_.evictions;
    instruments_.evictions->Add();
  }
}

}  // namespace sww::core
