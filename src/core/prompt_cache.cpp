#include "core/prompt_cache.hpp"

#include <algorithm>
#include <mutex>

#include "util/hash.hpp"

namespace sww::core {

PromptCache::PromptCache(std::size_t capacity_bytes, std::size_t stripes)
    : capacity_(capacity_bytes) {
  const std::size_t count = std::clamp<std::size_t>(
      stripes, 1, util::StripedMutex<>::stripe_count());
  stripes_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Leftover bytes go to stripe 0 so the shares sum to the capacity.
    stripes_[i].capacity = capacity_bytes / count +
                           (i == 0 ? capacity_bytes % count : 0);
  }
  obs::Registry& registry = obs::Registry::Default();
  instruments_.hits = &registry.GetCounter("client.prompt_cache.hits");
  instruments_.misses = &registry.GetCounter("client.prompt_cache.misses");
  instruments_.insertions =
      &registry.GetCounter("client.prompt_cache.insertions");
  instruments_.evictions =
      &registry.GetCounter("client.prompt_cache.evictions");
  instruments_.hit_ratio =
      &registry.GetGauge("client.prompt_cache.hit_ratio");
}

void PromptCache::RefreshHitRatio() {
  const std::uint64_t hits = hits_.load(std::memory_order_relaxed);
  const std::uint64_t total = hits + misses_.load(std::memory_order_relaxed);
  instruments_.hit_ratio->Set(
      total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total));
}

std::size_t PromptCache::StripeOf(const std::string& path) const {
  return util::Fnv1a64(path) % stripes_.size();
}

std::optional<std::string> PromptCache::Get(const std::string& path) {
  const std::size_t s = StripeOf(path);
  std::lock_guard<std::mutex> lock(locks_.Get(s));
  Stripe& stripe = stripes_[s];
  auto it = stripe.index.find(path);
  if (it == stripe.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    instruments_.misses->Add();
    RefreshHitRatio();
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  instruments_.hits->Add();
  RefreshHitRatio();
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
  return it->second->body;
}

void PromptCache::Put(const std::string& path, std::string body) {
  const std::size_t s = StripeOf(path);
  std::lock_guard<std::mutex> lock(locks_.Get(s));
  Stripe& stripe = stripes_[s];
  if (body.size() > stripe.capacity) return;
  InvalidateLocked(stripe, path);
  stripe.stored_bytes += body.size();
  stripe.lru.push_front(Entry{path, std::move(body)});
  stripe.index[path] = stripe.lru.begin();
  insertions_.fetch_add(1, std::memory_order_relaxed);
  instruments_.insertions->Add();
  EvictToFitLocked(stripe);
}

void PromptCache::Invalidate(const std::string& path) {
  const std::size_t s = StripeOf(path);
  std::lock_guard<std::mutex> lock(locks_.Get(s));
  InvalidateLocked(stripes_[s], path);
}

void PromptCache::InvalidateLocked(Stripe& stripe, const std::string& path) {
  auto it = stripe.index.find(path);
  if (it == stripe.index.end()) return;
  stripe.stored_bytes -= it->second->body.size();
  stripe.lru.erase(it->second);
  stripe.index.erase(it);
}

void PromptCache::Clear() {
  locks_.WithAllLocked([this] {
    for (Stripe& stripe : stripes_) {
      stripe.lru.clear();
      stripe.index.clear();
      stripe.stored_bytes = 0;
    }
  });
}

void PromptCache::EvictToFitLocked(Stripe& stripe) {
  while (stripe.stored_bytes > stripe.capacity && !stripe.lru.empty()) {
    stripe.stored_bytes -= stripe.lru.back().body.size();
    stripe.index.erase(stripe.lru.back().path);
    stripe.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    instruments_.evictions->Add();
  }
}

std::size_t PromptCache::stored_bytes() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < stripes_.size(); ++s) {
    std::lock_guard<std::mutex> lock(locks_.Get(s));
    total += stripes_[s].stored_bytes;
  }
  return total;
}

std::size_t PromptCache::entry_count() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < stripes_.size(); ++s) {
    std::lock_guard<std::mutex> lock(locks_.Get(s));
    total += stripes_[s].index.size();
  }
  return total;
}

PromptCache::Stats PromptCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace sww::core
