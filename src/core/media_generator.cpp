#include "core/media_generator.hpp"

#include "core/content_store.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"

namespace sww::core {

using util::Error;
using util::ErrorCode;
using util::Result;

Result<MediaGenerator> MediaGenerator::Create(
    const energy::DeviceProfile& device, Options options) {
  auto pipeline =
      genai::GenerationPipeline::Load(options.image_model, options.text_model);
  if (!pipeline) return pipeline.error();
  return MediaGenerator(device, std::move(options),
                        std::move(pipeline).value());
}

Result<GeneratedMedia> MediaGenerator::Generate(
    const html::GeneratedContentSpec& spec) {
  // One span per materialized asset; under a ManualClock the span's
  // duration is the simulated generation cost on this device.
  obs::ScopedSpan span("genai.generate", "genai");
  Result<GeneratedMedia> media(GeneratedMedia{});
  switch (spec.type) {
    case html::GeneratedContentType::kImage:
      media = GenerateImage(spec);
      break;
    case html::GeneratedContentType::kText:
      media = GenerateText(spec);
      break;
    default:
      return Error(ErrorCode::kInvalidArgument,
                   "unknown generated content type");
  }
  if (!media) {
    span.AddAttribute("error", media.error().ToString());
    return media;
  }
  const GeneratedMedia& item = media.value();
  const bool is_image = item.type == html::GeneratedContentType::kImage;
  span.AddAttribute("type", is_image ? "image" : "text");
  span.AddAttribute("name", item.name);
  span.AddAttribute("model", is_image ? options_.image_model
                                      : options_.text_model);
  if (is_image) {
    span.AddAttribute("steps", std::to_string(options_.inference_steps));
    span.AddAttribute("resolution",
                      util::Format("%dx%d", item.width, item.height));
  } else {
    span.AddAttribute("words", std::to_string(item.words));
  }
  span.AddAttribute("seconds", util::Format("%.3f", item.seconds));
  obs::Registry& registry = obs::Registry::Default();
  registry.GetCounter(is_image ? "genai.images_generated"
                               : "genai.texts_generated").Add();
  registry.GetGauge("genai.generation_seconds").Add(item.seconds);
  registry.GetGauge("genai.generation_energy_wh").Add(item.energy_wh);
  registry.GetHistogram("genai.item_seconds").Observe(item.seconds);
  obs::Tracer::Default().clock().AdvanceSimulated(item.seconds);
  return media;
}

Result<GeneratedMedia> MediaGenerator::GenerateAndReplace(
    html::GeneratedContentSpec& spec) {
  auto media = Generate(spec);
  if (!media) return media;
  if (spec.node != nullptr) {
    if (media.value().type == html::GeneratedContentType::kImage) {
      html::ReplaceWithImage(*spec.node, media.value().file_path,
                             media.value().width, media.value().height,
                             media.value().prompt);
    } else {
      html::ReplaceWithText(*spec.node, media.value().text);
    }
  }
  return media;
}

Result<GeneratedMedia> MediaGenerator::GenerateImage(
    const html::GeneratedContentSpec& spec) {
  std::string prompt = spec.prompt();
  if (prompt.empty()) {
    return Error(ErrorCode::kInvalidArgument, "image spec has empty prompt");
  }
  // §2.3: on-device personalization, consent-gated and strength-capped.
  const PersonalizedPrompt personalized =
      PersonalizePrompt(options_.profile, prompt);
  if (personalized.applied) {
    audit_.Record(PersonalizationRecord{spec.name(), prompt,
                                        personalized.prompt,
                                        personalized.injected_tokens});
    prompt = personalized.prompt;
  }
  const int width = spec.width();
  const int height = spec.height();
  // Seed from the prompt: re-generations of the same prompt agree, which
  // is what makes prompt-as-content a coherent delivery mechanism.
  const std::uint64_t seed = util::Fnv1a64(prompt);

  auto generated = pipeline_.diffusion().Generate(
      prompt, width, height, options_.inference_steps, seed);
  if (!generated) return generated.error();
  pipeline_.CountInvocation();

  GeneratedMedia media;
  media.type = html::GeneratedContentType::kImage;
  media.name = spec.name().empty()
                   ? util::Format("img-%016llx",
                                  static_cast<unsigned long long>(seed))
                   : spec.name();
  media.prompt = prompt;
  media.width = width;
  media.height = height;
  media.file_path = options_.output_prefix + media.name + ".ppm";
  const std::string ppm = generated.value().image.ToPpm();
  media.file_bytes.assign(ppm.begin(), ppm.end());
  media.seconds = energy::ImageGenerationSeconds(
      *device_, pipeline_.diffusion().spec(), options_.inference_steps, width,
      height);
  media.energy_wh = energy::ImageGenerationEnergyWh(
      *device_, pipeline_.diffusion().spec(), options_.inference_steps, width,
      height);
  media.traditional_bytes = TraditionalItemBytes(spec.type, spec.metadata);
  media.metadata_bytes = spec.MetadataBytes();

  // §7 trust: when the author attached a semantic digest, verify both the
  // integrity of the received prompt and the faithfulness of the pixels.
  // The authored prompt is spec.prompt(); `prompt` may additionally carry
  // the bounded personalization suffix.
  if (const std::string digest_hex = spec.metadata.GetString("digest");
      !digest_hex.empty()) {
    media.has_verification = true;
    media.verification =
        VerifyGeneratedContent(spec.prompt(), prompt, DigestFromHex(digest_hex),
                               generated.value().image);
    // Draft-quality generation (fewer steps than the model's default)
    // legitimately carries more residual noise; hold only full-quality
    // output to the faithfulness budget.  Prompt integrity always applies.
    if (options_.inference_steps <
        pipeline_.diffusion().spec().default_steps) {
      media.verification.semantically_faithful = true;
    }
  }

  total_seconds_ += media.seconds;
  total_energy_wh_ += media.energy_wh;
  ++items_;
  return media;
}

Result<GeneratedMedia> MediaGenerator::GenerateText(
    const html::GeneratedContentSpec& spec) {
  // Bullets come from the metadata either as an array ("bullets") or as a
  // single prompt string.
  std::vector<std::string> bullets;
  if (const json::Value* array = spec.metadata.Get("bullets");
      array != nullptr && array->is_array()) {
    for (const json::Value& item : array->AsArray()) {
      if (item.is_string()) bullets.push_back(item.AsString());
    }
  }
  if (bullets.empty()) {
    const std::string prompt = spec.prompt();
    if (prompt.empty()) {
      return Error(ErrorCode::kInvalidArgument,
                   "text spec has neither bullets nor prompt");
    }
    bullets.push_back(prompt);
  }
  // §2.3: a consenting profile may add one bounded personalization bullet.
  const PersonalizedPrompt personalized =
      PersonalizePrompt(options_.profile, util::Join(bullets, "; "));
  if (personalized.applied) {
    audit_.Record(PersonalizationRecord{spec.name(), util::Join(bullets, "; "),
                                        personalized.prompt,
                                        personalized.injected_tokens});
    bullets.push_back("mention " + util::Join(personalized.injected_tokens,
                                              " and "));
  }

  const int words = spec.words();
  std::uint64_t seed = 0;
  for (const std::string& bullet : bullets) {
    seed = util::HashCombine(seed, util::Fnv1a64(bullet));
  }

  auto expanded = pipeline_.text().ExpandBullets(bullets, words, seed);
  if (!expanded) return expanded.error();
  pipeline_.CountInvocation();

  GeneratedMedia media;
  media.type = html::GeneratedContentType::kText;
  media.name = spec.name();
  media.prompt = util::Join(bullets, "; ");
  media.text = expanded.value().text;
  media.words = expanded.value().actual_words;
  media.seconds = energy::TextGenerationSeconds(*device_, pipeline_.text().spec(),
                                                words);
  media.energy_wh = energy::TextGenerationEnergyWh(
      *device_, pipeline_.text().spec(), words);
  media.traditional_bytes = TraditionalItemBytes(spec.type, spec.metadata);
  media.metadata_bytes = spec.MetadataBytes();

  total_seconds_ += media.seconds;
  total_energy_wh_ += media.energy_wh;
  ++items_;
  return media;
}

}  // namespace sww::core
