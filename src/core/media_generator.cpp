#include "core/media_generator.hpp"

#include <future>

#include "core/content_store.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"

namespace sww::core {

using util::Error;
using util::ErrorCode;
using util::Result;

Result<MediaGenerator> MediaGenerator::Create(
    const energy::DeviceProfile& device, Options options) {
  auto pipeline =
      genai::GenerationPipeline::Load(options.image_model, options.text_model);
  if (!pipeline) return pipeline.error();
  return MediaGenerator(device, std::move(options),
                        std::move(pipeline).value());
}

MediaGenerator::BuiltItem MediaGenerator::BuildItem(
    const html::GeneratedContentSpec& spec) const {
  switch (spec.type) {
    case html::GeneratedContentType::kImage:
      return BuildImage(spec);
    case html::GeneratedContentType::kText:
      return BuildText(spec);
    default: {
      BuiltItem item;
      item.media = Error(ErrorCode::kInvalidArgument,
                         "unknown generated content type");
      return item;
    }
  }
}

Result<GeneratedMedia> MediaGenerator::Absorb(BuiltItem built) {
  // One span per materialized asset; under a ManualClock the span's
  // duration is the simulated generation cost on this device.  Emitted on
  // the calling thread so spans nest under the page-fetch span and the
  // trace is deterministic no matter which worker built the item.
  obs::ScopedSpan span("genai.generate", "genai");
  if (built.audit.has_value()) {
    audit_.Record(std::move(built.audit).value());
  }
  if (!built.media) {
    span.AddAttribute("error", built.media.error().ToString());
    return built.media;
  }
  pipeline_.CountInvocation();
  const GeneratedMedia& item = built.media.value();
  const bool is_image = item.type == html::GeneratedContentType::kImage;
  span.AddAttribute("type", is_image ? "image" : "text");
  span.AddAttribute("name", item.name);
  span.AddAttribute("model", is_image ? options_.image_model
                                      : options_.text_model);
  if (is_image) {
    span.AddAttribute("steps", std::to_string(options_.inference_steps));
    span.AddAttribute("resolution",
                      util::Format("%dx%d", item.width, item.height));
  } else {
    span.AddAttribute("words", std::to_string(item.words));
  }
  span.AddAttribute("seconds", util::Format("%.3f", item.seconds));
  obs::Registry& registry = obs::Registry::Default();
  registry.GetCounter(is_image ? "genai.images_generated"
                               : "genai.texts_generated").Add();
  registry.GetGauge("genai.generation_seconds").Add(item.seconds);
  registry.GetGauge("genai.generation_energy_wh").Add(item.energy_wh);
  registry.GetHistogram("genai.item_seconds").Observe(item.seconds);
  obs::Tracer::Default().clock().AdvanceSimulated(item.seconds);
  total_seconds_ += item.seconds;
  total_energy_wh_ += item.energy_wh;
  ++items_;
  return built.media;
}

Result<GeneratedMedia> MediaGenerator::Generate(
    const html::GeneratedContentSpec& spec) {
  return Absorb(BuildItem(spec));
}

Result<GeneratedMedia> MediaGenerator::GenerateAndReplace(
    html::GeneratedContentSpec& spec) {
  auto media = Generate(spec);
  if (!media) return media;
  Splice(spec, media.value());
  return media;
}

void MediaGenerator::Splice(html::GeneratedContentSpec& spec,
                            const GeneratedMedia& media) {
  if (spec.node == nullptr) return;
  if (media.type == html::GeneratedContentType::kImage) {
    html::ReplaceWithImage(*spec.node, media.file_path, media.width,
                           media.height, media.prompt);
  } else {
    html::ReplaceWithText(*spec.node, media.text);
  }
}

Result<GeneratedBatch> MediaGenerator::GenerateBatch(
    const std::vector<html::GeneratedContentSpec>& specs) {
  // Build phase: pure, so it can fan out across the pool.  Workers write
  // only their own slot; result order is fixed by the slot index, not by
  // completion order.
  std::vector<BuiltItem> built(specs.size());
  util::ThreadPool* pool = options_.pool;
  if (pool != nullptr && pool->worker_count() > 1 && specs.size() > 1) {
    std::vector<std::future<void>> pending;
    pending.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      pending.push_back(pool->Submit(
          [this, &specs, &built, i] { built[i] = BuildItem(specs[i]); }));
    }
    for (std::future<void>& item : pending) item.get();
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      built[i] = BuildItem(specs[i]);
    }
  }

  // Merge phase: calling thread, spec order.  The first failed item wins
  // (matching serial semantics) and later items leave no trace in stats,
  // audit, or telemetry.
  GeneratedBatch batch;
  batch.lanes = pool != nullptr ? pool->worker_count() : 1;
  std::vector<double> lane_load(static_cast<std::size_t>(batch.lanes), 0.0);
  batch.items.reserve(specs.size());
  for (BuiltItem& item : built) {
    auto media = Absorb(std::move(item));
    if (!media) return media.error();
    const double seconds = media.value().seconds;
    batch.device_seconds += seconds;
    // Deterministic greedy schedule: this item runs on the least-loaded
    // device lane (ties break low).  The makespan — not the device-second
    // sum — is the page's modeled generation wall time.
    std::size_t lane = 0;
    for (std::size_t l = 1; l < lane_load.size(); ++l) {
      if (lane_load[l] < lane_load[lane]) lane = l;
    }
    lane_load[lane] += seconds;
    batch.items.push_back(std::move(media).value());
  }
  for (const double load : lane_load) {
    batch.wall_seconds = std::max(batch.wall_seconds, load);
  }
  obs::Registry& registry = obs::Registry::Default();
  registry.GetCounter("genai.batches").Add();
  registry.GetHistogram("genai.batch_makespan_seconds")
      .Observe(batch.wall_seconds);
  return batch;
}

MediaGenerator::BuiltItem MediaGenerator::BuildImage(
    const html::GeneratedContentSpec& spec) const {
  BuiltItem item;
  std::string prompt = spec.prompt();
  if (prompt.empty()) {
    item.media = Error(ErrorCode::kInvalidArgument, "image spec has empty prompt");
    return item;
  }
  // §2.3: on-device personalization, consent-gated and strength-capped.
  const PersonalizedPrompt personalized =
      PersonalizePrompt(options_.profile, prompt);
  if (personalized.applied) {
    item.audit = PersonalizationRecord{spec.name(), prompt, personalized.prompt,
                                       personalized.injected_tokens};
    prompt = personalized.prompt;
  }
  const int width = spec.width();
  const int height = spec.height();
  // Seed from the prompt: re-generations of the same prompt agree, which
  // is what makes prompt-as-content a coherent delivery mechanism.
  const std::uint64_t seed = util::Fnv1a64(prompt);

  auto generated = pipeline_.diffusion().Generate(
      prompt, width, height, options_.inference_steps, seed);
  if (!generated) {
    item.media = generated.error();
    return item;
  }

  GeneratedMedia media;
  media.type = html::GeneratedContentType::kImage;
  media.name = spec.name().empty()
                   ? util::Format("img-%016llx",
                                  static_cast<unsigned long long>(seed))
                   : spec.name();
  media.prompt = prompt;
  media.width = width;
  media.height = height;
  media.file_path = options_.output_prefix + media.name + ".ppm";
  const std::string ppm = generated.value().image.ToPpm();
  media.file_bytes.assign(ppm.begin(), ppm.end());
  media.seconds = energy::ImageGenerationSeconds(
      *device_, pipeline_.diffusion().spec(), options_.inference_steps, width,
      height);
  media.energy_wh = energy::ImageGenerationEnergyWh(
      *device_, pipeline_.diffusion().spec(), options_.inference_steps, width,
      height);
  media.traditional_bytes = TraditionalItemBytes(spec.type, spec.metadata);
  media.metadata_bytes = spec.MetadataBytes();

  // §7 trust: when the author attached a semantic digest, verify both the
  // integrity of the received prompt and the faithfulness of the pixels.
  // The authored prompt is spec.prompt(); `prompt` may additionally carry
  // the bounded personalization suffix.
  if (const std::string digest_hex = spec.metadata.GetString("digest");
      !digest_hex.empty()) {
    media.has_verification = true;
    media.verification =
        VerifyGeneratedContent(spec.prompt(), prompt, DigestFromHex(digest_hex),
                               generated.value().image);
    // Draft-quality generation (fewer steps than the model's default)
    // legitimately carries more residual noise; hold only full-quality
    // output to the faithfulness budget.  Prompt integrity always applies.
    if (options_.inference_steps <
        pipeline_.diffusion().spec().default_steps) {
      media.verification.semantically_faithful = true;
    }
  }

  item.media = std::move(media);
  return item;
}

MediaGenerator::BuiltItem MediaGenerator::BuildText(
    const html::GeneratedContentSpec& spec) const {
  BuiltItem item;
  // Bullets come from the metadata either as an array ("bullets") or as a
  // single prompt string.
  std::vector<std::string> bullets;
  if (const json::Value* array = spec.metadata.Get("bullets");
      array != nullptr && array->is_array()) {
    for (const json::Value& value : array->AsArray()) {
      if (value.is_string()) bullets.push_back(value.AsString());
    }
  }
  if (bullets.empty()) {
    const std::string prompt = spec.prompt();
    if (prompt.empty()) {
      item.media = Error(ErrorCode::kInvalidArgument,
                         "text spec has neither bullets nor prompt");
      return item;
    }
    bullets.push_back(prompt);
  }
  // §2.3: a consenting profile may add one bounded personalization bullet.
  // The authored prompt (bullets joined) is invariant across the branches
  // below — join once and reuse it for personalization, the audit record,
  // and the media prompt.
  const std::string joined = util::Join(bullets, "; ");
  const PersonalizedPrompt personalized =
      PersonalizePrompt(options_.profile, joined);
  if (personalized.applied) {
    item.audit = PersonalizationRecord{spec.name(), joined,
                                       personalized.prompt,
                                       personalized.injected_tokens};
    bullets.push_back("mention " + util::Join(personalized.injected_tokens,
                                              " and "));
  }

  const int words = spec.words();
  std::uint64_t seed = 0;
  for (const std::string& bullet : bullets) {
    seed = util::HashCombine(seed, util::Fnv1a64(bullet));
  }

  auto expanded = pipeline_.text().ExpandBullets(bullets, words, seed);
  if (!expanded) {
    item.media = expanded.error();
    return item;
  }

  GeneratedMedia media;
  media.type = html::GeneratedContentType::kText;
  media.name = spec.name();
  // With a personalization bullet appended the effective prompt grew;
  // otherwise it is exactly the authored join.
  media.prompt = personalized.applied ? util::Join(bullets, "; ") : joined;
  media.text = expanded.value().text;
  media.words = expanded.value().actual_words;
  media.seconds = energy::TextGenerationSeconds(*device_, pipeline_.text().spec(),
                                                words);
  media.energy_wh = energy::TextGenerationEnergyWh(
      *device_, pipeline_.text().spec(), words);
  media.traditional_bytes = TraditionalItemBytes(spec.type, spec.metadata);
  media.metadata_bytes = spec.MetadataBytes();
  item.media = std::move(media);
  return item;
}

}  // namespace sww::core
