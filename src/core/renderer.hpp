// renderer.hpp — page rendering (the prototype's PyQt GUI stand-in, §5.2).
//
// Renders the post-generation DOM to a plain-text layout (headings,
// paragraphs, image boxes with dimensions and alt text) and optionally
// writes every generated/fetched file to a directory so the output can be
// inspected.  Presentation-only; see DESIGN.md §1 for the substitution
// rationale.
#pragma once

#include <map>
#include <string>

#include "core/personalization.hpp"
#include "html/dom.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace sww::core {

struct RenderOptions {
  int line_width = 72;
  bool show_image_boxes = true;
};

class PageRenderer {
 public:
  explicit PageRenderer(RenderOptions options = {}) : options_(options) {}

  /// Text layout of the page.
  std::string RenderToText(const html::Node& document) const;

  /// Text layout plus the §2.3 transparency footer: when personalization
  /// was applied, the page discloses exactly what was changed.
  std::string RenderWithDisclosure(const html::Node& document,
                                   const PersonalizationAudit& audit) const;

  /// Write all files (e.g. generated PPMs) under `directory`, creating it.
  util::Status WriteFiles(const std::map<std::string, util::Bytes>& files,
                          const std::string& directory) const;

 private:
  void RenderNode(const html::Node& node, std::string& out, int depth) const;
  void AppendWrapped(std::string_view text, std::string& out) const;

  RenderOptions options_;
};

}  // namespace sww::core
