// upscaler.hpp — content upscaling (§2.2 of the paper).
//
// "another option is content upscaling, such as turning small images into
// large, high resolution ones ... Content upscaling is also usually faster
// than content generation, with sub-second inference."  The upscaler is the
// capability behind the GEN_ABILITY kGenAbilityUpscaleOnly bit: a server can
// ship a small image and let the client enlarge it, cutting transmission
// bytes quadratically while preserving the semantic field exactly
// (bilinear interpolation preserves cell means).
#pragma once

#include "genai/image.hpp"
#include "util/error.hpp"

namespace sww::genai {

struct UpscaleResult {
  Image image;
  double input_megapixels = 0.0;
  double output_megapixels = 0.0;
};

/// Bilinear upscale with deterministic detail synthesis (seeded high-pass
/// texture so the output is not just blurry).
util::Result<UpscaleResult> Upscale(const Image& input, int out_width,
                                    int out_height, std::uint64_t seed = 1);

/// Convenience: integral scale factor.
util::Result<UpscaleResult> UpscaleBy(const Image& input, int factor,
                                      std::uint64_t seed = 1);

}  // namespace sww::genai
