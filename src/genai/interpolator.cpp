#include "genai/interpolator.hpp"

#include <algorithm>
#include <cmath>

namespace sww::genai {

using util::Error;
using util::ErrorCode;
using util::Result;

Result<Image> InterpolateFrames(const Image& first, const Image& second,
                                double t) {
  if (first.empty() || second.empty()) {
    return Error(ErrorCode::kInvalidArgument, "cannot interpolate empty frames");
  }
  if (first.width() != second.width() || first.height() != second.height()) {
    return Error(ErrorCode::kInvalidArgument,
                 "frame dimensions must match for interpolation");
  }
  if (t < 0.0 || t > 1.0) {
    return Error(ErrorCode::kInvalidArgument, "t must be in [0,1]");
  }
  Image out(first.width(), first.height());
  for (int y = 0; y < first.height(); ++y) {
    for (int x = 0; x < first.width(); ++x) {
      const Pixel a = first.Get(x, y);
      const Pixel b = second.Get(x, y);
      auto blend = [t](std::uint8_t p, std::uint8_t q) {
        return static_cast<std::uint8_t>(
            std::clamp(p * (1.0 - t) + q * t, 0.0, 255.0));
      };
      out.Set(x, y, Pixel{blend(a.r, b.r), blend(a.g, b.g), blend(a.b, b.b)});
    }
  }
  return out;
}

Result<std::vector<Image>> BoostFrameRate(const std::vector<Image>& frames) {
  if (frames.size() < 2) {
    return Error(ErrorCode::kInvalidArgument,
                 "need at least two frames to boost");
  }
  std::vector<Image> boosted;
  boosted.reserve(frames.size() * 2 - 1);
  for (std::size_t i = 0; i + 1 < frames.size(); ++i) {
    boosted.push_back(frames[i]);
    auto middle = InterpolateFrames(frames[i], frames[i + 1], 0.5);
    if (!middle) return middle.error();
    boosted.push_back(std::move(middle).value());
  }
  boosted.push_back(frames.back());
  return boosted;
}

}  // namespace sww::genai
