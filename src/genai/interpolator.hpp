// interpolator.hpp — frame interpolation (§3.2's frame-rate boosting).
//
// "frame rate boosting, e.g., from 30fps to 60fps, is a likely early use
// case.  Client-side video upscaling, including frame rate boosting ...
// is already available using GPU features like NVIDIA's RTX Video Super
// Resolution or AMD's Fluid Motion Frames."  This is the synthesis
// primitive behind the kGenAbilityFrameRateBoost capability: given two
// consecutive frames, produce the in-between frame.
#pragma once

#include "genai/image.hpp"
#include "util/error.hpp"

namespace sww::genai {

/// Interpolate between two equally-sized frames at parameter t ∈ [0,1]
/// (0 = first frame, 1 = second).  Linear blending preserves the semantic
/// cell field, so an interpolated frame scores between its endpoints on
/// prompt-similarity metrics — motion-smooth, semantics-stable.
util::Result<Image> InterpolateFrames(const Image& first, const Image& second,
                                      double t = 0.5);

/// Double the frame rate of a sequence: between every adjacent pair an
/// interpolated frame is inserted (n frames → 2n-1 frames).
util::Result<std::vector<Image>> BoostFrameRate(const std::vector<Image>& frames);

}  // namespace sww::genai
