#include "genai/llm.hpp"

#include <algorithm>
#include <cmath>

#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace sww::genai {

using util::Error;
using util::ErrorCode;
using util::Result;

const std::vector<std::string>& FillerAdjectives() {
  static const std::vector<std::string> words = {
      "remarkable", "quiet",    "vivid",   "gentle",  "notable", "modern",
      "broad",      "subtle",   "steady",  "curious", "fresh",   "distant",
      "familiar",   "pleasant", "simple",  "rich",    "calm",    "lively",
      "memorable",  "scenic",   "practical", "detailed", "welcoming", "open"};
  return words;
}

const std::vector<std::string>& FillerNouns() {
  static const std::vector<std::string> words = {
      "journey", "detail", "surface", "moment",  "corner",  "season",
      "story",   "view",   "path",    "visitor", "morning", "effect",
      "feature", "place",  "texture", "light",   "pattern", "region",
      "scene",   "guide",  "account", "impression", "setting", "experience"};
  return words;
}

const std::vector<std::string>& FillerVerbs() {
  static const std::vector<std::string> words = {
      "reveals",  "offers",   "suggests", "captures", "presents", "follows",
      "reaches",  "frames",   "invites",  "carries",  "shows",    "brings",
      "rewards",  "combines", "holds",    "opens",    "marks",    "traces"};
  return words;
}

const std::vector<std::string>& StopWords() {
  static const std::vector<std::string> words = {
      "a",   "an",  "and", "are", "as",   "at",   "be",  "by",   "for",
      "from", "has", "he",  "in",  "is",   "it",   "its", "of",   "on",
      "that", "the", "to",  "was", "were", "will", "with", "this", "but",
      "or",  "not", "they", "their", "over", "into", "about"};
  return words;
}

bool IsStopWord(std::string_view word) {
  for (const std::string& w : StopWords()) {
    if (w == word) return true;
  }
  return false;
}

namespace {

/// Deterministic sentence assembly: subject-verb-object templates joined
/// with the bullet's carried content words.
class SentenceBuilder {
 public:
  explicit SentenceBuilder(util::Rng& rng) : rng_(rng) {}

  /// One sentence built around up to three content words.
  std::string Build(const std::vector<std::string>& content_words) {
    static const std::vector<std::string> kOpeners = {
        "Along the way", "In many ways",   "From the first moment",
        "Taken together", "At a glance",   "Throughout the visit",
        "Time and again", "For most visitors", "In the end"};
    std::string sentence;
    const bool use_opener = rng_.NextBool(0.4);
    if (use_opener) {
      sentence += kOpeners[rng_.NextIndex(kOpeners.size())] + ", ";
    }
    sentence += "the " + Pick(FillerAdjectives()) + " " + Pick(FillerNouns()) +
                " " + Pick(FillerVerbs());
    if (!content_words.empty()) {
      sentence += " the " + JoinContent(content_words);
    } else {
      sentence += " a " + Pick(FillerAdjectives()) + " " + Pick(FillerNouns());
    }
    if (rng_.NextBool(0.5)) {
      sentence += " with a " + Pick(FillerAdjectives()) + " " + Pick(FillerNouns());
    }
    sentence += ".";
    // Capitalize.
    if (!sentence.empty()) {
      sentence[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(sentence[0])));
    }
    return sentence;
  }

 private:
  std::string Pick(const std::vector<std::string>& bank) {
    return bank[rng_.NextIndex(bank.size())];
  }

  std::string JoinContent(const std::vector<std::string>& words) {
    std::string out;
    for (std::size_t i = 0; i < words.size(); ++i) {
      if (i != 0) out += (i + 1 == words.size()) ? " and " : ", ";
      out += words[i];
    }
    return out;
  }

  util::Rng& rng_;
};

}  // namespace

Result<ExpandedText> TextModel::ExpandBullets(
    const std::vector<std::string>& bullets, int target_words,
    std::uint64_t seed) const {
  if (target_words <= 0) {
    return Error(ErrorCode::kInvalidArgument, "target word count must be positive");
  }
  if (bullets.empty()) {
    return Error(ErrorCode::kInvalidArgument, "at least one bullet required");
  }

  std::uint64_t content_hash = seed;
  for (const std::string& b : bullets) {
    content_hash = util::HashCombine(content_hash, util::Fnv1a64(b));
  }
  util::Rng rng(util::HashCombine(content_hash, util::Fnv1a64(spec_.name)));

  // 1. Decide the actual length: requested ± model-specific control error.
  //    The small positive bias matches the paper's ~1.3% mean overshoot.
  const double relative_error = rng.NextGaussian(0.013, spec_.length_sigma);
  const double clamped = std::clamp(relative_error, -0.20, 0.20);  // §6.3.2 cap
  const int actual_target =
      std::max(10, static_cast<int>(std::lround(target_words * (1.0 + clamped))));

  // 2. Collect content words, dropping each with probability (1-fidelity).
  std::vector<std::string> carried;
  std::size_t content_total = 0;
  for (const std::string& bullet : bullets) {
    for (const std::string& token : util::Tokenize(bullet)) {
      if (IsStopWord(token)) continue;
      ++content_total;
      if (rng.NextDouble() < spec_.fidelity) {
        carried.push_back(token);
      } else {
        // A hallucinated substitute: semantically unrelated bank word.
        carried.push_back(FillerNouns()[rng.NextIndex(FillerNouns().size())]);
      }
    }
  }

  // 3. Assemble sentences until the word budget is met, weaving 2-3
  //    carried words into each.
  SentenceBuilder builder(rng);
  std::string text;
  int words = 0;
  std::size_t cursor = 0;
  while (words < actual_target) {
    std::vector<std::string> chunk;
    for (int k = 0; k < 3 && cursor < carried.size(); ++k) {
      chunk.push_back(carried[cursor++]);
    }
    const std::string sentence = builder.Build(chunk);
    if (!text.empty()) text += " ";
    text += sentence;
    words = static_cast<int>(util::CountWords(text));
    if (cursor >= carried.size()) cursor = 0;  // recycle for long outputs
    if (carried.empty()) break;
  }
  // Length control: the model trims its final sentence to land on its
  // (noisy) internal target, keeping the overall overshoot within the
  // ±20% band §6.3.2 reports.
  if (words > actual_target) {
    const std::vector<std::string> all_words = util::SplitWhitespace(text);
    text = util::Join(
        std::vector<std::string>(all_words.begin(),
                                 all_words.begin() + actual_target),
        " ");
    if (!text.empty() && text.back() != '.') text += ".";
  }

  // 4. Measure how much of the source actually made it through.
  std::size_t present = 0;
  const std::string lowered = util::ToLower(text);
  std::vector<std::string> output_tokens = util::Tokenize(lowered);
  auto contains = [&output_tokens](const std::string& w) {
    return std::find(output_tokens.begin(), output_tokens.end(), w) !=
           output_tokens.end();
  };
  std::size_t checked = 0;
  for (const std::string& bullet : bullets) {
    for (const std::string& token : util::Tokenize(bullet)) {
      if (IsStopWord(token)) continue;
      ++checked;
      if (contains(token)) ++present;
    }
  }

  ExpandedText out;
  out.text = std::move(text);
  out.requested_words = target_words;
  out.actual_words = static_cast<int>(util::CountWords(out.text));
  out.carried_fraction =
      checked == 0 ? 0.0 : static_cast<double>(present) / static_cast<double>(checked);
  (void)content_total;
  return out;
}

Result<ExpandedText> TextModel::ExpandPrompt(std::string_view prompt,
                                             int target_words,
                                             std::uint64_t seed) const {
  return ExpandBullets({std::string(prompt)}, target_words, seed);
}

std::vector<std::string> TextModel::SummarizeToBullets(
    std::string_view text, std::size_t max_bullets) const {
  // Split into sentences, keep each sentence's content words.
  std::vector<std::string> bullets;
  std::string current;
  auto flush = [&]() {
    const auto tokens = util::Tokenize(current);
    std::vector<std::string> kept;
    for (const std::string& token : tokens) {
      if (!IsStopWord(token)) kept.push_back(token);
    }
    if (kept.size() > 8) kept.resize(8);  // bullets are terse
    if (!kept.empty() && bullets.size() < max_bullets) {
      bullets.push_back(util::Join(kept, " "));
    }
    current.clear();
  };
  for (char c : text) {
    current.push_back(c);
    if (c == '.' || c == '!' || c == '?') flush();
  }
  flush();
  return bullets;
}

}  // namespace sww::genai
