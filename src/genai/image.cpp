#include "genai/image.hpp"

#include <algorithm>
#include <cstdio>

namespace sww::genai {

using util::Error;
using util::ErrorCode;
using util::Result;

Image::Image(int width, int height)
    : width_(width),
      height_(height),
      data_(static_cast<std::size_t>(width) * height * 3, 0) {}

Pixel Image::Get(int x, int y) const {
  const std::size_t i = (static_cast<std::size_t>(y) * width_ + x) * 3;
  return Pixel{data_[i], data_[i + 1], data_[i + 2]};
}

void Image::Set(int x, int y, Pixel pixel) {
  const std::size_t i = (static_cast<std::size_t>(y) * width_ + x) * 3;
  data_[i] = pixel.r;
  data_[i + 1] = pixel.g;
  data_[i + 2] = pixel.b;
}

std::uint8_t Image::Luminance(int x, int y) const {
  const Pixel p = Get(x, y);
  return static_cast<std::uint8_t>((299 * p.r + 587 * p.g + 114 * p.b) / 1000);
}

double Image::MeanLuminance(int x0, int y0, int x1, int y1) const {
  x0 = std::max(0, x0);
  y0 = std::max(0, y0);
  x1 = std::min(width_, x1);
  y1 = std::min(height_, y1);
  if (x0 >= x1 || y0 >= y1) return 0.0;
  double sum = 0.0;
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      sum += Luminance(x, y);
    }
  }
  return sum / (static_cast<double>(x1 - x0) * (y1 - y0));
}

std::string Image::ToPpm() const {
  char header[64];
  std::snprintf(header, sizeof(header), "P6\n%d %d\n255\n", width_, height_);
  std::string out(header);
  out.append(reinterpret_cast<const char*>(data_.data()), data_.size());
  return out;
}

Result<Image> Image::FromPpm(std::string_view ppm) {
  // Parse "P6\n<w> <h>\n255\n" followed by raw bytes.  Whitespace-tolerant.
  if (ppm.substr(0, 2) != "P6") {
    return Error(ErrorCode::kMalformed, "not a P6 PPM");
  }
  std::size_t pos = 2;
  auto skip_space_and_comments = [&]() {
    while (pos < ppm.size()) {
      if (std::isspace(static_cast<unsigned char>(ppm[pos]))) {
        ++pos;
      } else if (ppm[pos] == '#') {
        while (pos < ppm.size() && ppm[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  };
  auto read_int = [&]() -> Result<int> {
    skip_space_and_comments();
    int value = 0;
    bool any = false;
    while (pos < ppm.size() && std::isdigit(static_cast<unsigned char>(ppm[pos]))) {
      value = value * 10 + (ppm[pos] - '0');
      ++pos;
      any = true;
    }
    if (!any) return Error(ErrorCode::kMalformed, "ppm: expected integer");
    return value;
  };
  auto width = read_int();
  if (!width) return width.error();
  auto height = read_int();
  if (!height) return height.error();
  auto maxval = read_int();
  if (!maxval) return maxval.error();
  if (maxval.value() != 255) {
    return Error(ErrorCode::kMalformed, "ppm: only maxval 255 supported");
  }
  ++pos;  // single whitespace after maxval
  const std::size_t needed =
      static_cast<std::size_t>(width.value()) * height.value() * 3;
  if (ppm.size() - pos < needed) {
    return Error(ErrorCode::kTruncated, "ppm: pixel data truncated");
  }
  Image image(width.value(), height.value());
  std::copy_n(reinterpret_cast<const std::uint8_t*>(ppm.data() + pos), needed,
              image.data_.begin());
  return image;
}

}  // namespace sww::genai
