// model_specs.hpp — the model registry with calibrated parameters.
//
// The paper evaluates four text-to-image models (Stable Diffusion 2.1 Base,
// SD 3 Medium, SD 3.5 Medium, DALLE-3) and four text-to-text models
// (Llama 3.2, DeepSeek-R1 1.5B / 8B / 14B).  Each entry here carries the
// parameters that calibrate the simulators to the paper's operating
// points: fidelity (→ CLIP / SBERT scores), latent arena quality (→ ELO),
// per-step latency on each device (→ Table 1 / Table 2 timing), and
// word-count-control error (→ §6.3.2 overshoot).  DESIGN.md §4 documents
// the calibration method.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace sww::genai {

/// Text-to-image model parameters.
struct ImageModelSpec {
  std::string name;            ///< registry key, e.g. "sd-3-medium"
  std::string display_name;    ///< as printed in the paper's tables
  double fidelity;             ///< 0..1, fraction of prompt signal planted
  double elo_quality;          ///< latent Bradley-Terry strength (ELO scale)
  double step_cost_laptop_s;   ///< s/step at the 224² Table 1 operating point
  double step_cost_workstation_s;
  bool server_only = false;    ///< DALLE-3: API model, no client-side timing
  int default_steps = 15;      ///< the paper's evaluation step count
};

/// Text-to-text model parameters.
struct TextModelSpec {
  std::string name;             ///< e.g. "deepseek-r1-8b"
  std::string display_name;
  double fidelity;              ///< 0..1 → SBERT band (paper: 0.82–0.91)
  double length_sigma;          ///< relative word-count error spread
  double base_time_workstation_s;  ///< §6.3.2: 6.98–14.33 s band
  double laptop_slowdown = 2.5;    ///< paper: "performance benefit ... only 2.5×"
};

/// Registry keys used throughout the evaluation harness.
inline constexpr std::string_view kSd21 = "sd-2.1-base";
inline constexpr std::string_view kSd3Medium = "sd-3-medium";
inline constexpr std::string_view kSd35Medium = "sd-3.5-medium";
inline constexpr std::string_view kDalle3 = "dalle-3";
inline constexpr std::string_view kGpt4o = "gpt-4o";  // ELO reference only

inline constexpr std::string_view kLlama32 = "llama-3.2";
inline constexpr std::string_view kDeepseek15b = "deepseek-r1-1.5b";
inline constexpr std::string_view kDeepseek8b = "deepseek-r1-8b";
inline constexpr std::string_view kDeepseek14b = "deepseek-r1-14b";

const std::vector<ImageModelSpec>& ImageModels();
const std::vector<TextModelSpec>& TextModels();

util::Result<ImageModelSpec> FindImageModel(std::string_view name);
util::Result<TextModelSpec> FindTextModel(std::string_view name);

}  // namespace sww::genai
