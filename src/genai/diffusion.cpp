#include "genai/diffusion.hpp"

#include <algorithm>
#include <cmath>

#include <vector>

#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace sww::genai {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

std::uint8_t ClampByte(double v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
}

/// Prompt-derived base hue: stable per prompt, so "a green forest" and
/// re-generations of it look consistent.
void PromptHue(std::string_view prompt, double* r_gain, double* g_gain,
               double* b_gain) {
  const std::uint64_t h = util::Fnv1a64(util::ToLower(prompt));
  *r_gain = 0.75 + 0.5 * util::HashToUnit(h);
  *g_gain = 0.75 + 0.5 * util::HashToUnit(h * 0x9e3779b97f4a7c15ULL + 1);
  *b_gain = 0.75 + 0.5 * util::HashToUnit(h * 0xbf58476d1ce4e5b9ULL + 2);
}

/// Render a cell-grid luminance field to pixels with smooth (bilinear)
/// interpolation between cell centers plus fine deterministic texture.
///
/// Row-tile parallel when a pool is given.  The per-pixel texture is a
/// stateless counter hash of (seed, x, y) — every pixel's noise depends
/// only on its own coordinates, so output bytes are identical for any
/// tile schedule and any thread count (including none).
Image RenderField(const std::vector<double>& field, int width, int height,
                  std::string_view prompt, std::uint64_t seed,
                  util::ThreadPool* pool) {
  Image image(width, height);
  double r_gain = 1.0, g_gain = 1.0, b_gain = 1.0;
  PromptHue(prompt, &r_gain, &g_gain, &b_gain);
  const std::uint64_t texture_seed = util::HashCombine(seed, 0x7e37a2u);

  auto cell_value = [&field](int cx, int cy) {
    cx = std::clamp(cx, 0, kSemanticGrid - 1);
    cy = std::clamp(cy, 0, kSemanticGrid - 1);
    return field[static_cast<std::size_t>(cy * kSemanticGrid + cx)];
  };

  auto render_rows = [&](std::int64_t y_begin, std::int64_t y_end) {
    // Row buffers: the bilinear carrier is computed per pixel exactly as
    // before, while the counter-hash texture for the whole row is filled
    // by the SIMD fast lane (4–8 (seed, x, y) triples hashed per step).
    // Both are elementwise, so the image bytes are identical for any
    // dispatch lane, tile schedule, and thread count.
    std::vector<double> value(static_cast<std::size_t>(width));
    std::vector<double> texture(static_cast<std::size_t>(width));
    for (int y = static_cast<int>(y_begin); y < y_end; ++y) {
      for (int x = 0; x < width; ++x) {
        // Bilinear interpolation in cell space, sampled at cell centers.
        const double fx = (static_cast<double>(x) + 0.5) / width * kSemanticGrid - 0.5;
        const double fy = (static_cast<double>(y) + 0.5) / height * kSemanticGrid - 0.5;
        const int cx = static_cast<int>(std::floor(fx));
        const int cy = static_cast<int>(std::floor(fy));
        const double tx = fx - cx;
        const double ty = fy - cy;
        value[static_cast<std::size_t>(x)] =
            cell_value(cx, cy) * (1 - tx) * (1 - ty) +
            cell_value(cx + 1, cy) * tx * (1 - ty) +
            cell_value(cx, cy + 1) * (1 - tx) * ty +
            cell_value(cx + 1, cy + 1) * tx * ty;
      }
      // Fine per-pixel texture: zero-mean, so cell means (the semantic
      // carrier) are preserved.
      util::simd::CounterRangeRow(texture_seed, 0,
                                  static_cast<std::uint64_t>(y), -9.0, 9.0,
                                  texture.data(),
                                  static_cast<std::size_t>(width));
      for (int x = 0; x < width; ++x) {
        const double luminance = 128.0 + value[static_cast<std::size_t>(x)] +
                                 texture[static_cast<std::size_t>(x)];
        image.Set(x, y,
                  Pixel{ClampByte(luminance * r_gain), ClampByte(luminance * g_gain),
                        ClampByte(luminance * b_gain)});
      }
    }
  };

  if (pool != nullptr && pool->worker_count() > 1) {
    pool->ParallelFor(height, render_rows);
  } else {
    render_rows(0, height);
  }
  return image;
}

}  // namespace

Result<GeneratedImage> DiffusionModel::Generate(std::string_view prompt,
                                                int width, int height,
                                                int steps,
                                                std::uint64_t seed) const {
  if (width <= 0 || height <= 0) {
    return Error(ErrorCode::kInvalidArgument, "image dimensions must be positive");
  }
  if (steps <= 0) {
    return Error(ErrorCode::kInvalidArgument, "step count must be positive");
  }

  // 1. Text conditioning.
  const Vec text_embedding = TextEmbeddingOf(prompt);
  const std::vector<double> target = SemanticField(text_embedding);

  // 2. Seeded initial latent: pure Gaussian noise over the cell grid.
  const int cells = kSemanticGrid * kSemanticGrid;
  util::Rng latent_rng(util::HashCombine(seed, util::Fnv1a64(prompt)));
  std::vector<double> latent(static_cast<std::size_t>(cells));
  for (double& v : latent) {
    v = latent_rng.NextGaussian(0.0, kPlantAmplitude);
  }

  // 3. Denoising: each step removes a constant fraction of the remaining
  //    distance to the fidelity-attenuated target.  After many steps the
  //    latent converges to fidelity·target + residual.
  const double per_step_removal = 0.30;
  double noise_share = 1.0;
  for (int s = 0; s < steps; ++s) {
    noise_share *= (1.0 - per_step_removal);
  }
  // Model capability bounds the planted signal; an unconverged schedule
  // (few steps) leaves extra noise in the output.
  const double plant = spec_.fidelity * (1.0 - noise_share);
  // Residual-noise model: the final latent is a convex blend — `plant` of
  // the prompt's semantic field, and the full (1 - plant) remainder of the
  // initial Gaussian latent kept as structured "imagination" noise, the
  // part of the picture the prompt does not pin down.  (The noise term is
  // deliberately NOT attenuated further by noise_share: an unconverged
  // schedule already shrinks `plant` itself.)  Cells are independent, so
  // the blend runs tile-parallel when a pool is attached.
  auto denoise_cells = [&](std::int64_t c_begin, std::int64_t c_end) {
    util::simd::Blend(latent.data() + c_begin, target.data() + c_begin, plant,
                      static_cast<std::size_t>(c_end - c_begin));
  };
  if (pool_ != nullptr && pool_->worker_count() > 1) {
    pool_->ParallelFor(cells, denoise_cells);
  } else {
    denoise_cells(0, cells);
  }

  // 4. Render.
  GeneratedImage out;
  out.image = RenderField(latent, width, height, prompt, seed, pool_);
  out.info.model = spec_.name;
  out.info.steps = steps;
  out.info.width = width;
  out.info.height = height;
  out.info.seed = seed;
  out.info.plant_fidelity = plant;
  out.info.residual_noise = 1.0 - plant;
  return out;
}

Image DiffusionModel::RandomImage(int width, int height, std::uint64_t seed) {
  const int cells = kSemanticGrid * kSemanticGrid;
  util::Rng rng(util::HashCombine(seed, 0xDEADBEEFULL));
  std::vector<double> latent(static_cast<std::size_t>(cells));
  for (double& v : latent) v = rng.NextGaussian(0.0, kPlantAmplitude);
  return RenderField(latent, width, height, "", seed, nullptr);
}

}  // namespace sww::genai
