// llm.hpp — the text-expansion model simulator.
//
// Substitutes for the Ollama-served LLMs (Llama 3.2, DeepSeek-R1 family)
// in the paper's text pipeline (§4.1, §6.3.2).  The SWW task is *expansion
// without loss of information*: route-specific text is "turned into bullet
// points that can be used in a prompt to generate the relevant text"
// (§2.1).  The simulator expands bullets into prose by:
//
//   * carrying each bullet's content words into the output with
//     probability `fidelity` (missed words drift to unrelated bank words,
//     which is exactly what depresses the SBERT score),
//   * wrapping them in deterministic, seeded sentence templates,
//   * targeting the requested word count with a per-model relative error
//     (length_sigma) — reproducing §6.3.2's word-length overshoot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "genai/model_specs.hpp"
#include "util/error.hpp"

namespace sww::genai {

struct ExpandedText {
  std::string text;
  int requested_words = 0;
  int actual_words = 0;
  /// Fraction of bullet content words present in the output.
  double carried_fraction = 0.0;
};

class TextModel {
 public:
  explicit TextModel(TextModelSpec spec) : spec_(std::move(spec)) {}

  const TextModelSpec& spec() const { return spec_; }

  /// Expand bullet points into ~target_words of prose.
  util::Result<ExpandedText> ExpandBullets(const std::vector<std::string>& bullets,
                                           int target_words,
                                           std::uint64_t seed) const;

  /// Expand a free-form prompt (treated as a single bullet).
  util::Result<ExpandedText> ExpandPrompt(std::string_view prompt,
                                          int target_words,
                                          std::uint64_t seed) const;

  /// Compress prose into bullet points (the server-side conversion path,
  /// §4.2): keeps the most informative content words of each sentence.
  std::vector<std::string> SummarizeToBullets(std::string_view text,
                                              std::size_t max_bullets = 8) const;

 private:
  TextModelSpec spec_;
};

/// Shared generic word bank (also used by the workload generators).
const std::vector<std::string>& FillerAdjectives();
const std::vector<std::string>& FillerNouns();
const std::vector<std::string>& FillerVerbs();
const std::vector<std::string>& StopWords();
bool IsStopWord(std::string_view word);

}  // namespace sww::genai
