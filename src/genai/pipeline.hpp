// pipeline.hpp — the preloaded generation pipeline (§4.1).
//
// The paper's prototype preloads the image-generation pipeline "from a
// library (for example, a Diffusers library) ... for performance
// optimization.  Since it is a large object, it would otherwise need to be
// repeatedly deleted and reloaded within the media generator every time it
// is invoked."  This class models exactly that: constructing a pipeline
// pays a one-time (simulated) weight-load cost; each Generate call then
// runs at step cost only.  Tear-down/reload per item is the ablation
// measured by bench_table1_models.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "genai/diffusion.hpp"
#include "genai/llm.hpp"
#include "genai/model_specs.hpp"
#include "util/error.hpp"

namespace sww::genai {

/// Simulated cost of loading model weights into memory, seconds.  Scaled
/// from real-world Diffusers pipeline load times (tens of seconds for
/// multi-GB checkpoints from cold cache).
double PipelineLoadSeconds(const ImageModelSpec& spec);
double PipelineLoadSeconds(const TextModelSpec& spec);

/// A loaded text-to-image pipeline plus a loaded text-to-text model —
/// what the client's media generator holds onto between invocations.
class GenerationPipeline {
 public:
  /// Load both models.  `image_model` / `text_model` are registry names.
  static util::Result<GenerationPipeline> Load(std::string_view image_model,
                                               std::string_view text_model);

  const DiffusionModel& diffusion() const { return *diffusion_; }
  const TextModel& text() const { return *text_; }

  /// Attach a thread pool to the kernels that can use one (the diffusion
  /// model's tile-parallel renderer).  nullptr restores serial execution.
  void SetThreadPool(util::ThreadPool* pool) {
    diffusion_->set_thread_pool(pool);
  }

  /// Accumulated one-time load cost in simulated seconds.
  double load_seconds() const { return load_seconds_; }

  /// Number of Generate/Expand calls served since load (pipeline reuse
  /// statistics for the ablation bench).
  std::uint64_t invocations() const { return invocations_; }
  void CountInvocation() { ++invocations_; }

 private:
  GenerationPipeline(DiffusionModel diffusion, TextModel text, double load_s)
      : diffusion_(std::make_shared<DiffusionModel>(std::move(diffusion))),
        text_(std::make_shared<TextModel>(std::move(text))),
        load_seconds_(load_s) {}

  std::shared_ptr<DiffusionModel> diffusion_;
  std::shared_ptr<TextModel> text_;
  double load_seconds_ = 0.0;
  std::uint64_t invocations_ = 0;
};

}  // namespace sww::genai
