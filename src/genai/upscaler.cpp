#include "genai/upscaler.hpp"

#include <algorithm>
#include <cmath>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace sww::genai {

using util::Error;
using util::ErrorCode;
using util::Result;

Result<UpscaleResult> Upscale(const Image& input, int out_width,
                              int out_height, std::uint64_t seed) {
  if (input.empty()) {
    return Error(ErrorCode::kInvalidArgument, "cannot upscale an empty image");
  }
  if (out_width < input.width() || out_height < input.height()) {
    return Error(ErrorCode::kInvalidArgument,
                 "upscale target smaller than input");
  }
  Image output(out_width, out_height);
  util::Rng detail_rng(util::HashCombine(seed, 0x5ca1eULL));

  const double sx = static_cast<double>(input.width()) / out_width;
  const double sy = static_cast<double>(input.height()) / out_height;
  for (int y = 0; y < out_height; ++y) {
    for (int x = 0; x < out_width; ++x) {
      const double fx = (x + 0.5) * sx - 0.5;
      const double fy = (y + 0.5) * sy - 0.5;
      const int x0 = std::clamp(static_cast<int>(std::floor(fx)), 0, input.width() - 1);
      const int y0 = std::clamp(static_cast<int>(std::floor(fy)), 0, input.height() - 1);
      const int x1 = std::min(x0 + 1, input.width() - 1);
      const int y1 = std::min(y0 + 1, input.height() - 1);
      const double tx = std::clamp(fx - x0, 0.0, 1.0);
      const double ty = std::clamp(fy - y0, 0.0, 1.0);

      const Pixel p00 = input.Get(x0, y0);
      const Pixel p10 = input.Get(x1, y0);
      const Pixel p01 = input.Get(x0, y1);
      const Pixel p11 = input.Get(x1, y1);

      // Zero-mean synthesized detail: sharpens perceived texture without
      // shifting local means (which carry the semantics).
      const double detail = detail_rng.NextRange(-3.0, 3.0);

      auto blend = [&](std::uint8_t a, std::uint8_t b, std::uint8_t c,
                       std::uint8_t d) {
        const double v = a * (1 - tx) * (1 - ty) + b * tx * (1 - ty) +
                         c * (1 - tx) * ty + d * tx * ty + detail;
        return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
      };
      output.Set(x, y, Pixel{blend(p00.r, p10.r, p01.r, p11.r),
                             blend(p00.g, p10.g, p01.g, p11.g),
                             blend(p00.b, p10.b, p01.b, p11.b)});
    }
  }
  UpscaleResult result;
  result.image = std::move(output);
  result.input_megapixels = input.pixel_count() / 1e6;
  result.output_megapixels =
      static_cast<double>(out_width) * out_height / 1e6;
  return result;
}

Result<UpscaleResult> UpscaleBy(const Image& input, int factor,
                                std::uint64_t seed) {
  if (factor < 1) {
    return Error(ErrorCode::kInvalidArgument, "upscale factor must be >= 1");
  }
  return Upscale(input, input.width() * factor, input.height() * factor, seed);
}

}  // namespace sww::genai
