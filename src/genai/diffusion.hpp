// diffusion.hpp — the latent-denoising image synthesizer.
//
// Substitutes for Stable Diffusion in the paper's pipeline (DESIGN.md §1).
// Generation follows the real model's *shape*:
//
//   1. the prompt is tokenized and embedded (text conditioning),
//   2. a seeded Gaussian latent field is drawn over the semantic cell grid,
//   3. N denoising steps move the latent toward the prompt's semantic
//      field, each step removing a fraction of the remaining noise,
//   4. the final latent renders to pixels: cell luminance carries the
//      semantics, prompt-derived hues and per-pixel texture make the
//      output look like an actual (procedural) picture.
//
// The model's `fidelity` bounds how much prompt signal survives into the
// image, and the step count controls how much of the initial noise is
// removed — so CLIP-style prompt/image similarity behaves like the paper's
// Table 1 / §6.3.1: strongly model-dependent, weakly step-dependent.
#pragma once

#include <cstdint>
#include <string>

#include "genai/embedding.hpp"
#include "genai/image.hpp"
#include "genai/model_specs.hpp"
#include "util/error.hpp"

namespace sww::util {
class ThreadPool;
}

namespace sww::genai {

/// Everything knowable about one generation run (feeds the device-time and
/// energy models, and the tests).
struct GenerationInfo {
  std::string model;
  int steps = 0;
  int width = 0;
  int height = 0;
  std::uint64_t seed = 0;
  double plant_fidelity = 0.0;  ///< effective fraction of prompt signal
  double residual_noise = 0.0;  ///< leftover noise after denoising
};

struct GeneratedImage {
  Image image;
  GenerationInfo info;
};

class DiffusionModel {
 public:
  explicit DiffusionModel(ImageModelSpec spec) : spec_(std::move(spec)) {}

  const ImageModelSpec& spec() const { return spec_; }

  /// Generate an image from a prompt.  Deterministic in (prompt, size,
  /// steps, seed).  Errors on non-positive dimensions or steps.
  util::Result<GeneratedImage> Generate(std::string_view prompt, int width,
                                        int height, int steps,
                                        std::uint64_t seed) const;

  /// Generate with the model's default step count.
  util::Result<GeneratedImage> Generate(std::string_view prompt, int width,
                                        int height, std::uint64_t seed) const {
    return Generate(prompt, width, height, spec_.default_steps, seed);
  }

  /// A prompt-free image: pure rendered noise.  The paper's CLIP baseline
  /// ("the CLIP score of a randomly generated image (no prompt) was 0.09").
  static Image RandomImage(int width, int height, std::uint64_t seed);

  /// Attach a thread pool: the denoise blend and the pixel renderer run
  /// row-tile parallel across its workers.  Output bytes are identical
  /// with any pool (or none) — the per-pixel texture is a stateless
  /// counter hash of (seed, x, y), not a sequential stream.  nullptr
  /// restores the serial path.  Not owned; must outlive generation calls.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }
  util::ThreadPool* thread_pool() const { return pool_; }

 private:
  ImageModelSpec spec_;
  util::ThreadPool* pool_ = nullptr;
};

}  // namespace sww::genai
