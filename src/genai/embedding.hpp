// embedding.hpp — the shared semantic embedding space.
//
// This is the keystone of the GenAI simulation (DESIGN.md §1).  Text
// prompts, generated images, and the CLIP/SBERT metric simulators all meet
// in one d-dimensional space:
//
//   * every token has a deterministic unit vector (hashed Gaussian),
//   * a text embeds as the normalized sum of its token vectors,
//   * the diffusion simulator *plants* a prompt's embedding into an image
//     as a coarse luminance field over a fixed cell grid,
//   * an image embeds by projecting its cell luminances back onto the
//     per-cell basis vectors — recovering (fidelity-attenuated) whatever
//     was planted, plus noise for whatever was not.
//
// Because planting and recovery are linear, prompt→image→score behaves
// like the real pipeline: higher-fidelity models and more denoising steps
// yield higher prompt/image similarity, unrelated images score near zero,
// and prompt inversion works by scoring vocabulary tokens against the
// recovered embedding.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "genai/image.hpp"

namespace sww::genai {

inline constexpr int kEmbeddingDim = 64;
/// Images carry semantics on a kSemanticGrid × kSemanticGrid cell field.
inline constexpr int kSemanticGrid = 16;
/// Amplitude of the planted luminance field around mid-gray.
inline constexpr double kPlantAmplitude = 52.0;

using Vec = std::array<double, kEmbeddingDim>;

/// Dot product in the canonical pairwise fixed-tree order defined by
/// util::simd (64-element blocks reduced by a balanced stride-halving
/// tree).  This IS the semantics — not an approximation of left-to-right
/// summation — so the scalar oracle and the SSE2/AVX2 fast lanes agree to
/// the last bit and every modeled score is ISA-independent.
double Dot(const Vec& a, const Vec& b);
double Norm(const Vec& v);
void Normalize(Vec& v);
double Cosine(const Vec& a, const Vec& b);

/// Deterministic unit vector for a token (case-folded).
Vec TokenEmbedding(std::string_view token);

/// Normalized sum of token embeddings; zero vector for no tokens.
Vec TextEmbedding(const std::vector<std::string>& tokens);
Vec TextEmbeddingOf(std::string_view text);

/// Fixed pseudo-random unit basis vector for a semantic grid cell.
const Vec& CellBasis(int cell_index);

/// The semantic field a prompt plants: value for each of the grid's cells,
/// in units of luminance deviation from mid-gray.
std::vector<double> SemanticField(const Vec& text_embedding);

/// Read a (possibly resized) image's cell luminance field back out.
std::vector<double> ReadCellField(const Image& image);

/// Project a cell field back into embedding space (the inverse of
/// SemanticField up to noise).
Vec FieldToEmbedding(const std::vector<double>& field);

/// Full image embedding: ReadCellField ∘ FieldToEmbedding, normalized.
Vec ImageEmbedding(const Image& image);

}  // namespace sww::genai
