#include "genai/model_specs.hpp"

namespace sww::genai {

using util::Error;
using util::ErrorCode;
using util::Result;

// Calibration notes (DESIGN.md §4):
//  * fidelity — chosen so the CLIP simulator lands at Table 1's scores:
//      SD 2.1 ≈ 0.19, SD 3 Med ≈ 0.27, SD 3.5 Med ≈ 0.27, DALLE 3 ≈ 0.32
//    (random image ≈ 0.09).
//  * elo_quality — the paper's published arena ratings, used as latent
//    Bradley-Terry strengths; the metrics::EloArena recovers them.
//  * step costs — Table 1's time-per-step columns verbatim.
const std::vector<ImageModelSpec>& ImageModels() {
  static const std::vector<ImageModelSpec> models = {
      {std::string(kSd21), "SD 2.1", /*fidelity=*/0.17, /*elo=*/688,
       /*laptop=*/0.18, /*workstation=*/0.02, /*server_only=*/false, 15},
      {std::string(kSd3Medium), "SD 3 Med.", /*fidelity=*/0.28, /*elo=*/895,
       /*laptop=*/0.38, /*workstation=*/0.05, /*server_only=*/false, 15},
      {std::string(kSd35Medium), "SD 3.5 Med.", /*fidelity=*/0.28, /*elo=*/927,
       /*laptop=*/0.59, /*workstation=*/0.06, /*server_only=*/false, 15},
      {std::string(kDalle3), "DALLE 3", /*fidelity=*/0.37, /*elo=*/923,
       /*laptop=*/0.0, /*workstation=*/0.0, /*server_only=*/true, 15},
      // GPT-4o appears in the paper only as the arena leader (ELO 1166); it
      // is not generation-benchmarked.
      {std::string(kGpt4o), "GPT-4o", /*fidelity=*/0.42, /*elo=*/1166,
       /*laptop=*/0.0, /*workstation=*/0.0, /*server_only=*/true, 15},
  };
  return models;
}

// Calibration notes:
//  * fidelity — SBERT simulator band 0.82–0.91 (§6.3.2); DeepSeek R1 8B is
//    the paper's model of choice with "consistently high SBERT score".
//  * length_sigma — word-count-control spread; the paper reports overshoot
//    up to 20%, means near 1.3%, IQR often above 10%; smaller models are
//    noisier.
//  * base times — inside the paper's workstation band 6.98–14.33 s.
const std::vector<TextModelSpec>& TextModels() {
  static const std::vector<TextModelSpec> models = {
      {std::string(kLlama32), "Llama 3.2", /*fidelity=*/0.84,
       /*length_sigma=*/0.12, /*base_time=*/6.98, /*laptop_slowdown=*/2.3},
      {std::string(kDeepseek15b), "DeepSeek R1 1.5B", /*fidelity=*/0.82,
       /*length_sigma=*/0.15, /*base_time=*/7.9, /*laptop_slowdown=*/2.3},
      {std::string(kDeepseek8b), "DeepSeek R1 8B", /*fidelity=*/0.90,
       /*length_sigma=*/0.08, /*base_time=*/13.0, /*laptop_slowdown=*/2.46},
      {std::string(kDeepseek14b), "DeepSeek R1 14B", /*fidelity=*/0.91,
       /*length_sigma=*/0.09, /*base_time=*/14.33, /*laptop_slowdown=*/2.38},
  };
  return models;
}

Result<ImageModelSpec> FindImageModel(std::string_view name) {
  for (const ImageModelSpec& spec : ImageModels()) {
    if (spec.name == name) return spec;
  }
  return Error(ErrorCode::kNotFound,
               "unknown image model: " + std::string(name));
}

Result<TextModelSpec> FindTextModel(std::string_view name) {
  for (const TextModelSpec& spec : TextModels()) {
    if (spec.name == name) return spec;
  }
  return Error(ErrorCode::kNotFound, "unknown text model: " + std::string(name));
}

}  // namespace sww::genai
