#include "genai/embedding.hpp"

#include <cmath>
#include <mutex>

#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/strings.hpp"

namespace sww::genai {

double Dot(const Vec& a, const Vec& b) {
  // Canonical fixed-tree order (util::simd): bit-identical in every
  // dispatch lane, so embedding scores never depend on the host ISA.
  return util::simd::DotPairwise(a.data(), b.data(), kEmbeddingDim);
}

double Norm(const Vec& v) { return std::sqrt(Dot(v, v)); }

void Normalize(Vec& v) {
  const double norm = Norm(v);
  if (norm < 1e-12) return;
  for (double& x : v) x /= norm;
}

double Cosine(const Vec& a, const Vec& b) {
  const double na = Norm(a);
  const double nb = Norm(b);
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  return Dot(a, b) / (na * nb);
}

Vec TokenEmbedding(std::string_view token) {
  const std::string folded = util::ToLower(token);
  util::Rng rng(util::Fnv1a64(folded, 0x7a3e8d91c5b2f064ULL));
  Vec v;
  for (double& x : v) x = rng.NextGaussian();
  Normalize(v);
  return v;
}

Vec TextEmbedding(const std::vector<std::string>& tokens) {
  Vec sum{};
  for (const std::string& token : tokens) {
    const Vec e = TokenEmbedding(token);
    util::simd::Axpy(sum.data(), e.data(), 1.0, kEmbeddingDim);
  }
  Normalize(sum);
  return sum;
}

Vec TextEmbeddingOf(std::string_view text) {
  return TextEmbedding(util::Tokenize(text));
}

const Vec& CellBasis(int cell_index) {
  static std::array<Vec, kSemanticGrid * kSemanticGrid> bases;
  static std::once_flag once;
  std::call_once(once, [] {
    for (int c = 0; c < kSemanticGrid * kSemanticGrid; ++c) {
      util::Rng rng(util::HashCombine(0x5eedba5e5eedba5eULL,
                                      static_cast<std::uint64_t>(c)));
      for (double& x : bases[static_cast<std::size_t>(c)]) {
        x = rng.NextGaussian();
      }
      Normalize(bases[static_cast<std::size_t>(c)]);
    }
  });
  return bases.at(static_cast<std::size_t>(cell_index));
}

std::vector<double> SemanticField(const Vec& text_embedding) {
  std::vector<double> field(kSemanticGrid * kSemanticGrid);
  for (int c = 0; c < kSemanticGrid * kSemanticGrid; ++c) {
    field[static_cast<std::size_t>(c)] =
        Dot(text_embedding, CellBasis(c)) * kPlantAmplitude *
        std::sqrt(static_cast<double>(kEmbeddingDim));
  }
  return field;
}

std::vector<double> ReadCellField(const Image& image) {
  std::vector<double> field(kSemanticGrid * kSemanticGrid, 0.0);
  if (image.empty()) return field;
  const double cell_w = static_cast<double>(image.width()) / kSemanticGrid;
  const double cell_h = static_cast<double>(image.height()) / kSemanticGrid;
  for (int cy = 0; cy < kSemanticGrid; ++cy) {
    for (int cx = 0; cx < kSemanticGrid; ++cx) {
      const int x0 = static_cast<int>(cx * cell_w);
      const int y0 = static_cast<int>(cy * cell_h);
      const int x1 = static_cast<int>((cx + 1) * cell_w);
      const int y1 = static_cast<int>((cy + 1) * cell_h);
      const double mean = image.MeanLuminance(x0, y0, std::max(x1, x0 + 1),
                                              std::max(y1, y0 + 1));
      field[static_cast<std::size_t>(cy * kSemanticGrid + cx)] = mean - 128.0;
    }
  }
  return field;
}

Vec FieldToEmbedding(const std::vector<double>& field) {
  Vec embedding{};
  const int cells = kSemanticGrid * kSemanticGrid;
  for (int c = 0; c < cells && c < static_cast<int>(field.size()); ++c) {
    // Accumulation order over cells is unchanged; the axpy is elementwise
    // across dimensions, so every lane produces the same bytes.
    util::simd::Axpy(embedding.data(), CellBasis(c).data(),
                     field[static_cast<std::size_t>(c)], kEmbeddingDim);
  }
  return embedding;
}

Vec ImageEmbedding(const Image& image) {
  Vec embedding = FieldToEmbedding(ReadCellField(image));
  Normalize(embedding);
  return embedding;
}

}  // namespace sww::genai
