#include "genai/pipeline.hpp"

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/strings.hpp"

namespace sww::genai {

using util::Result;

double PipelineLoadSeconds(const ImageModelSpec& spec) {
  // Heavier (slower-per-step) checkpoints are bigger; load time tracks the
  // workstation step cost: SD 2.1 ≈ 4 s ... SD 3.5 ≈ 12 s from warm cache.
  return 2.0 + spec.step_cost_workstation_s * 170.0;
}

double PipelineLoadSeconds(const TextModelSpec& spec) {
  // LLM load scales with parameter count, proxied by base generation time.
  return 1.0 + spec.base_time_workstation_s * 0.5;
}

Result<GenerationPipeline> GenerationPipeline::Load(std::string_view image_model,
                                                    std::string_view text_model) {
  obs::ScopedSpan span("genai.pipeline_load", "genai");
  span.AddAttribute("image_model", image_model);
  span.AddAttribute("text_model", text_model);
  auto image_spec = FindImageModel(image_model);
  if (!image_spec) return image_spec.error();
  auto text_spec = FindTextModel(text_model);
  if (!text_spec) return text_spec.error();
  const double load_s = PipelineLoadSeconds(image_spec.value()) +
                        PipelineLoadSeconds(text_spec.value());
  span.AddAttribute("load_seconds", util::Format("%.2f", load_s));
  obs::Registry::Default().GetCounter("genai.pipeline_loads").Add();
  obs::Registry::Default().GetGauge("genai.pipeline_load_seconds").Add(load_s);
  // Simulated weight-load time becomes span duration under a ManualClock.
  obs::Tracer::Default().clock().AdvanceSimulated(load_s);
  return GenerationPipeline(DiffusionModel(image_spec.value()),
                            TextModel(text_spec.value()), load_s);
}

}  // namespace sww::genai
