#include "genai/prompt_inversion.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "genai/embedding.hpp"

namespace sww::genai {

const std::vector<std::string>& PromptInverter::DefaultVocabulary() {
  // Covers the domains the paper's experiments exercise (landscape search
  // results, travel blogs, product pages) plus generic visual terms.
  static const std::vector<std::string> vocabulary = {
      // landscape / nature
      "landscape", "mountain", "valley", "river", "lake", "forest", "meadow",
      "glacier", "volcano", "cliff", "coast", "beach", "island", "waterfall",
      "desert", "canyon", "hill", "field", "snow", "ice", "cloud", "sky",
      "sunset", "sunrise", "rainbow", "horizon", "reflection", "pond",
      // travel
      "trail", "hike", "hiking", "route", "bridge", "village", "path",
      "journey", "panorama", "viewpoint", "summit", "ridge",
      // urban / objects
      "city", "street", "building", "tower", "harbor", "market", "café",
      "train", "boat", "bicycle", "lighthouse", "castle", "garden",
      // creatures & food
      "goldfish", "bird", "horse", "sheep", "cow", "dog", "cat", "fish",
      "bread", "coffee", "fruit", "cheese",
      // style words (prompt flavor)
      "cartoon", "watercolor", "photograph", "vivid", "misty", "golden",
      "dramatic", "aerial", "wide", "closeup", "green", "blue", "red",
      "autumn", "winter", "spring", "summer",
  };
  return vocabulary;
}

PromptInverter::PromptInverter(std::vector<std::string> vocabulary)
    : vocabulary_(std::move(vocabulary)) {}

InvertedPrompt PromptInverter::Invert(const Image& image,
                                      std::size_t max_keywords) const {
  // Unnormalized image embedding keeps amplitude information: planted
  // tokens project proportionally to the plant fidelity.
  const Vec embedding = ImageEmbedding(image);

  std::vector<std::pair<double, std::size_t>> ranked;
  ranked.reserve(vocabulary_.size());
  for (std::size_t i = 0; i < vocabulary_.size(); ++i) {
    const Vec token = TokenEmbedding(vocabulary_[i]);
    ranked.emplace_back(Dot(embedding, token), i);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  InvertedPrompt out;
  for (std::size_t k = 0; k < std::min(max_keywords, ranked.size()); ++k) {
    out.keywords.push_back(vocabulary_[ranked[k].second]);
    out.scores.push_back(ranked[k].first);
  }
  // Assemble a natural prompt: "a <kw1> <kw2> with <kw3>, <kw4> ..."
  if (!out.keywords.empty()) {
    out.prompt = "a ";
    for (std::size_t k = 0; k < out.keywords.size(); ++k) {
      if (k == 0) {
        out.prompt += out.keywords[k];
      } else if (k == 1) {
        out.prompt += " " + out.keywords[k];
      } else if (k == 2) {
        out.prompt += " with " + out.keywords[k];
      } else {
        out.prompt += ", " + out.keywords[k];
      }
    }
  }
  return out;
}

std::vector<std::string> PromptInverter::RecoverTokens(const Image& image,
                                                       double threshold) const {
  const Vec embedding = ImageEmbedding(image);
  std::vector<double> scores;
  scores.reserve(vocabulary_.size());
  for (const std::string& word : vocabulary_) {
    scores.push_back(Dot(embedding, TokenEmbedding(word)));
  }
  const double mean =
      std::accumulate(scores.begin(), scores.end(), 0.0) / scores.size();
  double var = 0.0;
  for (double s : scores) var += (s - mean) * (s - mean);
  const double stddev = std::sqrt(var / scores.size());

  std::vector<std::string> out;
  for (std::size_t i = 0; i < vocabulary_.size(); ++i) {
    if (stddev > 1e-12 && (scores[i] - mean) / stddev >= threshold) {
      out.push_back(vocabulary_[i]);
    }
  }
  return out;
}

}  // namespace sww::genai
