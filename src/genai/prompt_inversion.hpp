// prompt_inversion.hpp — image-to-prompt conversion.
//
// The paper's webpage-conversion pipeline (§4.2) uses "prompt inversion,
// which generates prompts from images with the goal of maintaining high
// fidelity in the re-generated images" (their prototype used a GPT-4V
// image-to-text model producing 120–262-character prompts).  This
// substitute works through the shared embedding space: it recovers the
// image's embedding and scores every word of a vocabulary against it —
// tokens that were planted by a prompt score far above chance and are
// recovered as the inverted prompt.
#pragma once

#include <string>
#include <vector>

#include "genai/image.hpp"

namespace sww::genai {

struct InvertedPrompt {
  std::string prompt;                  ///< assembled descriptive prompt
  std::vector<std::string> keywords;   ///< recovered tokens, best first
  std::vector<double> scores;          ///< matching per-keyword scores
};

class PromptInverter {
 public:
  /// `vocabulary` is the candidate token set scored against the image.
  /// A reasonable default vocabulary is provided by DefaultVocabulary().
  explicit PromptInverter(std::vector<std::string> vocabulary);

  /// Recover a prompt from an image.  `max_keywords` bounds prompt length.
  InvertedPrompt Invert(const Image& image, std::size_t max_keywords = 8) const;

  /// Tokens whose projection score exceeds `threshold` (units of standard
  /// deviations above the vocabulary mean).
  std::vector<std::string> RecoverTokens(const Image& image,
                                         double threshold = 2.5) const;

  static const std::vector<std::string>& DefaultVocabulary();

 private:
  std::vector<std::string> vocabulary_;
};

}  // namespace sww::genai
