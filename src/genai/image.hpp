// image.hpp — raster image type used by the generation pipeline.
//
// RGB8, row-major.  Includes PPM (P6) serialization so generated artifacts
// can be written to disk and inspected, and the "typical media size" model
// the paper's storage numbers use (Table 2 sizes: 256² → 8,192 B,
// 512² → 32,768 B, 1024² → 131,072 B — i.e. pixels/8, a typical
// photographic-JPEG operating point).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace sww::genai {

struct Pixel {
  std::uint8_t r = 0, g = 0, b = 0;
};

class Image {
 public:
  Image() = default;
  Image(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }
  std::int64_t pixel_count() const {
    return static_cast<std::int64_t>(width_) * height_;
  }
  bool empty() const { return pixel_count() == 0; }

  Pixel Get(int x, int y) const;
  void Set(int x, int y, Pixel pixel);

  /// Luminance (ITU-R BT.601 integer approximation) at a pixel, 0..255.
  std::uint8_t Luminance(int x, int y) const;

  /// Mean luminance over a rectangle (clipped to bounds).
  double MeanLuminance(int x0, int y0, int x1, int y1) const;

  const std::vector<std::uint8_t>& data() const { return data_; }

  /// Binary PPM (P6) round trip.
  std::string ToPpm() const;
  static util::Result<Image> FromPpm(std::string_view ppm);

  /// The byte size this image would occupy as a typical compressed media
  /// file (the paper's Table 2 sizing: pixels / 8).
  std::size_t TypicalCompressedBytes() const {
    return static_cast<std::size_t>(pixel_count() / 8);
  }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<std::uint8_t> data_;  // 3 bytes per pixel, row-major
};

}  // namespace sww::genai
