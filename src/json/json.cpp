#include "json/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace sww::json {

using util::Error;
using util::ErrorCode;
using util::Result;

Value::Type Value::type() const {
  switch (data_.index()) {
    case 0: return Type::kNull;
    case 1: return Type::kBool;
    case 2: return Type::kNumber;
    case 3: return Type::kString;
    case 4: return Type::kArray;
    default: return Type::kObject;
  }
}

bool Value::AsBool() const {
  if (!is_bool()) throw std::logic_error("json: AsBool on non-bool");
  return std::get<bool>(data_);
}

double Value::AsNumber() const {
  if (!is_number()) throw std::logic_error("json: AsNumber on non-number");
  return std::get<double>(data_);
}

std::int64_t Value::AsInt() const {
  return static_cast<std::int64_t>(AsNumber());
}

const std::string& Value::AsString() const {
  if (!is_string()) throw std::logic_error("json: AsString on non-string");
  return std::get<std::string>(data_);
}

const Array& Value::AsArray() const {
  if (!is_array()) throw std::logic_error("json: AsArray on non-array");
  return std::get<Array>(data_);
}

Array& Value::AsArray() {
  if (!is_array()) throw std::logic_error("json: AsArray on non-array");
  return std::get<Array>(data_);
}

const Object& Value::AsObject() const {
  if (!is_object()) throw std::logic_error("json: AsObject on non-object");
  return std::get<Object>(data_);
}

Object& Value::AsObject() {
  if (!is_object()) throw std::logic_error("json: AsObject on non-object");
  return std::get<Object>(data_);
}

const Value* Value::Get(std::string_view key) const {
  if (!is_object()) return nullptr;
  const Object& obj = std::get<Object>(data_);
  auto it = obj.find(std::string(key));
  return it == obj.end() ? nullptr : &it->second;
}

std::string Value::GetString(std::string_view key, std::string_view fallback) const {
  const Value* v = Get(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : std::string(fallback);
}

double Value::GetNumber(std::string_view key, double fallback) const {
  const Value* v = Get(key);
  return (v != nullptr && v->is_number()) ? v->AsNumber() : fallback;
}

std::int64_t Value::GetInt(std::string_view key, std::int64_t fallback) const {
  const Value* v = Get(key);
  return (v != nullptr && v->is_number()) ? v->AsInt() : fallback;
}

bool Value::GetBool(std::string_view key, bool fallback) const {
  const Value* v = Get(key);
  return (v != nullptr && v->is_bool()) ? v->AsBool() : fallback;
}

Value& Value::Set(std::string key, Value value) {
  if (is_null()) data_ = Object{};
  if (!is_object()) throw std::logic_error("json: Set on non-object");
  std::get<Object>(data_)[std::move(key)] = std::move(value);
  return *this;
}

std::string EscapeString(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(raw);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void AppendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // RFC 8259 has no inf/nan literal; "%.17g" would emit bare `inf` and
    // corrupt the document.  null is the conventional lossy fallback.
    out += "null";
  } else if (v == std::floor(v) && std::fabs(v) < 1e15) {
    // Integral values serialize without a decimal point: {"width":224}.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

}  // namespace

void Value::DumpTo(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  auto newline = [&](int d) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type()) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += std::get<bool>(data_) ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, std::get<double>(data_));
      break;
    case Type::kString:
      out += EscapeString(std::get<std::string>(data_));
      break;
    case Type::kArray: {
      const Array& arr = std::get<Array>(data_);
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline(depth + 1);
        arr[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      const Object& obj = std::get<Object>(data_);
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : obj) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        out += EscapeString(key);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        value.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Value::Dump() const {
  std::string out;
  DumpTo(out, 0, 0);
  return out;
}

std::string Value::DumpPretty() const {
  std::string out;
  DumpTo(out, 2, 0);
  return out;
}

namespace {

/// Recursive-descent RFC 8259 parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    SkipWhitespace();
    auto value = ParseValue();
    if (!value) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Error Fail(std::string message) const {
    return Error(ErrorCode::kMalformed,
                 "json at offset " + std::to_string(pos_) + ": " + std::move(message));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char Next() { return text_[pos_++]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Result<Value> ParseValue() {
    if (++depth_ > kMaxDepth) return Fail("nesting too deep");
    struct DepthGuard {
      int& d;
      ~DepthGuard() { --d; }
    } guard{depth_};
    if (AtEnd()) return Fail("unexpected end of input");
    switch (Peek()) {
      case 'n':
        if (Consume("null")) return Value(nullptr);
        return Fail("invalid literal (expected null)");
      case 't':
        if (Consume("true")) return Value(true);
        return Fail("invalid literal (expected true)");
      case 'f':
        if (Consume("false")) return Value(false);
        return Fail("invalid literal (expected false)");
      case '"':
        return ParseString();
      case '[':
        return ParseArray();
      case '{':
        return ParseObject();
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseNumber() {
    const std::size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("invalid number");
    }
    if (Peek() == '0') {
      ++pos_;
      if (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("leading zero in number");
      }
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digit required after decimal point");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digit required in exponent");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("invalid number");
    return Value(value);
  }

  Result<Value> ParseString() {
    auto s = ParseRawString();
    if (!s) return s.error();
    return Value(std::move(s).value());
  }

  Result<std::string> ParseRawString() {
    if (AtEnd() || Next() != '"') return Fail("expected string");
    std::string out;
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      char c = Next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) return Fail("unterminated escape");
      char esc = Next();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          auto cp = ParseHex4();
          if (!cp) return cp.error();
          std::uint32_t code = cp.value();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: require a following \uXXXX low surrogate.
            if (!Consume("\\u")) return Fail("lone high surrogate");
            auto low = ParseHex4();
            if (!low) return low.error();
            if (low.value() < 0xDC00 || low.value() > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low.value() - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Fail("lone low surrogate");
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  Result<std::uint32_t> ParseHex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      if (AtEnd()) return Fail("truncated \\u escape");
      char c = Next();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  static void AppendUtf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<Value> ParseArray() {
    ++pos_;  // '['
    Array items;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    while (true) {
      SkipWhitespace();
      auto item = ParseValue();
      if (!item) return item;
      items.push_back(std::move(item).value());
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated array");
      char c = Next();
      if (c == ']') return Value(std::move(items));
      if (c != ',') return Fail("expected ',' or ']' in array");
    }
  }

  Result<Value> ParseObject() {
    ++pos_;  // '{'
    Object fields;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return Value(std::move(fields));
    }
    while (true) {
      SkipWhitespace();
      auto key = ParseRawString();
      if (!key) return key.error();
      SkipWhitespace();
      if (AtEnd() || Next() != ':') return Fail("expected ':' in object");
      SkipWhitespace();
      auto value = ParseValue();
      if (!value) return value;
      fields[std::move(key).value()] = std::move(value).value();
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated object");
      char c = Next();
      if (c == '}') return Value(std::move(fields));
      if (c != ',') return Fail("expected ',' or '}' in object");
    }
  }

  static constexpr int kMaxDepth = 256;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace sww::json
