// json.hpp — a small, complete JSON implementation.
//
// The paper's generated-content HTML class carries its metadata as "a json
// dictionary" (§4.1: prompt, width, height, ...).  This module provides the
// value model, a strict RFC 8259 parser, and a serializer with optional
// pretty printing.  It is deliberately self-contained: the repository builds
// every substrate from scratch.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace sww::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps keys ordered, which makes serialization deterministic —
/// important because metadata byte sizes feed the compression-ratio numbers.
using Object = std::map<std::string, Value>;

/// A JSON value: null, bool, number (double), string, array, or object.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}            // NOLINT implicit
  Value(bool b) : data_(b) {}                          // NOLINT implicit
  Value(int v) : data_(static_cast<double>(v)) {}      // NOLINT implicit
  Value(unsigned v) : data_(static_cast<double>(v)) {} // NOLINT implicit
  Value(std::int64_t v) : data_(static_cast<double>(v)) {}  // NOLINT implicit
  Value(std::size_t v) : data_(static_cast<double>(v)) {}   // NOLINT implicit
  Value(double v) : data_(v) {}                        // NOLINT implicit
  Value(const char* s) : data_(std::string(s)) {}      // NOLINT implicit
  Value(std::string s) : data_(std::move(s)) {}        // NOLINT implicit
  Value(std::string_view s) : data_(std::string(s)) {} // NOLINT implicit
  Value(Array a) : data_(std::move(a)) {}              // NOLINT implicit
  Value(Object o) : data_(std::move(o)) {}             // NOLINT implicit

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  /// Typed accessors; throw std::logic_error on type mismatch (caller bug).
  bool AsBool() const;
  double AsNumber() const;
  std::int64_t AsInt() const;  ///< AsNumber truncated toward zero
  const std::string& AsString() const;
  const Array& AsArray() const;
  Array& AsArray();
  const Object& AsObject() const;
  Object& AsObject();

  /// Object field lookup.  Get returns nullptr when absent or not an object.
  const Value* Get(std::string_view key) const;
  /// Convenience typed lookups with defaults — the HTML metadata path uses
  /// these heavily ("width"/"height" default, "prompt" required).
  std::string GetString(std::string_view key, std::string_view fallback = "") const;
  double GetNumber(std::string_view key, double fallback = 0.0) const;
  std::int64_t GetInt(std::string_view key, std::int64_t fallback = 0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;
  bool Has(std::string_view key) const { return Get(key) != nullptr; }

  /// Object field assignment (creates the object if this value is null).
  Value& Set(std::string key, Value value);

  /// Compact serialization (no whitespace) — the byte size used by the
  /// compression-ratio experiments.
  std::string Dump() const;
  /// Pretty serialization with 2-space indent.
  std::string DumpPretty() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Strict RFC 8259 parser.  Rejects trailing garbage, unterminated strings,
/// invalid escapes, bad numbers; supports \uXXXX (with surrogate pairs).
util::Result<Value> Parse(std::string_view text);

/// Escape a string for embedding in JSON output (adds surrounding quotes).
std::string EscapeString(std::string_view text);

}  // namespace sww::json
