#include "cdn/catalog.hpp"

#include <algorithm>
#include <cmath>

namespace sww::cdn {

Catalog Catalog::MakeSynthetic(const CatalogOptions& options) {
  Catalog catalog;
  util::Rng rng(options.seed);
  catalog.items_.reserve(options.item_count);

  // Mixed media population: thumbnails, medium and large images.
  static const int kImageSizes[][2] = {
      {256, 256}, {512, 384}, {512, 512}, {1024, 768}, {1024, 1024}};

  for (std::size_t i = 0; i < options.item_count; ++i) {
    CatalogItem item;
    item.id = i;
    item.unique = rng.NextDouble() < options.unique_fraction;
    item.is_image = rng.NextDouble() >= options.text_fraction;
    if (item.is_image) {
      const auto& size = kImageSizes[rng.NextIndex(5)];
      item.width = size[0];
      item.height = size[1];
      item.content_bytes =
          static_cast<std::size_t>(item.width) * item.height / 8;
      // Prompt metadata: prompt (120-262 chars) + name/width/height fields,
      // matching the paper's observed range and 428 B worst case.
      item.prompt_bytes = 150 + rng.NextBounded(270);
    } else {
      item.words = 100 + static_cast<int>(rng.NextBounded(400));
      item.content_bytes = static_cast<std::size_t>(item.words) * 5;
      item.prompt_bytes = 200 + rng.NextBounded(450);  // bullets
    }
    // Zipf popularity by rank (item order is rank order).
    item.popularity_weight =
        1.0 / std::pow(static_cast<double>(i + 1), options.zipf_exponent);
    catalog.items_.push_back(item);
  }

  catalog.cumulative_.resize(catalog.items_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < catalog.items_.size(); ++i) {
    total += catalog.items_[i].popularity_weight;
    catalog.cumulative_[i] = total;
  }
  for (double& c : catalog.cumulative_) c /= total;
  return catalog;
}

std::uint64_t Catalog::TotalContentBytes() const {
  std::uint64_t total = 0;
  for (const CatalogItem& item : items_) total += item.content_bytes;
  return total;
}

std::uint64_t Catalog::TotalPromptModeBytes() const {
  std::uint64_t total = 0;
  for (const CatalogItem& item : items_) {
    total += item.unique ? item.content_bytes : item.prompt_bytes;
  }
  return total;
}

std::size_t Catalog::SampleRequest(util::Rng& rng) const {
  return SampleRequestUniform(rng.NextDouble());
}

std::size_t Catalog::SampleRequestUniform(double u) const {
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) return items_.size() - 1;
  return static_cast<std::size_t>(it - cumulative_.begin());
}

}  // namespace sww::cdn
