#include "cdn/simulator.hpp"

#include "energy/carbon.hpp"
#include "genai/model_specs.hpp"

namespace sww::cdn {

FleetResult RunFleet(const Catalog& catalog, EdgeMode mode,
                     const SimulationOptions& options) {
  const auto image_model = genai::FindImageModel(genai::kSd3Medium).value();
  const auto text_model = genai::FindTextModel(genai::kDeepseek8b).value();

  std::vector<EdgeNode> edges;
  edges.reserve(static_cast<std::size_t>(options.edge_count));
  for (int e = 0; e < options.edge_count; ++e) {
    edges.emplace_back(mode, options.storage_budget_bytes, image_model,
                       text_model);
  }

  // Users are sharded to edges by a stable hash of the request index; the
  // same stream hits both modes identically.
  util::Rng rng(options.seed);
  for (std::uint64_t r = 0; r < options.request_count; ++r) {
    const std::size_t item_index = catalog.SampleRequest(rng);
    const std::size_t edge_index =
        static_cast<std::size_t>(rng.NextBounded(
            static_cast<std::uint64_t>(options.edge_count)));
    edges[edge_index].ServeRequest(catalog.item(item_index));
  }

  FleetResult result;
  result.mode = mode;
  std::uint64_t hits = 0, requests = 0;
  for (const EdgeNode& edge : edges) {
    result.total_stored_bytes += edge.stored_bytes();
    result.total_origin_bytes += edge.stats().bytes_from_origin;
    result.total_user_bytes += edge.stats().bytes_to_users;
    result.generation_seconds += edge.stats().generation_seconds;
    result.generation_energy_wh += edge.stats().generation_energy_wh;
    result.evictions += edge.stats().evictions;
    hits += edge.stats().hits;
    requests += edge.stats().requests;
  }
  result.hit_rate =
      requests == 0 ? 0.0 : static_cast<double>(hits) / requests;
  return result;
}

ComparisonResult RunComparison(const Catalog& catalog,
                               const SimulationOptions& options) {
  ComparisonResult comparison;
  comparison.content_mode = RunFleet(catalog, EdgeMode::kContentMode, options);
  comparison.prompt_mode = RunFleet(catalog, EdgeMode::kPromptMode, options);
  if (comparison.prompt_mode.total_stored_bytes > 0) {
    comparison.storage_ratio =
        static_cast<double>(comparison.content_mode.total_stored_bytes) /
        static_cast<double>(comparison.prompt_mode.total_stored_bytes);
  }
  const std::uint64_t saved =
      comparison.content_mode.total_stored_bytes -
      std::min(comparison.content_mode.total_stored_bytes,
               comparison.prompt_mode.total_stored_bytes);
  comparison.carbon_saved_kg = energy::EmbodiedCarbonKg(saved);
  return comparison;
}

}  // namespace sww::cdn
