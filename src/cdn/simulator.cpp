#include "cdn/simulator.hpp"

#include <memory>

#include "energy/carbon.hpp"
#include "genai/model_specs.hpp"

namespace sww::cdn {

FleetResult RunFleet(const Catalog& catalog, EdgeMode mode,
                     const SimulationOptions& options) {
  const auto image_model = genai::FindImageModel(genai::kSd3Medium).value();
  const auto text_model = genai::FindTextModel(genai::kDeepseek8b).value();

  // Nodes own a mutex now, so they live behind pointers.
  std::vector<std::unique_ptr<EdgeNode>> edges;
  edges.reserve(static_cast<std::size_t>(options.edge_count));
  for (int e = 0; e < options.edge_count; ++e) {
    edges.push_back(std::make_unique<EdgeNode>(
        mode, options.storage_budget_bytes, image_model, text_model));
  }

  // Users are sharded to edges by a stable hash of the request index; the
  // same stream hits both modes identically.
  util::Rng rng(options.seed);
  for (std::uint64_t r = 0; r < options.request_count; ++r) {
    const std::size_t item_index = catalog.SampleRequest(rng);
    const std::size_t edge_index =
        static_cast<std::size_t>(rng.NextBounded(
            static_cast<std::uint64_t>(options.edge_count)));
    edges[edge_index]->ServeRequest(catalog.item(item_index));
  }

  FleetResult result;
  result.mode = mode;
  std::uint64_t hits = 0, requests = 0;
  for (const auto& edge : edges) {
    const EdgeStats stats = edge->stats();
    result.total_stored_bytes += edge->stored_bytes();
    result.total_origin_bytes += stats.bytes_from_origin;
    result.total_user_bytes += stats.bytes_to_users;
    result.generation_seconds += stats.generation_seconds;
    result.generation_energy_wh += stats.generation_energy_wh;
    result.evictions += stats.evictions;
    hits += stats.hits;
    requests += stats.requests;
  }
  result.hit_rate =
      requests == 0 ? 0.0 : static_cast<double>(hits) / requests;
  return result;
}

ComparisonResult RunComparison(const Catalog& catalog,
                               const SimulationOptions& options) {
  ComparisonResult comparison;
  comparison.content_mode = RunFleet(catalog, EdgeMode::kContentMode, options);
  comparison.prompt_mode = RunFleet(catalog, EdgeMode::kPromptMode, options);
  if (comparison.prompt_mode.total_stored_bytes > 0) {
    comparison.storage_ratio =
        static_cast<double>(comparison.content_mode.total_stored_bytes) /
        static_cast<double>(comparison.prompt_mode.total_stored_bytes);
  }
  const std::uint64_t saved =
      comparison.content_mode.total_stored_bytes -
      std::min(comparison.content_mode.total_stored_bytes,
               comparison.prompt_mode.total_stored_bytes);
  comparison.carbon_saved_kg = energy::EmbodiedCarbonKg(saved);
  return comparison;
}

}  // namespace sww::cdn
