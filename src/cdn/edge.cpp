#include "cdn/edge.hpp"

#include "obs/journal.hpp"

namespace sww::cdn {

std::string_view EdgeModeName(EdgeMode mode) {
  switch (mode) {
    case EdgeMode::kContentMode: return "content";
    case EdgeMode::kPromptMode: return "prompt";
    case EdgeMode::kPromptPassthrough: return "prompt-passthrough";
  }
  return "unknown";
}

EdgeNode::EdgeNode(EdgeMode mode, std::uint64_t storage_budget_bytes,
                   const genai::ImageModelSpec& image_model,
                   const genai::TextModelSpec& text_model)
    : mode_(mode),
      storage_budget_(storage_budget_bytes),
      image_model_(image_model),
      text_model_(text_model) {
  obs::Registry& registry = obs::Registry::Default();
  instruments_.requests = &registry.GetCounter("cdn.edge.requests");
  instruments_.hits = &registry.GetCounter("cdn.edge.hits");
  instruments_.misses = &registry.GetCounter("cdn.edge.misses");
  instruments_.evictions = &registry.GetCounter("cdn.edge.evictions");
  instruments_.bytes_to_users = &registry.GetCounter("cdn.edge.bytes_to_users");
  instruments_.bytes_from_origin =
      &registry.GetCounter("cdn.edge.bytes_from_origin");
  instruments_.generation_seconds =
      &registry.GetGauge("cdn.edge.generation_seconds");
  instruments_.generation_energy_wh =
      &registry.GetGauge("cdn.edge.generation_energy_wh");
  instruments_.hit_ratio = &registry.GetGauge("cdn.edge.hit_ratio");
  instruments_.stored_bytes = &registry.GetGauge("cdn.edge.stored_bytes");
}

void EdgeNode::AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

std::size_t EdgeNode::CachedSize(const CatalogItem& item) const {
  if (item.unique || mode_ == EdgeMode::kContentMode) return item.content_bytes;
  return item.prompt_bytes;
}

double EdgeNode::GenerateSeconds(const CatalogItem& item) const {
  if (item.is_image) {
    return energy::ImageGenerationSeconds(energy::Workstation(), image_model_,
                                          image_model_.default_steps,
                                          item.width, item.height);
  }
  return energy::TextGenerationSeconds(energy::Workstation(), text_model_,
                                       item.words);
}

double EdgeNode::GenerateEnergyWh(const CatalogItem& item) const {
  if (item.is_image) {
    return energy::ImageGenerationEnergyWh(energy::Workstation(), image_model_,
                                           image_model_.default_steps,
                                           item.width, item.height);
  }
  return energy::TextGenerationEnergyWh(energy::Workstation(), text_model_,
                                        item.words);
}

bool EdgeNode::TouchOrInsert(const CatalogItem& item) {
  std::lock_guard<std::mutex> lock(structure_mutex_);
  auto it = index_.find(item.id);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  const std::size_t bytes = CachedSize(item);
  if (bytes <= storage_budget_) {  // else never fits; serve pass-through
    lru_.emplace_front(item.id, bytes);
    index_[item.id] = lru_.begin();
    stored_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    EvictToFitLocked();
  }
  return false;
}

void EdgeNode::EvictToFitLocked() {
  while (stored_bytes_.load(std::memory_order_relaxed) > storage_budget_ &&
         !lru_.empty()) {
    const auto& [id, bytes] = lru_.back();
    stored_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    index_.erase(id);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    instruments_.evictions->Add();
  }
}

void EdgeNode::ServeRequest(const CatalogItem& item) {
  ServeInternal(item, /*span=*/nullptr);
}

ServeOutcome EdgeNode::Serve(const CatalogItem& item) {
  return ServeInternal(item, /*span=*/nullptr);
}

void EdgeNode::ServeRequest(const CatalogItem& item,
                            const obs::SpanContext& context) {
  obs::ScopedSpan span("edge.request", "cdn", context);
  span.SetProcess("edge");
  span.AddAttribute("item_id", std::to_string(item.id));
  span.AddAttribute("mode", std::string(EdgeModeName(mode_)));
  ServeInternal(item, &span);
}

ServeOutcome EdgeNode::ServeInternal(const CatalogItem& item,
                                     obs::ScopedSpan* span) {
  obs::Tracer& tracer = obs::Tracer::Default();
  const std::uint64_t start_nanos = tracer.clock().NowNanos();
  double generation_seconds = 0.0;
  double generation_energy_wh = 0.0;
  std::uint64_t origin_bytes_fetched = 0;
  requests_.fetch_add(1, std::memory_order_relaxed);
  instruments_.requests->Add();
  const bool hit = TouchOrInsert(item);
  if (span != nullptr) span->AddAttribute("cache", hit ? "hit" : "miss");
  if (hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    instruments_.hits->Add();
  }
  {
    const std::uint64_t requests = requests_.load(std::memory_order_relaxed);
    const std::uint64_t hits = hits_.load(std::memory_order_relaxed);
    instruments_.hit_ratio->Set(
        requests == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(requests));
    instruments_.stored_bytes->Set(
        static_cast<double>(stored_bytes_.load(std::memory_order_relaxed)));
  }
  if (!hit) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    instruments_.misses->Add();
    // Miss: fetch from origin in the cached representation's form.
    const std::size_t origin_bytes = CachedSize(item);
    origin_bytes_fetched = origin_bytes;
    bytes_from_origin_.fetch_add(origin_bytes, std::memory_order_relaxed);
    instruments_.bytes_from_origin->Add(origin_bytes);
    if (span != nullptr) {
      // The origin leg renders as its own role track in the exported
      // trace; it nests under edge.request on the calling thread.
      obs::ScopedSpan origin("edge.origin_fetch", "cdn");
      origin.SetProcess("origin");
      origin.AddAttribute("bytes", std::to_string(origin_bytes));
    }
  }
  // Content and prompt modes send materialized content ("loses data
  // transmission benefits" — the edge-to-user hop carries full bytes in
  // prompt mode).  Passthrough ships the prompt itself for non-unique
  // items: the client regenerates, so the wire carries only metadata.
  const std::uint64_t user_bytes =
      (mode_ == EdgeMode::kPromptPassthrough && !item.unique)
          ? item.prompt_bytes
          : item.content_bytes;
  bytes_to_users_.fetch_add(user_bytes, std::memory_order_relaxed);
  instruments_.bytes_to_users->Add(user_bytes);
  // Prompt mode materializes on every user request for non-unique items.
  // The cost model runs outside the structure lock: concurrent requests
  // only serialize on the LRU bookkeeping above.
  if (mode_ == EdgeMode::kPromptMode && !item.unique) {
    const double seconds = GenerateSeconds(item);
    const double energy_wh = GenerateEnergyWh(item);
    generation_seconds = seconds;
    generation_energy_wh = energy_wh;
    AtomicAdd(generation_seconds_, seconds);
    AtomicAdd(generation_energy_wh_, energy_wh);
    instruments_.generation_seconds->Add(seconds);
    instruments_.generation_energy_wh->Add(energy_wh);
    if (span != nullptr) {
      // Under a ManualClock the simulated materialization cost becomes
      // the span's remaining duration (wall clocks: no-op).
      obs::Tracer::Default().clock().AdvanceSimulated(seconds);
      span->AddAttribute("generation_seconds", std::to_string(seconds));
    }
  }

  // The edge's wide event: one journal record per serve, keyed by the
  // adopted sww-trace id when the request carried one.
  const std::uint64_t end_nanos = tracer.clock().NowNanos();
  obs::JournalRecord record;
  record.kind = "edge";
  record.trace_id =
      span != nullptr ? tracer.ContextOf(span->id()).trace_id : 0;
  record.path = "item:" + std::to_string(item.id);
  record.timestamp_nanos = end_nanos;
  record.mode = std::string(EdgeModeName(mode_));
  record.device = energy::Workstation().name;
  record.outcome = "ok";
  record.cache = hit ? "hit" : "miss";
  record.total_seconds = static_cast<double>(end_nanos - start_nanos) * 1e-9;
  record.generation_seconds = generation_seconds;
  record.wire_seconds = record.total_seconds > generation_seconds
                            ? record.total_seconds - generation_seconds
                            : 0.0;
  record.page_bytes = item.content_bytes;
  record.wire_bytes_sent = user_bytes;
  record.wire_bytes_received = origin_bytes_fetched;
  record.energy_joules = generation_energy_wh * 3600.0;
  obs::Journal::Default().Record(std::move(record));

  ServeOutcome outcome;
  outcome.hit = hit;
  outcome.bytes_to_user = user_bytes;
  outcome.bytes_from_origin = origin_bytes_fetched;
  outcome.generation_seconds = generation_seconds;
  outcome.generation_energy_wh = generation_energy_wh;
  return outcome;
}

EdgeStats EdgeNode::stats() const {
  EdgeStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.bytes_to_users = bytes_to_users_.load(std::memory_order_relaxed);
  stats.bytes_from_origin = bytes_from_origin_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.generation_seconds =
      generation_seconds_.load(std::memory_order_relaxed);
  stats.generation_energy_wh =
      generation_energy_wh_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace sww::cdn
