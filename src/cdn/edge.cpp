#include "cdn/edge.hpp"

namespace sww::cdn {

EdgeNode::EdgeNode(EdgeMode mode, std::uint64_t storage_budget_bytes,
                   const genai::ImageModelSpec& image_model,
                   const genai::TextModelSpec& text_model)
    : mode_(mode),
      storage_budget_(storage_budget_bytes),
      image_model_(image_model),
      text_model_(text_model) {
  obs::Registry& registry = obs::Registry::Default();
  instruments_.requests = &registry.GetCounter("cdn.edge.requests");
  instruments_.hits = &registry.GetCounter("cdn.edge.hits");
  instruments_.misses = &registry.GetCounter("cdn.edge.misses");
  instruments_.evictions = &registry.GetCounter("cdn.edge.evictions");
  instruments_.bytes_to_users = &registry.GetCounter("cdn.edge.bytes_to_users");
  instruments_.bytes_from_origin =
      &registry.GetCounter("cdn.edge.bytes_from_origin");
  instruments_.generation_seconds =
      &registry.GetGauge("cdn.edge.generation_seconds");
  instruments_.generation_energy_wh =
      &registry.GetGauge("cdn.edge.generation_energy_wh");
}

std::size_t EdgeNode::CachedSize(const CatalogItem& item) const {
  if (item.unique || mode_ == EdgeMode::kContentMode) return item.content_bytes;
  return item.prompt_bytes;
}

double EdgeNode::GenerateSeconds(const CatalogItem& item) const {
  if (item.is_image) {
    return energy::ImageGenerationSeconds(energy::Workstation(), image_model_,
                                          image_model_.default_steps,
                                          item.width, item.height);
  }
  return energy::TextGenerationSeconds(energy::Workstation(), text_model_,
                                       item.words);
}

double EdgeNode::GenerateEnergyWh(const CatalogItem& item) const {
  if (item.is_image) {
    return energy::ImageGenerationEnergyWh(energy::Workstation(), image_model_,
                                           image_model_.default_steps,
                                           item.width, item.height);
  }
  return energy::TextGenerationEnergyWh(energy::Workstation(), text_model_,
                                        item.words);
}

void EdgeNode::Touch(std::uint64_t id) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
  }
}

void EdgeNode::Insert(const CatalogItem& item) {
  const std::size_t bytes = CachedSize(item);
  if (bytes > storage_budget_) return;  // never fits; serve pass-through
  lru_.emplace_front(item.id, bytes);
  index_[item.id] = lru_.begin();
  stored_bytes_ += bytes;
  EvictToFit();
}

void EdgeNode::EvictToFit() {
  while (stored_bytes_ > storage_budget_ && !lru_.empty()) {
    const auto& [id, bytes] = lru_.back();
    stored_bytes_ -= bytes;
    index_.erase(id);
    lru_.pop_back();
    ++stats_.evictions;
    instruments_.evictions->Add();
  }
}

void EdgeNode::ServeRequest(const CatalogItem& item) {
  ++stats_.requests;
  instruments_.requests->Add();
  const bool hit = index_.find(item.id) != index_.end();
  if (hit) {
    ++stats_.hits;
    instruments_.hits->Add();
    Touch(item.id);
  } else {
    ++stats_.misses;
    instruments_.misses->Add();
    // Miss: fetch from origin in the cached representation's form.
    const std::size_t origin_bytes = CachedSize(item);
    stats_.bytes_from_origin += origin_bytes;
    instruments_.bytes_from_origin->Add(origin_bytes);
    Insert(item);
  }
  // Users always receive materialized content ("loses data transmission
  // benefits" — the edge-to-user hop carries full bytes in prompt mode).
  stats_.bytes_to_users += item.content_bytes;
  instruments_.bytes_to_users->Add(item.content_bytes);
  // Prompt mode materializes on every user request for non-unique items.
  if (mode_ == EdgeMode::kPromptMode && !item.unique) {
    const double seconds = GenerateSeconds(item);
    const double energy_wh = GenerateEnergyWh(item);
    stats_.generation_seconds += seconds;
    stats_.generation_energy_wh += energy_wh;
    instruments_.generation_seconds->Add(seconds);
    instruments_.generation_energy_wh->Add(energy_wh);
  }
}

}  // namespace sww::cdn
