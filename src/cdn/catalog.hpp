// catalog.hpp — the content catalog behind the CDN simulation (§2.2).
//
// "We identify Content Distribution Networks as a place where SWW is
// likely to have a large impact ... By moving to storing prompts rather
// than storing content, CDNs can reduce storage requirements."
//
// A catalog holds the origin's media items with both representations'
// sizes: the prompt/metadata form and the traditional materialized form.
// Synthetic catalogs mirror web media populations: mostly images of mixed
// resolutions plus text blocks, with Zipf-distributed request popularity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace sww::cdn {

struct CatalogItem {
  std::uint64_t id = 0;
  bool is_image = true;
  int width = 0, height = 0;   // images
  int words = 0;               // text
  std::size_t prompt_bytes = 0;      ///< metadata/prompt representation
  std::size_t content_bytes = 0;     ///< traditional materialized bytes
  bool unique = false;               ///< unique content: no prompt form
  double popularity_weight = 1.0;    ///< Zipf weight (normalized externally)
};

struct CatalogOptions {
  std::size_t item_count = 10000;
  double unique_fraction = 0.15;  ///< items that must stay traditional
  double text_fraction = 0.25;    ///< text blocks vs images
  double zipf_exponent = 0.9;     ///< request popularity skew
  std::uint64_t seed = 99;
};

class Catalog {
 public:
  static Catalog MakeSynthetic(const CatalogOptions& options);

  const std::vector<CatalogItem>& items() const { return items_; }
  const CatalogItem& item(std::size_t index) const { return items_.at(index); }
  std::size_t size() const { return items_.size(); }

  /// Total bytes to store everything in each representation.
  std::uint64_t TotalContentBytes() const;
  std::uint64_t TotalPromptModeBytes() const;  ///< prompts + unique content

  /// Draw a request (item index) from the Zipf popularity distribution.
  std::size_t SampleRequest(util::Rng& rng) const;

  /// Same inversion for a caller-supplied uniform u in [0, 1) — the load
  /// engine draws its uniforms statelessly (counter-based), so the page
  /// picked for arrival i is independent of evaluation order.
  std::size_t SampleRequestUniform(double u) const;

 private:
  std::vector<CatalogItem> items_;
  std::vector<double> cumulative_;  // popularity CDF for sampling
};

}  // namespace sww::cdn
