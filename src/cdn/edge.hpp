// edge.hpp — an edge/cache node in the CDN simulation (§2.2).
//
// Two operating modes, the paper's comparison:
//   * content mode — today's CDN: the edge caches materialized bytes (LRU
//     within a storage budget); misses fetch from the origin.
//   * prompt mode — the SWW intermediate solution: "media is sent from the
//     content provider to caching locations or edge servers as prompts,
//     and only the prompts are saved at the edge.  At a request of a user,
//     the edge server uses the prompt to generate the content and sends it
//     to the requester.  This approach maintains the storage benefits, but
//     loses data transmission benefits."  Plus the energy trade-off the
//     paper flags: every prompt-mode hit pays edge generation time/energy.
//
// Unique items are cached as content in both modes.
//
// Concurrency: ServeRequest is safe to call from any number of threads.
// Counters accumulate in relaxed atomics (no lock), the LRU structure is
// guarded by one short critical section, and the generation cost model —
// the expensive part of a prompt-mode hit — runs entirely outside the
// lock.  stats() returns a merged snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include "cdn/catalog.hpp"
#include "energy/device.hpp"
#include "genai/model_specs.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sww::cdn {

enum class EdgeMode {
  kContentMode,
  kPromptMode,
  /// Full SWW: the edge caches prompts AND ships prompts — generation
  /// happens on the client device, so the edge pays neither generation
  /// time nor content-byte transmission for non-unique items.  Unique
  /// items are still cached and shipped as content in this mode.
  kPromptPassthrough,
};

/// Short mode label used in span attributes, journal records and reports.
std::string_view EdgeModeName(EdgeMode mode);

/// What one serve cost — returned to callers (the load engine) that model
/// the downstream wire and client legs themselves.
struct ServeOutcome {
  bool hit = false;
  std::uint64_t bytes_to_user = 0;      ///< what the edge put on the wire
  std::uint64_t bytes_from_origin = 0;  ///< miss traffic
  double generation_seconds = 0.0;      ///< edge-side materialization
  double generation_energy_wh = 0.0;
};

/// Per-node snapshot; mirrored into the process-wide obs::Registry under
/// cdn.edge.* (summed across nodes and modes).
struct EdgeStats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytes_to_users = 0;     ///< always materialized content
  std::uint64_t bytes_from_origin = 0;  ///< miss traffic (mode-dependent form)
  std::uint64_t evictions = 0;
  double generation_seconds = 0.0;      ///< prompt-mode materialization
  double generation_energy_wh = 0.0;

  double HitRate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(requests);
  }
};

class EdgeNode {
 public:
  /// `storage_budget_bytes` caps cached bytes (LRU eviction).  Prompt-mode
  /// generation runs on the workstation profile with the given image model
  /// (the paper's edge servers are workstation-class).
  EdgeNode(EdgeMode mode, std::uint64_t storage_budget_bytes,
           const genai::ImageModelSpec& image_model,
           const genai::TextModelSpec& text_model);

  /// Serve one request; updates stats and cache state.  Thread-safe.
  void ServeRequest(const CatalogItem& item);

  /// Serve one request and report what it cost.  Same effects as
  /// ServeRequest; the returned outcome lets a simulation layer carry the
  /// per-request numbers into its own latency/energy model.  Thread-safe.
  ServeOutcome Serve(const CatalogItem& item);

  /// Serve one request carrying a trace context propagated from the
  /// requesting user/client (the sww-trace header, obs/trace.hpp): the
  /// edge's "edge.request" span — and on a miss its "edge.origin_fetch"
  /// child — parent under the originating fetch, so the whole path
  /// exports as ONE distributed trace.  An invalid context records the
  /// spans in a fresh trace.  Thread-safe.
  void ServeRequest(const CatalogItem& item, const obs::SpanContext& context);

  EdgeMode mode() const { return mode_; }
  std::uint64_t stored_bytes() const {
    return stored_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t storage_budget() const { return storage_budget_; }
  /// Merged snapshot of the atomic counters.
  EdgeStats stats() const;

 private:
  /// Shared serve path; `span` (nullable) receives hit/miss and cost
  /// attributes and gates the origin_fetch child span.
  ServeOutcome ServeInternal(const CatalogItem& item, obs::ScopedSpan* span);
  /// Bytes this item occupies in this edge's cache.
  std::size_t CachedSize(const CatalogItem& item) const;
  /// Touch-or-insert under the structure lock; returns whether it was a
  /// hit.  Eviction counting happens inside.
  bool TouchOrInsert(const CatalogItem& item);
  void EvictToFitLocked();
  double GenerateSeconds(const CatalogItem& item) const;
  double GenerateEnergyWh(const CatalogItem& item) const;
  /// CAS-add for the double-valued stats (same idiom as obs::Gauge).
  static void AtomicAdd(std::atomic<double>& target, double delta);

  EdgeMode mode_;
  std::uint64_t storage_budget_;
  genai::ImageModelSpec image_model_;
  genai::TextModelSpec text_model_;

  // LRU: most recent at front.  Guarded by structure_mutex_.
  std::mutex structure_mutex_;
  std::list<std::pair<std::uint64_t, std::size_t>> lru_;  // (id, bytes)
  std::unordered_map<std::uint64_t, std::list<std::pair<std::uint64_t, std::size_t>>::iterator>
      index_;
  std::atomic<std::uint64_t> stored_bytes_{0};

  // Lock-free stat cells, merged by stats().
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> bytes_to_users_{0};
  std::atomic<std::uint64_t> bytes_from_origin_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<double> generation_seconds_{0.0};
  std::atomic<double> generation_energy_wh_{0.0};

  // Process-wide mirrors of the EdgeStats events.
  struct Instruments {
    obs::Counter* requests;
    obs::Counter* hits;
    obs::Counter* misses;
    obs::Counter* evictions;
    obs::Counter* bytes_to_users;
    obs::Counter* bytes_from_origin;
    obs::Gauge* generation_seconds;
    obs::Gauge* generation_energy_wh;
    /// Live hit ratio (hits / requests) and current cache occupancy —
    /// the two numbers a /metrics scrape wants mid-soak.
    obs::Gauge* hit_ratio;
    obs::Gauge* stored_bytes;
  };
  Instruments instruments_;
};

}  // namespace sww::cdn
