// simulator.hpp — whole-CDN comparison harness (§2.2).
//
// Runs the same Zipf request stream against a fleet of edges in content
// mode and in prompt mode, and aggregates the quantities the paper argues
// about: edge storage footprint, hit rates under a fixed storage budget,
// origin traffic, user-side traffic, edge generation energy, and the
// embodied-carbon value of the storage saved.
#pragma once

#include <vector>

#include "cdn/catalog.hpp"
#include "cdn/edge.hpp"

namespace sww::cdn {

struct SimulationOptions {
  int edge_count = 4;
  std::uint64_t storage_budget_bytes = 64ull << 20;  ///< per edge
  std::uint64_t request_count = 200000;
  std::uint64_t seed = 1234;
};

struct FleetResult {
  EdgeMode mode;
  std::uint64_t total_stored_bytes = 0;
  std::uint64_t total_origin_bytes = 0;
  std::uint64_t total_user_bytes = 0;
  double hit_rate = 0.0;
  double generation_seconds = 0.0;
  double generation_energy_wh = 0.0;
  std::uint64_t evictions = 0;
};

struct ComparisonResult {
  FleetResult content_mode;
  FleetResult prompt_mode;
  /// Storage footprint ratio content/prompt (the paper's headline benefit).
  double storage_ratio = 0.0;
  /// Embodied carbon saved by the smaller footprint, kgCO2e.
  double carbon_saved_kg = 0.0;
};

ComparisonResult RunComparison(const Catalog& catalog,
                               const SimulationOptions& options);

/// One fleet, one mode.
FleetResult RunFleet(const Catalog& catalog, EdgeMode mode,
                     const SimulationOptions& options);

}  // namespace sww::cdn
