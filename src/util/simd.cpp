#include "util/simd.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/log.hpp"
#include "util/rng.hpp"

#if defined(__x86_64__)
#define SWW_SIMD_X86 1
#include <immintrin.h>
#endif

namespace sww::util::simd {

namespace {

// ---------------------------------------------------------------------------
// Canonical fixed-tree reduction driver (shared by every lane).
//
// The reduction semantics are defined ONCE, here: 64-element blocks, each
// reduced by a balanced stride-halving tree, block sums combined by the
// contiguous adjacent-pair tree TreeOverBlocks builds, the block count
// padded to a power of two with +0.0.
// Lanes differ only in how they evaluate one full 64-element block — a
// scalar buffer, 32 SSE2 vectors, or 16 AVX2 vectors — and each of those
// performs the identical tree, so the result is bit-identical by
// construction rather than by tolerance.
// ---------------------------------------------------------------------------

inline constexpr std::size_t kBlock = 64;

template <typename BlockFn>
double TreeOverBlocks(std::size_t first, std::size_t len, std::size_t blocks,
                      const BlockFn& block) {
  if (first >= blocks) return 0.0;  // an all-padding subtree sums to +0.0
  if (len == 1) return block(first);
  const std::size_t half = len / 2;
  return TreeOverBlocks(first, half, blocks, block) +
         TreeOverBlocks(first + half, half, blocks, block);
}

template <typename BlockFn>
double ReduceBlocks(std::size_t n, const BlockFn& block) {
  if (n == 0) return 0.0;
  const std::size_t blocks = (n + kBlock - 1) / kBlock;
  return TreeOverBlocks(0, std::bit_ceil(blocks), blocks, block);
}

/// Evaluate one (possibly ragged) block of a dot product with `block64`,
/// a lane's full-block kernel.  The ragged tail is zero-padded, so its
/// missing product terms enter the tree as +0.0 — the canonical padding.
template <typename Block64>
double DotWithBlocks(const double* a, const double* b, std::size_t n,
                     const Block64& block64) {
  return ReduceBlocks(n, [&](std::size_t k) {
    const std::size_t begin = k * kBlock;
    if (begin + kBlock <= n) return block64(a + begin, b + begin);
    double pa[kBlock] = {};
    double pb[kBlock] = {};
    std::memcpy(pa, a + begin, (n - begin) * sizeof(double));
    std::memcpy(pb, b + begin, (n - begin) * sizeof(double));
    return block64(pa, pb);
  });
}

template <typename Block64>
double SumWithBlocks(const double* x, std::size_t n, const Block64& block64) {
  return ReduceBlocks(n, [&](std::size_t k) {
    const std::size_t begin = k * kBlock;
    if (begin + kBlock <= n) return block64(x + begin);
    double px[kBlock] = {};
    std::memcpy(px, x + begin, (n - begin) * sizeof(double));
    return block64(px);
  });
}

// ---------------------------------------------------------------------------
// Scalar lane — the oracle.
// ---------------------------------------------------------------------------

double DotBlock64Scalar(const double* a, const double* b) {
  double buf[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) buf[i] = a[i] * b[i];
  for (std::size_t s = kBlock / 2; s >= 1; s >>= 1) {
    for (std::size_t i = 0; i < s; ++i) buf[i] += buf[i + s];
  }
  return buf[0];
}

double SumBlock64Scalar(const double* x) {
  double buf[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) buf[i] = x[i];
  for (std::size_t s = kBlock / 2; s >= 1; s >>= 1) {
    for (std::size_t i = 0; i < s; ++i) buf[i] += buf[i + s];
  }
  return buf[0];
}

void BlendScalar(double* dst, const double* src, double t, std::size_t n) {
  const double u = 1.0 - t;
  for (std::size_t i = 0; i < n; ++i) dst[i] = t * src[i] + u * dst[i];
}

void AxpyScalar(double* dst, const double* src, double scale, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += scale * src[i];
}

void CounterRangeRowScalar(std::uint64_t seed, std::uint64_t x0,
                           std::uint64_t y, double lo, double hi, double* out,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = CounterRange(seed, x0 + i, y, lo, hi);
  }
}

std::size_t MatchLengthScalar(const std::uint8_t* a, const std::uint8_t* b,
                              std::size_t limit) {
  std::size_t i = 0;
  while (i < limit && a[i] == b[i]) ++i;
  return i;
}

#if defined(SWW_SIMD_X86)

// ---------------------------------------------------------------------------
// SSE2 lane (x86-64 baseline — no target attribute needed).
// ---------------------------------------------------------------------------

double DotBlock64Sse2(const double* a, const double* b) {
  __m128d v[32];
  for (int i = 0; i < 32; ++i) {
    v[i] = _mm_mul_pd(_mm_loadu_pd(a + 2 * i), _mm_loadu_pd(b + 2 * i));
  }
  // Stride-halving tree: element strides 32, 16, 8, 4, 2 are whole-vector
  // adds; the final stride-1 add crosses the 2-wide vector.
  for (int i = 0; i < 16; ++i) v[i] = _mm_add_pd(v[i], v[i + 16]);
  for (int i = 0; i < 8; ++i) v[i] = _mm_add_pd(v[i], v[i + 8]);
  for (int i = 0; i < 4; ++i) v[i] = _mm_add_pd(v[i], v[i + 4]);
  for (int i = 0; i < 2; ++i) v[i] = _mm_add_pd(v[i], v[i + 2]);
  v[0] = _mm_add_pd(v[0], v[1]);
  const __m128d high = _mm_unpackhi_pd(v[0], v[0]);
  return _mm_cvtsd_f64(_mm_add_sd(v[0], high));
}

double SumBlock64Sse2(const double* x) {
  __m128d v[32];
  for (int i = 0; i < 32; ++i) v[i] = _mm_loadu_pd(x + 2 * i);
  for (int i = 0; i < 16; ++i) v[i] = _mm_add_pd(v[i], v[i + 16]);
  for (int i = 0; i < 8; ++i) v[i] = _mm_add_pd(v[i], v[i + 8]);
  for (int i = 0; i < 4; ++i) v[i] = _mm_add_pd(v[i], v[i + 4]);
  for (int i = 0; i < 2; ++i) v[i] = _mm_add_pd(v[i], v[i + 2]);
  v[0] = _mm_add_pd(v[0], v[1]);
  const __m128d high = _mm_unpackhi_pd(v[0], v[0]);
  return _mm_cvtsd_f64(_mm_add_sd(v[0], high));
}

void BlendSse2(double* dst, const double* src, double t, std::size_t n) {
  const double u = 1.0 - t;
  const __m128d vt = _mm_set1_pd(t);
  const __m128d vu = _mm_set1_pd(u);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d s = _mm_loadu_pd(src + i);
    const __m128d d = _mm_loadu_pd(dst + i);
    _mm_storeu_pd(dst + i, _mm_add_pd(_mm_mul_pd(vt, s), _mm_mul_pd(vu, d)));
  }
  for (; i < n; ++i) dst[i] = t * src[i] + u * dst[i];
}

void AxpySse2(double* dst, const double* src, double scale, std::size_t n) {
  const __m128d vs = _mm_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d s = _mm_loadu_pd(src + i);
    const __m128d d = _mm_loadu_pd(dst + i);
    _mm_storeu_pd(dst + i, _mm_add_pd(d, _mm_mul_pd(vs, s)));
  }
  for (; i < n; ++i) dst[i] += scale * src[i];
}

// 64-bit × 64-bit → low 64 bits, from 32×32→64 partial products.
inline __m128i MulLo64Sse2(__m128i x, __m128i y) {
  const __m128i lo = _mm_mul_epu32(x, y);
  const __m128i t1 = _mm_mul_epu32(_mm_srli_epi64(x, 32), y);
  const __m128i t2 = _mm_mul_epu32(x, _mm_srli_epi64(y, 32));
  const __m128i hi = _mm_add_epi64(t1, t2);
  return _mm_add_epi64(lo, _mm_slli_epi64(hi, 32));
}

/// Exact uint64 (< 2^53) → double: assemble from 32-bit halves with the
/// 2^52 magic-bias trick; both halves and their recombination are exact.
inline __m128d U64ToDoubleSse2(__m128i v) {
  const __m128i magic_i = _mm_set1_epi64x(0x4330000000000000LL);
  const __m128d magic_d = _mm_set1_pd(0x1.0p52);
  const __m128i lo32 = _mm_and_si128(v, _mm_set1_epi64x(0xffffffffLL));
  const __m128i hi = _mm_srli_epi64(v, 32);
  const __m128d dlo =
      _mm_sub_pd(_mm_castsi128_pd(_mm_or_si128(lo32, magic_i)), magic_d);
  const __m128d dhi =
      _mm_sub_pd(_mm_castsi128_pd(_mm_or_si128(hi, magic_i)), magic_d);
  return _mm_add_pd(_mm_mul_pd(dhi, _mm_set1_pd(0x1.0p32)), dlo);
}

void CounterRangeRowSse2(std::uint64_t seed, std::uint64_t x0, std::uint64_t y,
                         double lo, double hi, double* out, std::size_t n) {
  // CounterHash(seed, a, b) = SplitMix64 finalizer applied to
  //   seed + kMulA*(a+1) + kMulB*(b+1) + kGolden,
  // with the row's b = y and the SplitMix64 increment folded into `base`.
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  constexpr std::uint64_t kMulB = 0x94d049bb133111ebULL;
  constexpr std::uint64_t kMix1 = 0xbf58476d1ce4e5b9ULL;
  constexpr std::uint64_t kMix2 = 0x94d049bb133111ebULL;
  const std::uint64_t base = seed + kMulB * (y + 1) + kGolden;
  const __m128i vbase = _mm_set1_epi64x(static_cast<long long>(base));
  const __m128i vmix1 = _mm_set1_epi64x(static_cast<long long>(kMix1));
  const __m128i vmix2 = _mm_set1_epi64x(static_cast<long long>(kMix2));
  const double range = hi - lo;
  const __m128d vlo = _mm_set1_pd(lo);
  const __m128d vrange = _mm_set1_pd(range);
  const __m128d vscale = _mm_set1_pd(0x1.0p-53);
  // kGolden * (a + 1) advances linearly in a, so carry it as a vector
  // counter — one add per step instead of a 64-bit multiply and lane
  // rebuild.  Wraparound mod 2^64 matches the scalar multiply exactly.
  __m128i vxmul = _mm_set_epi64x(static_cast<long long>(kGolden * (x0 + 2)),
                                 static_cast<long long>(kGolden * (x0 + 1)));
  const __m128i vstep = _mm_set1_epi64x(static_cast<long long>(kGolden * 2));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128i z = _mm_add_epi64(vbase, vxmul);
    vxmul = _mm_add_epi64(vxmul, vstep);
    z = MulLo64Sse2(_mm_xor_si128(z, _mm_srli_epi64(z, 30)), vmix1);
    z = MulLo64Sse2(_mm_xor_si128(z, _mm_srli_epi64(z, 27)), vmix2);
    z = _mm_xor_si128(z, _mm_srli_epi64(z, 31));
    const __m128d unit =
        _mm_mul_pd(U64ToDoubleSse2(_mm_srli_epi64(z, 11)), vscale);
    _mm_storeu_pd(out + i, _mm_add_pd(vlo, _mm_mul_pd(unit, vrange)));
  }
  for (; i < n; ++i) out[i] = CounterRange(seed, x0 + i, y, lo, hi);
}

std::size_t MatchLengthSse2(const std::uint8_t* a, const std::uint8_t* b,
                            std::size_t limit) {
  std::size_t i = 0;
  for (; i + 16 <= limit; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const unsigned eq =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)));
    if (eq != 0xffffu) {
      return i + static_cast<std::size_t>(__builtin_ctz(~eq & 0xffffu));
    }
  }
  while (i < limit && a[i] == b[i]) ++i;
  return i;
}

// ---------------------------------------------------------------------------
// AVX2 lane (function-level target attribute; dispatched at runtime).
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) double DotBlock64Avx2(const double* a,
                                                      const double* b) {
  __m256d v[16];
  for (int i = 0; i < 16; ++i) {
    v[i] = _mm256_mul_pd(_mm256_loadu_pd(a + 4 * i), _mm256_loadu_pd(b + 4 * i));
  }
  // Element strides 32, 16, 8, 4 are whole-vector adds; strides 2 and 1
  // cross the 4-wide vector: low+high 128-bit halves, then a swap-add.
  for (int i = 0; i < 8; ++i) v[i] = _mm256_add_pd(v[i], v[i + 8]);
  for (int i = 0; i < 4; ++i) v[i] = _mm256_add_pd(v[i], v[i + 4]);
  for (int i = 0; i < 2; ++i) v[i] = _mm256_add_pd(v[i], v[i + 2]);
  v[0] = _mm256_add_pd(v[0], v[1]);
  const __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(v[0]),
                                  _mm256_extractf128_pd(v[0], 1));
  const __m128d high = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, high));
}

__attribute__((target("avx2"))) double SumBlock64Avx2(const double* x) {
  __m256d v[16];
  for (int i = 0; i < 16; ++i) v[i] = _mm256_loadu_pd(x + 4 * i);
  for (int i = 0; i < 8; ++i) v[i] = _mm256_add_pd(v[i], v[i + 8]);
  for (int i = 0; i < 4; ++i) v[i] = _mm256_add_pd(v[i], v[i + 4]);
  for (int i = 0; i < 2; ++i) v[i] = _mm256_add_pd(v[i], v[i + 2]);
  v[0] = _mm256_add_pd(v[0], v[1]);
  const __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(v[0]),
                                  _mm256_extractf128_pd(v[0], 1));
  const __m128d high = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, high));
}

__attribute__((target("avx2"))) void BlendAvx2(double* dst, const double* src,
                                               double t, std::size_t n) {
  const double u = 1.0 - t;
  const __m256d vt = _mm256_set1_pd(t);
  const __m256d vu = _mm256_set1_pd(u);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d s = _mm256_loadu_pd(src + i);
    const __m256d d = _mm256_loadu_pd(dst + i);
    _mm256_storeu_pd(
        dst + i, _mm256_add_pd(_mm256_mul_pd(vt, s), _mm256_mul_pd(vu, d)));
  }
  for (; i < n; ++i) dst[i] = t * src[i] + u * dst[i];
}

__attribute__((target("avx2"))) void AxpyAvx2(double* dst, const double* src,
                                              double scale, std::size_t n) {
  const __m256d vs = _mm256_set1_pd(scale);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d s = _mm256_loadu_pd(src + i);
    const __m256d d = _mm256_loadu_pd(dst + i);
    _mm256_storeu_pd(dst + i, _mm256_add_pd(d, _mm256_mul_pd(vs, s)));
  }
  for (; i < n; ++i) dst[i] += scale * src[i];
}

__attribute__((target("avx2"))) inline __m256i MulLo64Avx2(__m256i x,
                                                           __m256i y) {
  const __m256i lo = _mm256_mul_epu32(x, y);
  const __m256i t1 = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), y);
  const __m256i t2 = _mm256_mul_epu32(x, _mm256_srli_epi64(y, 32));
  const __m256i hi = _mm256_add_epi64(t1, t2);
  return _mm256_add_epi64(lo, _mm256_slli_epi64(hi, 32));
}

__attribute__((target("avx2"))) inline __m256d U64ToDoubleAvx2(__m256i v) {
  const __m256i magic_i = _mm256_set1_epi64x(0x4330000000000000LL);
  const __m256d magic_d = _mm256_set1_pd(0x1.0p52);
  const __m256i lo32 = _mm256_and_si256(v, _mm256_set1_epi64x(0xffffffffLL));
  const __m256i hi = _mm256_srli_epi64(v, 32);
  const __m256d dlo =
      _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(lo32, magic_i)), magic_d);
  const __m256d dhi =
      _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(hi, magic_i)), magic_d);
  return _mm256_add_pd(_mm256_mul_pd(dhi, _mm256_set1_pd(0x1.0p32)), dlo);
}

__attribute__((target("avx2"))) void CounterRangeRowAvx2(
    std::uint64_t seed, std::uint64_t x0, std::uint64_t y, double lo, double hi,
    double* out, std::size_t n) {
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  constexpr std::uint64_t kMulB = 0x94d049bb133111ebULL;
  constexpr std::uint64_t kMix1 = 0xbf58476d1ce4e5b9ULL;
  constexpr std::uint64_t kMix2 = 0x94d049bb133111ebULL;
  const std::uint64_t base = seed + kMulB * (y + 1) + kGolden;
  const __m256i vbase = _mm256_set1_epi64x(static_cast<long long>(base));
  const __m256i vmix1 = _mm256_set1_epi64x(static_cast<long long>(kMix1));
  const __m256i vmix2 = _mm256_set1_epi64x(static_cast<long long>(kMix2));
  const double range = hi - lo;
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vrange = _mm256_set1_pd(range);
  const __m256d vscale = _mm256_set1_pd(0x1.0p-53);
  // kGolden * (a + 1) advances linearly in a, so carry it as a vector
  // counter — one add per step instead of a 64-bit multiply and lane
  // rebuild.  Wraparound mod 2^64 matches the scalar multiply exactly.
  __m256i vxmul =
      _mm256_set_epi64x(static_cast<long long>(kGolden * (x0 + 4)),
                        static_cast<long long>(kGolden * (x0 + 3)),
                        static_cast<long long>(kGolden * (x0 + 2)),
                        static_cast<long long>(kGolden * (x0 + 1)));
  const __m256i vstep = _mm256_set1_epi64x(static_cast<long long>(kGolden * 4));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i z = _mm256_add_epi64(vbase, vxmul);
    vxmul = _mm256_add_epi64(vxmul, vstep);
    z = MulLo64Avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)), vmix1);
    z = MulLo64Avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)), vmix2);
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
    const __m256d unit =
        _mm256_mul_pd(U64ToDoubleAvx2(_mm256_srli_epi64(z, 11)), vscale);
    _mm256_storeu_pd(out + i, _mm256_add_pd(vlo, _mm256_mul_pd(unit, vrange)));
  }
  for (; i < n; ++i) out[i] = CounterRange(seed, x0 + i, y, lo, hi);
}

__attribute__((target("avx2"))) std::size_t MatchLengthAvx2(
    const std::uint8_t* a, const std::uint8_t* b, std::size_t limit) {
  std::size_t i = 0;
  for (; i + 32 <= limit; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const std::uint32_t eq = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (eq != 0xffffffffu) {
      return i + static_cast<std::size_t>(__builtin_ctz(~eq));
    }
  }
  return i + MatchLengthSse2(a + i, b + i, limit - i);
}

#endif  // SWW_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

Lane DetectBestLane() {
#if defined(SWW_SIMD_X86)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Lane::kAvx2;
  if (__builtin_cpu_supports("sse2")) return Lane::kSse2;
#endif
  return Lane::kScalar;
}

Lane ResolveInitialLane() {
  const Lane best = DetectBestLane();
  const char* env = std::getenv("SWW_SIMD");
  if (env == nullptr || *env == '\0') return best;
  const std::string_view requested(env);
  Lane lane = best;
  if (requested == "scalar") {
    lane = Lane::kScalar;
  } else if (requested == "sse2") {
    lane = Lane::kSse2;
  } else if (requested == "avx2") {
    lane = Lane::kAvx2;
  } else {
    LogWarn("util.simd", "unknown SWW_SIMD value \"" + std::string(requested) +
                             "\", using " + std::string(LaneName(best)));
    return lane;
  }
  if (static_cast<int>(lane) > static_cast<int>(best)) {
    LogWarn("util.simd", "SWW_SIMD=" + std::string(requested) +
                             " not supported on this host, using " +
                             std::string(LaneName(best)));
    return best;
  }
  return lane;
}

std::atomic<int>& ActiveLaneCell() {
  static std::atomic<int> cell{static_cast<int>(ResolveInitialLane())};
  return cell;
}

}  // namespace

std::string_view LaneName(Lane lane) {
  switch (lane) {
    case Lane::kScalar:
      return "scalar";
    case Lane::kSse2:
      return "sse2";
    case Lane::kAvx2:
      return "avx2";
  }
  return "scalar";
}

bool LaneSupported(Lane lane) {
  return static_cast<int>(lane) <= static_cast<int>(BestSupportedLane());
}

Lane BestSupportedLane() {
  static const Lane best = DetectBestLane();
  return best;
}

Lane ActiveLane() {
  return static_cast<Lane>(ActiveLaneCell().load(std::memory_order_relaxed));
}

Lane SetActiveLane(Lane lane) {
  if (!LaneSupported(lane)) lane = BestSupportedLane();
  ActiveLaneCell().store(static_cast<int>(lane), std::memory_order_relaxed);
  return lane;
}

double DotPairwise(const double* a, const double* b, std::size_t n, Lane lane) {
#if defined(SWW_SIMD_X86)
  switch (lane) {
    case Lane::kAvx2:
      return DotWithBlocks(a, b, n, DotBlock64Avx2);
    case Lane::kSse2:
      return DotWithBlocks(a, b, n, DotBlock64Sse2);
    case Lane::kScalar:
      break;
  }
#else
  (void)lane;
#endif
  return DotWithBlocks(a, b, n, DotBlock64Scalar);
}

double DotPairwise(const double* a, const double* b, std::size_t n) {
  return DotPairwise(a, b, n, ActiveLane());
}

double SumTree(const double* x, std::size_t n, Lane lane) {
#if defined(SWW_SIMD_X86)
  switch (lane) {
    case Lane::kAvx2:
      return SumWithBlocks(x, n, SumBlock64Avx2);
    case Lane::kSse2:
      return SumWithBlocks(x, n, SumBlock64Sse2);
    case Lane::kScalar:
      break;
  }
#else
  (void)lane;
#endif
  return SumWithBlocks(x, n, SumBlock64Scalar);
}

double SumTree(const double* x, std::size_t n) {
  return SumTree(x, n, ActiveLane());
}

void Blend(double* dst, const double* src, double t, std::size_t n, Lane lane) {
#if defined(SWW_SIMD_X86)
  switch (lane) {
    case Lane::kAvx2:
      BlendAvx2(dst, src, t, n);
      return;
    case Lane::kSse2:
      BlendSse2(dst, src, t, n);
      return;
    case Lane::kScalar:
      break;
  }
#else
  (void)lane;
#endif
  BlendScalar(dst, src, t, n);
}

void Blend(double* dst, const double* src, double t, std::size_t n) {
  Blend(dst, src, t, n, ActiveLane());
}

void Axpy(double* dst, const double* src, double scale, std::size_t n,
          Lane lane) {
#if defined(SWW_SIMD_X86)
  switch (lane) {
    case Lane::kAvx2:
      AxpyAvx2(dst, src, scale, n);
      return;
    case Lane::kSse2:
      AxpySse2(dst, src, scale, n);
      return;
    case Lane::kScalar:
      break;
  }
#else
  (void)lane;
#endif
  AxpyScalar(dst, src, scale, n);
}

void Axpy(double* dst, const double* src, double scale, std::size_t n) {
  Axpy(dst, src, scale, n, ActiveLane());
}

void CounterRangeRow(std::uint64_t seed, std::uint64_t x0, std::uint64_t y,
                     double lo, double hi, double* out, std::size_t n,
                     Lane lane) {
#if defined(SWW_SIMD_X86)
  switch (lane) {
    case Lane::kAvx2:
      CounterRangeRowAvx2(seed, x0, y, lo, hi, out, n);
      return;
    case Lane::kSse2:
      CounterRangeRowSse2(seed, x0, y, lo, hi, out, n);
      return;
    case Lane::kScalar:
      break;
  }
#else
  (void)lane;
#endif
  CounterRangeRowScalar(seed, x0, y, lo, hi, out, n);
}

void CounterRangeRow(std::uint64_t seed, std::uint64_t x0, std::uint64_t y,
                     double lo, double hi, double* out, std::size_t n) {
  CounterRangeRow(seed, x0, y, lo, hi, out, n, ActiveLane());
}

std::size_t MatchLength(const std::uint8_t* a, const std::uint8_t* b,
                        std::size_t limit, Lane lane) {
#if defined(SWW_SIMD_X86)
  switch (lane) {
    case Lane::kAvx2:
      return MatchLengthAvx2(a, b, limit);
    case Lane::kSse2:
      return MatchLengthSse2(a, b, limit);
    case Lane::kScalar:
      break;
  }
#else
  (void)lane;
#endif
  return MatchLengthScalar(a, b, limit);
}

std::size_t MatchLength(const std::uint8_t* a, const std::uint8_t* b,
                        std::size_t limit) {
  return MatchLength(a, b, limit, ActiveLane());
}

}  // namespace sww::util::simd
