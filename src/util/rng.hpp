// rng.hpp — deterministic random number generation.
//
// Everything in the GenAI simulation layer must be reproducible: the same
// prompt + seed must generate the same image bytes on every run so tests and
// benchmarks are stable.  We use SplitMix64 (seed expansion) feeding
// xoshiro256** (stream), both public-domain algorithms, instead of std::mt19937
// whose distributions are not bit-stable across standard library versions.
#pragma once

#include <cstdint>
#include <vector>

namespace sww::util {

/// SplitMix64: a tiny, high-quality mixer, used to expand a single 64-bit
/// seed into the 256-bit xoshiro state and as a standalone stateless hash.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless counter-based hash: one uniform 64-bit value per (seed, a, b)
/// triple.  Unlike a sequential Rng stream, the value for a counter pair
/// depends only on the pair itself — so a loop over (x, y) can be tiled,
/// reordered, or split across any number of threads and still produce
/// bit-identical output.  This is what makes the tile-parallel renderer in
/// genai::DiffusionModel schedule-independent.
constexpr std::uint64_t CounterHash(std::uint64_t seed, std::uint64_t a,
                                    std::uint64_t b) {
  // Distinct odd multipliers keep (a, b) and (b, a) apart; SplitMix64's
  // finalizer then decorrelates neighboring counters.
  std::uint64_t state = seed + 0x9e3779b97f4a7c15ULL * (a + 1) +
                        0x94d049bb133111ebULL * (b + 1);
  return SplitMix64(state);
}

/// Uniform double in [lo, hi) from a counter triple — the stateless
/// equivalent of Rng::NextRange for tile-parallel loops.
constexpr double CounterRange(std::uint64_t seed, std::uint64_t a,
                              std::uint64_t b, double lo, double hi) {
  const double unit =
      static_cast<double>(CounterHash(seed, a, b) >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

/// xoshiro256** by Blackman & Vigna — fast, tiny-state, well-distributed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();
  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t NextBounded(std::uint64_t bound);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// Uniform double in [lo, hi).
  double NextRange(double lo, double hi);
  /// Standard normal via Box-Muller (cached spare value).
  double NextGaussian();
  /// Gaussian with mean/stddev.
  double NextGaussian(double mean, double stddev);
  /// Bernoulli with probability p.
  bool NextBool(double p = 0.5);
  /// Pick an index in [0, size) — convenience for element selection.
  std::size_t NextIndex(std::size_t size);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace sww::util
