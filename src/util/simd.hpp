// simd.hpp — vectorized compute fast lanes with runtime CPU dispatch.
//
// The wire fast lanes (PR 5) left the compute side — diffusion denoise,
// embedding dot products, the SWZ tokenizer — as the dominant cost of a
// generative fetch.  This layer rebuilds those inner loops as SIMD
// kernels without giving up the repository's core invariant: *every*
// modeled byte and score is identical on every machine, at every thread
// count, and now in every instruction-set lane.
//
// Three lanes exist:
//
//   * kScalar — portable C++, always available.  This is the in-tree
//     ORACLE: the differential suites and benches compare the vector
//     lanes against it, and `SWW_SIMD=scalar` forces it at runtime.
//   * kSse2   — 2 doubles / 16 bytes per vector (baseline on x86-64).
//   * kAvx2   — 4 doubles / 32 bytes per vector, selected when the CPU
//     reports AVX2 support.
//
// Determinism contract (docs/performance.md §SIMD):
//
//   1. Elementwise kernels (Blend, Axpy, CounterRangeRow, MatchLength)
//      perform the exact same IEEE operations per element in every lane
//      — multiplies and adds in the same order, no FMA contraction — so
//      lane choice cannot change a single output bit.
//   2. Reductions (DotPairwise, SumTree) do NOT have a natural scalar
//      order; instead the *fixed pairwise tree* below is the canonical
//      semantics, and every lane (including scalar) computes it:
//
//        - the input is split into 64-element blocks, the last block
//          zero-padded; each block is reduced by a balanced
//          stride-halving tree (s[i] += s[i+32], then +16, +8, +4, +2,
//          +1) — exactly the tree a register-resident vector reduction
//          produces;
//        - block sums are combined by the contiguous adjacent-pair
//          balanced tree ((b0+b1)+(b2+b3))+…, the block count padded to
//          a power of two with +0.0 sums.
//
//      `genai::Dot` adopts this as its definition (it was naive
//      left-to-right before), so embedding scores are identical across
//      scalar, SSE2 and AVX2 — and the AVX2 lane is simply fast, not
//      "fast but approximately equal".
//
// Dispatch: ActiveLane() resolves once from CPUID, overridable with
// SWW_SIMD=scalar|sse2|avx2 (clamped to what the host supports).  Every
// kernel also takes an explicit Lane overload so differential tests and
// benches can pin lanes without touching process state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sww::util::simd {

enum class Lane : int {
  kScalar = 0,  ///< portable C++ — the oracle lane
  kSse2 = 1,    ///< 128-bit vectors
  kAvx2 = 2,    ///< 256-bit vectors
};

/// Stable lowercase lane name ("scalar", "sse2", "avx2") — the same
/// tokens SWW_SIMD accepts.
std::string_view LaneName(Lane lane);

/// True when this build *and* this CPU can execute `lane`.
bool LaneSupported(Lane lane);

/// The best lane the host CPU supports (kScalar on non-x86 builds).
Lane BestSupportedLane();

/// The lane product code dispatches to: BestSupportedLane() unless the
/// SWW_SIMD environment variable forces a (supported) lower lane.
/// Resolved once, then cached.
Lane ActiveLane();

/// Override the active lane (clamped to LaneSupported); used by the
/// differential tests to drive whole product paths — tokenizer, diffusion
/// render — through each lane in one process.  Returns the lane actually
/// installed.
Lane SetActiveLane(Lane lane);

// --- reductions (canonical fixed-tree order) -------------------------------

/// Dot product of a[0..n) and b[0..n) in the canonical pairwise
/// fixed-tree order described above.  Bit-identical across lanes.
double DotPairwise(const double* a, const double* b, std::size_t n, Lane lane);
double DotPairwise(const double* a, const double* b, std::size_t n);

/// Horizontal sum of x[0..n) in the same fixed-tree order.
double SumTree(const double* x, std::size_t n, Lane lane);
double SumTree(const double* x, std::size_t n);

// --- elementwise kernels ---------------------------------------------------

/// dst[i] = t * src[i] + (1 - t) * dst[i] — the diffusion denoise blend.
/// Exact per-element operation order: (t*src) + (u*dst) with u = 1 - t
/// computed once; no FMA.
void Blend(double* dst, const double* src, double t, std::size_t n, Lane lane);
void Blend(double* dst, const double* src, double t, std::size_t n);

/// dst[i] += scale * src[i] — the field→embedding back-projection.
void Axpy(double* dst, const double* src, double scale, std::size_t n,
          Lane lane);
void Axpy(double* dst, const double* src, double scale, std::size_t n);

/// out[i] = util::CounterRange(seed, x0 + i, y, lo, hi) for i in [0, n):
/// one row of the stateless counter-hash texture RNG, 2 (SSE2) or 4
/// (AVX2) lanes of (seed, x, y) hashed per step.  Bit-identical to the
/// scalar CounterRange loop.
void CounterRangeRow(std::uint64_t seed, std::uint64_t x0, std::uint64_t y,
                     double lo, double hi, double* out, std::size_t n,
                     Lane lane);
void CounterRangeRow(std::uint64_t seed, std::uint64_t x0, std::uint64_t y,
                     double lo, double hi, double* out, std::size_t n);

/// Length of the common prefix of a[0..limit) and b[0..limit): the LZ77
/// match extender, comparing 16/32 bytes per step in the vector lanes.
/// Never reads past a+limit / b+limit.
std::size_t MatchLength(const std::uint8_t* a, const std::uint8_t* b,
                        std::size_t limit, Lane lane);
std::size_t MatchLength(const std::uint8_t* a, const std::uint8_t* b,
                        std::size_t limit);

}  // namespace sww::util::simd
