// error.hpp — lightweight Result<T> for recoverable, protocol-level errors.
//
// Following the C++ Core Guidelines (I.10 / E.*) we use exceptions for
// programming errors and unrecoverable failures, but network protocol code
// routinely encounters *expected* failures (malformed frame from a peer,
// truncated input, negotiation mismatch).  Those travel as values through
// Result<T>, so the hot parsing path never throws.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace sww::util {

/// Broad error domains used across the library.
enum class ErrorCode : std::uint8_t {
  kNone = 0,
  kTruncated,        ///< input ended before a complete element was parsed
  kMalformed,        ///< syntactically invalid input
  kProtocol,         ///< violates protocol state rules (HTTP/2 PROTOCOL_ERROR)
  kCompression,      ///< HPACK decoding failure (HTTP/2 COMPRESSION_ERROR)
  kFlowControl,      ///< window violation (HTTP/2 FLOW_CONTROL_ERROR)
  kFrameSize,        ///< frame exceeds negotiated bounds
  kUnsupported,      ///< feature not negotiated / not implemented
  kNotFound,         ///< named resource missing
  kClosed,           ///< operation on a closed stream/connection/transport
  kIo,               ///< transport I/O failure
  kInvalidArgument,  ///< caller passed an out-of-domain value
  kInternal,         ///< invariant violation that we chose to surface softly
  kResourceExhausted,  ///< out of fds/buffers/memory — retry may succeed later
};

/// Human-readable name of an ErrorCode, for logs and test failure messages.
constexpr const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kTruncated: return "truncated";
    case ErrorCode::kMalformed: return "malformed";
    case ErrorCode::kProtocol: return "protocol";
    case ErrorCode::kCompression: return "compression";
    case ErrorCode::kFlowControl: return "flow_control";
    case ErrorCode::kFrameSize: return "frame_size";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kClosed: return "closed";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
  }
  return "unknown";
}

/// A concrete error: domain code plus a context message.
struct Error {
  ErrorCode code = ErrorCode::kNone;
  std::string message;

  Error() = default;
  Error(ErrorCode c, std::string msg) : code(c), message(std::move(msg)) {}

  std::string ToString() const {
    return std::string(ErrorCodeName(code)) + ": " + message;
  }
};

/// Minimal expected-like result type.  Holds either a T or an Error.
///
///   Result<Frame> r = ParseFrame(bytes);
///   if (!r) return r.error();
///   use(r.value());
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}          // NOLINT implicit
  Result(Error error) : storage_(std::move(error)) {}      // NOLINT implicit
  Result(ErrorCode code, std::string msg)
      : storage_(Error(code, std::move(msg))) {}

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  /// Access the value; throws std::logic_error if this holds an error
  /// (that is a programming bug, hence an exception per I.10).
  T& value() & {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().ToString());
    return std::get<T>(storage_);
  }
  const T& value() const& {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().ToString());
    return std::get<T>(storage_);
  }
  T&& value() && {
    if (!ok()) throw std::logic_error("Result::value on error: " + error().ToString());
    return std::get<T>(std::move(storage_));
  }

  const Error& error() const {
    if (ok()) throw std::logic_error("Result::error on value");
    return std::get<Error>(storage_);
  }

  /// Value or a caller-provided fallback.
  T value_or(T fallback) const& { return ok() ? std::get<T>(storage_) : std::move(fallback); }

 private:
  std::variant<T, Error> storage_;
};

/// Specialization-free void result: optional error.
class [[nodiscard]] Status {
 public:
  Status() = default;                                     // OK
  Status(Error error) : error_(std::move(error)) {}       // NOLINT implicit
  Status(ErrorCode code, std::string msg) : error_(Error(code, std::move(msg))) {}

  static Status Ok() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    if (ok()) throw std::logic_error("Status::error on OK status");
    return *error_;
  }
  std::string ToString() const { return ok() ? "ok" : error_->ToString(); }

 private:
  std::optional<Error> error_;
};

}  // namespace sww::util
