// hash.hpp — stable, portable hashing.
//
// std::hash gives no cross-platform stability guarantee; the GenAI simulators
// and the metric embeddings need hashes that are identical everywhere so
// generated content and scores are reproducible.  FNV-1a is simple, fast and
// well understood.
#pragma once

#include <cstdint>
#include <string_view>

namespace sww::util {

/// 64-bit FNV-1a over a string.
constexpr std::uint64_t Fnv1a64(std::string_view data,
                                std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t hash = seed;
  for (char c : data) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Mix two hashes into one (boost::hash_combine style, 64-bit constants).
constexpr std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4);
  return a;
}

/// Map a hash to a unit-interval double — handy for derived pseudo-random
/// but deterministic per-token attributes.
constexpr double HashToUnit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace sww::util
