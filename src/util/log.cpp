#include "util/log.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace sww::util {

namespace {

// Monotonic origin for default-sink timestamps, captured at first use.
std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

std::uint64_t MonotonicNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - ProcessStart())
          .count());
}

char ToLowerAscii(char c) { return c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c; }

// Minimal JSON string escaping (util cannot link src/json).  Control
// bytes use \u00XX; the output is valid RFC 8259 for any input bytes
// that are valid UTF-8 (and never corrupts the line otherwise).
void AppendJsonEscaped(std::string& out, std::string_view text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

std::optional<LogLevel> ParseLogLevel(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(ToLowerAscii(c));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

std::string FormatLogJson(double elapsed_seconds, LogLevel level,
                          std::string_view component,
                          std::string_view message) {
  char ts[48];
  std::snprintf(ts, sizeof(ts), "%.6f", elapsed_seconds);
  std::string line = "{\"ts\":";
  line += ts;
  line += ",\"level\":\"";
  line += LogLevelName(level);
  line += "\",\"component\":";
  AppendJsonEscaped(line, component);
  line += ",\"message\":";
  AppendJsonEscaped(line, message);
  line += '}';
  return line;
}

Logger::Logger() {
  ProcessStart();  // pin the timestamp origin to logger construction
  if (const char* env = std::getenv("SWW_LOG_LEVEL"); env != nullptr) {
    if (std::optional<LogLevel> parsed = ParseLogLevel(env)) {
      SetLevel(*parsed);
    }
  }
  if (const char* env = std::getenv("SWW_LOG_FORMAT"); env != nullptr) {
    std::string lower;
    for (const char* p = env; *p != '\0'; ++p) lower.push_back(ToLowerAscii(*p));
    if (lower == "json") SetFormat(LogFormat::kJson);
  }
  sink_ = [this](LogLevel level, std::string_view component,
                 std::string_view message) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      ProcessStart())
            .count();
    if (format() == LogFormat::kJson) {
      const std::string line =
          FormatLogJson(elapsed, level, component, message);
      std::fprintf(stderr, "%s\n", line.c_str());
      return;
    }
    std::fprintf(stderr, "[%10.6f] [%s] %.*s: %.*s\n", elapsed,
                 LogLevelName(level), static_cast<int>(component.size()),
                 component.data(), static_cast<int>(message.size()),
                 message.data());
  };
}

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

Logger::Sink Logger::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  Sink previous = std::move(sink_);
  sink_ = std::move(sink);
  return previous;
}

void Logger::Log(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(this->level())) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (sink_) sink_(level, component, message);
}

void LogDebug(std::string_view component, std::string_view message) {
  Logger::Instance().Log(LogLevel::kDebug, component, message);
}
void LogInfo(std::string_view component, std::string_view message) {
  Logger::Instance().Log(LogLevel::kInfo, component, message);
}
void LogWarn(std::string_view component, std::string_view message) {
  Logger::Instance().Log(LogLevel::kWarn, component, message);
}
void LogError(std::string_view component, std::string_view message) {
  Logger::Instance().Log(LogLevel::kError, component, message);
}

LogRateLimiter::LogRateLimiter() : LogRateLimiter(Options{}) {}

LogRateLimiter::LogRateLimiter(Options options)
    : options_(options),
      micro_tokens_(static_cast<std::int64_t>(options.burst * 1e6)) {}

bool LogRateLimiter::Admit(std::uint64_t* suppressed) {
  if (suppressed != nullptr) *suppressed = 0;
  const std::uint64_t now = MonotonicNanos();
  // Refill: one thread claims the elapsed interval by swapping the refill
  // timestamp forward; the claimed nanoseconds convert to micro-tokens.
  const std::uint64_t last =
      last_refill_nanos_.exchange(now, std::memory_order_relaxed);
  if (now > last) {
    const double earned =
        static_cast<double>(now - last) * 1e-9 * options_.tokens_per_second * 1e6;
    const auto cap = static_cast<std::int64_t>(options_.burst * 1e6);
    std::int64_t current = micro_tokens_.load(std::memory_order_relaxed);
    while (current < cap) {
      const std::int64_t next =
          std::min(cap, current + static_cast<std::int64_t>(earned));
      if (micro_tokens_.compare_exchange_weak(current, next,
                                              std::memory_order_relaxed)) {
        break;
      }
    }
  }
  // Consume one token (1e6 micro-tokens) if the balance covers it.
  std::int64_t current = micro_tokens_.load(std::memory_order_relaxed);
  while (current >= 1'000'000) {
    if (micro_tokens_.compare_exchange_weak(current, current - 1'000'000,
                                            std::memory_order_relaxed)) {
      if (suppressed != nullptr) {
        *suppressed =
            suppressed_since_admit_.exchange(0, std::memory_order_relaxed);
      } else {
        suppressed_since_admit_.store(0, std::memory_order_relaxed);
      }
      return true;
    }
  }
  suppressed_since_admit_.fetch_add(1, std::memory_order_relaxed);
  total_suppressed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void LogRateLimited(LogRateLimiter& limiter, LogLevel level,
                    std::string_view component, std::string_view message) {
  std::uint64_t suppressed = 0;
  if (!limiter.Admit(&suppressed)) return;
  if (suppressed == 0) {
    Logger::Instance().Log(level, component, message);
    return;
  }
  std::string annotated(message);
  annotated += " (rate-limited: ";
  annotated += std::to_string(suppressed);
  annotated += " suppressed)";
  Logger::Instance().Log(level, component, annotated);
}

}  // namespace sww::util
