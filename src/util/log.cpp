#include "util/log.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace sww::util {

namespace {

// Monotonic origin for default-sink timestamps, captured at first use.
std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

char ToLowerAscii(char c) { return c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c; }

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

std::optional<LogLevel> ParseLogLevel(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(ToLowerAscii(c));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

Logger::Logger() {
  ProcessStart();  // pin the timestamp origin to logger construction
  if (const char* env = std::getenv("SWW_LOG_LEVEL"); env != nullptr) {
    if (std::optional<LogLevel> parsed = ParseLogLevel(env)) {
      SetLevel(*parsed);
    }
  }
  sink_ = [](LogLevel level, std::string_view component, std::string_view message) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      ProcessStart())
            .count();
    std::fprintf(stderr, "[%10.6f] [%s] %.*s: %.*s\n", elapsed,
                 LogLevelName(level), static_cast<int>(component.size()),
                 component.data(), static_cast<int>(message.size()),
                 message.data());
  };
}

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

Logger::Sink Logger::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  Sink previous = std::move(sink_);
  sink_ = std::move(sink);
  return previous;
}

void Logger::Log(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(this->level())) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (sink_) sink_(level, component, message);
}

void LogDebug(std::string_view component, std::string_view message) {
  Logger::Instance().Log(LogLevel::kDebug, component, message);
}
void LogInfo(std::string_view component, std::string_view message) {
  Logger::Instance().Log(LogLevel::kInfo, component, message);
}
void LogWarn(std::string_view component, std::string_view message) {
  Logger::Instance().Log(LogLevel::kWarn, component, message);
}
void LogError(std::string_view component, std::string_view message) {
  Logger::Instance().Log(LogLevel::kError, component, message);
}

}  // namespace sww::util
