#include "util/log.hpp"

#include <cstdio>
#include <mutex>

namespace sww::util {

namespace {
std::mutex g_log_mutex;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view component, std::string_view message) {
    std::fprintf(stderr, "[%s] %.*s: %.*s\n", LogLevelName(level),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
  };
}

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

Logger::Sink Logger::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  Sink previous = std::move(sink_);
  sink_ = std::move(sink);
  return previous;
}

void Logger::Log(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  if (sink_) sink_(level, component, message);
}

void LogDebug(std::string_view component, std::string_view message) {
  Logger::Instance().Log(LogLevel::kDebug, component, message);
}
void LogInfo(std::string_view component, std::string_view message) {
  Logger::Instance().Log(LogLevel::kInfo, component, message);
}
void LogWarn(std::string_view component, std::string_view message) {
  Logger::Instance().Log(LogLevel::kWarn, component, message);
}
void LogError(std::string_view component, std::string_view message) {
  Logger::Instance().Log(LogLevel::kError, component, message);
}

}  // namespace sww::util
