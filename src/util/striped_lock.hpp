// striped_lock.hpp — a fixed array of mutexes keyed by hash.
//
// Shared caches (core::PromptCache, cdn::EdgeNode's stats path) are hit
// from every pool worker at once; one global mutex would serialize the
// whole fleet on its hottest structure.  Striping trades a bounded amount
// of false sharing (two keys on the same stripe) for lock-free scaling
// across stripes.  Callers that need a total-order operation (Clear, a
// global snapshot) take every stripe in index order — fixed order, so two
// such callers cannot deadlock.
#pragma once

#include <array>
#include <cstddef>
#include <mutex>

namespace sww::util {

template <std::size_t N = 16>
class StripedMutex {
  static_assert(N > 0);

 public:
  static constexpr std::size_t stripe_count() { return N; }

  /// The stripe a pre-hashed key falls on.
  std::size_t StripeOf(std::size_t hash) const { return hash % N; }

  std::mutex& Get(std::size_t stripe) { return mutexes_[stripe % N]; }

  /// Lock every stripe in index order (total-order operations).
  template <typename Fn>
  void WithAllLocked(Fn&& fn) {
    LockAll(0, std::forward<Fn>(fn));
  }

 private:
  template <typename Fn>
  void LockAll(std::size_t from, Fn&& fn) {
    if (from == N) {
      fn();
      return;
    }
    std::lock_guard<std::mutex> lock(mutexes_[from]);
    LockAll(from + 1, std::forward<Fn>(fn));
  }

  std::array<std::mutex, N> mutexes_;
};

}  // namespace sww::util
