#include "util/bytes.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>

namespace sww::util {

Bytes ToBytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string ToString(BytesView bytes) {
  return std::string(bytes.begin(), bytes.end());
}

std::string HexDump(BytesView bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 3);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i != 0) out.push_back(' ');
    out.push_back(kHex[bytes[i] >> 4]);
    out.push_back(kHex[bytes[i] & 0x0f]);
  }
  return out;
}

Result<Bytes> FromHex(std::string_view hex) {
  Bytes out;
  int nibble_count = 0;
  std::uint8_t current = 0;
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (nibble_count == 1) {
        return Error(ErrorCode::kMalformed, "odd nibble before whitespace in hex");
      }
      continue;
    }
    std::uint8_t value = 0;
    if (c >= '0' && c <= '9') {
      value = static_cast<std::uint8_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value = static_cast<std::uint8_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value = static_cast<std::uint8_t>(c - 'A' + 10);
    } else {
      return Error(ErrorCode::kMalformed, std::string("invalid hex character: ") + c);
    }
    current = static_cast<std::uint8_t>((current << 4) | value);
    if (++nibble_count == 2) {
      out.push_back(current);
      current = 0;
      nibble_count = 0;
    }
  }
  if (nibble_count != 0) {
    return Error(ErrorCode::kMalformed, "odd number of hex digits");
  }
  return out;
}

void ByteWriter::WriteU8(std::uint8_t v) { buffer_.push_back(v); }

void ByteWriter::WriteU16(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::WriteU24(std::uint32_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v >> 16));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::WriteU32(std::uint32_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v >> 24));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 16));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::WriteU64(std::uint64_t v) {
  WriteU32(static_cast<std::uint32_t>(v >> 32));
  WriteU32(static_cast<std::uint32_t>(v));
}

void ByteWriter::WriteBytes(BytesView bytes) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::WriteString(std::string_view text) {
  buffer_.insert(buffer_.end(), text.begin(), text.end());
}

void ByteWriter::PatchU24(std::size_t offset, std::uint32_t v) {
  buffer_.at(offset) = static_cast<std::uint8_t>(v >> 16);
  buffer_.at(offset + 1) = static_cast<std::uint8_t>(v >> 8);
  buffer_.at(offset + 2) = static_cast<std::uint8_t>(v);
}

void BytesArena::Grow(std::size_t needed) {
  std::size_t capacity = data_.size() < 256 ? 256 : data_.size();
  while (capacity < needed) capacity *= 2;
  data_.resize(capacity);
  ++allocations_;
}

std::uint8_t* BytesArena::Claim(std::size_t count) {
  if (size_ + count > data_.size()) Grow(size_ + count);
  std::uint8_t* out = data_.data() + size_;
  size_ += count;
  return out;
}

void BytesArena::Append(BytesView bytes) {
  if (bytes.empty()) return;
  std::memcpy(Claim(bytes.size()), bytes.data(), bytes.size());
}

void BytesArena::Append(std::string_view text) {
  if (text.empty()) return;
  std::memcpy(Claim(text.size()), text.data(), text.size());
}

void BytesArena::AppendU8(std::uint8_t v) { *Claim(1) = v; }

void BytesArena::AppendU16(std::uint16_t v) {
  std::uint8_t* p = Claim(2);
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

void BytesArena::AppendU24(std::uint32_t v) {
  std::uint8_t* p = Claim(3);
  p[0] = static_cast<std::uint8_t>(v >> 16);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v);
}

void BytesArena::AppendU32(std::uint32_t v) {
  std::uint8_t* p = Claim(4);
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

void BytesArena::AppendU64(std::uint64_t v) {
  AppendU32(static_cast<std::uint32_t>(v >> 32));
  AppendU32(static_cast<std::uint32_t>(v));
}

void BytesArena::Clear() {
  high_watermark_ = std::max(high_watermark_, size_);
  size_ = 0;
  if (++clears_ < kShrinkReviewPeriod) return;
  // A whole review period with capacity far above the watermark: the burst
  // that grew us is over; release the excess.
  if (high_watermark_ > 0 && data_.size() > high_watermark_ * 2) {
    data_.resize(high_watermark_);
    data_.shrink_to_fit();
  }
  clears_ = 0;
  high_watermark_ = 0;
}

Result<std::uint8_t> ByteReader::ReadU8() {
  if (remaining() < 1) return Error(ErrorCode::kTruncated, "ReadU8 past end");
  return bytes_[offset_++];
}

Result<std::uint16_t> ByteReader::ReadU16() {
  if (remaining() < 2) return Error(ErrorCode::kTruncated, "ReadU16 past end");
  std::uint16_t v = static_cast<std::uint16_t>(bytes_[offset_] << 8 | bytes_[offset_ + 1]);
  offset_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::ReadU24() {
  if (remaining() < 3) return Error(ErrorCode::kTruncated, "ReadU24 past end");
  std::uint32_t v = static_cast<std::uint32_t>(bytes_[offset_]) << 16 |
                    static_cast<std::uint32_t>(bytes_[offset_ + 1]) << 8 |
                    static_cast<std::uint32_t>(bytes_[offset_ + 2]);
  offset_ += 3;
  return v;
}

Result<std::uint32_t> ByteReader::ReadU32() {
  if (remaining() < 4) return Error(ErrorCode::kTruncated, "ReadU32 past end");
  std::uint32_t v = static_cast<std::uint32_t>(bytes_[offset_]) << 24 |
                    static_cast<std::uint32_t>(bytes_[offset_ + 1]) << 16 |
                    static_cast<std::uint32_t>(bytes_[offset_ + 2]) << 8 |
                    static_cast<std::uint32_t>(bytes_[offset_ + 3]);
  offset_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::ReadU64() {
  auto hi = ReadU32();
  if (!hi) return hi.error();
  auto lo = ReadU32();
  if (!lo) return lo.error();
  return (static_cast<std::uint64_t>(hi.value()) << 32) | lo.value();
}

Result<BytesView> ByteReader::ReadBytes(std::size_t count) {
  if (remaining() < count) {
    return Error(ErrorCode::kTruncated, "ReadBytes past end");
  }
  BytesView view = bytes_.subspan(offset_, count);
  offset_ += count;
  return view;
}

Result<std::string> ByteReader::ReadString(std::size_t count) {
  auto view = ReadBytes(count);
  if (!view) return view.error();
  return ToString(view.value());
}

Result<std::uint8_t> ByteReader::PeekU8() const {
  if (remaining() < 1) return Error(ErrorCode::kTruncated, "PeekU8 past end");
  return bytes_[offset_];
}

Status ByteReader::Skip(std::size_t count) {
  if (remaining() < count) return Error(ErrorCode::kTruncated, "Skip past end");
  offset_ += count;
  return Status::Ok();
}

}  // namespace sww::util
