// thread_pool.hpp — the process-wide work-stealing thread pool.
//
// The generation hot path (tile rendering in genai::, per-asset fan-out in
// core::) needs device parallelism, but the simulation substrate demands
// bit-identical output regardless of scheduling.  The contract is therefore
// split: the pool provides *throughput* (fixed worker set, per-worker
// deques, lock-guarded stealing), while callers provide *determinism* by
// submitting pure tasks and merging results in a fixed order.  Nothing in
// this file introduces ordering of its own.
//
// Three entry points:
//   * Submit(fn)          — one task, returns a std::future (exceptions
//                           propagate through the future);
//   * ParallelFor(n, fn)  — blocking loop over [0, n) in grain-sized
//                           chunks; the calling thread participates, so it
//                           is safe to call from inside a pool task
//                           (nested parallelism cannot deadlock);
//   * Shared()            — the lazily-created process-wide pool sized to
//                           the hardware.
//
// Shutdown is graceful: the destructor stops intake, lets workers drain
// every queued task, then joins.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace sww::util {

class ThreadPool {
 public:
  /// Pool-wide activity counters (mirror these into obs::Registry from the
  /// owning layer; util:: cannot depend on obs::).
  struct Stats {
    std::uint64_t tasks_executed = 0;
    std::uint64_t steals = 0;
    std::uint64_t parallel_for_chunks = 0;
  };

  /// `threads` < 1 is clamped to 1.  Workers start immediately.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(workers_.size()); }

  /// The process-wide pool, sized to std::thread::hardware_concurrency().
  static ThreadPool& Shared();

  /// Schedule one task.  The returned future carries the result or the
  /// thrown exception.  Tasks submitted after shutdown began throw
  /// std::runtime_error.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    Post([task]() { (*task)(); });
    return future;
  }

  /// Run body(begin, end) over disjoint chunks covering [0, n).  Blocks
  /// until every chunk finished; the calling thread executes chunks too,
  /// so nested calls from pool workers make progress even when every
  /// worker is busy.  The first exception thrown by any chunk is rethrown
  /// here (remaining chunks still run to completion).  `grain` bounds the
  /// smallest chunk; <= 0 means an automatic grain targeting ~4 chunks per
  /// worker.
  void ParallelFor(std::int64_t n,
                   const std::function<void(std::int64_t, std::int64_t)>& body,
                   std::int64_t grain = 0);

  Stats stats() const;

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  /// Enqueue a type-erased task (round-robin across worker deques).
  void Post(std::function<void()> task);
  /// Dequeue work for worker `self`: own queue front first, then steal
  /// from the back of the busiest sibling.  Returns an empty function when
  /// no work exists.
  std::function<void()> TakeTask(std::size_t self);
  void WorkerLoop(std::size_t index);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<std::uint64_t> pending_{0};      // queued, not yet started
  std::atomic<std::uint64_t> next_queue_{0};   // round-robin intake cursor
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> parallel_for_chunks_{0};
};

}  // namespace sww::util
