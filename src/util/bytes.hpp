// bytes.hpp — byte buffer primitives shared by the protocol stack.
//
// HTTP/2 and HPACK are big-endian binary formats; these readers/writers keep
// all byte-order handling in one audited place (Core Guidelines ES.100-ish:
// keep low-level bit fiddling contained).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace sww::util {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Convert between strings and byte vectors (bytes are not text, but header
/// values and HTML bodies cross that boundary constantly).
Bytes ToBytes(std::string_view text);
std::string ToString(BytesView bytes);

/// Hex dump for logs/tests: "00 01 ff ..." (lowercase, space separated).
std::string HexDump(BytesView bytes);

/// Parse a hex dump produced by HexDump (whitespace tolerant).
Result<Bytes> FromHex(std::string_view hex);

/// Appends big-endian fixed-width integers and raw bytes to a growing buffer.
/// All HTTP/2 frame serialization goes through this type.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buffer_.reserve(reserve); }

  void WriteU8(std::uint8_t v);
  void WriteU16(std::uint16_t v);
  void WriteU24(std::uint32_t v);  ///< low 24 bits, big-endian (frame length)
  void WriteU32(std::uint32_t v);
  void WriteU64(std::uint64_t v);
  void WriteBytes(BytesView bytes);
  void WriteString(std::string_view text);

  std::size_t size() const { return buffer_.size(); }
  const Bytes& bytes() const& { return buffer_; }
  Bytes TakeBytes() && { return std::move(buffer_); }

  /// Overwrite previously written bytes (e.g. patch a length field after the
  /// payload size is known).  `offset + width` must be within size().
  void PatchU24(std::size_t offset, std::uint32_t v);

 private:
  Bytes buffer_;
};

/// Reusable append-only byte region for hot emission paths (the HTTP/2
/// frame writer).  Unlike ByteWriter, whose buffer is moved out and
/// re-allocated per use, an arena is cleared and refilled in place: after a
/// short warmup its capacity covers the steady-state working set and
/// appending allocates nothing.  Clear() tracks a high watermark across
/// recent fill/drain cycles and shrinks the backing store only when
/// capacity has been far above the watermark for a whole review period, so
/// one burst (a 16 MiB upload) cannot pin memory forever but steady
/// traffic never reallocates.
class BytesArena {
 public:
  BytesArena() = default;

  /// Uninitialized space for `count` bytes; the returned pointer is valid
  /// until the next Claim/Append/Clear.
  std::uint8_t* Claim(std::size_t count);

  void Append(BytesView bytes);
  void Append(std::string_view text);
  void AppendU8(std::uint8_t v);
  /// Big-endian fixed-width appends (frame headers are big-endian).
  void AppendU16(std::uint16_t v);
  void AppendU24(std::uint32_t v);
  void AppendU32(std::uint32_t v);
  void AppendU64(std::uint64_t v);

  /// Drop the contents, keep (most of) the capacity for the next cycle.
  void Clear();

  BytesView View() const { return BytesView(data_.data(), size_); }
  const std::uint8_t* data() const { return data_.data(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return data_.size(); }

  /// Number of backing-store (re)allocations since construction.  Steady
  /// state is zero growth; benchmarks gate this exactly.
  std::uint64_t allocations() const { return allocations_; }

 private:
  /// Clears per review period before an oversized backing store may shrink.
  static constexpr std::size_t kShrinkReviewPeriod = 64;

  void Grow(std::size_t needed);

  std::vector<std::uint8_t> data_;   // backing store; size() == capacity
  std::size_t size_ = 0;             // bytes appended since last Clear
  std::size_t high_watermark_ = 0;   // max size_ seen this review period
  std::size_t clears_ = 0;           // Clear() calls this review period
  std::uint64_t allocations_ = 0;
};

/// Sequential big-endian reader over a borrowed byte span.  All Read*
/// methods return kTruncated errors instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(BytesView bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - offset_; }
  std::size_t offset() const { return offset_; }
  bool empty() const { return remaining() == 0; }

  Result<std::uint8_t> ReadU8();
  Result<std::uint16_t> ReadU16();
  Result<std::uint32_t> ReadU24();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  /// Borrow `count` bytes (view valid while the underlying buffer lives).
  Result<BytesView> ReadBytes(std::size_t count);
  /// Copy `count` bytes into a string.
  Result<std::string> ReadString(std::size_t count);
  /// Peek one byte without consuming.
  Result<std::uint8_t> PeekU8() const;
  /// Skip `count` bytes.
  Status Skip(std::size_t count);
  /// View of everything not yet consumed.
  BytesView Rest() const { return bytes_.subspan(offset_); }

 private:
  BytesView bytes_;
  std::size_t offset_ = 0;
};

}  // namespace sww::util
