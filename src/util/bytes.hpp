// bytes.hpp — byte buffer primitives shared by the protocol stack.
//
// HTTP/2 and HPACK are big-endian binary formats; these readers/writers keep
// all byte-order handling in one audited place (Core Guidelines ES.100-ish:
// keep low-level bit fiddling contained).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace sww::util {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Convert between strings and byte vectors (bytes are not text, but header
/// values and HTML bodies cross that boundary constantly).
Bytes ToBytes(std::string_view text);
std::string ToString(BytesView bytes);

/// Hex dump for logs/tests: "00 01 ff ..." (lowercase, space separated).
std::string HexDump(BytesView bytes);

/// Parse a hex dump produced by HexDump (whitespace tolerant).
Result<Bytes> FromHex(std::string_view hex);

/// Appends big-endian fixed-width integers and raw bytes to a growing buffer.
/// All HTTP/2 frame serialization goes through this type.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buffer_.reserve(reserve); }

  void WriteU8(std::uint8_t v);
  void WriteU16(std::uint16_t v);
  void WriteU24(std::uint32_t v);  ///< low 24 bits, big-endian (frame length)
  void WriteU32(std::uint32_t v);
  void WriteU64(std::uint64_t v);
  void WriteBytes(BytesView bytes);
  void WriteString(std::string_view text);

  std::size_t size() const { return buffer_.size(); }
  const Bytes& bytes() const& { return buffer_; }
  Bytes TakeBytes() && { return std::move(buffer_); }

  /// Overwrite previously written bytes (e.g. patch a length field after the
  /// payload size is known).  `offset + width` must be within size().
  void PatchU24(std::size_t offset, std::uint32_t v);

 private:
  Bytes buffer_;
};

/// Sequential big-endian reader over a borrowed byte span.  All Read*
/// methods return kTruncated errors instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(BytesView bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - offset_; }
  std::size_t offset() const { return offset_; }
  bool empty() const { return remaining() == 0; }

  Result<std::uint8_t> ReadU8();
  Result<std::uint16_t> ReadU16();
  Result<std::uint32_t> ReadU24();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  /// Borrow `count` bytes (view valid while the underlying buffer lives).
  Result<BytesView> ReadBytes(std::size_t count);
  /// Copy `count` bytes into a string.
  Result<std::string> ReadString(std::size_t count);
  /// Peek one byte without consuming.
  Result<std::uint8_t> PeekU8() const;
  /// Skip `count` bytes.
  Status Skip(std::size_t count);
  /// View of everything not yet consumed.
  BytesView Rest() const { return bytes_.subspan(offset_); }

 private:
  BytesView bytes_;
  std::size_t offset_ = 0;
};

}  // namespace sww::util
