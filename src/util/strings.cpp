#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace sww::util {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::size_t CountWords(std::string_view text) {
  return SplitWhitespace(text).size();
}

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace sww::util
