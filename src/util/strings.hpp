// strings.hpp — string utilities used across HTML parsing, prompt handling
// and metric tokenization.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sww::util {

/// Split on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view text, char sep);

/// Split on any whitespace run; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Trim ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Join with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Replace all occurrences of `from` with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// Count whitespace-separated words — the unit §6.3.2's overshoot metric uses.
std::size_t CountWords(std::string_view text);

/// Lowercased alphanumeric tokens (punctuation stripped) — the tokenizer used
/// by the CLIP/SBERT metric simulators and prompt feature extraction.
std::vector<std::string> Tokenize(std::string_view text);

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace sww::util
