// log.hpp — minimal leveled logger.
//
// The protocol stack logs negotiation events (the paper's client "logs the
// server's ability", §5.2); tests capture the sink to assert on them.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace sww::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

/// Process-wide logger.  Default sink writes "[level] component: message" to
/// stderr for warn/error only; tests can install a capturing sink.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  std::string_view message)>;

  static Logger& Instance();

  void SetLevel(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  /// Replace the sink; returns the previous one so tests can restore it.
  Sink SetSink(Sink sink);

  void Log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

void LogDebug(std::string_view component, std::string_view message);
void LogInfo(std::string_view component, std::string_view message);
void LogWarn(std::string_view component, std::string_view message);
void LogError(std::string_view component, std::string_view message);

}  // namespace sww::util
