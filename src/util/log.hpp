// log.hpp — minimal leveled logger.
//
// The protocol stack logs negotiation events (the paper's client "logs the
// server's ability", §5.2); tests capture the sink to assert on them.
//
// Thread safety: level reads/writes are atomic and sink swaps are serialized
// against in-flight Log() calls by an internal mutex, so components logging
// from pump threads never race a test installing a capturing sink.
//
// The initial level honours the SWW_LOG_LEVEL environment variable
// (debug|info|warn|error, case-insensitive); unset or unrecognized values
// keep the default (warn).  SWW_LOG_FORMAT=json switches the default sink
// to structured JSON lines ({"ts":...,"level":...,"component":...,
// "message":...}); any other value keeps the human text format.
//
// Hot-path call sites wrap themselves in SWW_LOG_RATELIMITED, which gives
// each site its own token bucket: a protocol-error storm or a per-frame
// diagnostic cannot flood the sink, and the first admitted line after a
// suppressed stretch reports how many lines were dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace sww::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

/// Default-sink output shape.  kText is the historical human format;
/// kJson emits one self-escaping JSON object per line (hand-rolled —
/// util cannot depend on src/json, which depends on util).
enum class LogFormat { kText, kJson };

/// Parse "debug" / "info" / "warn" / "error" (case-insensitive).
std::optional<LogLevel> ParseLogLevel(std::string_view name);

/// Process-wide logger.  Default sink writes
/// "[<seconds since start>] [level] component: message" to stderr
/// (monotonic clock, so lines order correctly even if wall time steps);
/// tests can install a capturing sink.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  std::string_view message)>;

  static Logger& Instance();

  void SetLevel(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  /// Replace the sink; returns the previous one so tests can restore it.
  Sink SetSink(Sink sink);

  /// Default-sink format (custom sinks render however they like).
  void SetFormat(LogFormat format) {
    format_.store(static_cast<int>(format), std::memory_order_relaxed);
  }
  LogFormat format() const {
    return static_cast<LogFormat>(format_.load(std::memory_order_relaxed));
  }

  void Log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger();
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  std::atomic<int> format_{static_cast<int>(LogFormat::kText)};
  std::mutex mutex_;  // guards sink_ (swap and invocation)
  Sink sink_;
};

/// Render one log record as a JSON line (no trailing newline): what the
/// default sink emits in kJson mode.  Exposed for tests and custom sinks.
std::string FormatLogJson(double elapsed_seconds, LogLevel level,
                          std::string_view component, std::string_view message);

void LogDebug(std::string_view component, std::string_view message);
void LogInfo(std::string_view component, std::string_view message);
void LogWarn(std::string_view component, std::string_view message);
void LogError(std::string_view component, std::string_view message);

/// Per-call-site token bucket for hot-path logging.  Lock-free: tokens
/// are micro-tokens in one atomic, refilled from the monotonic clock on
/// every Admit.  A site that fires faster than `tokens_per_second` drops
/// lines; the next admitted line learns how many were dropped.
class LogRateLimiter {
 public:
  struct Options {
    double tokens_per_second = 10.0;
    double burst = 20.0;  ///< bucket capacity (initial balance)
  };

  LogRateLimiter();  ///< default Options
  explicit LogRateLimiter(Options options);

  /// True when this event may log.  On admission, *suppressed (if given)
  /// receives the number of events dropped since the last admission.
  bool Admit(std::uint64_t* suppressed = nullptr);

  std::uint64_t total_suppressed() const {
    return total_suppressed_.load(std::memory_order_relaxed);
  }

 private:
  Options options_;
  std::atomic<std::int64_t> micro_tokens_;
  std::atomic<std::uint64_t> last_refill_nanos_{0};
  std::atomic<std::uint64_t> suppressed_since_admit_{0};
  std::atomic<std::uint64_t> total_suppressed_{0};
};

/// Log through `limiter`; a line admitted after drops carries a
/// " (rate-limited: N suppressed)" suffix.
void LogRateLimited(LogRateLimiter& limiter, LogLevel level,
                    std::string_view component, std::string_view message);

/// Per-call-site rate-limited logging: each expansion owns one static
/// token bucket with default options.
#define SWW_LOG_RATELIMITED(level, component, message)                       \
  do {                                                                       \
    static ::sww::util::LogRateLimiter sww_log_rate_limiter_;                \
    ::sww::util::LogRateLimited(sww_log_rate_limiter_, (level), (component), \
                                (message));                                  \
  } while (0)

}  // namespace sww::util
