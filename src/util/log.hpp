// log.hpp — minimal leveled logger.
//
// The protocol stack logs negotiation events (the paper's client "logs the
// server's ability", §5.2); tests capture the sink to assert on them.
//
// Thread safety: level reads/writes are atomic and sink swaps are serialized
// against in-flight Log() calls by an internal mutex, so components logging
// from pump threads never race a test installing a capturing sink.
//
// The initial level honours the SWW_LOG_LEVEL environment variable
// (debug|info|warn|error, case-insensitive); unset or unrecognized values
// keep the default (warn).
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace sww::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

/// Parse "debug" / "info" / "warn" / "error" (case-insensitive).
std::optional<LogLevel> ParseLogLevel(std::string_view name);

/// Process-wide logger.  Default sink writes
/// "[<seconds since start>] [level] component: message" to stderr
/// (monotonic clock, so lines order correctly even if wall time steps);
/// tests can install a capturing sink.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  std::string_view message)>;

  static Logger& Instance();

  void SetLevel(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  /// Replace the sink; returns the previous one so tests can restore it.
  Sink SetSink(Sink sink);

  void Log(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger();
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  std::mutex mutex_;  // guards sink_ (swap and invocation)
  Sink sink_;
};

void LogDebug(std::string_view component, std::string_view message);
void LogInfo(std::string_view component, std::string_view message);
void LogWarn(std::string_view component, std::string_view message);
void LogError(std::string_view component, std::string_view message);

}  // namespace sww::util
