#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace sww::util {

ThreadPool::ThreadPool(int threads) {
  const std::size_t count = static_cast<std::size_t>(std::max(threads, 1));
  queues_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // The lock pairs with the wait predicate: a worker is either before its
    // predicate check (and will see stopping_) or fully asleep (and gets
    // the notify) — never in between.
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

ThreadPool& ThreadPool::Shared() {
  // Never destroyed: tasks posted from static teardown must not race a
  // dying pool (same pattern as obs::Registry::Default).
  static ThreadPool* pool = new ThreadPool(
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));
  return *pool;
}

void ThreadPool::Post(std::function<void()> task) {
  if (stopping_.load(std::memory_order_acquire)) {
    throw std::runtime_error("ThreadPool::Post after shutdown began");
  }
  const std::size_t index =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[index]->mutex);
    queues_[index]->tasks.push_back(std::move(task));
  }
  {
    // Publish under wake_mutex_ so a worker mid-predicate cannot miss it
    // (lost-wakeup guard; see ~ThreadPool).
    std::lock_guard<std::mutex> lock(wake_mutex_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_one();
}

std::function<void()> ThreadPool::TakeTask(std::size_t self) {
  // Own queue first (front: submission order for this deque)...
  {
    std::lock_guard<std::mutex> lock(queues_[self]->mutex);
    if (!queues_[self]->tasks.empty()) {
      std::function<void()> task = std::move(queues_[self]->tasks.front());
      queues_[self]->tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  // ...then steal from the back of a sibling's deque.
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    const std::size_t victim = (self + offset) % queues_.size();
    std::lock_guard<std::mutex> lock(queues_[victim]->mutex);
    if (!queues_[victim]->tasks.empty()) {
      std::function<void()> task = std::move(queues_[victim]->tasks.back());
      queues_[victim]->tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return {};
}

void ThreadPool::WorkerLoop(std::size_t index) {
  for (;;) {
    std::function<void()> task = TakeTask(index);
    if (task) {
      task();
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) > 0 ||
             stopping_.load(std::memory_order_acquire);
    });
    // Graceful shutdown: keep draining until every queued task ran.
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& body,
    std::int64_t grain) {
  if (n <= 0) return;
  if (grain <= 0) {
    // ~4 chunks per worker amortizes scheduling while leaving room for
    // stealing to balance uneven chunk costs.
    grain = std::max<std::int64_t>(1, n / (4 * worker_count()));
  }
  const std::int64_t chunks = (n + grain - 1) / grain;
  if (chunks == 1 || worker_count() == 1) {
    body(0, n);
    parallel_for_chunks_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  struct LoopState {
    std::atomic<std::int64_t> next_chunk{0};
    std::atomic<std::int64_t> done_chunks{0};
    std::mutex mutex;  // guards exception + done_cv
    std::condition_variable done_cv;
    std::exception_ptr first_exception;
  };
  auto state = std::make_shared<LoopState>();

  auto run_chunks = [state, n, grain, chunks, &body, this]() {
    for (;;) {
      const std::int64_t chunk =
          state->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunks) return;
      const std::int64_t begin = chunk * grain;
      const std::int64_t end = std::min<std::int64_t>(begin + grain, n);
      try {
        body(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->first_exception) {
          state->first_exception = std::current_exception();
        }
      }
      parallel_for_chunks_.fetch_add(1, std::memory_order_relaxed);
      if (state->done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          chunks) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->done_cv.notify_all();
      }
    }
  };

  // Helpers are capped at the worker count; the caller is the final lane
  // and guarantees progress even when every worker is busy elsewhere.
  const std::int64_t helpers =
      std::min<std::int64_t>(chunks - 1, worker_count());
  for (std::int64_t h = 0; h < helpers; ++h) {
    Post(run_chunks);
  }
  run_chunks();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(lock, [&state, chunks] {
    return state->done_chunks.load(std::memory_order_acquire) == chunks;
  });
  if (state->first_exception) std::rethrow_exception(state->first_exception);
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats stats;
  stats.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.parallel_for_chunks =
      parallel_for_chunks_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace sww::util
