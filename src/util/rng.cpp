#include "util/rng.hpp"

#include <cmath>

namespace sww::util {

namespace {
constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 random mantissa bits → uniform in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextRange(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_gaussian_ = radius * std::sin(theta);
  has_spare_ = true;
  return radius * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::size_t Rng::NextIndex(std::size_t size) {
  return static_cast<std::size_t>(NextBounded(size));
}

}  // namespace sww::util
