#include "util/hash.hpp"

// Header-only; this TU exists so the target has a stable archive member and a
// place for future non-inline additions.
namespace sww::util {}
