#include "video/streaming.hpp"

#include <cmath>

#include "energy/network.hpp"
#include "http2/settings.hpp"

namespace sww::video {

const char* ResolutionName(Resolution resolution) {
  switch (resolution) {
    case Resolution::k480p: return "480p";
    case Resolution::kHD: return "HD";
    case Resolution::k4K: return "4K";
  }
  return "?";
}

double GigabytesPerHour(Resolution resolution, int fps) {
  // Paper anchors (at 60 fps): 4K = 7 GB/h, HD = 3 GB/h.  480p follows the
  // same ≈2.3× per-tier ratio.  Frame rate scales linearly (60→30 halves).
  double at60 = 0.0;
  switch (resolution) {
    case Resolution::k4K: at60 = 7.0; break;
    case Resolution::kHD: at60 = 3.0; break;
    case Resolution::k480p: at60 = 3.0 / 2.3; break;
  }
  return at60 * (static_cast<double>(fps) / 60.0);
}

std::vector<Variant> StandardLadder() {
  std::vector<Variant> ladder;
  for (Resolution resolution :
       {Resolution::k480p, Resolution::kHD, Resolution::k4K}) {
    for (int fps : {30, 60}) {
      Variant variant;
      variant.resolution = resolution;
      variant.fps = fps;
      variant.gb_per_hour = GigabytesPerHour(resolution, fps);
      variant.name = std::string(ResolutionName(resolution)) +
                     std::to_string(fps);
      ladder.push_back(variant);
    }
  }
  return ladder;
}

DeliveryPlan Negotiate(const PlaybackTarget& target, std::uint32_t gen_ability) {
  DeliveryPlan plan;
  plan.baseline_gb_per_hour = GigabytesPerHour(target.resolution, target.fps);

  Resolution ship_resolution = target.resolution;
  int ship_fps = target.fps;

  // Upscaling covers exactly one resolution tier (HD→4K, 480p→HD) — the
  // operating point of shipping super-resolution (§3.2's RTX VSR).
  if ((gen_ability & http2::kGenAbilityUpscaleOnly) != 0) {
    if (ship_resolution == Resolution::k4K) {
      ship_resolution = Resolution::kHD;
      plan.client_upscales = true;
    } else if (ship_resolution == Resolution::kHD) {
      ship_resolution = Resolution::k480p;
      plan.client_upscales = true;
    }
  }
  // Frame-rate boosting restores 60 from 30 fps.
  if ((gen_ability & http2::kGenAbilityFrameRateBoost) != 0 && ship_fps == 60) {
    ship_fps = 30;
    plan.client_boosts_frame_rate = true;
  }

  plan.transmitted.resolution = ship_resolution;
  plan.transmitted.fps = ship_fps;
  plan.transmitted.gb_per_hour = GigabytesPerHour(ship_resolution, ship_fps);
  plan.transmitted.name =
      std::string(ResolutionName(ship_resolution)) + std::to_string(ship_fps);
  plan.planned_gb_per_hour = plan.transmitted.gb_per_hour;
  return plan;
}

StreamingReport SimulateStreaming(const DeliveryPlan& plan, double hours) {
  StreamingReport report;
  report.hours = hours;
  report.transmitted_gb = plan.planned_gb_per_hour * hours;
  report.baseline_gb = plan.baseline_gb_per_hour * hours;
  report.saved_gb = report.baseline_gb - report.transmitted_gb;

  const double seconds = hours * 3600.0;
  if (plan.client_boosts_frame_rate) {
    // One synthesized frame for every transmitted frame (30 → 60 fps).
    report.frames_interpolated =
        static_cast<std::uint64_t>(seconds * plan.transmitted.fps);
  }
  if (plan.client_upscales) {
    const double output_fps = plan.client_boosts_frame_rate
                                  ? plan.transmitted.fps * 2.0
                                  : plan.transmitted.fps;
    report.frames_upscaled = static_cast<std::uint64_t>(seconds * output_fps);
  }
  report.transmission_energy_saved_wh =
      energy::TransmissionEnergyWh(static_cast<std::uint64_t>(
          std::max(0.0, report.saved_gb) * 1e9));
  return report;
}

}  // namespace sww::video
