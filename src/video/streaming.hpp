// streaming.hpp — video streaming over SWW negotiation (§3.2).
//
// "Video streaming protocols, such as HTTP Live Streaming (HLS) and
// MPEG-DASH, run on top of HTTP.  The proposed modifications to HTTP ...
// can be applied also to negotiate generation abilities also for video
// streaming ... Sending content at a lower frame rate or lower resolution
// has a direct effect on data savings: moving from 60fps to 30fps will
// half the data, and from 4K to high definition can save 2.3× data,
// turning 7GB/hour into 3GB/hour."
//
// This module models an HLS-like ladder of variants and the negotiation:
// a client advertising kGenAbilityFrameRateBoost can reconstruct 60 fps
// from a 30 fps stream (AMD Fluid Motion Frames / RTX-style interpolation);
// one advertising kGenAbilityUpscaleOnly can reconstruct 4K from HD
// (RTX Video Super Resolution-style).  The server then ships the cheapest
// variant the client can restore to the requested experience.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sww::video {

enum class Resolution { k480p, kHD, k4K };

const char* ResolutionName(Resolution resolution);

/// Data rate model anchored on the paper's Netflix figures:
/// 4K ≈ 7 GB/hour, HD ≈ 3 GB/hour (2.33× apart), 480p scaled down by the
/// same pixel-count law; frame rate scales data linearly with 60 fps as
/// the anchor.
double GigabytesPerHour(Resolution resolution, int fps);

struct Variant {
  Resolution resolution;
  int fps;
  double gb_per_hour;
  std::string name;  // e.g. "4k60"
};

/// The encoding ladder a server offers.
std::vector<Variant> StandardLadder();

/// What the viewer asked to experience.
struct PlaybackTarget {
  Resolution resolution = Resolution::k4K;
  int fps = 60;
};

/// The negotiated plan: which variant is transmitted and which client-side
/// reconstructions restore the target.
struct DeliveryPlan {
  Variant transmitted;
  bool client_upscales = false;        ///< HD→4K (or 480p→HD) on device
  bool client_boosts_frame_rate = false;  ///< 30→60 fps on device
  double baseline_gb_per_hour = 0.0;   ///< target shipped directly
  double planned_gb_per_hour = 0.0;

  double DataSavingsFactor() const {
    return planned_gb_per_hour <= 0.0
               ? 0.0
               : baseline_gb_per_hour / planned_gb_per_hour;
  }
};

/// Negotiate the cheapest deliverable variant for a client advertising
/// `gen_ability` (bit set from http2::GenAbility).  A naïve client (0)
/// receives the target variant unchanged.
DeliveryPlan Negotiate(const PlaybackTarget& target, std::uint32_t gen_ability);

/// Simulate streaming `hours` of playback under a plan: bytes shipped,
/// bytes saved, and the per-device reconstruction workload (frames
/// interpolated / upscaled, at sub-second per-frame cost per §2.2).
struct StreamingReport {
  double hours = 0.0;
  double transmitted_gb = 0.0;
  double baseline_gb = 0.0;
  double saved_gb = 0.0;
  std::uint64_t frames_interpolated = 0;
  std::uint64_t frames_upscaled = 0;
  double transmission_energy_saved_wh = 0.0;
};

StreamingReport SimulateStreaming(const DeliveryPlan& plan, double hours);

}  // namespace sww::video
