#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/registry.hpp"

namespace sww::net {

using util::Bytes;
using util::BytesView;
using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Error(ErrorCode::kIo, std::string("fcntl: ") + ::strerror(errno));
  }
  return Status::Ok();
}

// Process-wide socket telemetry (function-local statics, like pump.cpp:
// the net layer has no long-lived object to cache handles on).
obs::Counter& TcpAccepts() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.tcp.accepts");
  return counter;
}
obs::Counter& TcpConnects() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.tcp.connects");
  return counter;
}
obs::Counter& TcpWriteStalls() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.tcp.write_stalls");
  return counter;
}

}  // namespace

TcpTransport::TcpTransport(int fd) : fd_(fd) {
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpTransport::~TcpTransport() { Close(); }

Status TcpTransport::Write(BytesView bytes) {
  if (fd_ < 0) return Error(ErrorCode::kClosed, "tcp transport closed");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, 0);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Wait for writability; loopback drains quickly.
      TcpWriteStalls().Add();
      struct pollfd pfd{fd_, POLLOUT, 0};
      ::poll(&pfd, 1, 1000);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Error(ErrorCode::kIo, std::string("send: ") + ::strerror(errno));
  }
  return Status::Ok();
}

Result<Bytes> TcpTransport::Read() {
  if (fd_ < 0) return Error(ErrorCode::kClosed, "tcp transport closed");
  Bytes out;
  char buffer[16384];
  while (true) {
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      out.insert(out.end(), buffer, buffer + n);
      continue;
    }
    if (n == 0) {
      // Orderly shutdown by the peer.
      if (out.empty()) return Error(ErrorCode::kClosed, "peer closed");
      return out;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return out;
    if (errno == EINTR) continue;
    return Error(ErrorCode::kIo, std::string("recv: ") + ::strerror(errno));
  }
}

void TcpTransport::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<TcpListener>> TcpListener::Bind(std::uint16_t port) {
  return Bind(port, Options{});
}

Result<std::unique_ptr<TcpListener>> TcpListener::Bind(std::uint16_t port,
                                                       const Options& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error(ErrorCode::kIo, std::string("socket: ") + ::strerror(errno));
  }
  if (options.reuse_addr) {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  struct sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Error(ErrorCode::kIo, std::string("bind: ") + ::strerror(errno));
  }
  if (::listen(fd, options.backlog) < 0) {
    ::close(fd);
    return Error(ErrorCode::kIo, std::string("listen: ") + ::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return Error(ErrorCode::kIo, std::string("getsockname: ") + ::strerror(errno));
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

Result<std::unique_ptr<Transport>> TcpListener::Accept(int timeout_ms) {
  struct pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    return Error(ErrorCode::kIo, std::string("poll: ") + ::strerror(errno));
  }
  if (ready == 0) {
    return Error(ErrorCode::kIo, "accept timed out");
  }
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) {
    return Error(ErrorCode::kIo, std::string("accept: ") + ::strerror(errno));
  }
  if (auto status = SetNonBlocking(client); !status.ok()) {
    ::close(client);
    return status.error();
  }
  TcpAccepts().Add();
  return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(client));
}

Result<std::unique_ptr<Transport>> TcpConnect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error(ErrorCode::kIo, std::string("socket: ") + ::strerror(errno));
  }
  struct sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Error(ErrorCode::kIo, std::string("connect: ") + ::strerror(errno));
  }
  if (auto status = SetNonBlocking(fd); !status.ok()) {
    ::close(fd);
    return status.error();
  }
  TcpConnects().Add();
  return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(fd));
}

}  // namespace sww::net
