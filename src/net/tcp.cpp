#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include "obs/registry.hpp"

namespace sww::net {

using util::Bytes;
using util::BytesView;
using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Error(ErrorCode::kIo, std::string("fcntl: ") + ::strerror(errno));
  }
  return Status::Ok();
}

std::int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Process-wide socket telemetry (function-local statics, like pump.cpp:
// the net layer has no long-lived object to cache handles on).
obs::Counter& TcpAccepts() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.tcp.accepts");
  return counter;
}
obs::Counter& TcpConnects() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.tcp.connects");
  return counter;
}
obs::Counter& TcpWriteStalls() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.tcp.write_stalls");
  return counter;
}

struct sockaddr_in LoopbackAddr(std::uint16_t port) {
  struct sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

Status ApplySocketTuning(int fd, const SocketTuning& tuning) {
  if (tuning.tcp_nodelay) {
    int one = 1;
    if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
      return Error(ErrorCode::kIo,
                   std::string("setsockopt(TCP_NODELAY): ") + ::strerror(errno));
    }
  }
  if (tuning.recv_buffer_bytes > 0) {
    if (::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tuning.recv_buffer_bytes,
                     sizeof(tuning.recv_buffer_bytes)) < 0) {
      return Error(ErrorCode::kIo,
                   std::string("setsockopt(SO_RCVBUF): ") + ::strerror(errno));
    }
  }
  if (tuning.send_buffer_bytes > 0) {
    if (::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &tuning.send_buffer_bytes,
                     sizeof(tuning.send_buffer_bytes)) < 0) {
      return Error(ErrorCode::kIo,
                   std::string("setsockopt(SO_SNDBUF): ") + ::strerror(errno));
    }
  }
  return Status::Ok();
}

TcpTransport::TcpTransport(int fd) : fd_(fd) {}

TcpTransport::~TcpTransport() { Close(); }

Status TcpTransport::Write(BytesView bytes) {
  if (fd_ < 0) return Error(ErrorCode::kClosed, "tcp transport closed");
  const std::int64_t deadline =
      write_timeout_ms_ < 0 ? -1 : NowMillis() + write_timeout_ms_;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      TcpWriteStalls().Add();
      // Wait for writability, but only until the deadline: a stalled
      // reader surfaces as ETIMEDOUT instead of wedging the caller.
      int wait_ms = -1;
      if (deadline >= 0) {
        const std::int64_t remaining = deadline - NowMillis();
        if (remaining <= 0) {
          return Error(ErrorCode::kIo,
                       std::string("send timed out: ") + ::strerror(ETIMEDOUT));
        }
        wait_ms = static_cast<int>(remaining);
      }
      struct pollfd pfd{fd_, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, wait_ms);
      if (ready < 0 && errno != EINTR) {
        return Error(ErrorCode::kIo, std::string("poll: ") + ::strerror(errno));
      }
      if (ready == 0) {
        return Error(ErrorCode::kIo,
                     std::string("send timed out: ") + ::strerror(ETIMEDOUT));
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return Error(ErrorCode::kClosed,
                   std::string("send: ") + ::strerror(errno));
    }
    return Error(ErrorCode::kIo, std::string("send: ") + ::strerror(errno));
  }
  return Status::Ok();
}

Result<Bytes> TcpTransport::Read() {
  if (fd_ < 0) return Error(ErrorCode::kClosed, "tcp transport closed");
  Bytes out;
  char buffer[16384];
  while (true) {
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      out.insert(out.end(), buffer, buffer + n);
      continue;
    }
    if (n == 0) {
      // Orderly shutdown by the peer.
      if (out.empty()) return Error(ErrorCode::kClosed, "peer closed");
      return out;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return out;
    if (errno == EINTR) continue;
    return Error(ErrorCode::kIo, std::string("recv: ") + ::strerror(errno));
  }
}

void TcpTransport::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<TcpListener>> TcpListener::Bind(std::uint16_t port) {
  return Bind(port, Options{});
}

Result<std::unique_ptr<TcpListener>> TcpListener::Bind(std::uint16_t port,
                                                       const Options& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error(ErrorCode::kIo, std::string("socket: ") + ::strerror(errno));
  }
  if (options.reuse_addr) {
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  if (options.reuse_port) {
    int one = 1;
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
      ::close(fd);
      return Error(ErrorCode::kIo,
                   std::string("setsockopt(SO_REUSEPORT): ") + ::strerror(errno));
    }
  }
  struct sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Error(ErrorCode::kIo, std::string("bind: ") + ::strerror(errno));
  }
  if (::listen(fd, options.backlog) < 0) {
    ::close(fd);
    return Error(ErrorCode::kIo, std::string("listen: ") + ::strerror(errno));
  }
  if (options.non_blocking) {
    if (auto status = SetNonBlocking(fd); !status.ok()) {
      ::close(fd);
      return status.error();
    }
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return Error(ErrorCode::kIo, std::string("getsockname: ") + ::strerror(errno));
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port), options));
}

Result<std::unique_ptr<Transport>> TcpListener::Accept(int timeout_ms) {
  struct pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    return Error(ErrorCode::kIo, std::string("poll: ") + ::strerror(errno));
  }
  if (ready == 0) {
    return Error(ErrorCode::kIo, "accept timed out");
  }
  auto client = AcceptFd();
  if (!client.ok()) return client.error();
  if (client.value() < 0) {
    // Raced with another accepter (SO_REUSEPORT sibling or thread).
    return Error(ErrorCode::kIo, "accept timed out");
  }
  return std::unique_ptr<Transport>(
      std::make_unique<TcpTransport>(client.value()));
}

Result<int> TcpListener::AcceptFd() {
  while (true) {
    const int client = ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (client < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
      // A connection died in the queue (or a signal landed): the queue
      // behind it may still hold live peers — keep draining.
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) continue;
      // Out of descriptors/buffers: the queue is intact; retrying after
      // resources free up can succeed, so tell the caller which it is.
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        return Error(ErrorCode::kResourceExhausted,
                     std::string("accept: ") + ::strerror(errno));
      }
      return Error(ErrorCode::kIo, std::string("accept: ") + ::strerror(errno));
    }
    if (auto status = ApplySocketTuning(client, options_.tuning); !status.ok()) {
      ::close(client);
      return status.error();
    }
    TcpAccepts().Add();
    return client;
  }
}

Result<std::unique_ptr<Transport>> TcpConnect(std::uint16_t port,
                                              int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error(ErrorCode::kIo, std::string("socket: ") + ::strerror(errno));
  }
  // Non-blocking from the start: the kernel answers EINPROGRESS and we
  // await writability under our own deadline instead of the kernel's
  // (minutes-long) connect timeout.
  if (auto status = SetNonBlocking(fd); !status.ok()) {
    ::close(fd);
    return status.error();
  }
  struct sockaddr_in addr = LoopbackAddr(port);
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno == EINTR) {
    // Treat as in-progress; the poll below resolves the outcome.
    errno = EINPROGRESS;
    rc = -1;
  }
  if (rc < 0) {
    if (errno != EINPROGRESS) {
      const Error error(ErrorCode::kIo,
                        std::string("connect: ") + ::strerror(errno));
      ::close(fd);
      return error;
    }
    struct pollfd pfd{fd, POLLOUT, 0};
    const std::int64_t deadline = NowMillis() + (timeout_ms < 0 ? 0 : timeout_ms);
    int ready;
    do {
      const std::int64_t remaining =
          timeout_ms < 0 ? -1 : deadline - NowMillis();
      if (timeout_ms >= 0 && remaining <= 0) {
        ready = 0;
        break;
      }
      ready = ::poll(&pfd, 1, timeout_ms < 0 ? -1 : static_cast<int>(remaining));
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) {
      const Error error(ErrorCode::kIo,
                        std::string("poll: ") + ::strerror(errno));
      ::close(fd);
      return error;
    }
    if (ready == 0) {
      ::close(fd);
      return Error(ErrorCode::kIo,
                   std::string("connect timed out: ") + ::strerror(ETIMEDOUT));
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0) {
      const Error error(ErrorCode::kIo,
                        std::string("getsockopt(SO_ERROR): ") + ::strerror(errno));
      ::close(fd);
      return error;
    }
    if (so_error != 0) {
      // ECONNREFUSED lands here: the async connect completed with failure.
      ::close(fd);
      return Error(ErrorCode::kIo,
                   std::string("connect: ") + ::strerror(so_error));
    }
  }
  if (auto status = ApplySocketTuning(fd, SocketTuning{}); !status.ok()) {
    ::close(fd);
    return status.error();
  }
  TcpConnects().Add();
  return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(fd));
}

}  // namespace sww::net
