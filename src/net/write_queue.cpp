#include "net/write_queue.hpp"

#include <errno.h>
#include <string.h>
#include <sys/uio.h>

#include "obs/registry.hpp"

namespace sww::net {

using util::Error;
using util::ErrorCode;
using util::Status;

namespace {

obs::Counter& WritevCalls() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.reactor.writev_calls");
  return counter;
}
obs::Counter& WritevBytes() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.reactor.writev_bytes");
  return counter;
}
obs::Counter& PartialWrites() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.reactor.partial_writes");
  return counter;
}
obs::Histogram& WritevBatchBytes() {
  static obs::Histogram& histogram =
      obs::Registry::Default().GetHistogram("net.reactor.writev_batch_bytes");
  return histogram;
}
/// Aggregate staged backlog across every live WriteQueue (each instance
/// adds its delta, so the gauge is the fleet-wide number).
obs::Gauge& BacklogGauge() {
  static obs::Gauge& gauge =
      obs::Registry::Default().GetGauge("net.reactor.backlog_bytes");
  return gauge;
}

}  // namespace

WriteQueue::WriteQueue() : WriteQueue(Options()) {}

WriteQueue::WriteQueue(Options options) : options_(std::move(options)) {
  if (options_.low_watermark_bytes >= options_.max_backlog_bytes) {
    options_.low_watermark_bytes = options_.max_backlog_bytes / 2;
  }
}

WriteQueue::~WriteQueue() {
  if (gauge_contribution_ != 0.0) BacklogGauge().Add(-gauge_contribution_);
}

void WriteQueue::SetBacklogGauge() {
  const double now = static_cast<double>(backlog_bytes());
  if (now != gauge_contribution_) {
    BacklogGauge().Add(now - gauge_contribution_);
    gauge_contribution_ = now;
  }
}

void WriteQueue::StageBytes(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return;
  // Compact the consumed prefix away before growing: steady state keeps
  // one warm buffer instead of creeping toward 2× the high-water mark.
  if (staged_head_ > 0 && staged_.size() + size > staged_.capacity()) {
    staged_.erase(staged_.begin(),
                  staged_.begin() + static_cast<std::ptrdiff_t>(staged_head_));
    staged_head_ = 0;
  }
  if (staged_.size() + size > staged_.capacity()) ++allocations_;
  staged_.insert(staged_.end(), data, data + size);
}

Status WriteQueue::Flush(int fd, http2::Connection& connection) {
  const util::BytesView fresh = connection.OutputView();
  while (true) {
    struct iovec iov[2];
    int iov_count = 0;
    const std::size_t staged_len = staged_.size() - staged_head_;
    if (staged_len > 0) {
      iov[iov_count].iov_base = staged_.data() + staged_head_;
      iov[iov_count].iov_len = staged_len;
      ++iov_count;
    }
    // Fresh bytes ride in the same syscall but are consumed strictly
    // after the staged residue, preserving the wire order of frames.
    const std::size_t fresh_remaining = fresh.size();
    if (fresh_remaining > 0) {
      iov[iov_count].iov_base =
          const_cast<std::uint8_t*>(fresh.data());
      iov[iov_count].iov_len = fresh_remaining;
      ++iov_count;
    }
    if (iov_count == 0) {
      blocked_ = false;
      SetBacklogGauge();
      return Status::Ok();
    }
    long n;
    if (options_.writev_fn) {
      n = options_.writev_fn(fd, iov, iov_count);
    } else {
      n = ::writev(fd, iov, iov_count);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Stage everything unsent and wait for the EPOLLOUT edge.
        StageBytes(fresh.data(), fresh.size());
        connection.ClearOutput();
        blocked_ = true;
        SetBacklogGauge();
        return Status::Ok();
      }
      connection.ClearOutput();
      SetBacklogGauge();
      if (errno == EPIPE || errno == ECONNRESET) {
        return Error(ErrorCode::kClosed,
                     std::string("writev: ") + ::strerror(errno));
      }
      return Error(ErrorCode::kIo, std::string("writev: ") + ::strerror(errno));
    }
    WritevCalls().Add();
    WritevBytes().Add(static_cast<std::uint64_t>(n));
    WritevBatchBytes().Observe(static_cast<double>(n));
    std::size_t written = static_cast<std::size_t>(n);
    // Consume the staged segment first (it went first in the iovec).
    const std::size_t from_stage = std::min(written, staged_len);
    staged_head_ += from_stage;
    written -= from_stage;
    if (staged_head_ == staged_.size()) {
      staged_.clear();  // keeps capacity: the warm buffer
      staged_head_ = 0;
    }
    if (from_stage == staged_len && written >= fresh_remaining) {
      // Everything out the door.
      connection.ClearOutput();
      blocked_ = false;
      SetBacklogGauge();
      return Status::Ok();
    }
    // Short write: the kernel took what fit, so the send buffer is full —
    // the unsent fresh tail moves to the stage (arena reusable
    // immediately) and we wait for the next EPOLLOUT edge like an
    // explicit EAGAIN.
    PartialWrites().Add();
    StageBytes(fresh.data() + written, fresh_remaining - written);
    connection.ClearOutput();
    blocked_ = true;
    SetBacklogGauge();
    return Status::Ok();
  }
}

}  // namespace sww::net
