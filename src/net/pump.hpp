// pump.hpp — glue that moves bytes between Connections and Transports.
//
// Two shapes:
//   * Pump       — one Connection ↔ one Transport (real endpoints).
//   * DirectLink — two Connections wired memory-to-memory with no transport
//                  at all (fully deterministic protocol tests/benches).
#pragma once

#include "http2/connection.hpp"
#include "net/transport.hpp"

namespace sww::net {

/// Drive one endpoint: flush the connection's pending output into the
/// transport, then feed any received bytes back into the connection.
/// Returns an error only for connection/transport failures; a clean
/// peer-close surfaces as ok() with `peer_closed` set.
struct PumpResult {
  bool made_progress = false;
  bool peer_closed = false;
};

util::Result<PumpResult> PumpOnce(http2::Connection& connection,
                                  Transport& transport);

/// Pump until the connection has no pending output and the transport has no
/// pending input, or `max_rounds` is hit (guards against livelock).
util::Status PumpUntilQuiet(http2::Connection& connection, Transport& transport,
                            int max_rounds = 64);

/// Shuttle bytes directly between two in-process connections until both are
/// quiescent.  This is the deterministic harness used by protocol tests.
void DirectLinkExchange(http2::Connection& a, http2::Connection& b,
                        int max_rounds = 64);

}  // namespace sww::net
