// reactor_server.hpp — the C10K event-loop server.
//
// N accept shards, each a full vertical slice pinned to one ThreadPool
// worker: its own SO_REUSEPORT listener on the shared port (the kernel
// load-balances incoming connections across shards), its own epoll
// Reactor with timer wheel, and its own connection table.  A connection
// lives its whole life on the shard that accepted it — no cross-core
// handoff, no locks on the hot path, and the single-threaded
// http2::Connection / application state machines stay single-threaded.
//
// Per connection the shard runs the readiness loop:
//
//   EPOLLIN  → TcpTransport::Read drains to EAGAIN → Connection::Receive
//            → app.OnEvents() → WriteQueue::Flush (scatter-gather writev)
//   EPOLLOUT → WriteQueue::Flush staged residue; resume paused reads
//   timers   → idle timeout, SETTINGS-ack deadline, GOAWAY drain
//
// Backpressure: when a peer stops reading, the WriteQueue backlog crosses
// Options::max_backlog_bytes and the shard stops *reading* from that
// connection (data stays in the kernel buffer, TCP pushes back), resuming
// below the low watermark.  Memory per connection is therefore bounded no
// matter how the peer behaves.
//
// net:: cannot depend on core::, so the application protocol plugs in via
// ReactorApp — core::ReactorHost adapts GenerativeServer onto it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "http2/connection.hpp"
#include "net/reactor.hpp"
#include "net/tcp.hpp"
#include "net/write_queue.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace sww::net {

/// One connection's application half, driven by the owning shard.  All
/// calls arrive on the shard thread.
class ReactorApp {
 public:
  virtual ~ReactorApp() = default;
  /// The protocol engine whose output the shard pumps to the socket.
  virtual http2::Connection& connection() = 0;
  /// Called once right after accept (start the handshake here).
  virtual void OnConnected() = 0;
  /// Called after bytes were fed to the connection; process protocol
  /// events and queue responses.  A returned error closes the connection
  /// (after flushing whatever was queued, e.g. a GOAWAY).
  virtual util::Status OnEvents() = 0;
};

/// Makes the app for a freshly-accepted connection (on the shard thread).
/// Returning nullptr refuses the connection — the socket is dropped.
using ReactorAppFactory = std::function<std::unique_ptr<ReactorApp>()>;

class ReactorServer {
 public:
  struct Options {
    /// Port to listen on (0 picks a free port; all shards share it).
    std::uint16_t port = 0;
    /// Accept shards (reactors).  <= 0 sizes to hardware_concurrency,
    /// capped at 8.
    int shards = 0;
    /// Listener knobs stamped onto every shard's socket.  reuse_port and
    /// non_blocking are forced on; backlog/tuning are honored.
    TcpListener::Options listener;
    /// Close connections with no inbound traffic for this long.  0
    /// disables.  Lazy: one wheel timer per connection, re-armed against
    /// the last-activity stamp when it fires early.
    std::uint64_t idle_timeout_ms = 60'000;
    /// Close connections whose peer never acknowledges our SETTINGS.  0
    /// disables.
    std::uint64_t settings_ack_timeout_ms = 10'000;
    /// Graceful Shutdown(): after SendGoaway, wait this long for peers
    /// to finish before force-closing stragglers.
    std::uint64_t goaway_drain_ms = 1'000;
    /// Per-connection WriteQueue bound (stop-reading threshold).
    std::size_t max_backlog_bytes = 1 << 20;
    /// Observer invoked on the shard thread just before a connection's
    /// app is destroyed (any cause: peer close, timeout, error, drain).
    std::function<void(ReactorApp&)> on_close;
    /// Shard loops run on this pool; nullptr makes the server own a
    /// dedicated ThreadPool sized to `shards` (the Shared() pool may be
    /// smaller than the shard count and its workers must stay free for
    /// generation work).
    util::ThreadPool* pool = nullptr;
  };

  struct ShardStats {
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t active = 0;
  };

  /// Bind all shards and start their event loops.  The server is live
  /// (kernel accepting) when this returns.
  static util::Result<std::unique_ptr<ReactorServer>> Start(
      ReactorAppFactory factory, Options options);

  /// Graceful stop: every shard sends GOAWAY on its connections, waits up
  /// to goaway_drain_ms, force-closes stragglers, and its loop exits.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  ~ReactorServer();
  ReactorServer(const ReactorServer&) = delete;
  ReactorServer& operator=(const ReactorServer&) = delete;

  std::uint16_t port() const { return port_; }
  int shard_count() const { return static_cast<int>(shards_.size()); }
  std::uint64_t total_accepted() const;
  std::uint64_t total_closed() const;
  std::vector<ShardStats> ShardStatsSnapshot() const;

 private:
  struct Connection;  // one accepted socket + app + writer + timers
  struct Shard;

  ReactorServer() = default;

  static void RunShard(Shard& shard);
  static void HandleAccept(Shard& shard);
  static void HandleConnEvent(Shard& shard, int fd, std::uint32_t events);
  static void DrainReadable(Shard& shard, Connection& conn);
  static void FlushOutput(Shard& shard, Connection& conn);
  static void ArmIdleTimer(Shard& shard, Connection& conn);
  static void CloseConnection(Shard& shard, int fd);
  static void BeginShutdown(Shard& shard);
  static void FinishShutdownIfDrained(Shard& shard);

  ReactorAppFactory factory_;
  Options options_;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  std::vector<std::future<void>> shard_futures_;
  std::atomic<bool> shutdown_called_{false};
};

}  // namespace sww::net
