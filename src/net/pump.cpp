#include "net/pump.hpp"

#include "obs/registry.hpp"

namespace sww::net {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {
// Process-wide pump telemetry: how often the glue woke up and how many
// bytes it actually shuttled (both directions, all endpoints).
obs::Counter& PumpWakeups() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.pump.wakeups");
  return counter;
}
obs::Counter& PumpBytes() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.pump.bytes_pumped");
  return counter;
}
// Distribution of per-wakeup write sizes: the live view of send-queue
// burstiness (a fat tail here means the connection batches its output
// behind flow control instead of streaming).
obs::Histogram& PumpWriteBytes() {
  static obs::Histogram& histogram =
      obs::Registry::Default().GetHistogram("net.pump.write_bytes");
  return histogram;
}
// Bytes queued in the connection's output arena at wakeup — the send-queue
// depth a live scrape sees while traffic is flowing.
obs::Gauge& PumpBacklogBytes() {
  static obs::Gauge& gauge =
      obs::Registry::Default().GetGauge("net.pump.backlog_bytes");
  return gauge;
}
}  // namespace

Result<PumpResult> PumpOnce(http2::Connection& connection, Transport& transport) {
  PumpResult result;
  PumpWakeups().Add();
  if (connection.HasOutput()) {
    // Zero-copy drain: write the arena view straight to the transport and
    // recycle the arena's storage.
    const util::BytesView out = connection.OutputView();
    PumpBacklogBytes().Set(static_cast<double>(out.size()));
    if (Status status = transport.Write(out); !status.ok()) {
      return status.error();
    }
    PumpBytes().Add(out.size());
    PumpWriteBytes().Observe(static_cast<double>(out.size()));
    connection.ClearOutput();
    result.made_progress = true;
    PumpBacklogBytes().Set(0.0);
  }
  auto incoming = transport.Read();
  if (!incoming) {
    if (incoming.error().code == ErrorCode::kClosed) {
      result.peer_closed = true;
      return result;
    }
    return incoming.error();
  }
  if (!incoming.value().empty()) {
    PumpBytes().Add(incoming.value().size());
    if (Status status = connection.Receive(incoming.value()); !status.ok()) {
      // Flush the GOAWAY the connection queued before reporting.
      if (connection.HasOutput()) {
        (void)transport.Write(connection.OutputView());
        connection.ClearOutput();
      }
      return status.error();
    }
    result.made_progress = true;
  }
  return result;
}

Status PumpUntilQuiet(http2::Connection& connection, Transport& transport,
                      int max_rounds) {
  for (int round = 0; round < max_rounds; ++round) {
    auto result = PumpOnce(connection, transport);
    if (!result) return result.error();
    if (!result.value().made_progress) return Status::Ok();
  }
  return Status::Ok();
}

void DirectLinkExchange(http2::Connection& a, http2::Connection& b,
                        int max_rounds) {
  for (int round = 0; round < max_rounds; ++round) {
    bool progress = false;
    PumpWakeups().Add();
    // Receive() only appends to the *receiver's* output arena, so handing b
    // a borrowed view of a's arena is safe; clear a's arena afterwards.
    if (a.HasOutput()) {
      const util::BytesView out = a.OutputView();
      PumpBytes().Add(out.size());
      PumpWriteBytes().Observe(static_cast<double>(out.size()));
      (void)b.Receive(out);
      a.ClearOutput();
      progress = true;
    }
    if (b.HasOutput()) {
      const util::BytesView out = b.OutputView();
      PumpBytes().Add(out.size());
      PumpWriteBytes().Observe(static_cast<double>(out.size()));
      (void)a.Receive(out);
      b.ClearOutput();
      progress = true;
    }
    if (!progress) return;
  }
}

}  // namespace sww::net
