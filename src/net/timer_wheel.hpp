// timer_wheel.hpp — hierarchical timer wheel for the epoll reactor.
//
// The reactor needs thousands of coarse connection timers (idle timeout,
// SETTINGS ack deadline, GOAWAY drain) whose common fate is cancellation:
// almost every armed timer is disarmed by normal traffic before it fires.
// A heap pays O(log n) per arm/disarm and keeps dead entries around; the
// classic hierarchical wheel (Varghese & Lauck) makes both O(1) — a timer
// lives in exactly one slot, scheduling is two shifts and a mask, and
// cancellation unlinks it from an intrusive doubly-linked list.
//
// Four levels of 256 slots over a caller-chosen tick (default 1 ms) cover
// ~1 ms .. ~50 days.  Time is explicit: the owner calls Advance(now) and
// due callbacks fire inline, so the wheel itself is deterministic and unit
// tests drive it with synthetic clocks — no sleeping, no flakiness.
// Single-threaded by design: each reactor shard owns one wheel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace sww::net {

class TimerWheel {
 public:
  using TimerId = std::uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  static constexpr int kLevels = 4;
  static constexpr std::size_t kSlotsPerLevel = 256;  // 8 bits per level

  /// `tick_nanos` is the finest granularity (and the firing slop bound).
  explicit TimerWheel(std::uint64_t tick_nanos = 1'000'000);

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Arm a timer `delay_nanos` from the wheel's current time.  The
  /// callback fires inside a future Advance() once the deadline passes.
  /// Returns an id for Cancel; ids are never reused.
  TimerId Schedule(std::uint64_t delay_nanos, std::function<void()> callback);

  /// Disarm.  Returns false when the id already fired or was cancelled.
  bool Cancel(TimerId id);

  /// Move time forward to `now_nanos` (monotonic; moving backwards is a
  /// no-op) and fire everything that came due.  Returns the number of
  /// callbacks fired.  Callbacks may Schedule/Cancel freely; a timer
  /// scheduled during Advance with zero delay fires on the *next* tick,
  /// never recursively within the same call.
  std::size_t Advance(std::uint64_t now_nanos);

  /// Nanoseconds from the wheel's current time until the next timer can
  /// possibly fire — the reactor's poll timeout.  Returns nullopt when
  /// nothing is armed.  The bound is conservative (never later than the
  /// true deadline): when the soonest work is a higher-level cascade, the
  /// cascade boundary is returned and the caller simply advances again.
  std::optional<std::uint64_t> NextDeadlineDelayNanos() const;

  std::size_t armed_count() const { return armed_; }
  std::uint64_t tick_nanos() const { return tick_nanos_; }
  std::uint64_t now_nanos() const { return current_tick_ * tick_nanos_; }

 private:
  struct Timer {
    std::uint64_t deadline_ticks = 0;
    TimerId id = kInvalidTimer;      // kInvalidTimer marks a free pool entry
    std::function<void()> callback;
    // Intrusive doubly-linked slot list (indices into pool_, -1 = none).
    std::int32_t prev = -1;
    std::int32_t next = -1;
    std::int32_t slot = -1;          // level*kSlotsPerLevel-encoded; -1 = unlinked,
                                     // -2 = detached due-chain of a running Advance
  };

  std::int32_t AllocateEntry();
  void LinkIntoWheel(std::int32_t index);
  void Unlink(std::int32_t index);
  void Release(std::int32_t index);
  /// Pop every timer in `slot` into a detached chain (returned head),
  /// stamping each entry's slot with `mark` (-1 for cascades that relink
  /// immediately, the firing sentinel for due-chains that run callbacks).
  std::int32_t DetachSlot(std::size_t slot, std::int32_t mark = -1);

  std::uint64_t tick_nanos_;
  std::uint64_t current_tick_ = 0;
  TimerId next_id_ = 1;
  std::size_t armed_ = 0;

  // Slot heads, level-major: slot l*kSlotsPerLevel + s.
  std::vector<std::int32_t> slots_;
  std::vector<Timer> pool_;
  std::vector<std::int32_t> free_list_;
  // Live id → pool index (ids are dense and short-lived; a sorted flat
  // map would also do, but the wheel is not the hot path's hot path).
  std::vector<std::pair<TimerId, std::int32_t>> live_;
};

}  // namespace sww::net
