#include "net/reactor_server.hpp"

#include <sys/epoll.h>

#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/registry.hpp"

namespace sww::net {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {

obs::Counter& AcceptsTotal() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.reactor.accepts");
  return counter;
}
obs::Gauge& ConnectionsActive() {
  static obs::Gauge& gauge =
      obs::Registry::Default().GetGauge("net.reactor.connections_active");
  return gauge;
}
/// Shard balance: one observation of (shard index + 1) per accept; the
/// histogram's spread across shards is the kernel's REUSEPORT fairness.
obs::Histogram& AcceptShard() {
  static obs::Histogram& histogram =
      obs::Registry::Default().GetHistogram("net.reactor.accept_shard");
  return histogram;
}
obs::Counter& IdleTimeouts() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.reactor.idle_timeouts");
  return counter;
}
obs::Counter& SettingsTimeouts() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.reactor.settings_timeouts");
  return counter;
}
obs::Counter& ReadPauses() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.reactor.read_pauses");
  return counter;
}
obs::Counter& GoawayDrainCloses() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.reactor.goaway_drain_closes");
  return counter;
}

constexpr std::uint64_t kMillion = 1'000'000;
constexpr std::uint64_t kAcceptRetryMillis = 50;  // fd-exhaustion re-poll cadence

}  // namespace

struct ReactorServer::Connection {
  std::unique_ptr<TcpTransport> transport;  // owns the fd
  std::unique_ptr<ReactorApp> app;
  WriteQueue writer;
  TimerWheel::TimerId idle_timer = TimerWheel::kInvalidTimer;
  TimerWheel::TimerId settings_timer = TimerWheel::kInvalidTimer;
  std::uint64_t last_activity_nanos = 0;  // wheel time of last inbound byte
  bool paused_reads = false;   // backpressure: backlog over the limit
  bool readable_pending = false;  // an ET read edge arrived while paused
  bool hup_pending = false;    // peer half-closed while paused: close on resume

  explicit Connection(WriteQueue::Options writer_options)
      : writer(std::move(writer_options)) {}
};

struct ReactorServer::Shard {
  ReactorServer* server = nullptr;
  int index = 0;
  std::unique_ptr<TcpListener> listener;
  Reactor reactor;
  std::unordered_map<int, std::unique_ptr<Connection>> conns;
  bool shutting_down = false;
  bool accept_retry_armed = false;  // one fd-exhaustion retry timer at a time
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> closed{0};
  std::atomic<std::uint64_t> active{0};
};

Result<std::unique_ptr<ReactorServer>> ReactorServer::Start(
    ReactorAppFactory factory, Options options) {
  if (!factory) {
    return Error(ErrorCode::kInvalidArgument, "reactor server needs a factory");
  }
  int shard_count = options.shards;
  if (shard_count <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    shard_count = static_cast<int>(hw == 0 ? 1 : (hw > 8 ? 8 : hw));
  }
  auto server = std::unique_ptr<ReactorServer>(new ReactorServer());
  server->factory_ = std::move(factory);
  server->options_ = std::move(options);

  TcpListener::Options listener_options = server->options_.listener;
  listener_options.reuse_port = true;   // all shards share the port
  listener_options.non_blocking = true; // reactor accept loops drain to EAGAIN

  std::uint16_t port = server->options_.port;
  for (int i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->server = server.get();
    shard->index = i;
    if (!shard->reactor.ok()) return shard->reactor.init_status().error();
    auto listener = TcpListener::Bind(port, listener_options);
    if (!listener.ok()) return listener.error();
    shard->listener = std::move(listener.value());
    if (i == 0) port = shard->listener->port();  // learn the picked port
    server->shards_.push_back(std::move(shard));
  }
  server->port_ = port;

  util::ThreadPool* pool = server->options_.pool;
  if (pool == nullptr) {
    server->owned_pool_ = std::make_unique<util::ThreadPool>(shard_count);
    pool = server->owned_pool_.get();
  }
  for (auto& shard : server->shards_) {
    Shard* raw = shard.get();
    server->shard_futures_.push_back(pool->Submit([raw] { RunShard(*raw); }));
  }
  return server;
}

ReactorServer::~ReactorServer() { Shutdown(); }

std::uint64_t ReactorServer::total_accepted() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->accepted.load();
  return total;
}

std::uint64_t ReactorServer::total_closed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->closed.load();
  return total;
}

std::vector<ReactorServer::ShardStats> ReactorServer::ShardStatsSnapshot()
    const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.accepted = shard->accepted.load();
    s.closed = shard->closed.load();
    s.active = shard->active.load();
    stats.push_back(s);
  }
  return stats;
}

void ReactorServer::RunShard(Shard& shard) {
  const int listen_fd = shard.listener->fd();
  (void)shard.reactor.Register(listen_fd, EPOLLIN, [&shard](std::uint32_t) {
    HandleAccept(shard);
  });
  shard.reactor.Run();
  // Loop exited (shutdown): the maps are torn down on this thread so app
  // destructors never race their own callbacks.
  shard.conns.clear();
}

void ReactorServer::HandleAccept(Shard& shard) {
  // Edge-triggered: drain the whole accept queue.
  while (true) {
    if (shard.shutting_down) return;
    auto accepted = shard.listener->AcceptFd();
    if (!accepted.ok()) {
      // Descriptor exhaustion leaves the queue full, and an edge-triggered
      // listener gets no new edge until another SYN arrives — pending
      // peers would sit unaccepted.  Poll again on a timer instead.
      if (accepted.error().code == ErrorCode::kResourceExhausted &&
          !shard.accept_retry_armed) {
        shard.accept_retry_armed = true;
        shard.reactor.ScheduleTimer(kAcceptRetryMillis * kMillion, [&shard] {
          shard.accept_retry_armed = false;
          if (!shard.shutting_down) HandleAccept(shard);
        });
      }
      return;  // other failures: next edge retries
    }
    const int fd = accepted.value();
    if (fd < 0) return;  // queue empty
    auto conn = std::make_unique<Connection>(WriteQueue::Options{
        shard.server->options_.max_backlog_bytes,
        shard.server->options_.max_backlog_bytes / 2,
        nullptr});
    conn->transport = std::make_unique<TcpTransport>(fd);
    conn->app = shard.server->factory_();
    if (conn->app == nullptr) continue;  // factory refused; drop the socket
    conn->last_activity_nanos = shard.reactor.wheel().now_nanos();
    Connection* raw = conn.get();
    shard.conns.emplace(fd, std::move(conn));
    const Status registered = shard.reactor.Register(
        fd, EPOLLIN | EPOLLOUT | EPOLLRDHUP,
        [&shard, fd](std::uint32_t events) {
          HandleConnEvent(shard, fd, events);
        });
    if (!registered.ok()) {
      shard.conns.erase(fd);
      continue;
    }
    shard.accepted.fetch_add(1, std::memory_order_relaxed);
    shard.active.fetch_add(1, std::memory_order_relaxed);
    AcceptsTotal().Add();
    ConnectionsActive().Add(1.0);
    AcceptShard().Observe(static_cast<double>(shard.index + 1));
    raw->app->OnConnected();
    FlushOutput(shard, *raw);
    ArmIdleTimer(shard, *raw);
    const std::uint64_t ack_ms = shard.server->options_.settings_ack_timeout_ms;
    if (ack_ms > 0) {
      raw->settings_timer = shard.reactor.ScheduleTimer(
          ack_ms * kMillion, [&shard, fd] {
            auto it = shard.conns.find(fd);
            if (it == shard.conns.end()) return;
            it->second->settings_timer = TimerWheel::kInvalidTimer;
            if (!it->second->app->connection().local_settings_acked()) {
              SettingsTimeouts().Add();
              CloseConnection(shard, fd);
            }
          });
    }
  }
}

void ReactorServer::ArmIdleTimer(Shard& shard, Connection& conn) {
  const std::uint64_t timeout_ms = shard.server->options_.idle_timeout_ms;
  if (timeout_ms == 0) return;
  const int fd = conn.transport->fd();
  // Lazy re-arm: the timer fires at last_activity + timeout; activity in
  // between just moves the stamp instead of churning the wheel.
  const std::uint64_t now = shard.reactor.wheel().now_nanos();
  const std::uint64_t deadline = conn.last_activity_nanos + timeout_ms * kMillion;
  const std::uint64_t delay = deadline > now ? deadline - now : 1;
  conn.idle_timer = shard.reactor.ScheduleTimer(delay, [&shard, fd] {
    auto it = shard.conns.find(fd);
    if (it == shard.conns.end()) return;
    Connection& c = *it->second;
    c.idle_timer = TimerWheel::kInvalidTimer;
    const std::uint64_t now2 = shard.reactor.wheel().now_nanos();
    const std::uint64_t timeout_nanos =
        shard.server->options_.idle_timeout_ms * kMillion;
    if (now2 - c.last_activity_nanos >= timeout_nanos) {
      IdleTimeouts().Add();
      c.app->connection().SendGoaway(http2::ErrorCode::kNoError, "idle timeout");
      FlushOutput(shard, c);
      CloseConnection(shard, fd);
      return;
    }
    ArmIdleTimer(shard, c);
  });
}

void ReactorServer::FlushOutput(Shard& shard, Connection& conn) {
  const Status status =
      conn.writer.Flush(conn.transport->fd(), conn.app->connection());
  if (!status.ok()) {
    CloseConnection(shard, conn.transport->fd());
    return;
  }
  // Backpressure: a peer that stops reading builds staged backlog; stop
  // reading from it until the kernel drains below the watermark.
  if (!conn.paused_reads && conn.writer.over_limit()) {
    conn.paused_reads = true;
    ReadPauses().Add();
  }
}

void ReactorServer::DrainReadable(Shard& shard, Connection& conn) {
  const int fd = conn.transport->fd();
  auto data = conn.transport->Read();
  if (!data.ok()) {
    // kClosed: orderly FIN from the peer.  Anything else: broken socket.
    CloseConnection(shard, fd);
    return;
  }
  if (!data.value().empty()) {
    conn.last_activity_nanos = shard.reactor.wheel().now_nanos();
    const Status received = conn.app->connection().Receive(
        util::BytesView(data.value().data(), data.value().size()));
    const Status processed = conn.app->OnEvents();
    FlushOutput(shard, conn);
    if (shard.conns.find(fd) == shard.conns.end()) return;  // closed in flush
    if (!received.ok() || !processed.ok() ||
        conn.app->connection().dead()) {
      CloseConnection(shard, fd);
      return;
    }
    if (shard.shutting_down && conn.app->connection().going_away()) {
      // Drain mode: the peer finished its in-flight work when no streams
      // remain.
      if (conn.app->connection().active_stream_count() == 0) {
        CloseConnection(shard, fd);
        FinishShutdownIfDrained(shard);
        return;
      }
    }
  }
}

void ReactorServer::HandleConnEvent(Shard& shard, int fd,
                                    std::uint32_t events) {
  auto it = shard.conns.find(fd);
  if (it == shard.conns.end()) return;
  Connection& conn = *it->second;
  if (events & EPOLLERR) {
    CloseConnection(shard, fd);
    return;
  }
  if (events & EPOLLOUT) {
    FlushOutput(shard, conn);
    if (shard.conns.find(fd) == shard.conns.end()) return;
    if (conn.paused_reads && conn.writer.below_low_watermark()) {
      // Resume: re-run the read path because ET edges consumed while
      // paused never come back on their own.
      conn.paused_reads = false;
      if (conn.readable_pending) {
        conn.readable_pending = false;
        DrainReadable(shard, conn);
        if (shard.conns.find(fd) == shard.conns.end()) return;
        // The peer half-closed while we were backpressured: its final
        // bytes are drained now, and no further read edge will come.
        if (conn.hup_pending) {
          CloseConnection(shard, fd);
          return;
        }
      }
    }
  }
  if (events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) {
    if (conn.paused_reads) {
      conn.readable_pending = true;
      if (events & (EPOLLRDHUP | EPOLLHUP)) conn.hup_pending = true;
    } else {
      DrainReadable(shard, conn);
      if (shard.conns.find(fd) == shard.conns.end()) return;
      // The peer half-closed: any final bytes were just drained and the
      // responses flushed, and no further edges will arrive — close now
      // rather than lingering until the idle timer.
      if (events & (EPOLLRDHUP | EPOLLHUP)) {
        CloseConnection(shard, fd);
      }
    }
  }
}

void ReactorServer::CloseConnection(Shard& shard, int fd) {
  auto it = shard.conns.find(fd);
  if (it == shard.conns.end()) return;
  Connection& conn = *it->second;
  if (conn.idle_timer != TimerWheel::kInvalidTimer) {
    shard.reactor.CancelTimer(conn.idle_timer);
  }
  if (conn.settings_timer != TimerWheel::kInvalidTimer) {
    shard.reactor.CancelTimer(conn.settings_timer);
  }
  (void)shard.reactor.Deregister(fd);
  if (shard.server->options_.on_close) {
    shard.server->options_.on_close(*conn.app);
  }
  shard.conns.erase(it);  // destroys transport (closes fd), writer, app
  shard.closed.fetch_add(1, std::memory_order_relaxed);
  shard.active.fetch_sub(1, std::memory_order_relaxed);
  ConnectionsActive().Add(-1.0);
  if (shard.shutting_down) FinishShutdownIfDrained(shard);
}

void ReactorServer::BeginShutdown(Shard& shard) {
  if (shard.shutting_down) return;
  shard.shutting_down = true;
  (void)shard.reactor.Deregister(shard.listener->fd());
  // Snapshot the fds first: a failed flush (peer already reset) closes the
  // connection, which erases from shard.conns — iterating the map directly
  // while that happens would invalidate the loop.
  std::vector<int> fds;
  fds.reserve(shard.conns.size());
  for (const auto& [fd, conn] : shard.conns) fds.push_back(fd);
  for (int fd : fds) {
    auto it = shard.conns.find(fd);
    if (it == shard.conns.end()) continue;
    it->second->app->connection().SendGoaway(http2::ErrorCode::kNoError,
                                             "server shutdown");
    FlushOutput(shard, *it->second);
  }
  if (shard.conns.empty()) {
    shard.reactor.Stop();
    return;
  }
  const std::uint64_t drain_ms = shard.server->options_.goaway_drain_ms;
  shard.reactor.ScheduleTimer(
      (drain_ms == 0 ? 1 : drain_ms) * kMillion, [&shard] {
        // Force-close stragglers that ignored the GOAWAY.
        while (!shard.conns.empty()) {
          GoawayDrainCloses().Add();
          CloseConnection(shard, shard.conns.begin()->first);
        }
        shard.reactor.Stop();
      });
}

void ReactorServer::FinishShutdownIfDrained(Shard& shard) {
  if (shard.shutting_down && shard.conns.empty()) shard.reactor.Stop();
}

void ReactorServer::Shutdown() {
  if (shutdown_called_.exchange(true)) return;
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->reactor.Post([raw] { BeginShutdown(*raw); });
  }
  for (auto& future : shard_futures_) {
    if (future.valid()) future.get();
  }
  shard_futures_.clear();
  owned_pool_.reset();
}

}  // namespace sww::net
