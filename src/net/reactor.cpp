#include "net/reactor.hpp"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "obs/registry.hpp"

namespace sww::net {

using util::Error;
using util::ErrorCode;
using util::Status;

namespace {

std::uint64_t SteadyNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

obs::Counter& ReactorWakeups() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.reactor.wakeups");
  return counter;
}
obs::Counter& ReactorTimersFired() {
  static obs::Counter& counter =
      obs::Registry::Default().GetCounter("net.reactor.timers_fired");
  return counter;
}
obs::Histogram& ReactorReadyEvents() {
  static obs::Histogram& histogram =
      obs::Registry::Default().GetHistogram("net.reactor.ready_events");
  return histogram;
}

constexpr int kMaxEventsPerWait = 256;

}  // namespace

Reactor::Reactor() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    init_status_ =
        Error(ErrorCode::kIo, std::string("epoll_create1: ") + ::strerror(errno));
    return;
  }
  event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (event_fd_ < 0) {
    init_status_ =
        Error(ErrorCode::kIo, std::string("eventfd: ") + ::strerror(errno));
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return;
  }
  struct epoll_event ev;
  ::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;  // level-triggered on purpose: never lose a kick
  ev.data.u64 = static_cast<std::uint32_t>(event_fd_);  // gen 0: never stale
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) < 0) {
    init_status_ =
        Error(ErrorCode::kIo, std::string("epoll_ctl(eventfd): ") + ::strerror(errno));
    ::close(event_fd_);
    ::close(epoll_fd_);
    event_fd_ = epoll_fd_ = -1;
    return;
  }
  wheel_origin_nanos_ = SteadyNanos();
}

Reactor::~Reactor() {
  if (event_fd_ >= 0) ::close(event_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status Reactor::Register(int fd, std::uint32_t interest, EventFn callback) {
  if (!ok()) return init_status_;
  auto it = callbacks_.find(fd);
  const bool known = it != callbacks_.end();
  // A fresh registration gets a new generation so stale events queued for
  // a previous owner of this fd are dropped at dispatch.  Re-registering
  // a live fd (interest change) keeps its generation: pending events are
  // for the same socket and must not be lost.
  const std::uint32_t gen = known ? it->second.gen : next_gen_++;
  struct epoll_event ev;
  ::memset(&ev, 0, sizeof(ev));
  ev.events = interest | EPOLLET;
  ev.data.u64 = (static_cast<std::uint64_t>(gen) << 32) |
                static_cast<std::uint32_t>(fd);
  const int op = known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (::epoll_ctl(epoll_fd_, op, fd, &ev) < 0) {
    return Error(ErrorCode::kIo,
                 std::string("epoll_ctl(add): ") + ::strerror(errno));
  }
  callbacks_[fd] = Registration{gen, std::move(callback)};
  return Status::Ok();
}

Status Reactor::Deregister(int fd) {
  if (!ok()) return init_status_;
  if (callbacks_.erase(fd) == 0) {
    return Error(ErrorCode::kNotFound, "fd not registered");
  }
  // The fd may already be closed (kernel auto-removed it) — that is fine.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  return Status::Ok();
}

TimerWheel::TimerId Reactor::ScheduleTimer(std::uint64_t delay_nanos,
                                           std::function<void()> callback) {
  return wheel_.Schedule(delay_nanos, std::move(callback));
}

bool Reactor::CancelTimer(TimerWheel::TimerId id) { return wheel_.Cancel(id); }

void Reactor::Kick() {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
}

void Reactor::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    posted_.push_back(std::move(fn));
  }
  Kick();
}

void Reactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    stop_requested_ = true;
  }
  Kick();
}

std::size_t Reactor::PollOnce(int max_wait_ms) {
  if (!ok()) return 0;
  // The epoll timeout is bounded by the wheel's next possible deadline so
  // timers fire within one tick of schedule even when no fd goes ready.
  int timeout_ms = max_wait_ms;
  if (auto delay = wheel_.NextDeadlineDelayNanos(); delay.has_value()) {
    const std::uint64_t ms = (*delay + 999'999) / 1'000'000;
    const int wheel_ms = static_cast<int>(std::min<std::uint64_t>(ms, 60'000));
    timeout_ms = timeout_ms < 0 ? wheel_ms : std::min(timeout_ms, wheel_ms);
  }
  struct epoll_event events[kMaxEventsPerWait];
  int n = ::epoll_wait(epoll_fd_, events, kMaxEventsPerWait, timeout_ms);
  if (n < 0) n = 0;  // EINTR: fall through to timers + posts
  ReactorWakeups().Add();
  std::size_t dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t tag = events[i].data.u64;
    const int fd = static_cast<int>(tag & 0xffffffffu);
    const std::uint32_t gen = static_cast<std::uint32_t>(tag >> 32);
    if (fd == event_fd_) {
      std::uint64_t drain = 0;
      [[maybe_unused]] ssize_t r = ::read(event_fd_, &drain, sizeof(drain));
      continue;
    }
    // Look up at dispatch time: an earlier callback in this batch may
    // have deregistered this fd (stale event, skip) — or deregistered it
    // AND an accept reused the fd number, which the generation catches.
    auto it = callbacks_.find(fd);
    if (it == callbacks_.end() || it->second.gen != gen) continue;
    // Copy the handler so the callback may safely Deregister itself
    // (erasing the map entry) while running.
    EventFn handler = it->second.fn;
    handler(events[i].events);
    ++dispatched;
  }
  ReactorReadyEvents().Observe(static_cast<double>(dispatched));
  const std::size_t fired = wheel_.Advance(SteadyNanos() - wheel_origin_nanos_);
  if (fired > 0) ReactorTimersFired().Add(fired);
  // Posted tasks run last so they observe the effects of this iteration.
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
  return dispatched;
}

void Reactor::Run() {
  while (true) {
    bool stop = false;
    std::vector<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lock(post_mutex_);
      if (stop_requested_) {
        stop_requested_ = false;
        stop = true;
        // A graceful stop still honors work posted before it: drain the
        // queue so Post-then-Stop from another thread never drops tasks.
        tasks.swap(posted_);
      }
    }
    if (stop) {
      for (auto& task : tasks) task();
      return;
    }
    PollOnce(-1);
  }
}

}  // namespace sww::net
