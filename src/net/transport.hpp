// transport.hpp — byte transport abstraction under the HTTP/2 engine.
//
// The Connection is sans-IO; a Transport moves its bytes.  Two concrete
// implementations exist: an in-memory duplex pair (deterministic tests and
// benchmarks) and loopback TCP (integration tests and the examples).  Both
// are non-blocking: Read returns whatever is available, possibly nothing.
#pragma once

#include <memory>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace sww::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queue bytes for the peer.  Fails with kClosed after Close.
  virtual util::Status Write(util::BytesView bytes) = 0;

  /// Non-blocking read: everything currently available (may be empty).
  /// Fails with kClosed when the peer closed and no data remains.
  virtual util::Result<util::Bytes> Read() = 0;

  /// Close this end.  The peer observes kClosed after draining.
  virtual void Close() = 0;

  virtual bool closed() const = 0;
};

/// A connected pair of in-memory transports: bytes written to `first`
/// appear at `second` and vice versa.  Thread-safe.
struct TransportPair {
  std::unique_ptr<Transport> first;
  std::unique_ptr<Transport> second;
};

TransportPair MakeInMemoryPair();

}  // namespace sww::net
