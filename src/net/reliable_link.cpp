#include "net/reliable_link.hpp"

#include <algorithm>

namespace sww::net {

using util::ByteReader;
using util::Bytes;
using util::BytesView;
using util::ByteWriter;
using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

namespace {
constexpr std::uint8_t kTypeData = 0x01;
constexpr std::uint8_t kTypeAck = 0x02;
}  // namespace

void LossyChannel::Send(Bytes datagram) {
  ++sent_;
  if (rng_.NextDouble() < profile_.loss_rate) {
    ++dropped_;
    return;
  }
  const bool duplicate = rng_.NextDouble() < profile_.duplicate_rate;
  if (rng_.NextDouble() < profile_.reorder_rate) {
    delayed_.push_back(datagram);
  } else {
    queue_.push_back(datagram);
  }
  if (duplicate) {
    ++duplicated_;
    queue_.push_back(std::move(datagram));
  }
}

std::vector<Bytes> LossyChannel::Deliver() {
  std::vector<Bytes> out;
  out.reserve(queue_.size() + delayed_.size());
  for (Bytes& datagram : queue_) out.push_back(std::move(datagram));
  queue_.clear();
  // Delayed datagrams arrive one slot later: move them into the queue for
  // the next delivery round.
  for (Bytes& datagram : delayed_) queue_.push_back(std::move(datagram));
  delayed_.clear();
  return out;
}

ReliableLink::ReliableLink(std::shared_ptr<LossyChannel> outgoing,
                           std::shared_ptr<LossyChannel> incoming,
                           Options options)
    : options_(options),
      outgoing_(std::move(outgoing)),
      incoming_(std::move(incoming)) {}

ReliableLink::ReliableLink(std::shared_ptr<LossyChannel> outgoing,
                           std::shared_ptr<LossyChannel> incoming)
    : ReliableLink(std::move(outgoing), std::move(incoming), Options{}) {}

Status ReliableLink::Write(BytesView bytes) {
  if (closed_) return Error(ErrorCode::kClosed, "reliable link closed");
  send_buffer_.insert(send_buffer_.end(), bytes.begin(), bytes.end());
  FlushSendWindow();
  return Status::Ok();
}

Result<Bytes> ReliableLink::Read() {
  if (closed_ && deliverable_.empty()) {
    return Error(ErrorCode::kClosed, "reliable link closed");
  }
  ProcessIncoming();
  Bytes out = std::move(deliverable_);
  deliverable_.clear();
  return out;
}

void ReliableLink::Close() { closed_ = true; }

void ReliableLink::FlushSendWindow() {
  while (!send_buffer_.empty() &&
         in_flight_.size() < options_.window_segments) {
    const std::size_t take =
        std::min(options_.segment_bytes, send_buffer_.size());
    InFlight segment;
    segment.offset = next_send_offset_;
    segment.data.assign(send_buffer_.begin(),
                        send_buffer_.begin() + static_cast<std::ptrdiff_t>(take));
    send_buffer_.erase(send_buffer_.begin(),
                       send_buffer_.begin() + static_cast<std::ptrdiff_t>(take));
    next_send_offset_ += take;

    ByteWriter writer(take + 16);
    writer.WriteU8(kTypeData);
    writer.WriteU64(segment.offset);
    writer.WriteU16(static_cast<std::uint16_t>(segment.data.size()));
    writer.WriteBytes(segment.data);
    outgoing_->Send(std::move(writer).TakeBytes());
    ++stats_.segments_sent;
    in_flight_[segment.offset] = std::move(segment);
  }
}

void ReliableLink::SendAck() {
  ByteWriter writer(9);
  writer.WriteU8(kTypeAck);
  writer.WriteU64(delivered_until_);
  outgoing_->Send(std::move(writer).TakeBytes());
  ++stats_.acks_sent;
  ack_pending_ = false;
}

void ReliableLink::ProcessIncoming() {
  for (const Bytes& datagram : incoming_->Deliver()) {
    ByteReader reader(datagram);
    auto type = reader.ReadU8();
    if (!type) continue;  // runt datagram: drop
    if (type.value() == kTypeAck) {
      auto ack_until = reader.ReadU64();
      if (!ack_until) continue;
      acked_until_ = std::max(acked_until_, ack_until.value());
      for (auto it = in_flight_.begin(); it != in_flight_.end();) {
        if (it->first + it->second.data.size() <= acked_until_) {
          it = in_flight_.erase(it);
        } else {
          ++it;
        }
      }
      continue;
    }
    if (type.value() != kTypeData) continue;
    auto offset = reader.ReadU64();
    auto length = reader.ReadU16();
    if (!offset || !length) continue;
    auto payload = reader.ReadBytes(length.value());
    if (!payload) continue;
    if (offset.value() + length.value() <= delivered_until_) {
      // Pure duplicate of delivered data: re-ACK so the sender advances.
      ack_pending_ = true;
      continue;
    }
    if (offset.value() != delivered_until_) ++stats_.out_of_order;
    reorder_buffer_[offset.value()] =
        Bytes(payload.value().begin(), payload.value().end());
    ack_pending_ = true;
  }

  // Deliver contiguous data.
  bool advanced = true;
  while (advanced) {
    advanced = false;
    for (auto it = reorder_buffer_.begin(); it != reorder_buffer_.end();) {
      const std::uint64_t offset = it->first;
      const Bytes& data = it->second;
      if (offset + data.size() <= delivered_until_) {
        it = reorder_buffer_.erase(it);  // fully stale
        continue;
      }
      if (offset <= delivered_until_) {
        const std::size_t skip =
            static_cast<std::size_t>(delivered_until_ - offset);
        deliverable_.insert(deliverable_.end(), data.begin() + static_cast<std::ptrdiff_t>(skip),
                            data.end());
        delivered_until_ = offset + data.size();
        it = reorder_buffer_.erase(it);
        advanced = true;
        continue;
      }
      ++it;
    }
  }
  if (ack_pending_) SendAck();
}

void ReliableLink::Tick() {
  ProcessIncoming();
  // Retransmit timed-out segments — bounded per tick so one lost segment
  // blocking the cumulative ACK does not trigger a go-back-N storm.
  int retransmit_budget = 4;
  for (auto& [offset, segment] : in_flight_) {
    (void)offset;
    if (retransmit_budget == 0) break;
    if (++segment.ticks_since_sent >= options_.retransmit_after_ticks) {
      --retransmit_budget;
      ByteWriter writer(segment.data.size() + 16);
      writer.WriteU8(kTypeData);
      writer.WriteU64(segment.offset);
      writer.WriteU16(static_cast<std::uint16_t>(segment.data.size()));
      writer.WriteBytes(segment.data);
      outgoing_->Send(std::move(writer).TakeBytes());
      segment.ticks_since_sent = 0;
      ++stats_.retransmissions;
    }
  }
  FlushSendWindow();
}

ReliablePair MakeReliablePair(LossyChannel::Profile profile,
                              ReliableLink::Options options) {
  ReliablePair pair;
  LossyChannel::Profile reverse = profile;
  reverse.seed = profile.seed ^ 0x9e3779b97f4a7c15ULL;
  pair.a_to_b = std::make_shared<LossyChannel>(profile);
  pair.b_to_a = std::make_shared<LossyChannel>(reverse);
  pair.first = std::make_unique<ReliableLink>(pair.a_to_b, pair.b_to_a, options);
  pair.second = std::make_unique<ReliableLink>(pair.b_to_a, pair.a_to_b, options);
  return pair;
}

}  // namespace sww::net
