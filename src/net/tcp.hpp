// tcp.hpp — loopback TCP transport (POSIX sockets).
//
// Used by the examples, integration tests, and the epoll reactor to run
// the generative server and client as genuinely separate endpoints over
// the kernel's TCP stack.  Sockets are always non-blocking; Read drains
// whatever the kernel has buffered, Write honors a caller-set deadline.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/transport.hpp"
#include "util/error.hpp"

namespace sww::net {

/// Per-socket tuning applied to every connected stream socket — accepted
/// or dialed — in exactly one place (ApplySocketTuning), so a knob added
/// here reaches both directions of the loopback automatically.
struct SocketTuning {
  /// Disable Nagle.  The HTTP/2 layer already batches frames into one
  /// arena flush, so coalescing in the kernel only adds latency.
  bool tcp_nodelay = true;
  /// SO_RCVBUF / SO_SNDBUF hints; 0 leaves the kernel default.  Hints,
  /// not guarantees: Linux doubles the requested value for bookkeeping
  /// and clamps to /proc/sys/net/core limits.
  int recv_buffer_bytes = 0;
  int send_buffer_bytes = 0;
};

/// Apply `tuning` to a connected (or about-to-connect) stream socket.
util::Status ApplySocketTuning(int fd, const SocketTuning& tuning);

class TcpTransport final : public Transport {
 public:
  /// Takes ownership of a connected, non-blocking socket fd.
  explicit TcpTransport(int fd);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  util::Status Write(util::BytesView bytes) override;
  util::Result<util::Bytes> Read() override;
  void Close() override;
  bool closed() const override { return fd_ < 0; }

  int fd() const { return fd_; }

  /// Deadline for Write to drain its buffer when the socket stays
  /// unwritable (stalled reader).  Exceeding it surfaces ETIMEDOUT as a
  /// util::Status error instead of blocking forever.  -1 waits forever.
  void set_write_timeout_ms(int ms) { write_timeout_ms_ = ms; }
  int write_timeout_ms() const { return write_timeout_ms_; }

 private:
  int fd_;
  int write_timeout_ms_ = 5000;
};

/// Listening socket bound to 127.0.0.1.  Port 0 picks a free port.
class TcpListener {
 public:
  struct Options {
    /// Kernel accept-queue depth.  The old hard-coded 16 dropped SYNs
    /// under telemetry soak runs with many concurrent scrapers.
    int backlog = 256;
    /// SO_REUSEADDR before bind, so restarting a soak on a fixed port
    /// does not fight TIME_WAIT.
    bool reuse_addr = true;
    /// SO_REUSEPORT before bind: several listeners share one port and
    /// the kernel load-balances incoming connections across them — the
    /// sharded-accept primitive the reactor server is built on.
    bool reuse_port = false;
    /// Make the listening fd itself non-blocking (reactor accept loops
    /// drain until EAGAIN instead of parking in poll()).
    bool non_blocking = false;
    /// Tuning stamped onto every socket this listener accepts.
    SocketTuning tuning;
  };

  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  static util::Result<std::unique_ptr<TcpListener>> Bind(std::uint16_t port);
  static util::Result<std::unique_ptr<TcpListener>> Bind(
      std::uint16_t port, const Options& options);

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_; }
  const Options& options() const { return options_; }

  /// Accept one connection, blocking up to `timeout_ms` (-1 = forever).
  util::Result<std::unique_ptr<Transport>> Accept(int timeout_ms = -1);

  /// Non-blocking accept for reactor loops: returns a connected,
  /// non-blocking, tuned fd; -1 when no connection is pending (EAGAIN —
  /// not an error, just an empty queue); Error on real failures.
  util::Result<int> AcceptFd();

 private:
  TcpListener(int fd, std::uint16_t port, Options options)
      : fd_(fd), port_(port), options_(std::move(options)) {}
  int fd_;
  std::uint16_t port_;
  Options options_;
};

/// Connect to 127.0.0.1:port with a deadline.  The connect is issued
/// non-blocking and awaited up to `timeout_ms`; refusal and timeout come
/// back as errors (ECONNREFUSED / ETIMEDOUT in the message) instead of
/// blocking the caller in the kernel.
util::Result<std::unique_ptr<Transport>> TcpConnect(std::uint16_t port,
                                                    int timeout_ms = 5000);

}  // namespace sww::net
