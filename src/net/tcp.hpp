// tcp.hpp — loopback TCP transport (POSIX sockets).
//
// Used by the examples and integration tests to run the generative server
// and client as genuinely separate endpoints over the kernel's TCP stack.
// Non-blocking sockets; Read drains whatever the kernel has buffered.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/transport.hpp"
#include "util/error.hpp"

namespace sww::net {

class TcpTransport final : public Transport {
 public:
  /// Takes ownership of a connected, non-blocking socket fd.
  explicit TcpTransport(int fd);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  util::Status Write(util::BytesView bytes) override;
  util::Result<util::Bytes> Read() override;
  void Close() override;
  bool closed() const override { return fd_ < 0; }

 private:
  int fd_;
};

/// Listening socket bound to 127.0.0.1.  Port 0 picks a free port.
class TcpListener {
 public:
  struct Options {
    /// Kernel accept-queue depth.  The old hard-coded 16 dropped SYNs
    /// under telemetry soak runs with many concurrent scrapers.
    int backlog = 256;
    /// SO_REUSEADDR before bind, so restarting a soak on a fixed port
    /// does not fight TIME_WAIT.
    bool reuse_addr = true;
  };

  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  static util::Result<std::unique_ptr<TcpListener>> Bind(std::uint16_t port);
  static util::Result<std::unique_ptr<TcpListener>> Bind(
      std::uint16_t port, const Options& options);

  std::uint16_t port() const { return port_; }

  /// Accept one connection, blocking up to `timeout_ms` (-1 = forever).
  util::Result<std::unique_ptr<Transport>> Accept(int timeout_ms = -1);

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}
  int fd_;
  std::uint16_t port_;
};

/// Connect to 127.0.0.1:port.
util::Result<std::unique_ptr<Transport>> TcpConnect(std::uint16_t port);

}  // namespace sww::net
