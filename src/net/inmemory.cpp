#include <deque>
#include <memory>
#include <mutex>

#include "net/transport.hpp"

namespace sww::net {

namespace {

using util::Bytes;
using util::BytesView;
using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

/// One direction of the duplex pipe: a locked byte queue plus a closed flag.
struct Channel {
  std::mutex mutex;
  std::deque<std::uint8_t> queue;
  bool closed = false;
};

class InMemoryTransport final : public Transport {
 public:
  InMemoryTransport(std::shared_ptr<Channel> outgoing,
                    std::shared_ptr<Channel> incoming)
      : outgoing_(std::move(outgoing)), incoming_(std::move(incoming)) {}

  Status Write(BytesView bytes) override {
    std::lock_guard<std::mutex> lock(outgoing_->mutex);
    if (outgoing_->closed) {
      return Error(ErrorCode::kClosed, "in-memory transport closed");
    }
    outgoing_->queue.insert(outgoing_->queue.end(), bytes.begin(), bytes.end());
    return Status::Ok();
  }

  Result<Bytes> Read() override {
    std::lock_guard<std::mutex> lock(incoming_->mutex);
    if (incoming_->queue.empty()) {
      if (incoming_->closed) {
        return Error(ErrorCode::kClosed, "peer closed");
      }
      return Bytes{};
    }
    Bytes out(incoming_->queue.begin(), incoming_->queue.end());
    incoming_->queue.clear();
    return out;
  }

  void Close() override {
    {
      std::lock_guard<std::mutex> lock(outgoing_->mutex);
      outgoing_->closed = true;
    }
    {
      std::lock_guard<std::mutex> lock(incoming_->mutex);
      incoming_->closed = true;
    }
    closed_ = true;
  }

  bool closed() const override { return closed_; }

 private:
  std::shared_ptr<Channel> outgoing_;
  std::shared_ptr<Channel> incoming_;
  bool closed_ = false;
};

}  // namespace

TransportPair MakeInMemoryPair() {
  auto a_to_b = std::make_shared<Channel>();
  auto b_to_a = std::make_shared<Channel>();
  TransportPair pair;
  pair.first = std::make_unique<InMemoryTransport>(a_to_b, b_to_a);
  pair.second = std::make_unique<InMemoryTransport>(b_to_a, a_to_b);
  return pair;
}

}  // namespace sww::net
