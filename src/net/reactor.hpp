// reactor.hpp — edge-triggered epoll event loop with a timer wheel.
//
// One Reactor is one thread's event loop: it owns an epoll instance, an
// eventfd for cross-thread wakeup, and a hierarchical TimerWheel.  Fds
// are registered edge-triggered (EPOLLET is forced onto every interest
// mask), so the kernel reports each readiness *transition* exactly once
// and callbacks must drain until EAGAIN — the discipline the rest of
// net:: (TcpTransport::Read, WriteQueue) is built around.
//
// Threading contract: Register/Deregister/ScheduleTimer/CancelTimer/
// PollOnce are loop-thread-only.  Post() and Stop() are thread-safe —
// they enqueue through a mutex and kick the eventfd, and the posted work
// runs on the loop thread.  This is the "one reactor per core, no
// cross-core handoff" shape: anything another thread wants done to a
// connection is Posted to the shard that owns it.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/timer_wheel.hpp"
#include "util/error.hpp"

namespace sww::net {

class Reactor {
 public:
  /// Callback invoked with the ready epoll event mask (EPOLLIN | EPOLLOUT
  /// | EPOLLRDHUP | EPOLLERR | EPOLLHUP bits).  May Register/Deregister
  /// any fd, including its own.
  using EventFn = std::function<void(std::uint32_t events)>;

  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// False when epoll/eventfd creation failed at construction; every
  /// subsequent call surfaces the stored error.
  bool ok() const { return init_status_.ok(); }
  const util::Status& init_status() const { return init_status_; }

  /// Watch `fd` for `interest` (EPOLLIN/EPOLLOUT/EPOLLRDHUP...).  EPOLLET
  /// is always added.  The fd is not owned; Deregister before closing it.
  util::Status Register(int fd, std::uint32_t interest, EventFn callback);
  util::Status Deregister(int fd);

  /// Arm a timer on the reactor's wheel (fires on the loop thread from
  /// inside PollOnce).  Loop-thread-only, like Register.
  TimerWheel::TimerId ScheduleTimer(std::uint64_t delay_nanos,
                                    std::function<void()> callback);
  bool CancelTimer(TimerWheel::TimerId id);

  /// One loop iteration: wait for readiness (bounded by `max_wait_ms` and
  /// the wheel's next deadline), dispatch event callbacks, advance the
  /// wheel, run posted tasks.  Returns the number of fd events
  /// dispatched (timers and posts excluded).
  std::size_t PollOnce(int max_wait_ms = -1);

  /// PollOnce until Stop().  Clears the stop flag on exit so the loop can
  /// be restarted.
  void Run();
  /// Thread-safe: ask a running Run() to return after its current
  /// iteration.
  void Stop();

  /// Thread-safe: run `fn` on the loop thread during its next iteration.
  void Post(std::function<void()> fn);

  std::size_t registered_count() const { return callbacks_.size(); }
  TimerWheel& wheel() { return wheel_; }

 private:
  void Kick();  // signal the eventfd

  util::Status init_status_;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  TimerWheel wheel_;
  std::uint64_t wheel_origin_nanos_ = 0;  // steady-clock epoch of wheel t=0

  // Each registration carries a generation tag, packed next to the fd in
  // epoll_data.  Within one epoll_wait batch an earlier callback can close
  // fd N and an accept can reuse it; the stale queued event then carries
  // the old generation and is dropped instead of hitting the new owner.
  struct Registration {
    std::uint32_t gen = 0;
    EventFn fn;
  };
  std::unordered_map<int, Registration> callbacks_;
  std::uint32_t next_gen_ = 1;

  std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;
  bool stop_requested_ = false;  // guarded by post_mutex_
};

}  // namespace sww::net
