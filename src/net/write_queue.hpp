// write_queue.hpp — readiness-driven scatter-gather writer.
//
// Bridges the sans-IO http2::Connection output arena to a non-blocking
// socket.  Each Flush gathers two segments into one writev: the staged
// remainder of earlier short writes first (ordering!), then the
// connection's fresh OutputView.  Whatever the kernel declines is staged
// — the arena is always Cleared after a flush, so the 0-allocation
// steady state of the PR 5 output path survives: the staging buffer
// grows to its high-water mark once and is reused forever (allocations()
// counts every growth, and the bench gates it at 0 in steady state).
//
// Backpressure: backlog_bytes() is the staged residue a stalled peer has
// refused.  Past Options::max_backlog_bytes the owner should stop
// reading from this connection (stop producing responses) until the
// backlog drains below the low watermark — the reactor server wires
// exactly that, bounding per-connection memory under any peer behavior.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "http2/connection.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

struct iovec;

namespace sww::net {

class WriteQueue {
 public:
  /// Injectable syscall for tests: same contract as ::writev (returns
  /// bytes written, or -1 with errno EAGAIN/EPIPE/...).
  using WritevFn = std::function<long(int fd, const struct iovec* iov, int n)>;

  struct Options {
    /// Stop-reading threshold for the staged backlog.
    std::size_t max_backlog_bytes = 1 << 20;
    /// Resume-reading threshold (must be < max); defaults to half.
    std::size_t low_watermark_bytes = 1 << 19;
    /// Test seam; nullptr uses ::writev.
    WritevFn writev_fn;
  };

  WriteQueue();  // default Options
  explicit WriteQueue(Options options);

  WriteQueue(const WriteQueue&) = delete;
  WriteQueue& operator=(const WriteQueue&) = delete;
  ~WriteQueue();

  /// Write staged residue + connection output to `fd`.  Always leaves the
  /// connection's arena cleared (unsent bytes move to the stage).  On
  /// EAGAIN sets blocked() and returns OK — the owner waits for EPOLLOUT.
  /// EPIPE/ECONNRESET surface as kClosed, other failures as kIo.
  util::Status Flush(int fd, http2::Connection& connection);

  /// True after an EAGAIN: the socket buffer is full, wait for the next
  /// EPOLLOUT edge before flushing again (Flush clears it on progress).
  bool blocked() const { return blocked_; }

  /// Unsent bytes held in the stage (excludes anything still in the
  /// connection arena).
  std::size_t backlog_bytes() const { return staged_.size() - staged_head_; }
  bool over_limit() const { return backlog_bytes() >= options_.max_backlog_bytes; }
  bool below_low_watermark() const {
    return backlog_bytes() <= options_.low_watermark_bytes;
  }
  bool empty() const { return backlog_bytes() == 0; }

  /// Times the staging buffer had to grow.  Steady state: 0.
  std::uint64_t allocations() const { return allocations_; }

 private:
  void StageBytes(const std::uint8_t* data, std::size_t size);
  void SetBacklogGauge();

  Options options_;
  util::Bytes staged_;
  std::size_t staged_head_ = 0;  // consumed prefix; reset when drained
  bool blocked_ = false;
  std::uint64_t allocations_ = 0;
  double gauge_contribution_ = 0.0;  // what we last added to the global gauge
};

}  // namespace sww::net
