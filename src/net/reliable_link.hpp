// reliable_link.hpp — a reliable byte stream over a lossy datagram link.
//
// §3.1 of the paper: "as HTTP/3 adoption is increasing, future SWW will
// require HTTP/3 support.  We believe that similar use of SETTINGS under
// HTTP/3 can allow to advertise client-server GenAI capabilities."
// HTTP/3 runs over QUIC, i.e. over an unreliable datagram substrate.  This
// module builds that substrate's essential half: a QUIC-style reliable,
// ordered byte stream over a datagram channel with loss, reordering and
// duplication — enough to demonstrate that the SETTINGS_GEN_ABILITY
// negotiation (and full SWW page delivery) survives a lossy network.
//
// Design (deliberately QUIC-shaped, deliberately not QUIC):
//   * data is carried in numbered segments (packet number, offset, bytes),
//   * the receiver reassembles by offset and returns cumulative ACKs,
//   * the sender retransmits unacknowledged segments after a tick-based
//     timeout (time is virtual: callers pump Tick(), keeping tests
//     deterministic),
//   * flow is bounded by a fixed in-flight window.
//
// The result implements net::Transport, so the whole HTTP/2-based SWW
// stack runs over it unchanged.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "net/transport.hpp"
#include "util/rng.hpp"

namespace sww::net {

/// One direction of the datagram substrate: applies loss, duplication and
/// reordering to queued datagrams, deterministically from a seed.
class LossyChannel {
 public:
  struct Profile {
    double loss_rate = 0.0;        ///< probability a datagram vanishes
    double duplicate_rate = 0.0;   ///< probability it is delivered twice
    double reorder_rate = 0.0;     ///< probability it is delayed one slot
    std::uint64_t seed = 1;
  };

  explicit LossyChannel(Profile profile)
      : profile_(profile), rng_(profile.seed) {}

  void Send(util::Bytes datagram);
  /// Datagrams currently deliverable (drains the queue).
  std::vector<util::Bytes> Deliver();

  std::uint64_t sent() const { return sent_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t duplicated() const { return duplicated_; }

 private:
  Profile profile_;
  util::Rng rng_;
  std::deque<util::Bytes> queue_;
  std::deque<util::Bytes> delayed_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
};

/// A reliable, ordered transport endpoint over two LossyChannels.
class ReliableLink final : public Transport {
 public:
  struct Options {
    std::size_t segment_bytes = 1200;   ///< datagram payload size (MTU-ish)
    int retransmit_after_ticks = 5;
    std::size_t window_segments = 64;   ///< unacked segments in flight
  };

  ReliableLink(std::shared_ptr<LossyChannel> outgoing,
               std::shared_ptr<LossyChannel> incoming, Options options);
  /// Default options overload (defined out of line: a nested class with
  /// default member initializers cannot appear as `= {}` inside its own
  /// enclosing class definition).
  ReliableLink(std::shared_ptr<LossyChannel> outgoing,
               std::shared_ptr<LossyChannel> incoming);

  // Transport:
  util::Status Write(util::BytesView bytes) override;
  util::Result<util::Bytes> Read() override;
  void Close() override;
  bool closed() const override { return closed_; }

  /// Advance virtual time: flush sendable segments, process incoming
  /// datagrams, emit ACKs, retransmit timed-out segments.  Tests and pumps
  /// call this; it is what stands in for the event loop.
  void Tick();

  struct Stats {
    std::uint64_t segments_sent = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t out_of_order = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void FlushSendWindow();
  void ProcessIncoming();
  void SendAck();

  struct InFlight {
    std::uint64_t offset;
    util::Bytes data;
    int ticks_since_sent = 0;
  };

  Options options_;
  std::shared_ptr<LossyChannel> outgoing_;
  std::shared_ptr<LossyChannel> incoming_;

  // Send side.
  util::Bytes send_buffer_;            // not yet segmented
  std::uint64_t next_send_offset_ = 0; // stream offset of send_buffer_[0]
  std::map<std::uint64_t, InFlight> in_flight_;
  std::uint64_t acked_until_ = 0;

  // Receive side.
  std::map<std::uint64_t, util::Bytes> reorder_buffer_;
  std::uint64_t delivered_until_ = 0;
  util::Bytes deliverable_;
  bool ack_pending_ = false;

  bool closed_ = false;
  Stats stats_;
};

/// A connected pair of ReliableLinks over symmetric lossy channels.
struct ReliablePair {
  std::shared_ptr<LossyChannel> a_to_b;
  std::shared_ptr<LossyChannel> b_to_a;
  std::unique_ptr<ReliableLink> first;
  std::unique_ptr<ReliableLink> second;
};

ReliablePair MakeReliablePair(LossyChannel::Profile profile,
                              ReliableLink::Options options = {});

}  // namespace sww::net
