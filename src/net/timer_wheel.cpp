#include "net/timer_wheel.hpp"

#include <algorithm>

namespace sww::net {

namespace {
constexpr std::size_t kWheelSlots =
    static_cast<std::size_t>(TimerWheel::kLevels) * TimerWheel::kSlotsPerLevel;
constexpr std::uint64_t kBitsPerLevel = 8;  // log2(kSlotsPerLevel)
constexpr std::uint64_t kLevelMask = TimerWheel::kSlotsPerLevel - 1;

// Highest deadline (in ticks-from-now) each level can hold.
constexpr std::uint64_t LevelSpanTicks(int level) {
  return 1ULL << (kBitsPerLevel * static_cast<std::uint64_t>(level + 1));
}

// Sentinel slot for entries in Advance()'s detached due-chain: still
// reachable through the chain's next pointers, so Cancel() must disarm
// them in place instead of releasing (double-free otherwise).
constexpr std::int32_t kFiringSlot = -2;
}  // namespace

TimerWheel::TimerWheel(std::uint64_t tick_nanos)
    : tick_nanos_(tick_nanos == 0 ? 1 : tick_nanos),
      slots_(kWheelSlots, -1) {}

std::int32_t TimerWheel::AllocateEntry() {
  if (!free_list_.empty()) {
    std::int32_t index = free_list_.back();
    free_list_.pop_back();
    return index;
  }
  pool_.emplace_back();
  return static_cast<std::int32_t>(pool_.size() - 1);
}

void TimerWheel::LinkIntoWheel(std::int32_t index) {
  Timer& timer = pool_[static_cast<std::size_t>(index)];
  const std::uint64_t delta =
      timer.deadline_ticks > current_tick_ ? timer.deadline_ticks - current_tick_
                                           : 1;
  int level = 0;
  while (level < kLevels - 1 && delta >= LevelSpanTicks(level)) ++level;
  // Slot index within the level comes from that level's digit of the
  // absolute deadline, so cascades land timers in the right lower slot.
  const std::uint64_t digit =
      (timer.deadline_ticks >> (kBitsPerLevel * static_cast<std::uint64_t>(level))) &
      kLevelMask;
  const std::size_t slot =
      static_cast<std::size_t>(level) * kSlotsPerLevel + static_cast<std::size_t>(digit);
  timer.slot = static_cast<std::int32_t>(slot);
  timer.prev = -1;
  timer.next = slots_[slot];
  if (timer.next >= 0) pool_[static_cast<std::size_t>(timer.next)].prev = index;
  slots_[slot] = index;
}

void TimerWheel::Unlink(std::int32_t index) {
  Timer& timer = pool_[static_cast<std::size_t>(index)];
  if (timer.slot < 0) return;
  if (timer.prev >= 0) {
    pool_[static_cast<std::size_t>(timer.prev)].next = timer.next;
  } else {
    slots_[static_cast<std::size_t>(timer.slot)] = timer.next;
  }
  if (timer.next >= 0) pool_[static_cast<std::size_t>(timer.next)].prev = timer.prev;
  timer.prev = timer.next = -1;
  timer.slot = -1;
}

void TimerWheel::Release(std::int32_t index) {
  Timer& timer = pool_[static_cast<std::size_t>(index)];
  timer.callback = nullptr;
  timer.id = kInvalidTimer;
  timer.slot = -1;
  free_list_.push_back(index);
}

std::int32_t TimerWheel::DetachSlot(std::size_t slot, std::int32_t mark) {
  std::int32_t head = slots_[slot];
  slots_[slot] = -1;
  for (std::int32_t it = head; it >= 0;
       it = pool_[static_cast<std::size_t>(it)].next) {
    pool_[static_cast<std::size_t>(it)].slot = mark;
  }
  return head;
}

TimerWheel::TimerId TimerWheel::Schedule(std::uint64_t delay_nanos,
                                         std::function<void()> callback) {
  const std::int32_t index = AllocateEntry();
  Timer& timer = pool_[static_cast<std::size_t>(index)];
  // Round the deadline up so a timer never fires early, and push zero
  // delays one tick out: "due now" still waits for the next Advance.
  std::uint64_t delay_ticks = (delay_nanos + tick_nanos_ - 1) / tick_nanos_;
  if (delay_ticks == 0) delay_ticks = 1;
  timer.deadline_ticks = current_tick_ + delay_ticks;
  timer.id = next_id_++;
  timer.callback = std::move(callback);
  LinkIntoWheel(index);
  live_.emplace_back(timer.id, index);
  ++armed_;
  return timer.id;
}

bool TimerWheel::Cancel(TimerId id) {
  if (id == kInvalidTimer) return false;
  auto it = std::find_if(live_.begin(), live_.end(),
                         [id](const auto& entry) { return entry.first == id; });
  if (it == live_.end()) return false;
  const std::int32_t index = it->second;
  live_.erase(it);
  Timer& timer = pool_[static_cast<std::size_t>(index)];
  if (timer.slot == kFiringSlot) {
    // Cancelled by a sibling's callback while sitting in the due-chain of
    // a running Advance(): the chain still reaches this entry via its
    // next pointer, so only disarm here — Advance returns it to the pool.
    timer.callback = nullptr;
    timer.id = kInvalidTimer;
    --armed_;
    return true;
  }
  Unlink(index);
  Release(index);
  --armed_;
  return true;
}

std::size_t TimerWheel::Advance(std::uint64_t now_nanos) {
  const std::uint64_t target_tick = now_nanos / tick_nanos_;
  if (target_tick <= current_tick_) return 0;
  std::size_t fired = 0;
  while (current_tick_ < target_tick) {
    // With nothing armed there is no slot work — jump straight to now.
    if (armed_ == 0) {
      current_tick_ = target_tick;
      break;
    }
    ++current_tick_;
    const std::size_t level0_slot =
        static_cast<std::size_t>(current_tick_ & kLevelMask);
    // On wrap of a level's digit, cascade the next level's current slot
    // down: its timers re-link one level lower (or fire next loop).
    for (int level = 1; level < kLevels; ++level) {
      const std::uint64_t digit_below =
          (current_tick_ >> (kBitsPerLevel * static_cast<std::uint64_t>(level - 1))) &
          kLevelMask;
      if (digit_below != 0) break;
      const std::uint64_t digit =
          (current_tick_ >> (kBitsPerLevel * static_cast<std::uint64_t>(level))) &
          kLevelMask;
      const std::size_t slot =
          static_cast<std::size_t>(level) * kSlotsPerLevel +
          static_cast<std::size_t>(digit);
      std::int32_t chain = DetachSlot(slot);
      while (chain >= 0) {
        const std::int32_t next = pool_[static_cast<std::size_t>(chain)].next;
        pool_[static_cast<std::size_t>(chain)].prev = -1;
        pool_[static_cast<std::size_t>(chain)].next = -1;
        LinkIntoWheel(chain);
        chain = next;
      }
    }
    std::int32_t due = DetachSlot(level0_slot, kFiringSlot);
    while (due >= 0) {
      const std::int32_t next = pool_[static_cast<std::size_t>(due)].next;
      Timer& timer = pool_[static_cast<std::size_t>(due)];
      timer.prev = timer.next = -1;
      if (timer.id == kInvalidTimer) {
        // Disarmed by Cancel() while in this firing chain (armed_ already
        // dropped there): just return the entry to the pool.
        timer.slot = -1;
        free_list_.push_back(due);
        due = next;
        continue;
      }
      const TimerId id = timer.id;
      std::function<void()> callback = std::move(timer.callback);
      auto it = std::find_if(
          live_.begin(), live_.end(),
          [id](const auto& entry) { return entry.first == id; });
      if (it != live_.end()) live_.erase(it);
      Release(due);
      --armed_;
      ++fired;
      if (callback) callback();  // may Schedule/Cancel; pool indices stay valid
      due = next;
    }
  }
  return fired;
}

std::optional<std::uint64_t> TimerWheel::NextDeadlineDelayNanos() const {
  if (armed_ == 0) return std::nullopt;
  // Level 0 holds exact deadlines: scan forward from the current digit.
  const std::uint64_t level0_digit = current_tick_ & kLevelMask;
  for (std::uint64_t step = 1; step <= kSlotsPerLevel; ++step) {
    const std::size_t slot =
        static_cast<std::size_t>((level0_digit + step) & kLevelMask);
    if (slots_[slot] >= 0) return step * tick_nanos_;
    // Past the wrap point, level-1 cascades could land earlier timers
    // into level 0; the wrap boundary is the conservative bound.
    if (((level0_digit + step) & kLevelMask) == 0 && armed_ > 0) {
      return step * tick_nanos_;
    }
  }
  // Level 0 empty: the next cascade boundary is a safe lower bound.
  const std::uint64_t to_boundary = kSlotsPerLevel - level0_digit;
  return to_boundary * tick_nanos_;
}

}  // namespace sww::net
