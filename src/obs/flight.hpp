// flight.hpp — the protocol flight recorder: frame-level wire taps.
//
// The paper's whole argument lives on the wire — one SETTINGS parameter
// deciding whether bytes or prompts flow — so the observability substrate
// must be able to show the frames themselves, not just per-component
// counters.  A ConnectionTap is a bounded ring buffer of FrameRecords that
// an http2::Connection fills when (and only when) a tap is installed: with
// no observer the connection hot paths pay a single null-check.  The
// FlightRecorder owns the taps for a run so exporters and the run analyzer
// (report.hpp) can see every connection's frame log in one place.
//
// Records are generic on purpose (raw type byte + printable name + string
// detail pairs): obs:: stays below http2:: in the dependency order, and
// the same tap shape can record any framed protocol.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace sww::obs {

enum class TapDirection : std::uint8_t { kSent, kReceived };

const char* TapDirectionName(TapDirection direction);

/// One frame crossing one connection, as seen by the wire tap.
struct FrameRecord {
  TapDirection direction = TapDirection::kSent;
  std::uint8_t type = 0;        ///< raw wire frame type byte
  std::string type_name;        ///< printable ("SETTINGS", "DATA", ...)
  std::uint32_t stream_id = 0;
  std::uint8_t flags = 0;
  std::uint32_t length = 0;     ///< payload length, excluding the 9-byte header
  std::uint64_t timestamp_nanos = 0;  ///< from the tracer's injectable clock
  /// Decoded key/value details: the HPACK-decoded header list for HEADERS
  /// frames, the parsed (name, value) entries for SETTINGS frames.
  std::vector<std::pair<std::string, std::string>> details;
  /// Monotone per-tap sequence number (stable merge order across taps).
  std::uint64_t sequence = 0;
};

/// Bounded per-connection frame log: overwrite-oldest ring buffer with a
/// dropped-record count.  Thread-safe (connections are single-threaded,
/// but taps outlive them and are read by exporters).
class ConnectionTap {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit ConnectionTap(std::string label,
                         std::size_t capacity = kDefaultCapacity);

  void Record(FrameRecord record);

  /// Attach decoded details (e.g. the HPACK-decoded header list) to the
  /// most recent record matching (direction, type, stream_id) that is
  /// still in the ring.  No-op when the record was already overwritten.
  void Annotate(TapDirection direction, std::uint8_t type,
                std::uint32_t stream_id,
                std::vector<std::pair<std::string, std::string>> details);

  /// Buffered records, oldest first.
  std::vector<FrameRecord> Records() const;

  const std::string& label() const { return label_; }
  std::size_t capacity() const { return capacity_; }
  /// Every frame ever offered to Record (buffered + overwritten).
  std::uint64_t total_recorded() const;
  std::uint64_t total_sent() const;
  std::uint64_t total_received() const;
  /// Records lost to ring overwrite.
  std::uint64_t dropped() const;

  void Clear();

 private:
  mutable std::mutex mutex_;
  std::string label_;
  std::size_t capacity_;
  std::vector<FrameRecord> ring_;  // grows to capacity_, then wraps
  std::size_t next_ = 0;           // ring write cursor once full
  std::uint64_t total_ = 0;
  std::uint64_t total_sent_ = 0;
  std::uint64_t total_received_ = 0;
};

/// Owns the ConnectionTaps of a run.  Components hold raw tap pointers
/// (taps live for the recorder's lifetime; Clear() empties the taps'
/// buffers but never destroys them, mirroring Registry::Reset semantics).
class FlightRecorder {
 public:
  static FlightRecorder& Default();

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Find-or-create a tap by label.  `capacity` is honored only on first
  /// creation.
  ConnectionTap& GetTap(std::string_view label,
                        std::size_t capacity = ConnectionTap::kDefaultCapacity);

  /// All taps, in creation order.
  std::vector<const ConnectionTap*> taps() const;

  /// Empty every tap's ring and counts; tap handles stay valid.
  void Clear();

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ConnectionTap>> taps_;
};

/// tcpdump-style rendering: one line per frame, taps merged in timestamp
/// (then tap, then sequence) order.
///   [12.000340] client > SETTINGS len=18 stream=0 flags=0x0 {INITIAL_WINDOW_SIZE: 1048576, GEN_ABILITY: 1}
std::string RenderFramesText(const std::vector<const ConnectionTap*>& taps);

/// JSONL rendering: one JSON object per frame in the same merged order,
/// followed by one {"kind":"tap_summary",...} line per tap (totals and
/// the dropped count survive even when the ring overwrote records).
std::string RenderFramesJsonLines(const std::vector<const ConnectionTap*>& taps);

}  // namespace sww::obs
