// journal.hpp — the wide-event request journal.
//
// Aggregates (registry.hpp) answer "what is p99?"; the flight recorder
// (flight.hpp) answers "which frames crossed the wire?".  Neither answers
// the tail-attribution question: *which fetch* pushed p99 where it is.
// The journal does: every completed fetch emits exactly one wide event —
// one record carrying the whole per-fetch trade-off surface the paper
// argues about (latency phases, bytes on the wire, modeled energy, cache
// state, device profile) keyed by the same `sww-trace` trace id that
// names the distributed trace and the histogram exemplars.  Bad
// percentile → exemplar trace id → journal record → flight-recorder
// frames, with no joins across log formats.
//
// Storage follows the ConnectionTap discipline: a bounded
// overwrite-oldest ring behind a mutex, with total/dropped counters that
// survive overwrite, and a Clear() that empties but never invalidates
// the handle.  Emitters (the generative client, the CDN edge) record
// one event per fetch — a few hundred bytes at fetch rate, not frame
// rate — so the mutex is nowhere near any hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sww::obs {

/// One completed fetch as a single structured record.  Fields that do
/// not apply to a role stay at their zero values (an edge serve has no
/// asset bytes; a prompt-cache hit has no wire frames).
struct JournalRecord {
  /// Role that completed the fetch: "page_fetch" (client) or "edge".
  std::string kind;
  /// Trace id from the sww-trace header; 0 when the fetch was untraced.
  std::uint64_t trace_id = 0;
  /// Page path or content-item id.
  std::string path;
  /// Completion time on the modeled clock.
  std::uint64_t timestamp_nanos = 0;
  /// Serve/generation mode in effect ("generative", "prompt", ...).
  std::string mode;
  /// Energy device profile the cost was modeled on ("" when n/a).
  std::string device;
  /// "ok" or the error code string of the failure.
  std::string outcome;
  /// Cache state: "hit", "miss", or "none" (no cache consulted).
  std::string cache;
  /// Single-flight request coalescing state.  The sharded-edge
  /// coalescing tier is still a ROADMAP item; the field is part of the
  /// schema now so records stay comparable once it lands.
  bool coalesced = false;

  // Phase latencies, in modeled seconds.
  double total_seconds = 0.0;
  double wire_seconds = 0.0;        ///< total minus local generation work
  double generation_seconds = 0.0;  ///< parallel makespan of generation
  double upscale_seconds = 0.0;

  // Payload and wire volume.
  std::uint64_t page_bytes = 0;
  std::uint64_t asset_bytes = 0;
  std::uint64_t wire_bytes_sent = 0;      ///< connection delta over the fetch
  std::uint64_t wire_bytes_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;

  /// Modeled energy for the fetch, in joules.
  double energy_joules = 0.0;
};

/// Bounded wide-event ring: overwrite-oldest with drop accounting,
/// mirroring ConnectionTap.  Thread-safe.
///
/// Offered and dropped records also mirror into Registry::Default() as
/// the `journal.recorded_total` / `journal.dropped_total` counters, so
/// ring overflow is visible in /metrics and sww_top — not just in the
/// JSONL trailer of a journal export.
class Journal {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  /// The process-wide journal every emitter records into by default.
  /// Never destroyed; handles stay valid across Clear().  The initial
  /// capacity honors the SWW_JOURNAL_CAPACITY environment variable
  /// (fleet-scale load runs overflow the 8192 default instantly); unset
  /// or unparsable values fall back to kDefaultCapacity.
  static Journal& Default();

  explicit Journal(std::size_t capacity = kDefaultCapacity);
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  void Record(JournalRecord record);

  /// Buffered records, oldest first.
  std::vector<JournalRecord> Records() const;

  /// Resize the ring in place.  Shrinking keeps the newest `capacity`
  /// records; the evicted oldest ones count as dropped.
  void SetCapacity(std::size_t capacity);

  std::size_t capacity() const;
  /// Every record ever offered (buffered + overwritten).
  std::uint64_t total_recorded() const;
  /// Records lost to ring overwrite.
  std::uint64_t dropped() const;

  void Clear();

 private:
  /// Collapse the wrapped ring into oldest-first order.  Caller holds
  /// mutex_.
  std::vector<JournalRecord> OrderedLocked() const;

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<JournalRecord> ring_;  // grows to capacity_, then wraps
  std::size_t next_ = 0;             // ring write cursor once full
  std::uint64_t total_ = 0;
};

/// JSONL rendering: one compact JSON object per record, oldest first,
/// then one {"kind":"journal_summary",...} trailer (total/dropped/
/// capacity — drop accounting survives even when records were
/// overwritten, and an empty journal still renders a valid document).
/// Serialized through json::Value, so non-finite phase latencies render
/// as null, never as bare NaN/Inf tokens.
std::string RenderJournalJsonLines(const std::vector<JournalRecord>& records,
                                   std::uint64_t total_recorded,
                                   std::uint64_t dropped,
                                   std::size_t capacity);

/// Convenience overload over a live journal.
std::string RenderJournalJsonLines(const Journal& journal);

}  // namespace sww::obs
