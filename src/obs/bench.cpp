#include "obs/bench.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "metrics/stats.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace sww::obs::bench {

WallStats SummarizeWall(const std::vector<double>& sample_ns) {
  WallStats stats;
  if (sample_ns.empty()) return stats;
  stats.iterations = sample_ns.size();
  double total = 0.0;
  double min = sample_ns.front();
  for (double v : sample_ns) {
    total += v;
    min = std::min(min, v);
  }
  stats.total_ns = total;
  stats.min_ns = min;
  stats.mean_ns = total / static_cast<double>(sample_ns.size());
  stats.median_ns = metrics::Percentile(sample_ns, 50.0);
  stats.p95_ns = metrics::Percentile(sample_ns, 95.0);
  stats.mad_ns = metrics::MedianAbsoluteDeviation(sample_ns);
  return stats;
}

WallStats TimeKernel(const std::function<void()>& kernel,
                     const TimingOptions& options, Clock* clock) {
  SystemClock system_clock;
  Clock* source = clock != nullptr ? clock : &system_clock;
  const int warmup = std::max(0, options.warmup_iterations);
  const int min_iterations = std::max(1, options.min_iterations);
  const int max_iterations = std::max(min_iterations, options.max_iterations);
  const double min_total_ns = std::max(0.0, options.min_total_seconds) * 1e9;

  for (int i = 0; i < warmup; ++i) kernel();

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(min_iterations));
  double total_ns = 0.0;
  while (static_cast<int>(samples.size()) < max_iterations) {
    const std::uint64_t start = source->NowNanos();
    kernel();
    const std::uint64_t stop = source->NowNanos();
    const double elapsed =
        stop > start ? static_cast<double>(stop - start) : 0.0;
    samples.push_back(elapsed);
    total_ns += elapsed;
    if (static_cast<int>(samples.size()) >= min_iterations &&
        total_ns >= min_total_ns) {
      break;
    }
  }
  return SummarizeWall(samples);
}

double CanonicalizeModeled(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return std::strtod(buf, nullptr);
}

void State::Modeled(std::string_view key, double value) {
  result_.modeled[std::string(key)] = CanonicalizeModeled(value);
}

void State::ModeledText(std::string_view key, std::string_view value) {
  result_.modeled_text[std::string(key)] = std::string(value);
}

void State::Info(std::string_view key, double value) {
  result_.info[std::string(key)] = value;
}

void State::Time(std::string_view label, const std::function<void()>& kernel) {
  result_.wall[std::string(label)] = TimeKernel(kernel, timing_);
}

void State::Check(bool ok, std::string_view what) {
  if (!ok) result_.failures.emplace_back(what);
}

Suite& Suite::Default() {
  static Suite* suite = new Suite();
  return *suite;
}

void Suite::Register(std::string name, BenchFn fn) {
  benchmarks_.emplace_back(std::move(name), fn);
}

std::vector<std::pair<std::string, BenchFn>> Suite::Sorted() const {
  auto sorted = benchmarks_;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return sorted;
}

namespace {

json::Value WallToJson(const WallStats& stats) {
  json::Value out{json::Object{}};
  out.Set("iterations", stats.iterations);
  out.Set("total_ns", stats.total_ns);
  out.Set("min_ns", stats.min_ns);
  out.Set("mean_ns", stats.mean_ns);
  out.Set("median_ns", stats.median_ns);
  out.Set("p95_ns", stats.p95_ns);
  out.Set("mad_ns", stats.mad_ns);
  return out;
}

}  // namespace

json::Value ResultsToJson(const std::vector<BenchResult>& results,
                          bool modeled_only) {
  json::Array benchmarks;
  for (const BenchResult& result : results) {
    json::Value entry{json::Object{}};
    entry.Set("name", result.name);
    json::Value modeled{json::Object{}};
    for (const auto& [key, value] : result.modeled) modeled.Set(key, value);
    entry.Set("modeled", std::move(modeled));
    json::Value modeled_text{json::Object{}};
    for (const auto& [key, value] : result.modeled_text) {
      modeled_text.Set(key, value);
    }
    entry.Set("modeled_text", std::move(modeled_text));
    if (!modeled_only) {
      json::Value info{json::Object{}};
      for (const auto& [key, value] : result.info) info.Set(key, value);
      entry.Set("info", std::move(info));
      json::Value wall{json::Object{}};
      for (const auto& [label, stats] : result.wall) {
        wall.Set(label, WallToJson(stats));
      }
      entry.Set("wall", std::move(wall));
    }
    if (!result.failures.empty()) {
      json::Array failures;
      for (const std::string& failure : result.failures) {
        failures.emplace_back(failure);
      }
      entry.Set("failures", json::Value(std::move(failures)));
    }
    benchmarks.push_back(std::move(entry));
  }
  json::Value root{json::Object{}};
  root.Set("schema", std::string(kSchemaVersion));
  root.Set("generator", "sww_bench");
  root.Set("benchmarks", json::Value(std::move(benchmarks)));
  return root;
}

util::Result<json::Value> AppendTrajectoryRun(const json::Value* existing,
                                              json::Value flat_report) {
  json::Array runs;
  std::int64_t last_run_id = 0;
  if (existing != nullptr && existing->is_object()) {
    const std::string schema = existing->GetString("schema");
    if (schema == kSchemaVersion) {
      // Flat pre-trajectory baseline: keep it as run 1.
      json::Value run{json::Object{}};
      run.Set("run_id", std::int64_t{1});
      const json::Value* benchmarks = existing->Get("benchmarks");
      run.Set("benchmarks", benchmarks != nullptr ? *benchmarks
                                                  : json::Value(json::Array{}));
      runs.push_back(std::move(run));
      last_run_id = 1;
    } else if (schema == kTrajectorySchemaVersion) {
      const json::Value* existing_runs = existing->Get("runs");
      if (existing_runs == nullptr || !existing_runs->is_array()) {
        return util::Error(util::ErrorCode::kInvalidArgument,
                           "trajectory file has no runs array");
      }
      for (const json::Value& run : existing_runs->AsArray()) {
        const std::int64_t run_id = run.GetInt("run_id");
        if (run_id <= last_run_id) {
          return util::Error(
              util::ErrorCode::kInvalidArgument,
              "trajectory run_ids not strictly increasing at run " +
                  std::to_string(run_id));
        }
        last_run_id = run_id;
        runs.push_back(run);
      }
    } else {
      return util::Error(util::ErrorCode::kInvalidArgument,
                         "unknown bench schema \"" + schema + "\"");
    }
  }
  json::Value run{json::Object{}};
  run.Set("run_id", last_run_id + 1);
  json::Value benchmarks{json::Array{}};
  if (flat_report.is_object()) {
    json::Object& report = flat_report.AsObject();
    if (auto it = report.find("benchmarks"); it != report.end()) {
      benchmarks = std::move(it->second);
    }
  }
  run.Set("benchmarks", std::move(benchmarks));
  runs.push_back(std::move(run));

  json::Value root{json::Object{}};
  root.Set("schema", std::string(kTrajectorySchemaVersion));
  root.Set("generator", "sww_bench");
  root.Set("runs", json::Value(std::move(runs)));
  return root;
}

namespace {

void PrintUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list] [--filter SUBSTR] [--json PATH]\n"
               "          [--modeled-only] [--min-time SECONDS]\n",
               argv0);
}

}  // namespace

int RunBenchMain(int argc, char** argv) {
  bool list_only = false;
  bool modeled_only = false;
  std::string filter;
  std::string json_path;
  TimingOptions timing;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list") {
      list_only = true;
    } else if (arg == "--modeled-only") {
      modeled_only = true;
    } else if (arg == "--filter") {
      const char* value = next("--filter");
      if (value == nullptr) return 2;
      filter = value;
    } else if (arg == "--json") {
      const char* value = next("--json");
      if (value == nullptr) return 2;
      json_path = value;
    } else if (arg == "--min-time") {
      const char* value = next("--min-time");
      if (value == nullptr) return 2;
      timing.min_total_seconds = std::strtod(value, nullptr);
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      PrintUsage(argv[0]);
      return 2;
    }
  }

  const auto benchmarks = Suite::Default().Sorted();
  std::vector<std::pair<std::string, BenchFn>> selected;
  for (const auto& entry : benchmarks) {
    if (filter.empty() || entry.first.find(filter) != std::string::npos) {
      selected.push_back(entry);
    }
  }

  if (list_only) {
    for (const auto& [name, fn] : selected) std::printf("%s\n", name.c_str());
    return 0;
  }
  if (selected.empty()) {
    std::fprintf(stderr, "no benchmarks match filter \"%s\"\n", filter.c_str());
    return 2;
  }

  std::vector<BenchResult> results;
  bool all_ok = true;
  for (const auto& [name, fn] : selected) {
    std::printf("=== [%zu/%zu] %s ===\n", results.size() + 1, selected.size(),
                name.c_str());
    // Each benchmark starts from clean process-wide telemetry: no bench
    // sees another's counters, spans, or taps.
    Registry::Default().Reset();
    Tracer::Default().Clear();
    Tracer::Default().SetClock(nullptr);
    FlightRecorder::Default().Clear();
    State state(name, timing);
    fn(state);
    Tracer::Default().SetClock(nullptr);
    BenchResult result = state.TakeResult();
    for (const std::string& failure : result.failures) {
      std::fprintf(stderr, "FAIL %s: %s\n", name.c_str(), failure.c_str());
      all_ok = false;
    }
    results.push_back(std::move(result));
    std::printf("\n");
  }

  if (!json_path.empty()) {
    // --json appends: the file is a trajectory (kTrajectorySchemaVersion)
    // that grows by one run per invocation.  A missing or empty file
    // starts the trajectory; a flat sww-bench/1 file becomes run 1.
    json::Value existing;
    bool have_existing = false;
    if (auto contents = ReadTextFile(json_path); contents.ok()) {
      auto parsed = json::Parse(contents.value());
      if (!parsed.ok()) {
        std::fprintf(stderr, "cannot parse existing %s: %s\n",
                     json_path.c_str(), parsed.error().ToString().c_str());
        return 1;
      }
      existing = std::move(parsed.value());
      have_existing = true;
    }
    auto trajectory = AppendTrajectoryRun(
        have_existing ? &existing : nullptr,
        ResultsToJson(results, modeled_only));
    if (!trajectory.ok()) {
      std::fprintf(stderr, "cannot append run to %s: %s\n", json_path.c_str(),
                   trajectory.error().ToString().c_str());
      return 1;
    }
    const json::Value& report = trajectory.value();
    const std::size_t runs = report.Get("runs")->AsArray().size();
    if (auto status = WriteTextFile(json_path, report.DumpPretty() + "\n");
        !status.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", json_path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu benchmarks, run %zu, schema %s)\n",
                json_path.c_str(), results.size(), runs,
                std::string(kTrajectorySchemaVersion).c_str());
  }
  return all_ok ? 0 : 1;
}

}  // namespace sww::obs::bench
