#include "obs/bench_diff.hpp"

#include <cstdio>
#include <map>
#include <set>

#include "obs/bench.hpp"

namespace sww::obs::bench {

namespace {

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::string FormatPercent(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", 100.0 * fraction);
  return buf;
}

/// name → benchmark entry, validating the document shape.  Accepts a flat
/// sww-bench/1 report or a sww-bench/2 trajectory; for a trajectory the
/// LAST run is indexed (the gate compares the newest measurements) after
/// validating that run_ids are strictly increasing — a spliced or
/// hand-edited history fails loudly instead of gating against the wrong
/// run.
util::Result<std::map<std::string, const json::Value*>> IndexBenchmarks(
    const json::Value& doc, const char* which) {
  if (!doc.is_object()) {
    return util::Error(util::ErrorCode::kInvalidArgument,
                       std::string(which) + ": not a JSON object");
  }
  const std::string schema = doc.GetString("schema");
  const json::Value* benchmarks = nullptr;
  if (schema == kSchemaVersion) {
    benchmarks = doc.Get("benchmarks");
  } else if (schema == kTrajectorySchemaVersion) {
    const json::Value* runs = doc.Get("runs");
    if (runs == nullptr || !runs->is_array() || runs->AsArray().empty()) {
      return util::Error(util::ErrorCode::kInvalidArgument,
                         std::string(which) + ": missing or empty runs array");
    }
    std::int64_t last_run_id = 0;
    for (const json::Value& run : runs->AsArray()) {
      const std::int64_t run_id = run.GetInt("run_id");
      if (run_id <= last_run_id) {
        return util::Error(util::ErrorCode::kInvalidArgument,
                           std::string(which) +
                               ": run_ids not strictly increasing at run " +
                               std::to_string(run_id));
      }
      last_run_id = run_id;
    }
    benchmarks = runs->AsArray().back().Get("benchmarks");
  } else {
    return util::Error(util::ErrorCode::kInvalidArgument,
                       std::string(which) + ": schema \"" + schema +
                           "\" is neither \"" + std::string(kSchemaVersion) +
                           "\" nor \"" +
                           std::string(kTrajectorySchemaVersion) + "\"");
  }
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    return util::Error(util::ErrorCode::kInvalidArgument,
                       std::string(which) + ": missing benchmarks array");
  }
  std::map<std::string, const json::Value*> index;
  for (const json::Value& entry : benchmarks->AsArray()) {
    if (!entry.is_object()) continue;
    index[entry.GetString("name")] = &entry;
  }
  return index;
}

/// The sub-object `key` of `entry` as a map view; empty when absent.
std::map<std::string, const json::Value*> SectionOf(const json::Value* entry,
                                                    const char* key) {
  std::map<std::string, const json::Value*> section;
  if (entry == nullptr) return section;
  const json::Value* object = entry->Get(key);
  if (object == nullptr || !object->is_object()) return section;
  for (const auto& [name, value] : object->AsObject()) {
    section[name] = &value;
  }
  return section;
}

}  // namespace

util::Result<CompareResult> CompareBenchJson(const json::Value& baseline,
                                             const json::Value& current,
                                             const CompareOptions& options) {
  auto baseline_index = IndexBenchmarks(baseline, "baseline");
  if (!baseline_index.ok()) return baseline_index.error();
  auto current_index = IndexBenchmarks(current, "current");
  if (!current_index.ok()) return current_index.error();

  CompareResult result;
  for (const auto& [name, entry] : current_index.value()) {
    if (baseline_index.value().count(name) == 0) {
      result.added_benchmarks.push_back(name);
    }
  }

  for (const auto& [bench_name, baseline_entry] : baseline_index.value()) {
    auto current_it = current_index.value().find(bench_name);
    if (current_it == current_index.value().end()) {
      result.missing_benchmarks.push_back(bench_name);
      continue;
    }
    const json::Value* current_entry = current_it->second;

    // --- modeled: exact ----------------------------------------------------
    for (const char* section : {"modeled", "modeled_text"}) {
      const auto base_metrics = SectionOf(baseline_entry, section);
      const auto cur_metrics = SectionOf(current_entry, section);
      for (const auto& [key, cur_value] : cur_metrics) {
        if (base_metrics.count(key) == 0) {
          result.added_metrics.push_back(bench_name + "." + section + "." +
                                         key);
        }
      }
      for (const auto& [key, base_value] : base_metrics) {
        auto cur = cur_metrics.find(key);
        if (cur == cur_metrics.end()) {
          result.missing_metrics.push_back(bench_name + "." + section + "." +
                                           key);
          continue;
        }
        ++result.compared_modeled;
        // Dump() compares the serialized form — exactly what lands in the
        // artifact, so "gate" and "file diff" can never disagree.
        if (base_value->Dump() != cur->second->Dump()) {
          result.regressions.push_back({bench_name,
                                        std::string(section) + "." + key,
                                        base_value->Dump(),
                                        cur->second->Dump(), true,
                                        "modeled metrics gate exactly"});
        }
      }
    }

    // --- wall: tolerance on the median ------------------------------------
    if (options.modeled_only || options.wall_tolerance < 0.0) continue;
    const auto base_wall = SectionOf(baseline_entry, "wall");
    const auto cur_wall = SectionOf(current_entry, "wall");
    for (const auto& [label, base_stats] : base_wall) {
      auto cur = cur_wall.find(label);
      if (cur == cur_wall.end()) continue;  // wall drops are not gated
      const double base_median = base_stats->GetNumber("median_ns");
      const double cur_median = cur->second->GetNumber("median_ns");
      if (base_median <= 0.0) continue;
      ++result.compared_wall;
      const double delta = cur_median / base_median - 1.0;
      MetricDiff diff{bench_name,
                      "wall." + label,
                      FormatDouble(base_median) + " ns",
                      FormatDouble(cur_median) + " ns",
                      delta > options.wall_tolerance,
                      FormatPercent(delta) + " vs " +
                          FormatPercent(options.wall_tolerance) + " tolerance"};
      if (diff.regression) {
        result.regressions.push_back(std::move(diff));
      } else if (delta < 0.0) {
        result.improvements.push_back(std::move(diff));
      }
    }
  }
  return result;
}

std::string RenderCompareText(const CompareResult& result) {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line),
                "bench_compare: %zu modeled metrics exact-checked, %zu wall "
                "medians tolerance-checked\n",
                result.compared_modeled, result.compared_wall);
  out += line;
  for (const std::string& name : result.missing_benchmarks) {
    out += "MISSING benchmark: " + name + " (in baseline, absent from current)\n";
  }
  for (const std::string& name : result.missing_metrics) {
    out += "MISSING metric: " + name + "\n";
  }
  for (const MetricDiff& diff : result.regressions) {
    out += "REGRESSION " + diff.bench + " " + diff.metric + ": " +
           diff.baseline + " -> " + diff.current + " (" + diff.note + ")\n";
  }
  for (const MetricDiff& diff : result.improvements) {
    out += "improved   " + diff.bench + " " + diff.metric + ": " +
           diff.baseline + " -> " + diff.current + " (" + diff.note + ")\n";
  }
  for (const std::string& name : result.added_benchmarks) {
    out += "new benchmark: " + name + "\n";
  }
  for (const std::string& name : result.added_metrics) {
    out += "new metric: " + name + "\n";
  }
  out += result.ok() ? "OK: no regressions\n" : "FAIL: regression gate tripped\n";
  return out;
}

}  // namespace sww::obs::bench
