// bench.hpp — the shared micro-benchmark framework behind `sww_bench`.
//
// Every bench/bench_*.cpp used to hand-roll its own timing and print
// free-form text, so the repository had no machine-readable performance
// trajectory at all.  This framework gives each benchmark three surfaces
// and one writer:
//
//   * modeled metrics  — deterministic numbers pulled from the simulation
//     substrate (ManualClock seconds, energy/carbon models, registry
//     counters, output digests).  Byte-identical across runs and gated
//     EXACTLY by tools/bench_compare: any drift is a real behaviour change.
//   * wall timings     — State::Time runs a kernel through a warmup +
//     adaptive-iteration protocol and keeps robust statistics
//     (min/median/p95/MAD over per-iteration nanoseconds).  Machine noise
//     lives here; bench_compare gates these with a configurable tolerance.
//   * info metrics     — context numbers (real throughput, host-dependent
//     byte rates) recorded but never gated.
//
// Registration is one macro next to the benchmark body:
//
//   void my_case(sww::obs::bench::State& state) { ... }
//   SWW_BENCHMARK(my_case);
//
// and the single `sww_bench` runner (`--list`, `--filter`, `--json`)
// executes every registered case and emits the versioned BENCH_sww.json
// schema (kSchemaVersion) through src/json — one writer, one schema.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "obs/clock.hpp"

namespace sww::obs::bench {

/// Schema identifier of one flat run report (the ResultsToJson document);
/// bench_compare refuses to diff files whose versions disagree.
inline constexpr std::string_view kSchemaVersion = "sww-bench/1";

/// Schema identifier of the *trajectory* document BENCH_sww.json holds:
///   { "schema": "sww-bench/2", "generator": "sww_bench",
///     "runs": [ { "run_id": 1, "benchmarks": [...] }, ... ] }
/// `sww_bench --json` appends one run per invocation (run_id strictly
/// increasing), so the checked-in file is a growing performance history
/// rather than a single overwritten snapshot.  bench_compare reads the
/// LAST run of a trajectory and still accepts flat sww-bench/1 files.
inline constexpr std::string_view kTrajectorySchemaVersion = "sww-bench/2";

/// Robust statistics over the measured (post-warmup) iterations of one
/// timed kernel.  All durations in nanoseconds.
struct WallStats {
  std::size_t iterations = 0;  ///< measured iterations (warmup excluded)
  double total_ns = 0.0;
  double min_ns = 0.0;
  double mean_ns = 0.0;
  double median_ns = 0.0;
  double p95_ns = 0.0;
  double mad_ns = 0.0;  ///< median absolute deviation
};

/// Fold per-iteration samples into WallStats (median/p95 by linear
/// interpolation, MAD via metrics::MedianAbsoluteDeviation).  Pure —
/// exercised directly by the stats-kernel tests.
WallStats SummarizeWall(const std::vector<double>& sample_ns);

/// The warmup + adaptive-iteration protocol.  The kernel runs
/// `warmup_iterations` times untimed-for-stats (samples discarded), then
/// keeps running until both `min_iterations` measured samples exist and
/// `min_total_seconds` of measured time has accumulated, capped at
/// `max_iterations`.
struct TimingOptions {
  int warmup_iterations = 3;
  int min_iterations = 8;
  int max_iterations = 20000;
  double min_total_seconds = 0.02;
};

/// Run `kernel` through the timing protocol reading time from `clock`
/// (nullptr → steady_clock).  Injectable clock keeps the protocol
/// testable: a ManualClock advanced inside the kernel proves warmup
/// exclusion and adaptive stop without wall-time flakiness.
WallStats TimeKernel(const std::function<void()>& kernel,
                     const TimingOptions& options, Clock* clock = nullptr);

/// Round to 9 significant digits (snprintf "%.9g" and back).  Every
/// modeled metric passes through this before landing in the JSON, so the
/// exact-gate survives last-ulp libm differences across toolchains while
/// remaining byte-stable for any real behaviour change.
double CanonicalizeModeled(double value);

/// Everything one benchmark reported.
struct BenchResult {
  std::string name;
  std::map<std::string, double> modeled;       ///< exact-gated
  std::map<std::string, std::string> modeled_text;  ///< exact-gated (digests…)
  std::map<std::string, double> info;          ///< never gated
  std::map<std::string, WallStats> wall;       ///< tolerance-gated
  std::vector<std::string> failures;           ///< Check() violations

  bool ok() const { return failures.empty(); }
};

/// Handed to each benchmark body; collects its report.
class State {
 public:
  explicit State(std::string name, TimingOptions timing = {})
      : timing_(timing) {
    result_.name = std::move(name);
  }

  /// Deterministic metric — gated exactly by bench_compare.
  void Modeled(std::string_view key, double value);
  /// Deterministic text metric (output digests, negotiated modes).
  void ModeledText(std::string_view key, std::string_view value);
  /// Context-only metric (real wall seconds, host throughput) — recorded
  /// in the JSON but never gated.
  void Info(std::string_view key, double value);
  /// Time a kernel under the warmup + adaptive protocol; stats land under
  /// `label` in the wall section.
  void Time(std::string_view label, const std::function<void()>& kernel);
  /// Record a failed invariant; the runner exits non-zero if any
  /// benchmark checked false.
  void Check(bool ok, std::string_view what);

  const TimingOptions& timing() const { return timing_; }
  const BenchResult& result() const { return result_; }
  BenchResult TakeResult() { return std::move(result_); }

 private:
  TimingOptions timing_;
  BenchResult result_;
};

using BenchFn = void (*)(State&);

/// The process-wide benchmark registry.  Registration order is static-init
/// order across translation units, so consumers always see the list
/// sorted by name — the JSON output must not depend on link order.
class Suite {
 public:
  static Suite& Default();

  void Register(std::string name, BenchFn fn);
  /// All registered benchmarks, sorted by name.
  std::vector<std::pair<std::string, BenchFn>> Sorted() const;

 private:
  std::vector<std::pair<std::string, BenchFn>> benchmarks_;
};

struct Registrar {
  Registrar(const char* name, BenchFn fn) {
    Suite::Default().Register(name, fn);
  }
};

/// Register `fn` (a `void fn(State&)`) under its own identifier.
#define SWW_BENCHMARK(fn) \
  static ::sww::obs::bench::Registrar sww_bench_registrar_##fn(#fn, fn)

/// Serialize results into the BENCH_sww.json schema.  With `modeled_only`
/// the wall and info sections are omitted — the form the checked-in CI
/// baseline uses, byte-identical across runs and machines.
json::Value ResultsToJson(const std::vector<BenchResult>& results,
                          bool modeled_only);

/// Fold a flat run report (a ResultsToJson document) onto an existing
/// trajectory, returning the sww-bench/2 document to write back:
///   * `existing` null / not an object → trajectory with this run as run 1
///   * `existing` is a flat sww-bench/1 report → it becomes run 1, the new
///     report run 2 (upgrades the pre-trajectory checked-in baseline)
///   * `existing` is a sww-bench/2 trajectory → append run_id = last + 1
/// Errors (kInvalidArgument) on unknown schemas or a corrupt runs array —
/// the runner refuses to clobber a file it cannot interpret.
util::Result<json::Value> AppendTrajectoryRun(const json::Value* existing,
                                              json::Value flat_report);

/// The `sww_bench` entry point: --list | --filter <substr> | --json <path>
/// | --modeled-only | --min-time <seconds>.  Returns the process exit
/// code (non-zero when any benchmark Check failed or output could not be
/// written).
int RunBenchMain(int argc, char** argv);

}  // namespace sww::obs::bench
