#include "obs/journal.hpp"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "json/json.hpp"

namespace sww::obs {

namespace {

std::string TraceIdHex(std::uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, trace_id);
  return buf;
}

}  // namespace

Journal& Journal::Default() {
  static Journal* journal = new Journal();  // never destroyed: handles
  return *journal;                          // outlive static teardown
}

Journal::Journal(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_ < 64 ? capacity_ : 64);
}

void Journal::Record(JournalRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % capacity_;
}

std::vector<JournalRecord> Journal::Records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JournalRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t Journal::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t Journal::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ - ring_.size();
}

void Journal::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

std::string RenderJournalJsonLines(const std::vector<JournalRecord>& records,
                                   std::uint64_t total_recorded,
                                   std::uint64_t dropped,
                                   std::size_t capacity) {
  std::string out;
  for (const JournalRecord& record : records) {
    json::Object line;
    line["kind"] = json::Value(record.kind);
    line["trace_id"] = json::Value(TraceIdHex(record.trace_id));
    line["path"] = json::Value(record.path);
    line["timestamp_nanos"] =
        json::Value(static_cast<std::int64_t>(record.timestamp_nanos));
    line["mode"] = json::Value(record.mode);
    line["device"] = json::Value(record.device);
    line["outcome"] = json::Value(record.outcome);
    line["cache"] = json::Value(record.cache);
    line["coalesced"] = json::Value(record.coalesced);
    line["total_seconds"] = json::Value(record.total_seconds);
    line["wire_seconds"] = json::Value(record.wire_seconds);
    line["generation_seconds"] = json::Value(record.generation_seconds);
    line["upscale_seconds"] = json::Value(record.upscale_seconds);
    line["page_bytes"] =
        json::Value(static_cast<std::int64_t>(record.page_bytes));
    line["asset_bytes"] =
        json::Value(static_cast<std::int64_t>(record.asset_bytes));
    line["wire_bytes_sent"] =
        json::Value(static_cast<std::int64_t>(record.wire_bytes_sent));
    line["wire_bytes_received"] =
        json::Value(static_cast<std::int64_t>(record.wire_bytes_received));
    line["frames_sent"] =
        json::Value(static_cast<std::int64_t>(record.frames_sent));
    line["frames_received"] =
        json::Value(static_cast<std::int64_t>(record.frames_received));
    line["energy_joules"] = json::Value(record.energy_joules);
    out += json::Value(std::move(line)).Dump();
    out += '\n';
  }
  json::Object summary;
  summary["kind"] = json::Value("journal_summary");
  summary["records"] = json::Value(static_cast<std::int64_t>(records.size()));
  summary["total_recorded"] =
      json::Value(static_cast<std::int64_t>(total_recorded));
  summary["dropped"] = json::Value(static_cast<std::int64_t>(dropped));
  summary["capacity"] = json::Value(static_cast<std::int64_t>(capacity));
  out += json::Value(std::move(summary)).Dump();
  out += '\n';
  return out;
}

std::string RenderJournalJsonLines(const Journal& journal) {
  return RenderJournalJsonLines(journal.Records(), journal.total_recorded(),
                                journal.dropped(), journal.capacity());
}

}  // namespace sww::obs
