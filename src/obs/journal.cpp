#include "obs/journal.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "json/json.hpp"
#include "obs/registry.hpp"

namespace sww::obs {

namespace {

std::string TraceIdHex(std::uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, trace_id);
  return buf;
}

/// Registry mirrors of the journal's drop accounting.  Cached once: the
/// registry never destroys instruments, and Record is called per fetch.
Counter& RecordedTotalCounter() {
  static Counter& counter =
      Registry::Default().GetCounter("journal.recorded_total");
  return counter;
}

Counter& DroppedTotalCounter() {
  static Counter& counter =
      Registry::Default().GetCounter("journal.dropped_total");
  return counter;
}

std::size_t DefaultCapacityFromEnv() {
  const char* env = std::getenv("SWW_JOURNAL_CAPACITY");
  if (env == nullptr || *env == '\0') return Journal::kDefaultCapacity;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return Journal::kDefaultCapacity;
  return static_cast<std::size_t>(parsed);
}

}  // namespace

Journal& Journal::Default() {
  static Journal* journal =
      new Journal(DefaultCapacityFromEnv());  // never destroyed: handles
  return *journal;                            // outlive static teardown
}

Journal::Journal(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_ < 64 ? capacity_ : 64);
}

void Journal::Record(JournalRecord record) {
  RecordedTotalCounter().Add();
  // Touch the dropped mirror so the series exists (at 0) from the first
  // record on — dashboards alert on its rate, which needs a baseline.
  DroppedTotalCounter().Add(0);
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  if (capacity_ == 0) {
    DroppedTotalCounter().Add();
    return;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % capacity_;
  DroppedTotalCounter().Add();
}

std::vector<JournalRecord> Journal::OrderedLocked() const {
  std::vector<JournalRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<JournalRecord> Journal::Records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return OrderedLocked();
}

void Journal::SetCapacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity == capacity_) return;
  std::vector<JournalRecord> ordered = OrderedLocked();
  if (ordered.size() > capacity) {
    const std::size_t evicted = ordered.size() - capacity;
    ordered.erase(ordered.begin(),
                  ordered.begin() + static_cast<std::ptrdiff_t>(evicted));
    DroppedTotalCounter().Add(evicted);  // dropped() grows by the same
  }
  ring_ = std::move(ordered);
  // Oldest-first layout: index 0 is both the oldest record and the next
  // overwrite target once the ring is full again.
  next_ = 0;
  capacity_ = capacity;
}

std::size_t Journal::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

std::uint64_t Journal::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t Journal::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ - ring_.size();
}

void Journal::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

std::string RenderJournalJsonLines(const std::vector<JournalRecord>& records,
                                   std::uint64_t total_recorded,
                                   std::uint64_t dropped,
                                   std::size_t capacity) {
  std::string out;
  for (const JournalRecord& record : records) {
    json::Object line;
    line["kind"] = json::Value(record.kind);
    line["trace_id"] = json::Value(TraceIdHex(record.trace_id));
    line["path"] = json::Value(record.path);
    line["timestamp_nanos"] =
        json::Value(static_cast<std::int64_t>(record.timestamp_nanos));
    line["mode"] = json::Value(record.mode);
    line["device"] = json::Value(record.device);
    line["outcome"] = json::Value(record.outcome);
    line["cache"] = json::Value(record.cache);
    line["coalesced"] = json::Value(record.coalesced);
    line["total_seconds"] = json::Value(record.total_seconds);
    line["wire_seconds"] = json::Value(record.wire_seconds);
    line["generation_seconds"] = json::Value(record.generation_seconds);
    line["upscale_seconds"] = json::Value(record.upscale_seconds);
    line["page_bytes"] =
        json::Value(static_cast<std::int64_t>(record.page_bytes));
    line["asset_bytes"] =
        json::Value(static_cast<std::int64_t>(record.asset_bytes));
    line["wire_bytes_sent"] =
        json::Value(static_cast<std::int64_t>(record.wire_bytes_sent));
    line["wire_bytes_received"] =
        json::Value(static_cast<std::int64_t>(record.wire_bytes_received));
    line["frames_sent"] =
        json::Value(static_cast<std::int64_t>(record.frames_sent));
    line["frames_received"] =
        json::Value(static_cast<std::int64_t>(record.frames_received));
    line["energy_joules"] = json::Value(record.energy_joules);
    out += json::Value(std::move(line)).Dump();
    out += '\n';
  }
  json::Object summary;
  summary["kind"] = json::Value("journal_summary");
  summary["records"] = json::Value(static_cast<std::int64_t>(records.size()));
  summary["total_recorded"] =
      json::Value(static_cast<std::int64_t>(total_recorded));
  summary["dropped"] = json::Value(static_cast<std::int64_t>(dropped));
  summary["capacity"] = json::Value(static_cast<std::int64_t>(capacity));
  out += json::Value(std::move(summary)).Dump();
  out += '\n';
  return out;
}

std::string RenderJournalJsonLines(const Journal& journal) {
  return RenderJournalJsonLines(journal.Records(), journal.total_recorded(),
                                journal.dropped(), journal.capacity());
}

}  // namespace sww::obs
