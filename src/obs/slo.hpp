// slo.hpp — declarative latency objectives and multi-window burn rates.
//
// An SLO here is "quantile of a histogram series stays under a
// threshold, with at least `target` of observations good" — e.g.
// `fetch.latency p99 < 120 s, 99% good`.  The engine evaluates error-
// budget burn the way the multi-window alerting literature prescribes:
// a *fast* window (default 5 minutes) that reacts quickly and a *slow*
// window (default 1 hour) that filters blips; an objective is *burning*
// only when BOTH windows exceed their burn-rate alerts.  Burn rate is
// bad_fraction / (1 - target): 1x burns the budget exactly at the
// period boundary, 100x burns a 99% budget with every event bad.
//
// Windows are computed by *subtracting cumulative histogram snapshots*:
// the engine ingests timestamped snapshots (modeled clock) and takes
// the bucket-count delta between the newest sample and the newest
// sample at or before now − window.  When history is shorter than the
// window the delta clamps to everything seen (reported as `clamped`) —
// a single-snapshot run evaluates its whole lifetime in both windows,
// which is what makes `slo.report.txt` deterministic for sww_inspect.
//
// A bucket counts as *bad* when its upper bound exceeds the threshold
// (conservative: a bucket straddling the threshold is all-bad), and the
// +Inf overflow bucket is always bad.  Deterministic given the counts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.hpp"
#include "util/error.hpp"

namespace sww::obs {

/// One declarative objective over one registry histogram series.
struct SloObjective {
  std::string name;          ///< report label, e.g. "fetch-latency-p99"
  std::string series;        ///< registry instrument, e.g. "fetch.latency"
  double quantile = 99.0;    ///< p-quantile the report prints (0..100)
  double threshold = 0.0;    ///< good event: observation <= threshold
  double target = 0.99;      ///< fraction of events that must be good
  double fast_window_seconds = 300.0;
  double slow_window_seconds = 3600.0;
  /// Burn-rate alert per window; both must trip for `burning`.  14.4x
  /// is the classic "2% of a 30-day budget in one hour" page threshold.
  double fast_burn_alert = 14.4;
  double slow_burn_alert = 14.4;
};

/// Burn-rate evaluation of one window.
struct SloWindowEval {
  double window_seconds = 0.0;
  bool clamped = false;  ///< history shorter than the window
  std::uint64_t total = 0;
  std::uint64_t bad = 0;
  double bad_fraction = 0.0;
  double burn_rate = 0.0;
  double alert = 0.0;
  bool alerting = false;
};

/// Full evaluation of one objective at one instant.
struct SloEvaluation {
  SloObjective objective;
  bool have_series = false;  ///< any snapshot ingested for the series
  std::uint64_t observations = 0;   ///< cumulative count at evaluation
  double quantile_value = 0.0;      ///< p{quantile} of the newest snapshot
  bool quantile_ok = true;          ///< quantile_value <= threshold
  SloWindowEval fast;
  SloWindowEval slow;
  bool burning = false;  ///< fast AND slow windows alerting
};

/// Ingests timestamped cumulative snapshots per series and evaluates
/// the objectives.  Not thread-safe; callers own the scrape loop.
class SloEngine {
 public:
  explicit SloEngine(std::vector<SloObjective> objectives);

  const std::vector<SloObjective>& objectives() const { return objectives_; }

  /// Record one cumulative snapshot of `series` taken at `now_nanos`
  /// (modeled clock).  Samples must arrive in non-decreasing time order.
  void Ingest(std::string_view series, const HistogramSnapshot& snapshot,
              std::uint64_t now_nanos);

  /// Evaluate every objective at `now_nanos`.  Deterministic.
  std::vector<SloEvaluation> Evaluate(std::uint64_t now_nanos) const;

 private:
  struct TimedSnapshot {
    std::uint64_t nanos = 0;
    HistogramSnapshot snapshot;
  };

  std::vector<SloObjective> objectives_;
  std::map<std::string, std::vector<TimedSnapshot>, std::less<>> history_;
};

/// The stock objectives the repo's own tools evaluate: end-to-end fetch
/// latency and per-stream wire latency, both p99 on the modeled clock.
std::vector<SloObjective> DefaultSloObjectives();

/// Parse a gate override spec "name,series,quantile,threshold[,target]"
/// (e.g. "burn,fetch.latency,99,1e-9,0.99") into an objective with the
/// default windows and alerts.
util::Result<SloObjective> ParseSloObjectiveSpec(std::string_view spec);

/// Deterministic text report (`slo.report.txt`).
std::string RenderSloReport(const std::vector<SloEvaluation>& evaluations);

}  // namespace sww::obs
